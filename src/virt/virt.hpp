// everest/virt/virt.hpp
//
// The EVEREST virtualization infrastructure (paper §VI-B, Fig. 6): each
// physical node runs a QEMU-KVM-like hypervisor exposing FPGA cards to VMs
// through SR-IOV — one Physical Function (PF) per card manages a fixed pool
// of Virtual Functions (VFs); a VF attaches to exactly one VM, many VFs may
// attach to the same VM. SR-IOV I/O is near-native; the software-emulated
// fallback is much slower. The static-pool downside the paper notes is
// mitigated by dynamic plugging/unplugging of VFs driven by the resource
// allocator; a libvirtd-like query API reports node status to the autotuner
// and the resource manager.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "platform/xrt.hpp"
#include "support/expected.hpp"
#include "support/json.hpp"

namespace everest::virt {

using VmId = int;

/// How a VF's I/O path is virtualized.
enum class IoMode {
  SrIov,     // hardware passthrough via SR-IOV: near-native
  Emulated,  // software device model: large overhead
};

/// I/O overhead factors applied to link transfers (Fig. 6 / E6 bench).
constexpr double kSrIovOverhead = 1.04;    // near-native (paper's claim)
constexpr double kEmulatedOverhead = 2.6;  // software emulation
constexpr double kNativeOverhead = 1.0;

/// Handle to an attached virtual function.
struct VfHandle {
  int card = -1;
  int vf = -1;
  [[nodiscard]] bool valid() const { return card >= 0 && vf >= 0; }
};

/// Snapshot of one card's PF state.
struct PfStatus {
  std::string device;
  int max_vfs = 0;
  int attached_vfs = 0;
};

/// libvirt-like node status report.
struct NodeStatus {
  std::string name;
  int total_cores = 0;
  int allocated_vcpus = 0;
  std::size_t vms = 0;
  std::vector<PfStatus> cards;
};

/// One physical node with hypervisor, VMs, and SR-IOV-managed FPGA cards.
class VirtNode {
public:
  /// `max_vfs_per_card` is the static SR-IOV pool size (the PF's limit).
  VirtNode(std::string name, int cores,
           std::vector<platform::DeviceSpec> cards, int max_vfs_per_card = 4);

  /// Creates a VM with the requested vCPUs; fails when oversubscribed.
  support::Expected<VmId> create_vm(const std::string &name, int vcpus);
  /// Destroys a VM, detaching (and freeing) all its VFs.
  support::Status destroy_vm(VmId vm);

  /// Dynamically plugs a VF of `card` into `vm` (the paper's mitigation of
  /// SR-IOV's static nature). Returns the handle; advances the simulated
  /// plug latency counter.
  support::Expected<VfHandle> attach_vf(VmId vm, int card,
                                        IoMode mode = IoMode::SrIov);
  /// Unplugs a VF from a VM, returning it to the PF pool.
  support::Status detach_vf(VmId vm, VfHandle handle);

  /// The device a VM sees through an attached VF. I/O carries the mode's
  /// overhead factor; compute is unaffected (direct fabric access).
  support::Expected<platform::Device *> vm_device(VmId vm, VfHandle handle);

  /// A native (non-virtualized) device for baseline comparisons.
  [[nodiscard]] platform::Device &native_device(int card);

  /// libvirtd-like queries.
  [[nodiscard]] NodeStatus status() const;
  [[nodiscard]] support::Json status_json() const;

  /// Total simulated milliseconds spent in VF plug/unplug operations.
  [[nodiscard]] double plug_unplug_ms() const { return plug_ms_; }
  /// Latency model of one hotplug operation.
  [[nodiscard]] double plug_latency_ms() const;

private:
  struct Vf {
    VmId owner = -1;
    IoMode mode = IoMode::SrIov;
    std::unique_ptr<platform::Device> device;
  };
  struct Card {
    platform::DeviceSpec spec;
    std::vector<Vf> vfs;
    std::unique_ptr<platform::Device> native;
  };
  struct Vm {
    std::string name;
    int vcpus = 0;
    bool alive = false;
  };

  std::string name_;
  int cores_;
  std::vector<Card> cards_;
  std::map<VmId, Vm> vms_;
  VmId next_vm_ = 0;
  double plug_ms_ = 0.0;
};

}  // namespace everest::virt
