#include "virt/virt.hpp"

namespace everest::virt {

using support::Error;
using support::Expected;
using support::Json;
using support::Status;

VirtNode::VirtNode(std::string name, int cores,
                   std::vector<platform::DeviceSpec> cards,
                   int max_vfs_per_card)
    : name_(std::move(name)), cores_(cores) {
  for (auto &spec : cards) {
    Card card;
    card.spec = spec;
    card.vfs.resize(static_cast<std::size_t>(max_vfs_per_card));
    card.native = std::make_unique<platform::Device>(spec, kNativeOverhead);
    cards_.push_back(std::move(card));
  }
}

Expected<VmId> VirtNode::create_vm(const std::string &vm_name, int vcpus) {
  if (vcpus < 1) return Error::make("virt: vcpus must be >= 1");
  int allocated = 0;
  for (const auto &[id, vm] : vms_) {
    if (vm.alive) allocated += vm.vcpus;
  }
  if (allocated + vcpus > cores_)
    return Error::make("virt: node " + name_ + " has no free cores for VM '" +
                       vm_name + "'");
  VmId id = next_vm_++;
  vms_[id] = Vm{vm_name, vcpus, true};
  return id;
}

Status VirtNode::destroy_vm(VmId vm) {
  auto it = vms_.find(vm);
  if (it == vms_.end() || !it->second.alive)
    return Status::failure("virt: unknown VM");
  for (auto &card : cards_) {
    for (auto &vf : card.vfs) {
      if (vf.owner == vm) {
        vf.owner = -1;
        vf.device.reset();
        plug_ms_ += plug_latency_ms();
      }
    }
  }
  it->second.alive = false;
  return Status::ok();
}

double VirtNode::plug_latency_ms() const {
  // PCI rescan + guest driver probe; grows mildly with attached VF count.
  int attached = 0;
  for (const auto &card : cards_) {
    for (const auto &vf : card.vfs) {
      if (vf.owner >= 0) ++attached;
    }
  }
  return 120.0 + 8.0 * attached;
}

Expected<VfHandle> VirtNode::attach_vf(VmId vm, int card, IoMode mode) {
  auto it = vms_.find(vm);
  if (it == vms_.end() || !it->second.alive)
    return Error::make("virt: unknown VM");
  if (card < 0 || card >= static_cast<int>(cards_.size()))
    return Error::make("virt: card index out of range");
  Card &c = cards_[static_cast<std::size_t>(card)];
  for (std::size_t i = 0; i < c.vfs.size(); ++i) {
    if (c.vfs[i].owner < 0) {
      plug_ms_ += plug_latency_ms();
      c.vfs[i].owner = vm;
      c.vfs[i].mode = mode;
      double overhead =
          mode == IoMode::SrIov ? kSrIovOverhead : kEmulatedOverhead;
      c.vfs[i].device = std::make_unique<platform::Device>(c.spec, overhead);
      return VfHandle{card, static_cast<int>(i)};
    }
  }
  return Error::make("virt: SR-IOV VF pool of card " + std::to_string(card) +
                     " exhausted (static limit " +
                     std::to_string(c.vfs.size()) + ")");
}

Status VirtNode::detach_vf(VmId vm, VfHandle handle) {
  if (!handle.valid() || handle.card >= static_cast<int>(cards_.size()))
    return Status::failure("virt: invalid VF handle");
  Card &c = cards_[static_cast<std::size_t>(handle.card)];
  if (handle.vf >= static_cast<int>(c.vfs.size()))
    return Status::failure("virt: invalid VF handle");
  Vf &vf = c.vfs[static_cast<std::size_t>(handle.vf)];
  if (vf.owner != vm) return Status::failure("virt: VF not owned by this VM");
  vf.owner = -1;
  vf.device.reset();
  plug_ms_ += plug_latency_ms();
  return Status::ok();
}

Expected<platform::Device *> VirtNode::vm_device(VmId vm, VfHandle handle) {
  if (!handle.valid() || handle.card >= static_cast<int>(cards_.size()))
    return Error::make("virt: invalid VF handle");
  Card &c = cards_[static_cast<std::size_t>(handle.card)];
  if (handle.vf >= static_cast<int>(c.vfs.size()))
    return Error::make("virt: invalid VF handle");
  Vf &vf = c.vfs[static_cast<std::size_t>(handle.vf)];
  if (vf.owner != vm) return Error::make("virt: VF not owned by this VM");
  return vf.device.get();
}

platform::Device &VirtNode::native_device(int card) {
  return *cards_.at(static_cast<std::size_t>(card)).native;
}

NodeStatus VirtNode::status() const {
  NodeStatus s;
  s.name = name_;
  s.total_cores = cores_;
  for (const auto &[id, vm] : vms_) {
    if (vm.alive) {
      s.allocated_vcpus += vm.vcpus;
      ++s.vms;
    }
  }
  for (const auto &card : cards_) {
    PfStatus pf;
    pf.device = card.spec.name;
    pf.max_vfs = static_cast<int>(card.vfs.size());
    for (const auto &vf : card.vfs) {
      if (vf.owner >= 0) ++pf.attached_vfs;
    }
    s.cards.push_back(pf);
  }
  return s;
}

Json VirtNode::status_json() const {
  NodeStatus s = status();
  Json j = Json::object();
  j.set("node", s.name);
  j.set("cores", s.total_cores);
  j.set("allocated_vcpus", s.allocated_vcpus);
  j.set("vms", static_cast<std::int64_t>(s.vms));
  Json cards = Json::array();
  for (const auto &pf : s.cards) {
    Json c = Json::object();
    c.set("device", pf.device);
    c.set("max_vfs", pf.max_vfs);
    c.set("attached_vfs", pf.attached_vfs);
    cards.push_back(std::move(c));
  }
  j.set("cards", std::move(cards));
  return j;
}

}  // namespace everest::virt
