#include "platform/device.hpp"

#include <algorithm>

namespace everest::platform {

DeviceSpec alveo_u55c() {
  DeviceSpec d;
  d.name = "alveo-u55c";
  d.clock_mhz = 300.0;
  d.capacity = {1'303'680, 2'607'360, 9'024, 2'016};
  d.memory.hbm_channels = 32;
  d.memory.hbm_gbps_per_channel = 14.375;  // 32 * 14.375 = 460 GB/s
  d.memory.hbm_bytes = 16LL * 1024 * 1024 * 1024;
  d.link.kind = LinkSpec::Kind::Pcie;
  d.link.gbps = 12.0 * 8.0;  // PCIe Gen3 x16 effective ~12 GB/s payload
  d.link.latency_us = 5.0;
  return d;
}

DeviceSpec alveo_u280() {
  DeviceSpec d;
  d.name = "alveo-u280";
  d.clock_mhz = 300.0;
  d.capacity = {1'304'000, 2'607'000, 9'024, 2'016};
  d.memory.hbm_channels = 32;
  d.memory.hbm_gbps_per_channel = 14.375;
  d.memory.hbm_bytes = 8LL * 1024 * 1024 * 1024;
  d.memory.ddr_gbps = 38.0;
  d.memory.ddr_bytes = 32LL * 1024 * 1024 * 1024;
  d.link.kind = LinkSpec::Kind::Pcie;
  d.link.gbps = 12.0 * 8.0;
  d.link.latency_us = 5.0;
  return d;
}

DeviceSpec cloudfpga() {
  DeviceSpec d;
  d.name = "cloudfpga";
  d.clock_mhz = 156.25;  // typical shell clock of the cloudFPGA platform
  d.capacity = {523'000, 1'045'000, 1'963, 984};
  d.memory.ddr_gbps = 19.0;
  d.memory.ddr_bytes = 8LL * 1024 * 1024 * 1024;
  d.link.kind = LinkSpec::Kind::Network;
  d.link.gbps = 10.0;      // 10G TCP/UDP network stack
  d.link.latency_us = 30.0;
  return d;
}

bool fits(const hls::Resources &required, const hls::Resources &capacity) {
  return required.luts <= capacity.luts && required.ffs <= capacity.ffs &&
         required.dsps <= capacity.dsps && required.brams <= capacity.brams;
}

double utilization(const hls::Resources &required,
                   const hls::Resources &capacity) {
  auto frac = [](std::int64_t need, std::int64_t have) {
    return have > 0 ? static_cast<double>(need) / static_cast<double>(have)
                    : (need > 0 ? 1.0 : 0.0);
  };
  return std::max({frac(required.luts, capacity.luts),
                   frac(required.ffs, capacity.ffs),
                   frac(required.dsps, capacity.dsps),
                   frac(required.brams, capacity.brams)});
}

}  // namespace everest::platform
