// everest/platform/fault_injector.hpp
//
// Seeded, deterministic fault injection for the simulated platform layer.
// A FaultInjector draws every fault decision as a *pure function* of
// (seed, site, op-index, salt) through a SplitMix64 hash, so a run under a
// given fault plan is bit-reproducible: the same seed injects the same
// faults at the same operations regardless of thread interleaving, and two
// runs with the same seed produce identical traces. Devices, the ZRLMPI
// communicator, and the dfg executor consult the injector at well-known
// sites; the resilience policies in src/resil/ recover from what it injects.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "obs/trace.hpp"
#include "support/expected.hpp"

namespace everest::platform {

/// Where a fault can strike. Each site has its own decision stream.
enum class FaultSite : int {
  DmaToDevice = 0,   // Device::sync_to_device
  DmaFromDevice = 1, // Device::sync_from_device
  Alloc = 2,         // Device::alloc (transient flake, not capacity)
  KernelLaunch = 3,  // Device::run (hang: latency x multiplier)
  LinkSend = 4,      // ZrlmpiCommunicator::send (drop or latency spike)
  NodeInvoke = 5,    // dfg executor stateless-node invocation
  FoldStep = 6,      // dfg executor fold step (drives checkpoint restart)
};
inline constexpr int kFaultSiteCount = 7;

/// What the injector decided to do to one operation.
enum class InjectedFault : int {
  None = 0,
  TransferError = 1,    // DMA sync fails after moving the data (Unavailable)
  AllocFlake = 2,       // allocation transiently fails (Unavailable)
  KernelTimeout = 3,    // kernel hangs: latency x kernel_timeout_multiplier
  LinkDrop = 4,         // network message lost (Unavailable)
  LinkLatencySpike = 5, // message delivered at spike-multiplied latency
  NodeFault = 6,        // dfg node invocation lost; executor retries
  FoldFault = 7,        // dfg fold step lost; executor restores a checkpoint
};
inline constexpr int kInjectedFaultCount = 8;

[[nodiscard]] const char *fault_name(InjectedFault fault);

/// Per-site fault rates. All rates are probabilities in [0, 1]; multipliers
/// scale the simulated latency of the affected operation.
struct FaultPlan {
  double transfer_error_rate = 0.0;
  double alloc_flake_rate = 0.0;
  double kernel_timeout_rate = 0.0;
  double kernel_timeout_multiplier = 8.0;
  double link_drop_rate = 0.0;
  double link_spike_rate = 0.0;
  double link_spike_multiplier = 10.0;
  double node_fault_rate = 0.0;
  double fold_fault_rate = 0.0;
};

/// Parses "key=value,key=value" fault-plan specs (the CLI's --fault-plan):
/// transfer, alloc, timeout, timeout-mult, drop, spike, spike-mult, node,
/// fold. Rates must be in [0, 1], multipliers >= 1.
support::Expected<FaultPlan> parse_fault_plan(const std::string &spec);

/// Deterministic fault oracle. decide() is const, thread-safe, and pure in
/// (seed, site, op_index, salt); next() additionally advances a per-site
/// operation counter (for call sites that are naturally sequential, like a
/// single device's simulated clock) and tallies what it injected.
class FaultInjector {
public:
  explicit FaultInjector(std::uint64_t seed, FaultPlan plan = {})
      : seed_(seed), plan_(plan) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const FaultPlan &plan() const { return plan_; }

  /// Counts of injected faults also land on this recorder as
  /// "resil.fault.<kind>" counters (non-owning; nullptr detaches).
  void attach_recorder(obs::TraceRecorder *recorder) { recorder_ = recorder; }

  /// Pure decision for operation `op_index` at `site`. `salt` decorrelates
  /// parallel decision streams (e.g. retry attempt number, dfg stage).
  [[nodiscard]] InjectedFault decide(FaultSite site, std::uint64_t op_index,
                                     std::uint64_t salt = 0) const;

  /// decide() at the site's running op counter, then advances it. Tallies
  /// injected faults.
  InjectedFault next(FaultSite site);

  /// Records an injected fault in the tallies (for callers using decide()
  /// directly, e.g. the dfg executor's index-keyed decisions). Thread-safe.
  void tally(InjectedFault fault);

  /// Total faults injected of one kind (via next()/tally()).
  [[nodiscard]] std::int64_t injected(InjectedFault fault) const;
  /// All non-zero tallies by fault name, for reports.
  [[nodiscard]] std::map<std::string, std::int64_t> injected_counts() const;
  /// Sum over all kinds.
  [[nodiscard]] std::int64_t injected_total() const;

private:
  /// Uniform [0,1) hash of (seed, site, op_index, salt).
  [[nodiscard]] double unit(FaultSite site, std::uint64_t op_index,
                            std::uint64_t salt) const;

  std::uint64_t seed_;
  FaultPlan plan_;
  obs::TraceRecorder *recorder_ = nullptr;
  std::atomic<std::uint64_t> op_counter_[kFaultSiteCount] = {};
  std::atomic<std::int64_t> injected_[kInjectedFaultCount] = {};
};

}  // namespace everest::platform
