// everest/platform/xrt.hpp
//
// XRT-like host runtime over the simulated devices (paper §III: "PCIe-
// attached FPGAs ... with Xilinx Runtime (XRT)"). The API mirrors the XRT
// buffer-object flow: allocate BOs, sync to device, launch kernels, sync
// back — against a deterministic simulated clock, so examples and benches
// measure reproducible device timelines.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hls/scheduler.hpp"
#include "obs/trace.hpp"
#include "platform/device.hpp"
#include "platform/fault_injector.hpp"
#include "support/expected.hpp"

namespace everest::platform {

/// Handle to a device buffer object.
struct BufferHandle {
  std::int64_t id = -1;
  [[nodiscard]] bool valid() const { return id >= 0; }
};

/// Cumulative device statistics.
struct DeviceStats {
  std::int64_t bytes_to_device = 0;
  std::int64_t bytes_from_device = 0;
  std::int64_t kernel_launches = 0;
  double transfer_us = 0.0;
  double compute_us = 0.0;
};

/// A simulated FPGA device with an XRT-flavored host API. All calls advance
/// the device-local simulated clock; `now_us()` exposes the timeline.
class Device {
public:
  explicit Device(DeviceSpec spec, double io_overhead_factor = 1.0)
      : spec_(std::move(spec)), io_overhead_(io_overhead_factor) {}

  [[nodiscard]] const DeviceSpec &spec() const { return spec_; }
  [[nodiscard]] double now_us() const { return clock_us_; }
  [[nodiscard]] const DeviceStats &stats() const { return stats_; }

  /// Attaches a trace recorder (non-owning; nullptr detaches): every DMA
  /// transfer and kernel execution then records a span on the device's
  /// simulated timeline (track = device name, categories "xrt.dma" /
  /// "xrt.kernel").
  void attach_recorder(obs::TraceRecorder *recorder) { recorder_ = recorder; }

  /// Attaches a fault injector (non-owning; nullptr detaches). DMA syncs,
  /// allocations, and kernel launches then consult it: injected faults fail
  /// the call with a retryable coded error (Unavailable) or stretch the
  /// kernel latency (KernelTimeout), all on the simulated clock, so faulted
  /// runs stay bit-reproducible.
  void attach_fault_injector(FaultInjector *injector) { faults_ = injector; }

  /// Allocates a buffer object; fails with ResourceExhausted (reporting
  /// requested vs. available bytes) when device memory is exhausted, or
  /// Unavailable when the fault injector flakes the allocation.
  support::Expected<BufferHandle> alloc(std::int64_t bytes);
  /// Frees a buffer object.
  support::Status free(BufferHandle handle);
  [[nodiscard]] std::int64_t allocated_bytes() const { return allocated_; }

  /// Host -> device sync (PCIe DMA or network transfer, per the link spec).
  /// An injected TransferError still advances the clock by the transfer time
  /// (the wire work happened) but fails with Unavailable and delivers no
  /// bytes.
  support::Status sync_to_device(BufferHandle handle);
  /// Device -> host sync.
  support::Status sync_from_device(BufferHandle handle);

  /// Programs a kernel (i.e. records its HLS report under a name). Fails if
  /// the combined area of programmed kernels exceeds the fabric. Re-loading
  /// an already-programmed name replaces it (the area of the old image is
  /// returned to the fabric first), so retried deployments are idempotent.
  support::Status load_kernel(const std::string &name,
                              const hls::KernelReport &report);
  /// Launches a programmed kernel; returns the kernel latency in us.
  /// `dataflow` selects the overlapped read/execute/write schedule.
  /// An injected KernelTimeout stretches the latency by the plan's
  /// multiplier (the kernel "hangs"). When `deadline_us` >= 0 a hung launch
  /// is abandoned at the deadline: the clock advances by exactly
  /// `deadline_us` and the call fails with DeadlineExceeded.
  support::Expected<double> run(const std::string &name, bool dataflow = false,
                                double deadline_us = -1.0);

  /// Advances the clock without device work (host-side think time).
  void host_wait_us(double us) { clock_us_ += us; }

private:
  double transfer_us(std::int64_t bytes) const {
    return spec_.link_seconds(bytes) * 1e6 * io_overhead_;
  }

  /// Records a span [clock_us_ - duration_us, clock_us_] on the device track.
  void trace(const char *name, const char *category, double duration_us,
             std::vector<std::pair<std::string, std::string>> args) const;

  DeviceSpec spec_;
  obs::TraceRecorder *recorder_ = nullptr;
  FaultInjector *faults_ = nullptr;
  double io_overhead_;
  double clock_us_ = 0.0;
  std::int64_t next_id_ = 0;
  std::int64_t allocated_ = 0;
  std::map<std::int64_t, std::int64_t> buffers_;  // id -> bytes
  std::map<std::string, hls::KernelReport> kernels_;
  hls::Resources programmed_;
  DeviceStats stats_;
};

}  // namespace everest::platform
