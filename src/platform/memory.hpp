// everest/platform/memory.hpp
//
// HBM pseudo-channel bandwidth model used by Olympus (paper §V-C, refs
// [24][25]): kernels/replicas are assigned channel sets ("lanes"); streams
// sharing a channel contend for its bandwidth; packing efficiency scales the
// useful fraction of each bus word.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/device.hpp"

namespace everest::platform {

/// One memory stream: a reader or writer bound to a set of pseudo-channels.
struct MemoryStream {
  std::int64_t bytes = 0;            // payload bytes the stream must move
  std::vector<int> channels;         // pseudo-channels it may use
  double packing_efficiency = 1.0;   // useful bits / transferred bits
};

/// Computes the time (seconds) until all streams complete, with fair sharing
/// of each channel among the streams bound to it. Uses progressive filling:
/// repeatedly advance to the next stream completion at current rates.
double contention_time_seconds(const std::vector<MemoryStream> &streams,
                               const MemorySpec &memory);

/// Effective aggregate bandwidth achieved by the streams (GB/s of payload).
double effective_bandwidth_gbps(const std::vector<MemoryStream> &streams,
                                const MemorySpec &memory);

/// Packing efficiency when `element_bits`-wide data is transported in
/// `bus_bits`-wide words: naive (one element per word) vs packed
/// (floor(bus/element) elements per word), ref [25] (Iris).
double naive_packing_efficiency(int element_bits, int bus_bits);
double packed_packing_efficiency(int element_bits, int bus_bits);

}  // namespace everest::platform
