#include "platform/fault_injector.hpp"

#include "support/rng.hpp"
#include "support/strings.hpp"

namespace everest::platform {

using support::Error;
using support::Expected;

const char *fault_name(InjectedFault fault) {
  switch (fault) {
    case InjectedFault::None: return "none";
    case InjectedFault::TransferError: return "transfer-error";
    case InjectedFault::AllocFlake: return "alloc-flake";
    case InjectedFault::KernelTimeout: return "kernel-timeout";
    case InjectedFault::LinkDrop: return "link-drop";
    case InjectedFault::LinkLatencySpike: return "link-latency-spike";
    case InjectedFault::NodeFault: return "node-fault";
    case InjectedFault::FoldFault: return "fold-fault";
  }
  return "none";
}

Expected<FaultPlan> parse_fault_plan(const std::string &spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const auto &field : support::split(spec, ',')) {
    auto kv = support::split(field, '=');
    if (kv.size() != 2)
      return Error::invalid_argument("fault plan: expected key=value, got '" +
                                     field + "'");
    char *end = nullptr;
    double value = std::strtod(kv[1].c_str(), &end);
    if (end == kv[1].c_str() || *end != '\0')
      return Error::invalid_argument("fault plan: bad number '" + kv[1] +
                                     "' for key '" + kv[0] + "'");
    const std::string &key = kv[0];
    bool is_rate = true;
    if (key == "transfer") plan.transfer_error_rate = value;
    else if (key == "alloc") plan.alloc_flake_rate = value;
    else if (key == "timeout") plan.kernel_timeout_rate = value;
    else if (key == "drop") plan.link_drop_rate = value;
    else if (key == "spike") plan.link_spike_rate = value;
    else if (key == "node") plan.node_fault_rate = value;
    else if (key == "fold") plan.fold_fault_rate = value;
    else if (key == "timeout-mult") {
      plan.kernel_timeout_multiplier = value;
      is_rate = false;
    } else if (key == "spike-mult") {
      plan.link_spike_multiplier = value;
      is_rate = false;
    } else {
      return Error::invalid_argument("fault plan: unknown key '" + key + "'");
    }
    if (is_rate && (value < 0.0 || value > 1.0))
      return Error::invalid_argument("fault plan: rate '" + key +
                                     "' must be in [0, 1], got " + kv[1]);
    if (!is_rate && value < 1.0)
      return Error::invalid_argument("fault plan: multiplier '" + key +
                                     "' must be >= 1, got " + kv[1]);
  }
  if (plan.link_drop_rate + plan.link_spike_rate > 1.0)
    return Error::invalid_argument(
        "fault plan: drop + spike rates must not exceed 1");
  return plan;
}

double FaultInjector::unit(FaultSite site, std::uint64_t op_index,
                           std::uint64_t salt) const {
  // One SplitMix64 step over a mixed key: pure in all four inputs, so the
  // decision stream is independent of call interleaving across sites and
  // threads.
  std::uint64_t key = seed_;
  key ^= (static_cast<std::uint64_t>(site) + 1) * 0x9e3779b97f4a7c15ULL;
  key ^= (op_index + 1) * 0xd1342543de82ef95ULL;
  key ^= (salt + 1) * 0xaf251af3b0f025b5ULL;
  support::SplitMix64 sm(key);
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

InjectedFault FaultInjector::decide(FaultSite site, std::uint64_t op_index,
                                    std::uint64_t salt) const {
  double u = unit(site, op_index, salt);
  switch (site) {
    case FaultSite::DmaToDevice:
    case FaultSite::DmaFromDevice:
      return u < plan_.transfer_error_rate ? InjectedFault::TransferError
                                           : InjectedFault::None;
    case FaultSite::Alloc:
      return u < plan_.alloc_flake_rate ? InjectedFault::AllocFlake
                                        : InjectedFault::None;
    case FaultSite::KernelLaunch:
      return u < plan_.kernel_timeout_rate ? InjectedFault::KernelTimeout
                                           : InjectedFault::None;
    case FaultSite::LinkSend:
      if (u < plan_.link_drop_rate) return InjectedFault::LinkDrop;
      if (u < plan_.link_drop_rate + plan_.link_spike_rate)
        return InjectedFault::LinkLatencySpike;
      return InjectedFault::None;
    case FaultSite::NodeInvoke:
      return u < plan_.node_fault_rate ? InjectedFault::NodeFault
                                       : InjectedFault::None;
    case FaultSite::FoldStep:
      return u < plan_.fold_fault_rate ? InjectedFault::FoldFault
                                       : InjectedFault::None;
  }
  return InjectedFault::None;
}

InjectedFault FaultInjector::next(FaultSite site) {
  std::uint64_t index =
      op_counter_[static_cast<int>(site)].fetch_add(1,
                                                    std::memory_order_relaxed);
  InjectedFault fault = decide(site, index);
  if (fault != InjectedFault::None) tally(fault);
  return fault;
}

void FaultInjector::tally(InjectedFault fault) {
  if (fault == InjectedFault::None) return;
  injected_[static_cast<int>(fault)].fetch_add(1, std::memory_order_relaxed);
  if (recorder_)
    recorder_->counter(std::string("resil.fault.") + fault_name(fault)).add(1);
}

std::int64_t FaultInjector::injected(InjectedFault fault) const {
  return injected_[static_cast<int>(fault)].load(std::memory_order_relaxed);
}

std::map<std::string, std::int64_t> FaultInjector::injected_counts() const {
  std::map<std::string, std::int64_t> counts;
  for (int k = 1; k < kInjectedFaultCount; ++k) {
    std::int64_t n = injected_[k].load(std::memory_order_relaxed);
    if (n > 0) counts[fault_name(static_cast<InjectedFault>(k))] = n;
  }
  return counts;
}

std::int64_t FaultInjector::injected_total() const {
  std::int64_t total = 0;
  for (int k = 1; k < kInjectedFaultCount; ++k)
    total += injected_[k].load(std::memory_order_relaxed);
  return total;
}

}  // namespace everest::platform
