#include "platform/network.hpp"

#include <cmath>

namespace everest::platform {

double message_seconds(const NetworkSpec &net, std::int64_t bytes) {
  if (bytes <= 0) return net.latency_us * 1e-6;
  double packets = std::ceil(static_cast<double>(bytes) / net.mtu_bytes);
  double wire = static_cast<double>(bytes) / (net.gbps * 1e9 / 8.0);
  return net.latency_us * 1e-6 + packets * net.per_packet_us * 1e-6 + wire;
}

support::Status ZrlmpiCommunicator::check_rank(int rank) const {
  if (rank < 0 || rank >= world_size_)
    return support::Status::failure("zrlmpi: rank " + std::to_string(rank) +
                                        " out of range [0, " +
                                        std::to_string(world_size_) + ")",
                                    support::ErrorCode::InvalidArgument);
  return support::Status::ok();
}

support::Status ZrlmpiCommunicator::send(int from, int to, std::int64_t bytes) {
  if (auto s = check_rank(from); !s.is_ok()) return s;
  if (auto s = check_rank(to); !s.is_ok()) return s;
  if (from == to)
    return support::Status::failure("zrlmpi: self-send is not allowed",
                                    support::ErrorCode::InvalidArgument);
  double us = message_seconds(net_, bytes) * 1e6;
  InjectedFault fault = faults_ ? faults_->next(FaultSite::LinkSend)
                                : InjectedFault::None;
  if (fault == InjectedFault::LinkLatencySpike)
    us *= faults_->plan().link_spike_multiplier;
  clock_us_ += us;
  if (fault == InjectedFault::LinkDrop) {
    // The message burned its wire time but never arrived; the synchronous
    // sender observes the loss as a timeout and reports Unavailable.
    ++messages_lost_;
    if (recorder_) {
      obs::TraceEvent event;
      event.name = std::to_string(from) + " -> " + std::to_string(to);
      event.category = "zrlmpi.fault";
      event.track = "zrlmpi";
      event.start_us = clock_us_ - us;
      event.duration_us = us;
      event.args = {{"bytes", std::to_string(bytes)}, {"fault", "link-drop"}};
      recorder_->record(std::move(event));
    }
    return support::Status(support::Error::unavailable(
        "zrlmpi: message " + std::to_string(from) + " -> " +
        std::to_string(to) + " lost (injected link-drop)"));
  }
  bytes_moved_ += bytes;
  ++messages_;
  if (recorder_) {
    obs::TraceEvent event;
    event.name = std::to_string(from) + " -> " + std::to_string(to);
    event.category = fault == InjectedFault::LinkLatencySpike
                         ? "zrlmpi.fault"
                         : "zrlmpi.send";
    event.track = "zrlmpi";
    event.start_us = clock_us_ - us;
    event.duration_us = us;
    event.args = {{"bytes", std::to_string(bytes)}};
    if (fault == InjectedFault::LinkLatencySpike)
      event.args.emplace_back("fault", "link-latency-spike");
    recorder_->record(std::move(event));
  }
  return support::Status::ok();
}

support::Status ZrlmpiCommunicator::broadcast(int root, std::int64_t bytes) {
  if (auto s = check_rank(root); !s.is_ok()) return s;
  for (int r = 0; r < world_size_; ++r) {
    if (r == root) continue;
    if (auto s = send(root, r, bytes); !s.is_ok()) return s;
  }
  return support::Status::ok();
}

support::Status ZrlmpiCommunicator::gather(int root,
                                           std::int64_t bytes_per_rank) {
  if (auto s = check_rank(root); !s.is_ok()) return s;
  for (int r = 0; r < world_size_; ++r) {
    if (r == root) continue;
    if (auto s = send(r, root, bytes_per_rank); !s.is_ok()) return s;
  }
  return support::Status::ok();
}

support::Status ZrlmpiCommunicator::scatter(int root,
                                            std::int64_t bytes_per_rank) {
  return broadcast(root, bytes_per_rank);
}

}  // namespace everest::platform
