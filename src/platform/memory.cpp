#include "platform/memory.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace everest::platform {

double contention_time_seconds(const std::vector<MemoryStream> &streams,
                               const MemorySpec &memory) {
  // hbm_gbps_per_channel is GB/s of payload; the filling loop works in bits.
  const double channel_bps = memory.hbm_gbps_per_channel * 1e9 * 8.0;
  struct State {
    double remaining_bits;
    bool done;
  };
  std::vector<State> state;
  state.reserve(streams.size());
  for (const auto &s : streams) {
    double payload_bits = static_cast<double>(s.bytes) * 8.0;
    double wire_bits =
        payload_bits / std::max(s.packing_efficiency, 1e-9);
    state.push_back({wire_bits, s.bytes <= 0});
  }

  double now = 0.0;
  for (std::size_t guard = 0; guard < streams.size() + 1; ++guard) {
    // Current rate per stream: sum over its channels of the channel rate
    // divided by the number of active streams on that channel.
    std::vector<int> sharers(static_cast<std::size_t>(memory.hbm_channels), 0);
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (state[i].done) continue;
      for (int c : streams[i].channels) {
        if (c >= 0 && c < memory.hbm_channels) ++sharers[static_cast<std::size_t>(c)];
      }
    }
    std::vector<double> rate(streams.size(), 0.0);
    bool any_active = false;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (state[i].done) continue;
      any_active = true;
      for (int c : streams[i].channels) {
        if (c >= 0 && c < memory.hbm_channels && sharers[static_cast<std::size_t>(c)] > 0)
          rate[i] += channel_bps / sharers[static_cast<std::size_t>(c)];
      }
    }
    if (!any_active) break;

    // Advance to the next completion.
    double dt = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (state[i].done || rate[i] <= 0.0) continue;
      dt = std::min(dt, state[i].remaining_bits / rate[i]);
    }
    if (!std::isfinite(dt)) break;  // stalled streams (no channels)
    now += dt;
    for (std::size_t i = 0; i < streams.size(); ++i) {
      if (state[i].done) continue;
      state[i].remaining_bits -= rate[i] * dt;
      if (state[i].remaining_bits <= 1e-6) state[i].done = true;
    }
  }
  return now;
}

double effective_bandwidth_gbps(const std::vector<MemoryStream> &streams,
                                const MemorySpec &memory) {
  double total_bytes = 0.0;
  for (const auto &s : streams) total_bytes += static_cast<double>(s.bytes);
  double t = contention_time_seconds(streams, memory);
  return t > 0.0 ? total_bytes / t / 1e9 : 0.0;
}

double naive_packing_efficiency(int element_bits, int bus_bits) {
  if (element_bits <= 0 || bus_bits <= 0) return 1.0;
  // One element per bus beat regardless of width.
  return std::min(1.0, static_cast<double>(element_bits) / bus_bits);
}

double packed_packing_efficiency(int element_bits, int bus_bits) {
  if (element_bits <= 0 || bus_bits <= 0) return 1.0;
  int per_word = std::max(1, bus_bits / element_bits);
  return std::min(1.0, static_cast<double>(per_word * element_bits) / bus_bits);
}

}  // namespace everest::platform
