// everest/platform/device.hpp
//
// Models of the EVEREST target devices (paper §III): PCIe-attached AMD Alveo
// cards (u55c, u280) with HBM2 and network-attached IBM cloudFPGA nodes on a
// 10 Gb/s TCP/UDP fabric. Capacities follow the public datasheets; timing is
// cycle-approximate and deterministic so experiments are reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "hls/resources.hpp"

namespace everest::platform {

/// External memory subsystem parameters.
struct MemorySpec {
  int hbm_channels = 0;            // HBM2 pseudo-channels
  double hbm_gbps_per_channel = 0; // per-pseudo-channel bandwidth
  double ddr_gbps = 0;             // DDR4 aggregate bandwidth
  std::int64_t hbm_bytes = 0;
  std::int64_t ddr_bytes = 0;
};

/// Host attachment.
struct LinkSpec {
  enum class Kind { Pcie, Network } kind = Kind::Pcie;
  double gbps = 12.0;          // effective payload bandwidth
  double latency_us = 5.0;     // per-transfer setup / round-trip component
};

/// One FPGA device.
struct DeviceSpec {
  std::string name;
  double clock_mhz = 300.0;
  hls::Resources capacity;  // total fabric resources
  MemorySpec memory;
  LinkSpec link;

  /// Seconds to move `bytes` across the host link (one direction).
  [[nodiscard]] double link_seconds(std::int64_t bytes) const {
    return link.latency_us * 1e-6 +
           static_cast<double>(bytes) / (link.gbps * 1e9 / 8.0);
  }
};

/// AMD Alveo u55c: 1.3M LUT-class fabric, 16 GB HBM2 (32 pseudo-channels,
/// ~460 GB/s aggregate), PCIe Gen3 x16.
DeviceSpec alveo_u55c();

/// AMD Alveo u280: similar fabric, 8 GB HBM2 + 32 GB DDR4.
DeviceSpec alveo_u280();

/// IBM cloudFPGA: mid-size fabric, DDR only, network-attached at 10 Gb/s
/// TCP/UDP (no host PCIe; ~30 us message latency).
DeviceSpec cloudfpga();

/// True if `required` fits inside `capacity`.
bool fits(const hls::Resources &required, const hls::Resources &capacity);

/// Highest utilization fraction across the four resource classes.
double utilization(const hls::Resources &required,
                   const hls::Resources &capacity);

}  // namespace everest::platform
