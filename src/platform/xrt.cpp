#include "platform/xrt.hpp"

namespace everest::platform {

using support::Error;
using support::Expected;
using support::Status;

void Device::trace(const char *name, const char *category, double duration_us,
                   std::vector<std::pair<std::string, std::string>> args) const {
  if (!recorder_) return;
  obs::TraceEvent event;
  event.name = name;
  event.category = category;
  event.track = spec_.name;
  event.start_us = clock_us_ - duration_us;
  event.duration_us = duration_us;
  event.args = std::move(args);
  recorder_->record(std::move(event));
}

Expected<BufferHandle> Device::alloc(std::int64_t bytes) {
  if (bytes <= 0)
    return Error::invalid_argument("xrt: buffer size must be positive");
  std::int64_t capacity = spec_.memory.hbm_bytes + spec_.memory.ddr_bytes;
  if (allocated_ + bytes > capacity)
    return Error::resource_exhausted("xrt: out of device memory on " +
                                     spec_.name);
  BufferHandle h{next_id_++};
  buffers_[h.id] = bytes;
  allocated_ += bytes;
  if (recorder_)
    recorder_->gauge("xrt." + spec_.name + ".allocated_bytes")
        .set(static_cast<double>(allocated_));
  return h;
}

Status Device::free(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end()) return Status::failure("xrt: invalid buffer handle");
  allocated_ -= it->second;
  buffers_.erase(it);
  return Status::ok();
}

Status Device::sync_to_device(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end())
    return Status::failure("xrt: invalid buffer handle",
                           support::ErrorCode::NotFound);
  double us = transfer_us(it->second);
  clock_us_ += us;
  stats_.transfer_us += us;
  stats_.bytes_to_device += it->second;
  trace("dma-to-device", "xrt.dma", us,
        {{"bytes", std::to_string(it->second)}});
  return Status::ok();
}

Status Device::sync_from_device(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end())
    return Status::failure("xrt: invalid buffer handle",
                           support::ErrorCode::NotFound);
  double us = transfer_us(it->second);
  clock_us_ += us;
  stats_.transfer_us += us;
  stats_.bytes_from_device += it->second;
  trace("dma-from-device", "xrt.dma", us,
        {{"bytes", std::to_string(it->second)}});
  return Status::ok();
}

Status Device::load_kernel(const std::string &name,
                           const hls::KernelReport &report) {
  hls::Resources combined = programmed_;
  combined += report.area;
  if (!fits(combined, spec_.capacity)) {
    return Status::failure("xrt: kernel '" + name + "' does not fit on " +
                           spec_.name + " (utilization " +
                           std::to_string(utilization(combined, spec_.capacity)) +
                           ")",
                           support::ErrorCode::ResourceExhausted);
  }
  programmed_ = combined;
  kernels_[name] = report;
  return Status::ok();
}

Expected<double> Device::run(const std::string &name, bool dataflow) {
  auto it = kernels_.find(name);
  if (it == kernels_.end())
    return Error::not_found("xrt: kernel '" + name + "' not programmed");
  // Kernel clock may differ from the report's assumed clock; rescale.
  double cycles = static_cast<double>(dataflow ? it->second.dataflow_cycles
                                               : it->second.total_cycles);
  double us = cycles / spec_.clock_mhz;
  clock_us_ += us;
  stats_.compute_us += us;
  ++stats_.kernel_launches;
  trace(name.c_str(), "xrt.kernel", us,
        {{"dataflow", dataflow ? "true" : "false"},
         {"cycles", std::to_string(static_cast<std::int64_t>(cycles))}});
  if (recorder_) recorder_->counter("xrt.kernel_launches").add(1);
  return us;
}

}  // namespace everest::platform
