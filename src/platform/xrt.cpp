#include "platform/xrt.hpp"

namespace everest::platform {

using support::Error;
using support::Expected;
using support::Status;

void Device::trace(const char *name, const char *category, double duration_us,
                   std::vector<std::pair<std::string, std::string>> args) const {
  if (!recorder_) return;
  obs::TraceEvent event;
  event.name = name;
  event.category = category;
  event.track = spec_.name;
  event.start_us = clock_us_ - duration_us;
  event.duration_us = duration_us;
  event.args = std::move(args);
  recorder_->record(std::move(event));
}

Expected<BufferHandle> Device::alloc(std::int64_t bytes) {
  if (bytes <= 0)
    return Error::invalid_argument("xrt: buffer size must be positive");
  std::int64_t capacity = spec_.memory.hbm_bytes + spec_.memory.ddr_bytes;
  if (allocated_ + bytes > capacity) {
    return Error::resource_exhausted(
        "xrt: out of device memory on " + spec_.name + ": requested " +
        std::to_string(bytes) + " bytes, " +
        std::to_string(capacity - allocated_) + " of " +
        std::to_string(capacity) + " available");
  }
  if (faults_ && faults_->next(FaultSite::Alloc) == InjectedFault::AllocFlake)
    return Error::unavailable("xrt: transient allocation failure on " +
                              spec_.name + " (injected alloc-flake)");
  BufferHandle h{next_id_++};
  buffers_[h.id] = bytes;
  allocated_ += bytes;
  if (recorder_)
    recorder_->gauge("xrt." + spec_.name + ".allocated_bytes")
        .set(static_cast<double>(allocated_));
  return h;
}

Status Device::free(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end())
    return Status::failure("xrt: invalid buffer handle " +
                               std::to_string(handle.id) + " on " + spec_.name,
                           support::ErrorCode::NotFound);
  allocated_ -= it->second;
  buffers_.erase(it);
  return Status::ok();
}

Status Device::sync_to_device(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end())
    return Status::failure("xrt: invalid buffer handle " +
                               std::to_string(handle.id) + " on " + spec_.name,
                           support::ErrorCode::NotFound);
  double us = transfer_us(it->second);
  clock_us_ += us;
  stats_.transfer_us += us;
  if (faults_ &&
      faults_->next(FaultSite::DmaToDevice) == InjectedFault::TransferError) {
    trace("dma-to-device", "xrt.fault", us,
          {{"bytes", std::to_string(it->second)},
           {"fault", "transfer-error"}});
    return Status(Error::unavailable("xrt: DMA to device failed on " +
                                     spec_.name + " (injected transfer-error)"));
  }
  stats_.bytes_to_device += it->second;
  trace("dma-to-device", "xrt.dma", us,
        {{"bytes", std::to_string(it->second)}});
  return Status::ok();
}

Status Device::sync_from_device(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end())
    return Status::failure("xrt: invalid buffer handle " +
                               std::to_string(handle.id) + " on " + spec_.name,
                           support::ErrorCode::NotFound);
  double us = transfer_us(it->second);
  clock_us_ += us;
  stats_.transfer_us += us;
  if (faults_ &&
      faults_->next(FaultSite::DmaFromDevice) == InjectedFault::TransferError) {
    trace("dma-from-device", "xrt.fault", us,
          {{"bytes", std::to_string(it->second)},
           {"fault", "transfer-error"}});
    return Status(Error::unavailable("xrt: DMA from device failed on " +
                                     spec_.name + " (injected transfer-error)"));
  }
  stats_.bytes_from_device += it->second;
  trace("dma-from-device", "xrt.dma", us,
        {{"bytes", std::to_string(it->second)}});
  return Status::ok();
}

Status Device::load_kernel(const std::string &name,
                           const hls::KernelReport &report) {
  hls::Resources combined = programmed_;
  // Re-programming an existing name frees its old area first, so retried
  // deployments do not accumulate phantom fabric usage.
  auto existing = kernels_.find(name);
  if (existing != kernels_.end()) {
    combined.luts -= existing->second.area.luts;
    combined.ffs -= existing->second.area.ffs;
    combined.dsps -= existing->second.area.dsps;
    combined.brams -= existing->second.area.brams;
  }
  combined += report.area;
  if (!fits(combined, spec_.capacity)) {
    return Status::failure("xrt: kernel '" + name + "' does not fit on " +
                           spec_.name + " (utilization " +
                           std::to_string(utilization(combined, spec_.capacity)) +
                           ")",
                           support::ErrorCode::ResourceExhausted);
  }
  programmed_ = combined;
  kernels_[name] = report;
  return Status::ok();
}

Expected<double> Device::run(const std::string &name, bool dataflow,
                             double deadline_us) {
  auto it = kernels_.find(name);
  if (it == kernels_.end())
    return Error::not_found("xrt: kernel '" + name + "' not programmed on " +
                            spec_.name);
  // Kernel clock may differ from the report's assumed clock; rescale.
  double cycles = static_cast<double>(dataflow ? it->second.dataflow_cycles
                                               : it->second.total_cycles);
  double us = cycles / spec_.clock_mhz;
  bool hung = faults_ && faults_->next(FaultSite::KernelLaunch) ==
                             InjectedFault::KernelTimeout;
  if (hung) us *= faults_->plan().kernel_timeout_multiplier;
  if (deadline_us >= 0.0 && us > deadline_us) {
    // The host watchdog abandons the wait at the deadline: the launch is
    // charged exactly deadline_us of simulated time and reported as hung.
    clock_us_ += deadline_us;
    stats_.compute_us += deadline_us;
    ++stats_.kernel_launches;
    trace(name.c_str(), "xrt.fault", deadline_us,
          {{"fault", hung ? "kernel-timeout" : "deadline-exceeded"},
           {"needed_us", std::to_string(us)}});
    return Error::deadline_exceeded(
        "xrt: kernel '" + name + "' on " + spec_.name + " needed " +
        std::to_string(us) + " us, past the " + std::to_string(deadline_us) +
        " us deadline" + (hung ? " (injected kernel-timeout)" : ""));
  }
  clock_us_ += us;
  stats_.compute_us += us;
  ++stats_.kernel_launches;
  trace(name.c_str(), hung ? "xrt.fault" : "xrt.kernel", us,
        {{"dataflow", dataflow ? "true" : "false"},
         {"cycles", std::to_string(static_cast<std::int64_t>(cycles))}});
  if (recorder_) recorder_->counter("xrt.kernel_launches").add(1);
  return us;
}

}  // namespace everest::platform
