// everest/platform/network.hpp
//
// Network model for IBM cloudFPGA nodes (paper §III: "Network-attached FPGAs
// directly connected to a 10Gbps TCP/UDP network stack") and the ZRLMPI
// unified messaging layer (ref [21]) used to generate hardware-agnostic
// synchronous communication routines (§V-C).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "platform/fault_injector.hpp"
#include "support/expected.hpp"

namespace everest::platform {

/// Simple deterministic model of the 10 Gb data-center fabric.
struct NetworkSpec {
  double gbps = 10.0;
  double latency_us = 30.0;      // one-way message latency
  double per_packet_us = 0.6;    // per-MTU processing overhead
  int mtu_bytes = 1408;          // cloudFPGA UDP payload per packet
};

/// Seconds to deliver one message of `bytes` over the fabric.
double message_seconds(const NetworkSpec &net, std::int64_t bytes);

/// A ZRLMPI communicator over `world_size` ranks (rank 0 is the host; the
/// rest are network-attached FPGA nodes). Calls advance a shared simulated
/// clock and tally traffic, mirroring the synchronous MPI-like semantics.
class ZrlmpiCommunicator {
public:
  explicit ZrlmpiCommunicator(int world_size, NetworkSpec net = {})
      : world_size_(world_size), net_(net) {}

  [[nodiscard]] int world_size() const { return world_size_; }
  [[nodiscard]] double now_us() const { return clock_us_; }
  [[nodiscard]] std::int64_t bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] std::int64_t messages() const { return messages_; }
  [[nodiscard]] std::int64_t messages_lost() const { return messages_lost_; }

  /// Attaches a fault injector (non-owning; nullptr detaches): sends then
  /// flap deterministically — a LinkDrop loses the message (the sender still
  /// burns the wire time and fails with Unavailable), a LinkLatencySpike
  /// delivers at spike-multiplied latency.
  void attach_fault_injector(FaultInjector *injector) { faults_ = injector; }
  /// Attaches a trace recorder: every delivered message records a span on
  /// the "zrlmpi" track of the shared simulated clock.
  void attach_recorder(obs::TraceRecorder *recorder) { recorder_ = recorder; }

  /// Point-to-point send (synchronous: completes when delivered).
  support::Status send(int from, int to, std::int64_t bytes);
  /// Broadcast from `root` to all other ranks (sequential sends on the
  /// root's 10G link — the shell has a single network port).
  support::Status broadcast(int root, std::int64_t bytes);
  /// Gather to `root` from all other ranks.
  support::Status gather(int root, std::int64_t bytes_per_rank);
  /// Scatter equal chunks from root.
  support::Status scatter(int root, std::int64_t bytes_per_rank);

private:
  support::Status check_rank(int rank) const;

  int world_size_;
  NetworkSpec net_;
  FaultInjector *faults_ = nullptr;
  obs::TraceRecorder *recorder_ = nullptr;
  double clock_us_ = 0.0;
  std::int64_t bytes_moved_ = 0;
  std::int64_t messages_ = 0;
  std::int64_t messages_lost_ = 0;
};

}  // namespace everest::platform
