#include "olympus/olympus.hpp"

#include <algorithm>
#include <cmath>

#include "ir/builder.hpp"

namespace everest::olympus {

namespace {

using ir::Attribute;
using ir::Operation;
using ir::Type;
using ir::Value;
using support::Error;
using support::Expected;

}  // namespace

Expected<SystemEstimate> SystemGenerator::estimate(
    const hls::KernelReport &kernel, const Options &options) const {
  if (options.replicas < 1)
    return Error::make("olympus: replicas must be >= 1");
  if (device_.memory.hbm_channels <= 0 && device_.memory.ddr_gbps <= 0.0)
    return Error::make("olympus: device has no external memory model");

  SystemEstimate est;
  est.replicas = options.replicas;

  // --- Compute side: replicas split the iteration space evenly.
  double kernel_cycles = static_cast<double>(options.dataflow_pipelining
                                                 ? kernel.dataflow_cycles
                                                 : kernel.total_cycles);
  est.compute_us = kernel_cycles / options.replicas / device_.clock_mhz;

  // --- Memory side: lanes. Each replica gets a disjoint slice of the HBM
  // pseudo-channels; leftover replicas share (contention handles it).
  std::int64_t traffic = kernel.input_bytes + kernel.output_bytes;
  est.packing_efficiency =
      options.pack_data
          ? platform::packed_packing_efficiency(options.element_bits,
                                                options.bus_bits)
          : platform::naive_packing_efficiency(options.element_bits,
                                               options.bus_bits);

  if (device_.memory.hbm_channels > 0) {
    int channels = device_.memory.hbm_channels;
    est.channels_per_replica = std::max(1, channels / options.replicas);
    std::vector<platform::MemoryStream> streams;
    for (int r = 0; r < options.replicas; ++r) {
      platform::MemoryStream s;
      s.bytes = traffic / options.replicas;
      s.packing_efficiency = est.packing_efficiency;
      int base = (r * est.channels_per_replica) % channels;
      for (int c = 0; c < est.channels_per_replica; ++c)
        s.channels.push_back((base + c) % channels);
      streams.push_back(std::move(s));
    }
    est.memory_us =
        platform::contention_time_seconds(streams, device_.memory) * 1e6;
  } else {
    double wire_bytes =
        static_cast<double>(traffic) / std::max(est.packing_efficiency, 1e-9);
    est.memory_us = wire_bytes / (device_.memory.ddr_gbps * 1e9) * 1e6;
  }
  if (est.memory_us > 0.0)
    est.effective_bandwidth_gbps =
        static_cast<double>(traffic) / (est.memory_us * 1e-6) / 1e9;

  // --- Composition: double buffering + dataflow overlap memory with compute;
  // otherwise the phases serialize per tile.
  est.tiles = std::max<std::int64_t>(
      1, (kernel.input_bytes + options.plm_tile_bytes - 1) /
             options.plm_tile_bytes);
  if (options.double_buffering && options.dataflow_pipelining) {
    double fill = est.tiles > 0 ? est.memory_us / static_cast<double>(est.tiles)
                                : 0.0;
    est.total_us = std::max(est.compute_us, est.memory_us) + fill;
  } else if (options.double_buffering) {
    // Transfers overlap each other but compute waits per tile boundary.
    est.total_us = std::max(est.compute_us, est.memory_us) +
                   est.memory_us / std::max<double>(1.0, static_cast<double>(est.tiles));
  } else {
    est.total_us = est.compute_us + est.memory_us;
  }

  // --- Area: replicated datapaths + PLMs (double buffering doubles them).
  est.area = kernel.area * options.replicas;
  std::int64_t plm_bytes = options.plm_tile_bytes *
                           (options.double_buffering ? 2 : 1);
  est.area.brams += hls::brams_for_bytes(plm_bytes) * options.replicas;
  est.fits = platform::fits(est.area, device_.capacity);
  est.utilization = platform::utilization(est.area, device_.capacity);
  return est;
}

Expected<std::shared_ptr<ir::Module>> SystemGenerator::generate_ir(
    const hls::KernelReport &kernel, const Options &options) const {
  auto est = estimate(kernel, options);
  if (!est) return est.error();

  auto module = std::make_shared<ir::Module>();
  Operation *system =
      Operation::create(module->arena(), ir::Symbol("olympus.system"), {}, {},
                        {{"sym_name", Attribute(kernel.name + "_system")},
                         {"platform", Attribute(device_.name)}},
                        1);
  ir::Block &body = system->region(0).add_block();
  module->body().attach(system);
  ir::OpBuilder b(&body);

  Value *hbm = b.create_value(
      "olympus.memory", {}, Type::custom("olympus", "memory"),
      {{"kind", Attribute(device_.memory.hbm_channels > 0 ? "hbm" : "ddr")},
       {"channels", Attribute(std::int64_t{device_.memory.hbm_channels})}});

  Value *bus = b.create_value(
      "olympus.bus", {}, Type::custom("olympus", "bus"),
      {{"width_bits", Attribute(std::int64_t{options.bus_bits})},
       {"lanes", Attribute(std::int64_t{options.replicas})},
       {"packed", Attribute(options.pack_data)}});
  b.create("olympus.bind", {bus, hbm}, {},
           {{"port", Attribute("mem")}, {"direction", Attribute("readwrite")}});

  for (int r = 0; r < options.replicas; ++r) {
    std::string suffix = "_r" + std::to_string(r);
    Value *k = b.create_value(
        "olympus.kernel", {}, Type::custom("olympus", "kernel"),
        {{"name", Attribute(kernel.name + suffix)},
         {"replicas", Attribute(std::int64_t{1})},
         {"lane", Attribute(std::int64_t{r})},
         {"cycles", Attribute(kernel.total_cycles)}});
    Value *plm_in = b.create_value(
        "olympus.plm", {}, Type::custom("olympus", "plm"),
        {{"name", Attribute("plm_in" + suffix)},
         {"bytes", Attribute(options.plm_tile_bytes)},
         {"banks", Attribute(std::int64_t{2})},
         {"double_buffer", Attribute(options.double_buffering)}});
    Value *plm_out = b.create_value(
        "olympus.plm", {}, Type::custom("olympus", "plm"),
        {{"name", Attribute("plm_out" + suffix)},
         {"bytes", Attribute(options.plm_tile_bytes)},
         {"banks", Attribute(std::int64_t{2})},
         {"double_buffer", Attribute(options.double_buffering)}});
    b.create("olympus.bind", {k, plm_in}, {},
             {{"port", Attribute("in")}, {"direction", Attribute("read")}});
    b.create("olympus.bind", {k, plm_out}, {},
             {{"port", Attribute("out")}, {"direction", Attribute("write")}});
    b.create("olympus.bind", {plm_in, bus}, {},
             {{"port", Attribute("fill")}, {"direction", Attribute("read")}});
    b.create("olympus.bind", {plm_out, bus}, {},
             {{"port", Attribute("drain")}, {"direction", Attribute("write")}});
  }

  b.create("olympus.host_transfer", {}, {},
           {{"direction", Attribute("to_device")},
            {"bytes", Attribute(kernel.input_bytes)}});
  b.create("olympus.host_transfer", {}, {},
           {{"direction", Attribute("from_device")},
            {"bytes", Attribute(kernel.output_bytes)}});
  return module;
}

Expected<double> SystemGenerator::execute_on(platform::Device &dev,
                                             const hls::KernelReport &kernel,
                                             const Options &options) const {
  auto est = estimate(kernel, options);
  if (!est) return est.error();
  if (!est->fits)
    return Error::make("olympus: configuration does not fit on " +
                       device_.name);

  // Program an adjusted kernel whose cycle count reflects the generated
  // system (replication + memory overlap already folded in).
  hls::KernelReport system_kernel = kernel;
  system_kernel.name = kernel.name + "_system";
  system_kernel.area = est->area;
  system_kernel.total_cycles = static_cast<std::int64_t>(
      std::ceil(est->total_us * dev.spec().clock_mhz));
  system_kernel.dataflow_cycles = system_kernel.total_cycles;
  // Error codes propagate unchanged (a transient DMA fault must stay
  // retryable), and buffers are released on every path so a retried
  // deployment starts from a clean device.
  if (auto s = dev.load_kernel(system_kernel.name, system_kernel); !s.is_ok())
    return s.error();

  double start = dev.now_us();
  auto in = dev.alloc(std::max<std::int64_t>(kernel.input_bytes, 1));
  if (!in) return in.error();
  auto out = dev.alloc(std::max<std::int64_t>(kernel.output_bytes, 1));
  if (!out) {
    (void)dev.free(*in);
    return out.error();
  }
  auto release = [&] {
    (void)dev.free(*in);
    (void)dev.free(*out);
  };
  if (auto s = dev.sync_to_device(*in); !s.is_ok()) {
    release();
    return s.error();
  }
  auto run = dev.run(system_kernel.name);
  if (!run) {
    release();
    return run;
  }
  if (auto s = dev.sync_from_device(*out); !s.is_ok()) {
    release();
    return s.error();
  }
  release();
  return dev.now_us() - start;
}

}  // namespace everest::olympus
