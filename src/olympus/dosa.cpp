#include "olympus/dosa.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace everest::olympus::dosa {

using support::Error;
using support::Expected;

namespace {

/// Shape bookkeeping mirrors frontend::run_onnx without touching data.
using Shape = numerics::Shape;

std::int64_t elems(const Shape &s) { return numerics::num_elements(s); }

/// Sizes the layer engine: DSP-parallel MAC array with control overhead.
hls::Resources engine_area(double macs, std::int64_t resident_bytes) {
  hls::Resources area;
  auto dsps = static_cast<std::int64_t>(
      std::clamp(std::ceil(macs / 2048.0), 4.0, 96.0));
  area.dsps = dsps;
  area.luts = 3000 + dsps * 120;
  area.ffs = 4000 + dsps * 160;
  area.brams = hls::brams_for_bytes(std::max<std::int64_t>(resident_bytes, 1));
  return area;
}

}  // namespace

Expected<std::vector<LayerCost>> analyze_model(
    const frontend::OnnxModel &model) {
  std::map<std::string, Shape> shapes;
  for (const auto &in : model.inputs) shapes[in.name] = in.shape;
  for (const auto &[name, tensor] : model.initializers)
    shapes[name] = tensor.shape();

  auto weight_bytes_of = [&](const frontend::OnnxNode &node) {
    std::int64_t bytes = 0;
    for (const auto &input : node.inputs) {
      auto it = model.initializers.find(input);
      if (it != model.initializers.end()) bytes += it->second.size() * 8;
    }
    return bytes;
  };

  std::vector<LayerCost> layers;
  for (const auto &node : model.nodes) {
    auto shape_of = [&](std::size_t i) -> Expected<Shape> {
      auto it = shapes.find(node.inputs.at(i));
      if (it == shapes.end())
        return Error::make("dosa: unknown tensor '" + node.inputs.at(i) + "'");
      return it->second;
    };

    LayerCost cost;
    cost.name = node.name;
    cost.op = node.op;
    Shape out;

    if (node.op == "Conv1D") {
      auto x = shape_of(0), w = shape_of(1);
      if (!x) return x.error();
      if (!w) return w.error();
      std::int64_t co = (*w)[0], ci = (*w)[1], k = (*w)[2], len = (*x)[1];
      out = {co, len};
      cost.macs = static_cast<double>(co * len * ci * k);
    } else if (node.op == "Relu" || node.op == "Sigmoid") {
      auto x = shape_of(0);
      if (!x) return x.error();
      out = *x;
      cost.macs = static_cast<double>(elems(out));
    } else if (node.op == "MaxPool1D") {
      auto x = shape_of(0);
      if (!x) return x.error();
      auto window = static_cast<std::int64_t>(
          node.attrs.count("window") ? node.attrs.at("window") : 2);
      out = {(*x)[0], (*x)[1] / window};
      cost.macs = static_cast<double>(elems(*x));
    } else if (node.op == "Flatten") {
      auto x = shape_of(0);
      if (!x) return x.error();
      out = {elems(*x)};
      cost.macs = 0.0;
    } else if (node.op == "Gemm") {
      auto w = shape_of(1);
      if (!w) return w.error();
      out = {(*w)[0]};
      cost.macs = static_cast<double>((*w)[0] * (*w)[1]);
    } else if (node.op == "Add") {
      auto x = shape_of(0);
      if (!x) return x.error();
      out = *x;
      cost.macs = static_cast<double>(elems(out));
    } else {
      return Error::make("dosa: unsupported op '" + node.op + "'");
    }

    cost.weight_bytes = weight_bytes_of(node);
    cost.activation_bytes = elems(out) * 8;
    cost.area = engine_area(cost.macs, cost.weight_bytes + cost.activation_bytes);
    shapes[node.output] = out;
    layers.push_back(std::move(cost));
  }
  if (layers.empty()) return Error::make("dosa: model has no layers");
  return layers;
}

Expected<Plan> partition(const std::vector<LayerCost> &layers, int nodes,
                         const platform::DeviceSpec &device,
                         const platform::NetworkSpec &network) {
  if (nodes < 1) return Error::make("dosa: nodes must be >= 1");
  auto n = static_cast<int>(layers.size());
  int k = std::min(nodes, n);

  auto layer_us = [&](std::size_t i) {
    const auto &l = layers[i];
    double dsps = std::max<double>(1.0, static_cast<double>(l.area.dsps));
    return l.macs / (dsps * device.clock_mhz);  // 1 MAC per DSP per cycle
  };

  // Linear partition DP: minimize the maximum stage compute time over k
  // contiguous stages.
  std::vector<double> prefix(static_cast<std::size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i)
    prefix[static_cast<std::size_t>(i) + 1] =
        prefix[static_cast<std::size_t>(i)] + layer_us(static_cast<std::size_t>(i));
  auto range_us = [&](int a, int b) {  // layers [a, b)
    return prefix[static_cast<std::size_t>(b)] - prefix[static_cast<std::size_t>(a)];
  };

  const double inf = 1e300;
  std::vector<std::vector<double>> dp(
      static_cast<std::size_t>(k) + 1,
      std::vector<double>(static_cast<std::size_t>(n) + 1, inf));
  std::vector<std::vector<int>> cut(
      static_cast<std::size_t>(k) + 1,
      std::vector<int>(static_cast<std::size_t>(n) + 1, 0));
  dp[0][0] = 0.0;
  for (int s = 1; s <= k; ++s) {
    for (int i = 1; i <= n; ++i) {
      for (int j = s - 1; j < i; ++j) {
        double candidate =
            std::max(dp[static_cast<std::size_t>(s) - 1][static_cast<std::size_t>(j)],
                     range_us(j, i));
        if (candidate < dp[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)]) {
          dp[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] = candidate;
          cut[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] = j;
        }
      }
    }
  }

  // Reconstruct stage boundaries.
  std::vector<int> bounds{n};
  for (int s = k, i = n; s >= 1; --s) {
    i = cut[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)];
    bounds.push_back(i);
  }
  std::sort(bounds.begin(), bounds.end());

  Plan plan;
  plan.nodes = k;
  double slowest = 0.0;
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    Stage stage;
    for (int i = bounds[s]; i < bounds[s + 1]; ++i) {
      stage.layers.push_back(static_cast<std::size_t>(i));
      stage.compute_us += layer_us(static_cast<std::size_t>(i));
      stage.area += layers[static_cast<std::size_t>(i)].area;
    }
    if (!stage.layers.empty()) {
      stage.egress_bytes = layers[stage.layers.back()].activation_bytes;
    }
    stage.fits = platform::fits(stage.area, device.capacity);
    plan.feasible = plan.feasible && stage.fits;
    plan.pipeline_latency_us += stage.compute_us;
    slowest = std::max(slowest, stage.compute_us);
    plan.stages.push_back(std::move(stage));
  }

  // ZRLMPI hops between consecutive stages (activations over the 10G fabric).
  double hop_bound_us = 0.0;
  for (std::size_t s = 0; s + 1 < plan.stages.size(); ++s) {
    double hop_us =
        platform::message_seconds(network, plan.stages[s].egress_bytes) * 1e6;
    plan.network_us_per_inference += hop_us;
    hop_bound_us = std::max(hop_bound_us, hop_us);
  }
  plan.pipeline_latency_us += plan.network_us_per_inference;
  double bottleneck = std::max(slowest, hop_bound_us);
  plan.throughput_inf_per_s = bottleneck > 0.0 ? 1e6 / bottleneck : 0.0;
  return plan;
}

Expected<Plan> best_plan(const std::vector<LayerCost> &layers, int max_nodes) {
  Expected<Plan> best = Error::make("dosa: no feasible plan");
  for (int nodes = 1; nodes <= max_nodes; ++nodes) {
    auto plan = partition(layers, nodes);
    if (!plan || !plan->feasible) continue;
    if (!best.has_value() ||
        plan->throughput_inf_per_s > best->throughput_inf_per_s + 1e-9) {
      best = std::move(plan);
    }
  }
  return best;
}

}  // namespace everest::olympus::dosa
