// everest/olympus/dosa.hpp
//
// DOSA: organic compilation of neural-network inference onto distributed
// network-attached FPGAs (paper §V-C, refs [18][19]: "The EVEREST hardware
// system generation tools, Olympus and DOSA for network attached FPGAs").
// Given an imported ONNX model, DOSA estimates per-layer compute and
// activation traffic, partitions consecutive layers into per-node stages
// under the cloudFPGA resource budget, inserts ZRLMPI communication between
// stages, and reports pipeline latency/throughput per node count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/onnx_import.hpp"
#include "hls/resources.hpp"
#include "platform/device.hpp"
#include "platform/network.hpp"
#include "support/expected.hpp"

namespace everest::olympus::dosa {

/// Per-layer cost estimate (one ONNX node = one layer).
struct LayerCost {
  std::string name;
  std::string op;
  double macs = 0.0;              // multiply-accumulates per inference
  std::int64_t weight_bytes = 0;  // parameters resident on the node
  std::int64_t activation_bytes = 0;  // output activation per inference
  hls::Resources area;            // fabric cost of the layer engine
};

/// Analyzes a model: propagates shapes and costs each layer.
support::Expected<std::vector<LayerCost>> analyze_model(
    const frontend::OnnxModel &model);

/// One pipeline stage = consecutive layers mapped to one FPGA node.
struct Stage {
  std::vector<std::size_t> layers;   // indices into the LayerCost vector
  double compute_us = 0.0;
  std::int64_t egress_bytes = 0;     // activations shipped to the next stage
  hls::Resources area;
  bool fits = true;
};

/// A complete distributed deployment plan.
struct Plan {
  std::vector<Stage> stages;
  double pipeline_latency_us = 0.0;    // one inference through all stages
  double throughput_inf_per_s = 0.0;   // steady state (slowest stage bound)
  double network_us_per_inference = 0.0;
  int nodes = 0;
  bool feasible = true;
};

/// Partitions the model over `nodes` cloudFPGA devices, balancing stage
/// compute while respecting the fabric budget. Communication uses the
/// ZRLMPI message model over the 10G fabric.
support::Expected<Plan> partition(const std::vector<LayerCost> &layers,
                                  int nodes,
                                  const platform::DeviceSpec &device =
                                      platform::cloudfpga(),
                                  const platform::NetworkSpec &network = {});

/// Sweeps node counts 1..max_nodes and returns the plan with the highest
/// throughput (ties broken toward fewer nodes).
support::Expected<Plan> best_plan(const std::vector<LayerCost> &layers,
                                  int max_nodes);

}  // namespace everest::olympus::dosa
