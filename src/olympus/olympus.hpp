// everest/olympus/olympus.hpp
//
// Olympus: platform-aware FPGA system-architecture generation (paper §V-C,
// refs [16][24][25][26]). Given an HLS-scheduled kernel and a target device,
// Olympus builds the data-movement infrastructure:
//
//   - private local memories (PLMs) with optional double buffering [16],
//   - read / execute / write pipelining,
//   - kernel replication with the memory bus split into "lanes" so each
//     replica gets dedicated HBM pseudo-channels [24],
//   - data packing to fill bus words with narrow elements [25],
//
// and produces (a) the olympus-dialect IR of the system, (b) an analytic
// performance/area estimate, and (c) a host driver plan executable against
// the XRT-like device model.
#pragma once

#include <memory>
#include <string>

#include "hls/scheduler.hpp"
#include "ir/ir.hpp"
#include "platform/memory.hpp"
#include "platform/xrt.hpp"
#include "support/expected.hpp"

namespace everest::olympus {

/// System-generation knobs (the levers of experiments E1–E3).
struct Options {
  int replicas = 1;                       // kernel copies working in parallel
  bool double_buffering = true;           // ping-pong PLMs hide transfers
  bool dataflow_pipelining = true;        // read/execute/write overlap
  bool pack_data = true;                  // Iris-style bus packing
  int element_bits = 64;                  // datapath element width
  int bus_bits = 512;                     // AXI bus width at the memory
  std::int64_t plm_tile_bytes = 256 * 1024;  // tile staged in PLM
};

/// Analytic prediction for the generated system.
struct SystemEstimate {
  double compute_us = 0.0;       // per replica, after replication
  double memory_us = 0.0;        // HBM streaming time under contention
  double total_us = 0.0;         // composition per the pipelining options
  double effective_bandwidth_gbps = 0.0;
  double packing_efficiency = 1.0;
  int replicas = 1;
  int channels_per_replica = 1;
  std::int64_t tiles = 1;
  hls::Resources area;
  bool fits = true;
  double utilization = 0.0;
};

/// Generates and evaluates system architectures for one kernel on one device.
class SystemGenerator {
public:
  explicit SystemGenerator(platform::DeviceSpec device)
      : device_(std::move(device)) {}

  [[nodiscard]] const platform::DeviceSpec &device() const { return device_; }

  /// Analytic performance/area estimate for the configuration.
  support::Expected<SystemEstimate> estimate(const hls::KernelReport &kernel,
                                             const Options &options) const;

  /// Builds the olympus-dialect IR of the system (verifiable with the
  /// registered dialects).
  support::Expected<std::shared_ptr<ir::Module>> generate_ir(
      const hls::KernelReport &kernel, const Options &options) const;

  /// Executes the generated host driver plan against an XRT-like device:
  /// program, transfer inputs, launch, transfer outputs. Returns end-to-end
  /// microseconds on the device timeline.
  support::Expected<double> execute_on(platform::Device &dev,
                                       const hls::KernelReport &kernel,
                                       const Options &options) const;

private:
  platform::DeviceSpec device_;
};

}  // namespace everest::olympus
