// everest/sdk/compile_cache.hpp
//
// Content-addressed cache of Basecamp backend artifacts. The authoritative
// store is keyed by a stable FNV-1a hash of (canonicalized TeIL module text,
// CompileOptions, target device) and holds everything the backend produces
// past that point: the HLS schedule/resource report, the Olympus estimate
// and generated system IR, and the lowered loop IR. A ccache-style "direct"
// tier additionally memoizes a frontend fingerprint (source text + input
// shapes/extents + options + target) to the content key, so a repeat compile
// of identical source skips even the lowering needed to recompute the
// canonical text.
//
// Cached IR is kept both as printed text (the on-disk form under
// `--cache-dir`) and as parsed master modules; lookups hand out private
// deep clones (ir::clone_module), which print byte-identically to the
// originals — a fresh compile and a cache hit yield the same CompileResult.
//
// The cache is thread-safe; hit/miss/eviction/corruption counts are mirrored
// onto an attached obs::TraceRecorder ("sdk.cache.*").
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "hls/scheduler.hpp"
#include "ir/ir.hpp"
#include "ir/pass.hpp"
#include "obs/trace.hpp"
#include "olympus/olympus.hpp"
#include "sdk/options.hpp"
#include "support/expected.hpp"

namespace everest::sdk {

/// One cached backend result. Modules handed to store() are cloned in, and
/// lookup() returns fresh clones, so entries are immune to caller mutation.
struct CompileCacheEntry {
  std::shared_ptr<ir::Module> teil_ir;    // canonical TeIL, base2-annotated
  std::shared_ptr<ir::Module> loop_ir;
  std::shared_ptr<ir::Module> system_ir;  // olympus + evp deployment ops
  hls::KernelReport kernel;
  olympus::SystemEstimate estimate;
  int datapath_bits = 64;
};

/// Per-pass incremental tier, plugged into ir::PassManager::set_pass_cache.
/// Keys are ir::pass_fingerprint(pass name, printed func text); values are
/// the post-pass funcs, each held as a self-contained master module so the
/// arena that owns the cached op lives exactly as long as the entry. A
/// lookup hit means "this exact func already went through this exact pass":
/// on a one-kernel edit only the edited kernel's fingerprint changes, so
/// only its passes re-run. Thread-safe; when the entry count exceeds the
/// capacity the tier resets wholesale (the PassManager clones hits
/// immediately, so no returned pointer outlives the next mutation).
class PassResultCache : public ir::PassCache {
public:
  explicit PassResultCache(std::size_t capacity = 1024)
      : capacity_(capacity) {}

  PassResultCache(const PassResultCache &) = delete;
  PassResultCache &operator=(const PassResultCache &) = delete;

  [[nodiscard]] const ir::Operation *lookup(std::uint64_t key) override;
  void store(std::uint64_t key, const ir::Operation &func) override;

  /// Mirrors hits/misses onto sdk.cache.pass.hit / .miss counters.
  void attach_recorder(obs::TraceRecorder *recorder);

  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::map<std::uint64_t, ir::Module> entries_;  // each holds one func op
  obs::TraceRecorder *recorder_ = nullptr;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

class CompileCache {
public:
  /// Memory-only cache.
  CompileCache() = default;
  /// Memory cache backed by a directory: store() persists each entry as
  /// `<dir>/<016x-key>.json`, and lookup() falls back to disk on a memory
  /// miss. The directory is created on first store.
  explicit CompileCache(std::string dir);

  CompileCache(const CompileCache &) = delete;
  CompileCache &operator=(const CompileCache &) = delete;

  /// Deterministic fingerprint of every CompileOptions field that affects
  /// backend output. Part of both the content key and direct fingerprints.
  [[nodiscard]] static std::string options_fingerprint(
      const CompileOptions &options);

  /// The content key: FNV-1a over (canonicalized IR text, options, target).
  [[nodiscard]] static std::uint64_t key(const std::string &canonical_ir,
                                         const CompileOptions &options,
                                         const std::string &target);

  /// Returns a private copy of the entry, NotFound on a miss, or a coded
  /// error (InvalidArgument) when a persisted entry exists but is corrupt —
  /// callers treat both failure kinds as "compile fresh".
  [[nodiscard]] support::Expected<CompileCacheEntry> lookup(std::uint64_t key);

  /// Inserts (or refreshes) an entry, evicting least-recently-used entries
  /// beyond the capacity, and persists it when a directory is configured.
  void store(std::uint64_t key, const CompileCacheEntry &entry);

  /// Direct tier: maps a frontend fingerprint to a content key, plus (in
  /// memory) the parsed frontend module, so a repeat compile of identical
  /// source skips the frontend parse along with the backend. The frontend
  /// lives beside the fingerprint — not in the content entry — because EKL
  /// and CFDlang sources lowering to the same TeIL share one content entry
  /// but have different frontends.
  struct DirectHit {
    std::uint64_t key = 0;
    std::shared_ptr<ir::Module> frontend;  // private clone; null if unknown
  };
  [[nodiscard]] std::optional<std::uint64_t> direct_lookup(
      const std::string &fingerprint);
  [[nodiscard]] std::optional<DirectHit> direct_lookup_full(
      const std::string &fingerprint);
  void direct_store(const std::string &fingerprint, std::uint64_t key,
                    std::shared_ptr<const ir::Module> frontend = nullptr);

  /// Per-pass incremental tier; hand it to
  /// ir::PassManager::set_pass_cache so unchanged funcs skip their passes.
  [[nodiscard]] PassResultCache &pass_tier() { return pass_tier_; }

  /// Mirrors cache events onto `recorder` counters: sdk.cache.hit / .miss /
  /// .eviction / .corrupt, plus the sdk.cache.entries gauge.
  void attach_recorder(obs::TraceRecorder *recorder);

  /// Bounds the number of in-memory entries (0 = unbounded, the default).
  void set_capacity(std::size_t max_entries);

  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;
  [[nodiscard]] std::int64_t evictions() const;
  [[nodiscard]] std::int64_t corruptions() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string &directory() const { return dir_; }

private:
  struct Master {
    CompileCacheEntry entry;                    // owns the master modules
    std::list<std::uint64_t>::iterator lru_it;  // position in lru_
  };

  [[nodiscard]] static std::string entry_path(const std::string &dir,
                                              std::uint64_t key);
  /// Loads and validates a persisted entry; coded error on corruption.
  [[nodiscard]] support::Expected<CompileCacheEntry> load_from_disk(
      std::uint64_t key) const;
  void persist(std::uint64_t key, const CompileCacheEntry &entry) const;
  void insert_locked(std::uint64_t key, CompileCacheEntry master);
  void count(const char *event);
  void update_entries_gauge();

  mutable std::mutex mu_;
  std::string dir_;
  PassResultCache pass_tier_;
  struct DirectEntry {
    std::uint64_t key = 0;
    std::shared_ptr<const ir::Module> frontend;  // master; null if unknown
  };

  std::map<std::uint64_t, Master> entries_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::map<std::uint64_t, DirectEntry> direct_;  // fp hash -> content key
  std::size_t capacity_ = 0;
  obs::TraceRecorder *recorder_ = nullptr;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t corruptions_ = 0;
};

}  // namespace everest::sdk
