// everest/sdk/compile_cache.hpp
//
// Content-addressed cache of Basecamp backend artifacts. The authoritative
// store is keyed by a stable FNV-1a hash of (canonicalized TeIL module text,
// CompileOptions, target device) and holds everything the backend produces
// past that point: the HLS schedule/resource report, the Olympus estimate
// and generated system IR, and the lowered loop IR. A ccache-style "direct"
// tier additionally memoizes a frontend fingerprint (source text + input
// shapes/extents + options + target) to the content key, so a repeat compile
// of identical source skips even the lowering needed to recompute the
// canonical text.
//
// Cached IR is kept both as printed text (the on-disk form under
// `--cache-dir`) and as parsed master modules; lookups hand out private
// deep clones (ir::clone_module), which print byte-identically to the
// originals — a fresh compile and a cache hit yield the same CompileResult.
//
// The cache is thread-safe; hit/miss/eviction/corruption counts are mirrored
// onto an attached obs::TraceRecorder ("sdk.cache.*").
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "hls/scheduler.hpp"
#include "ir/ir.hpp"
#include "obs/trace.hpp"
#include "olympus/olympus.hpp"
#include "sdk/options.hpp"
#include "support/expected.hpp"

namespace everest::sdk {

/// One cached backend result. Modules handed to store() are cloned in, and
/// lookup() returns fresh clones, so entries are immune to caller mutation.
struct CompileCacheEntry {
  std::shared_ptr<ir::Module> teil_ir;    // canonical TeIL, base2-annotated
  std::shared_ptr<ir::Module> loop_ir;
  std::shared_ptr<ir::Module> system_ir;  // olympus + evp deployment ops
  hls::KernelReport kernel;
  olympus::SystemEstimate estimate;
  int datapath_bits = 64;
};

class CompileCache {
public:
  /// Memory-only cache.
  CompileCache() = default;
  /// Memory cache backed by a directory: store() persists each entry as
  /// `<dir>/<016x-key>.json`, and lookup() falls back to disk on a memory
  /// miss. The directory is created on first store.
  explicit CompileCache(std::string dir);

  CompileCache(const CompileCache &) = delete;
  CompileCache &operator=(const CompileCache &) = delete;

  /// Deterministic fingerprint of every CompileOptions field that affects
  /// backend output. Part of both the content key and direct fingerprints.
  [[nodiscard]] static std::string options_fingerprint(
      const CompileOptions &options);

  /// The content key: FNV-1a over (canonicalized IR text, options, target).
  [[nodiscard]] static std::uint64_t key(const std::string &canonical_ir,
                                         const CompileOptions &options,
                                         const std::string &target);

  /// Returns a private copy of the entry, NotFound on a miss, or a coded
  /// error (InvalidArgument) when a persisted entry exists but is corrupt —
  /// callers treat both failure kinds as "compile fresh".
  [[nodiscard]] support::Expected<CompileCacheEntry> lookup(std::uint64_t key);

  /// Inserts (or refreshes) an entry, evicting least-recently-used entries
  /// beyond the capacity, and persists it when a directory is configured.
  void store(std::uint64_t key, const CompileCacheEntry &entry);

  /// Direct tier: maps a frontend fingerprint to a content key.
  [[nodiscard]] std::optional<std::uint64_t> direct_lookup(
      const std::string &fingerprint);
  void direct_store(const std::string &fingerprint, std::uint64_t key);

  /// Mirrors cache events onto `recorder` counters: sdk.cache.hit / .miss /
  /// .eviction / .corrupt, plus the sdk.cache.entries gauge.
  void attach_recorder(obs::TraceRecorder *recorder);

  /// Bounds the number of in-memory entries (0 = unbounded, the default).
  void set_capacity(std::size_t max_entries);

  [[nodiscard]] std::int64_t hits() const;
  [[nodiscard]] std::int64_t misses() const;
  [[nodiscard]] std::int64_t evictions() const;
  [[nodiscard]] std::int64_t corruptions() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const std::string &directory() const { return dir_; }

private:
  struct Master {
    CompileCacheEntry entry;                    // owns the master modules
    std::list<std::uint64_t>::iterator lru_it;  // position in lru_
  };

  [[nodiscard]] static std::string entry_path(const std::string &dir,
                                              std::uint64_t key);
  /// Loads and validates a persisted entry; coded error on corruption.
  [[nodiscard]] support::Expected<CompileCacheEntry> load_from_disk(
      std::uint64_t key) const;
  void persist(std::uint64_t key, const CompileCacheEntry &entry) const;
  void insert_locked(std::uint64_t key, CompileCacheEntry master);
  void count(const char *event);
  void update_entries_gauge();

  mutable std::mutex mu_;
  std::string dir_;
  std::map<std::uint64_t, Master> entries_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::map<std::uint64_t, std::uint64_t> direct_;  // fp hash -> content key
  std::size_t capacity_ = 0;
  obs::TraceRecorder *recorder_ = nullptr;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
  std::int64_t corruptions_ = 0;
};

}  // namespace everest::sdk
