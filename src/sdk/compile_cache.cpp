#include "sdk/compile_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ir/parser.hpp"
#include "support/strings.hpp"

namespace everest::sdk {

using support::Error;
using support::Expected;
using support::Json;

namespace {

std::string hex16(std::uint64_t key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(key));
  return buf;
}

Json resources_to_json(const hls::Resources &a) {
  auto j = Json::object();
  j.set("luts", a.luts);
  j.set("ffs", a.ffs);
  j.set("dsps", a.dsps);
  j.set("brams", a.brams);
  return j;
}

hls::Resources resources_from_json(const Json &j) {
  return hls::Resources{j["luts"].as_int(), j["ffs"].as_int(),
                        j["dsps"].as_int(), j["brams"].as_int()};
}

Json estimate_to_json(const olympus::SystemEstimate &e) {
  auto j = Json::object();
  j.set("compute_us", e.compute_us);
  j.set("memory_us", e.memory_us);
  j.set("total_us", e.total_us);
  j.set("effective_bandwidth_gbps", e.effective_bandwidth_gbps);
  j.set("packing_efficiency", e.packing_efficiency);
  j.set("replicas", e.replicas);
  j.set("channels_per_replica", e.channels_per_replica);
  j.set("tiles", e.tiles);
  j.set("area", resources_to_json(e.area));
  j.set("fits", e.fits);
  j.set("utilization", e.utilization);
  return j;
}

olympus::SystemEstimate estimate_from_json(const Json &j) {
  olympus::SystemEstimate e;
  e.compute_us = j["compute_us"].as_number();
  e.memory_us = j["memory_us"].as_number();
  e.total_us = j["total_us"].as_number();
  e.effective_bandwidth_gbps = j["effective_bandwidth_gbps"].as_number();
  e.packing_efficiency = j["packing_efficiency"].as_number();
  e.replicas = static_cast<int>(j["replicas"].as_int());
  e.channels_per_replica = static_cast<int>(j["channels_per_replica"].as_int());
  e.tiles = j["tiles"].as_int();
  e.area = resources_from_json(j["area"]);
  e.fits = j["fits"].as_bool();
  e.utilization = j["utilization"].as_number();
  return e;
}

/// Deep-copies an entry so masters and handed-out copies never alias.
CompileCacheEntry clone_entry(const CompileCacheEntry &entry) {
  CompileCacheEntry copy = entry;
  copy.teil_ir = std::make_shared<ir::Module>(ir::clone_module(*entry.teil_ir));
  copy.loop_ir = std::make_shared<ir::Module>(ir::clone_module(*entry.loop_ir));
  copy.system_ir =
      std::make_shared<ir::Module>(ir::clone_module(*entry.system_ir));
  return copy;
}

}  // namespace

// ------------------------------------------------------------ pass tier

const ir::Operation *PassResultCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    if (recorder_) recorder_->counter("sdk.cache.pass.miss").add(1);
    return nullptr;
  }
  ++hits_;
  if (recorder_) recorder_->counter("sdk.cache.pass.hit").add(1);
  return &it->second.body().front();
}

void PassResultCache::store(std::uint64_t key, const ir::Operation &func) {
  ir::Module holder;
  ir::clone_op_into(func, holder.body());
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ > 0 && entries_.size() >= capacity_ && !entries_.count(key))
    entries_.clear();  // wholesale reset keeps the lifetime contract trivial
  entries_.insert_or_assign(key, std::move(holder));
}

void PassResultCache::attach_recorder(obs::TraceRecorder *recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  recorder_ = recorder;
}

std::int64_t PassResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
std::int64_t PassResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
std::size_t PassResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}
void PassResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

CompileCache::CompileCache(std::string dir) : dir_(std::move(dir)) {}

std::string CompileCache::options_fingerprint(const CompileOptions &o) {
  std::ostringstream fp;
  fp << "target=" << o.target << ";format=" << o.number_format
     << ";canon=" << o.canonicalize << ";esn=" << o.optimize_einsum_order
     << ";hls=" << o.hls.clock_mhz << ',' << o.hls.datapath_bits << ','
     << o.hls.mem_read_ports << ',' << o.hls.mem_write_ports << ','
     << o.hls.enable_pipelining << ";oly=" << o.olympus.replicas << ','
     << o.olympus.double_buffering << ',' << o.olympus.dataflow_pipelining
     << ',' << o.olympus.pack_data << ',' << o.olympus.element_bits << ','
     << o.olympus.bus_bits << ',' << o.olympus.plm_tile_bytes;
  return fp.str();
}

std::uint64_t CompileCache::key(const std::string &canonical_ir,
                                const CompileOptions &options,
                                const std::string &target) {
  std::uint64_t hash = support::fnv1a(canonical_ir);
  hash = support::fnv1a(options_fingerprint(options), hash);
  hash = support::fnv1a(target, hash);
  return hash;
}

void CompileCache::attach_recorder(obs::TraceRecorder *recorder) {
  pass_tier_.attach_recorder(recorder);
  std::lock_guard<std::mutex> lock(mu_);
  recorder_ = recorder;
}

void CompileCache::set_capacity(std::size_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_entries;
  while (capacity_ > 0 && entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    if (recorder_) recorder_->counter("sdk.cache.eviction").add(1);
  }
  update_entries_gauge();
}

void CompileCache::count(const char *event) {
  // Callers hold mu_.
  if (recorder_)
    recorder_->counter(std::string("sdk.cache.") + event).add(1);
}

void CompileCache::update_entries_gauge() {
  if (recorder_)
    recorder_->gauge("sdk.cache.entries")
        .set(static_cast<double>(entries_.size()));
}

std::string CompileCache::entry_path(const std::string &dir,
                                     std::uint64_t key) {
  return dir + "/" + hex16(key) + ".json";
}

Expected<CompileCacheEntry> CompileCache::load_from_disk(
    std::uint64_t key) const {
  std::ifstream file(entry_path(dir_, key));
  if (!file)
    return Error::not_found("compile cache: no entry " + hex16(key));
  std::stringstream text;
  text << file.rdbuf();
  auto json = Json::parse(text.str());
  if (!json)
    return Error::invalid_argument("compile cache: corrupt entry " +
                                   hex16(key) + ": " + json.error().message);
  if (!json->is_object() || !(*json)["teil_ir"].is_string() ||
      !(*json)["loop_ir"].is_string() || !(*json)["system_ir"].is_string() ||
      !(*json)["kernel"].is_object() || !(*json)["estimate"].is_object())
    return Error::invalid_argument("compile cache: corrupt entry " +
                                   hex16(key) + ": missing fields");
  CompileCacheEntry entry;
  auto teil = ir::parse_module((*json)["teil_ir"].as_string());
  auto loops = ir::parse_module((*json)["loop_ir"].as_string());
  auto system = ir::parse_module((*json)["system_ir"].as_string());
  if (!teil || !loops || !system)
    return Error::invalid_argument("compile cache: corrupt entry " +
                                   hex16(key) + ": unparsable IR");
  auto kernel = hls::report_from_json((*json)["kernel"]);
  if (!kernel)
    return Error::invalid_argument("compile cache: corrupt entry " +
                                   hex16(key) + ": " + kernel.error().message);
  entry.teil_ir = *teil;
  entry.loop_ir = *loops;
  entry.system_ir = *system;
  entry.kernel = *kernel;
  entry.estimate = estimate_from_json((*json)["estimate"]);
  entry.datapath_bits = static_cast<int>((*json)["datapath_bits"].as_int());
  return entry;
}

void CompileCache::persist(std::uint64_t key,
                           const CompileCacheEntry &entry) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;  // persistence is best-effort; the memory tier still works
  auto json = Json::object();
  json.set("teil_ir", entry.teil_ir->str());
  json.set("loop_ir", entry.loop_ir->str());
  json.set("system_ir", entry.system_ir->str());
  json.set("kernel", hls::report_to_json(entry.kernel));
  json.set("estimate", estimate_to_json(entry.estimate));
  json.set("datapath_bits", entry.datapath_bits);
  std::ofstream file(entry_path(dir_, key));
  file << json.dump(2);
}

Expected<CompileCacheEntry> CompileCache::lookup(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++hits_;
      count("hit");
      return clone_entry(it->second.entry);
    }
  }
  if (!dir_.empty()) {
    auto loaded = load_from_disk(key);
    if (loaded) {
      std::lock_guard<std::mutex> lock(mu_);
      // Another thread may have raced the same disk entry in; either copy
      // is equivalent, so last insert wins.
      insert_locked(key, clone_entry(*loaded));
      ++hits_;
      count("hit");
      update_entries_gauge();
      return loaded;
    }
    if (loaded.error().code_enum() != support::ErrorCode::NotFound) {
      std::lock_guard<std::mutex> lock(mu_);
      ++corruptions_;
      ++misses_;
      count("corrupt");
      count("miss");
      return loaded.error();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  count("miss");
  return Error::not_found("compile cache: no entry " + hex16(key));
}

void CompileCache::insert_locked(std::uint64_t key, CompileCacheEntry master) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.entry = std::move(master);
    return;
  }
  lru_.push_front(key);
  entries_.emplace(key, Master{std::move(master), lru_.begin()});
  while (capacity_ > 0 && entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    count("eviction");
  }
}

void CompileCache::store(std::uint64_t key, const CompileCacheEntry &entry) {
  CompileCacheEntry master = clone_entry(entry);
  {
    std::lock_guard<std::mutex> lock(mu_);
    insert_locked(key, std::move(master));
    count("store");
    update_entries_gauge();
  }
  if (!dir_.empty()) persist(key, entry);
}

std::optional<std::uint64_t> CompileCache::direct_lookup(
    const std::string &fingerprint) {
  auto hit = direct_lookup_full(fingerprint);
  if (!hit) return std::nullopt;
  return hit->key;
}

std::optional<CompileCache::DirectHit> CompileCache::direct_lookup_full(
    const std::string &fingerprint) {
  std::uint64_t fp = support::fnv1a(fingerprint);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = direct_.find(fp);
    if (it != direct_.end()) {
      DirectHit hit;
      hit.key = it->second.key;
      if (it->second.frontend)
        hit.frontend =
            std::make_shared<ir::Module>(ir::clone_module(*it->second.frontend));
      return hit;
    }
  }
  if (dir_.empty()) return std::nullopt;
  std::ifstream file(dir_ + "/direct-" + hex16(fp) + ".json");
  if (!file) return std::nullopt;
  std::stringstream text;
  text << file.rdbuf();
  auto json = Json::parse(text.str());
  if (!json || !(*json)["key"].is_string()) return std::nullopt;
  DirectEntry entry;
  entry.key = std::strtoull((*json)["key"].as_string().c_str(), nullptr, 16);
  if ((*json)["frontend_ir"].is_string()) {
    // Optional field; older entries (or hand-edited files) simply fall back
    // to re-parsing the source on a hit.
    if (auto parsed = ir::parse_module((*json)["frontend_ir"].as_string()))
      entry.frontend = *parsed;
  }
  DirectHit hit;
  hit.key = entry.key;
  if (entry.frontend)
    hit.frontend =
        std::make_shared<ir::Module>(ir::clone_module(*entry.frontend));
  std::lock_guard<std::mutex> lock(mu_);
  direct_.emplace(fp, std::move(entry));
  return hit;
}

void CompileCache::direct_store(const std::string &fingerprint,
                                std::uint64_t key,
                                std::shared_ptr<const ir::Module> frontend) {
  std::uint64_t fp = support::fnv1a(fingerprint);
  // Master copy: callers keep (and may mutate) their module, so the tier
  // snapshots it. Refreshing with a null frontend keeps the existing master.
  std::shared_ptr<const ir::Module> master;
  if (frontend)
    master = std::make_shared<const ir::Module>(ir::clone_module(*frontend));
  {
    std::lock_guard<std::mutex> lock(mu_);
    DirectEntry &entry = direct_[fp];
    entry.key = key;
    if (master) entry.frontend = master;
  }
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;
  auto json = Json::object();
  json.set("key", hex16(key));
  if (frontend) json.set("frontend_ir", frontend->str());
  std::ofstream file(dir_ + "/direct-" + hex16(fp) + ".json");
  file << json.dump();
}

std::int64_t CompileCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}
std::int64_t CompileCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}
std::int64_t CompileCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}
std::int64_t CompileCache::corruptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corruptions_;
}
std::size_t CompileCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace everest::sdk
