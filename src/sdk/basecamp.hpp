// everest/sdk/basecamp.hpp
//
// The basecamp entry point (paper §IV: "All tools within the SDK are wrapped
// under the basecamp command, which provides a single point of access to the
// users of the SDK"). One object wires the Fig. 2 flow end to end:
//
//   frontend (EKL / CFDlang / ConDRust / ONNX)
//     -> MLIR-like dialects (Fig. 5) -> teil -> esn ordering -> loops
//     -> HLS scheduling -> base2 format choice
//     -> Olympus system generation -> deployment on a device model.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hls/scheduler.hpp"
#include "ir/dialect.hpp"
#include "obs/trace.hpp"
#include "olympus/olympus.hpp"
#include "platform/xrt.hpp"
#include "sdk/options.hpp"
#include "support/expected.hpp"
#include "transforms/ekl_eval.hpp"

namespace everest::sdk {

/// Timing of one pipeline stage in milliseconds. Kept for compatibility;
/// values are now derived from the obs::TraceRecorder spans, so the two
/// views of a compile always agree.
struct StageTiming {
  std::string stage;
  double ms = 0.0;
};

/// Everything the pipeline produces for one kernel.
struct CompileResult {
  std::shared_ptr<ir::Module> frontend_ir;  // ekl.kernel / cfdlang.program
  std::shared_ptr<ir::Module> teil_ir;
  std::shared_ptr<ir::Module> loop_ir;
  std::shared_ptr<ir::Module> system_ir;    // olympus dialect
  hls::KernelReport kernel;
  olympus::SystemEstimate estimate;
  olympus::Options olympus_options;  // the effective system configuration
  platform::DeviceSpec device;
  std::vector<StageTiming> timings;
  std::size_t ekl_source_lines = 0;
  int datapath_bits = 64;
};

/// The single point of access.
class Basecamp {
public:
  /// Registers the full dialect stack into the owned context.
  Basecamp();

  [[nodiscard]] ir::Context &context() { return ctx_; }

  /// The recorder every compile writes its pipeline-stage spans into (one
  /// span per Fig. 2 stage, category "sdk.pipeline"). Export it with
  /// obs::chrome_trace_json / obs::summary_table, or attach it to a
  /// platform::Device to put device DMA/kernel spans in the same trace.
  [[nodiscard]] obs::TraceRecorder &recorder() { return recorder_; }
  [[nodiscard]] const obs::TraceRecorder &recorder() const { return recorder_; }

  /// Resolves a target name to its device model.
  [[nodiscard]] support::Expected<platform::DeviceSpec> device_by_name(
      const std::string &name) const;

  /// Compiles an EKL kernel source through the full flow. Bindings provide
  /// shapes (and evaluation inputs for verification-style runs).
  support::Expected<CompileResult> compile_ekl(
      const std::string &source, const transforms::EklBindings &bindings,
      const CompileOptions &options = {});

  /// Compiles a CFDlang program through the same backend.
  support::Expected<CompileResult> compile_cfdlang(
      const std::string &source, const CompileOptions &options = {});

  /// Deploys the compiled system onto a device and runs one invocation;
  /// returns end-to-end microseconds on the device timeline.
  support::Expected<double> deploy_and_run(platform::Device &device,
                                           const CompileResult &result) const;

private:
  support::Expected<CompileResult> backend(
      std::shared_ptr<ir::Module> frontend_ir,
      std::shared_ptr<ir::Module> teil_ir, const CompileOptions &options,
      std::vector<StageTiming> timings);

  ir::Context ctx_;
  obs::TraceRecorder recorder_;
};

}  // namespace everest::sdk
