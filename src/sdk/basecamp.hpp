// everest/sdk/basecamp.hpp
//
// The basecamp entry point (paper §IV: "All tools within the SDK are wrapped
// under the basecamp command, which provides a single point of access to the
// users of the SDK"). One object wires the Fig. 2 flow end to end:
//
//   frontend (EKL / CFDlang / ConDRust / ONNX)
//     -> MLIR-like dialects (Fig. 5) -> teil -> esn ordering -> loops
//     -> HLS scheduling -> base2 format choice
//     -> Olympus system generation -> deployment on a device model.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hls/scheduler.hpp"
#include "ir/dialect.hpp"
#include "obs/trace.hpp"
#include "olympus/olympus.hpp"
#include "platform/xrt.hpp"
#include "resil/policy.hpp"
#include "sdk/compile_cache.hpp"
#include "sdk/options.hpp"
#include "serve/server.hpp"
#include "support/expected.hpp"
#include "support/thread_pool.hpp"
#include "transforms/ekl_eval.hpp"

namespace everest::sdk {

/// Timing of one pipeline stage in milliseconds. Kept for compatibility;
/// values are now derived from the obs::TraceRecorder spans, so the two
/// views of a compile always agree.
struct StageTiming {
  std::string stage;
  double ms = 0.0;
};

/// Everything the pipeline produces for one kernel.
struct CompileResult {
  std::shared_ptr<ir::Module> frontend_ir;  // ekl.kernel / cfdlang.program
  std::shared_ptr<ir::Module> teil_ir;
  std::shared_ptr<ir::Module> loop_ir;
  std::shared_ptr<ir::Module> system_ir;    // olympus dialect
  hls::KernelReport kernel;
  olympus::SystemEstimate estimate;
  olympus::Options olympus_options;  // the effective system configuration
  platform::DeviceSpec device;
  std::vector<StageTiming> timings;
  std::size_t ekl_source_lines = 0;
  int datapath_bits = 64;
};

/// One kernel of a multi-kernel compile (the Fig. 2 flow is run per kernel;
/// real deployments compile many variants, which is embarrassingly
/// parallel — see Basecamp::compile_many).
struct CompileJob {
  enum class Kind { Ekl, Cfdlang };
  Kind kind = Kind::Ekl;
  std::string name;                  // label for reports (e.g. source file)
  std::string source;
  transforms::EklBindings bindings;  // EKL only; ignored for CFDlang
  CompileOptions options;
};

/// The single point of access.
class Basecamp {
public:
  /// Registers the full dialect stack into the owned context.
  Basecamp();

  [[nodiscard]] ir::Context &context() { return ctx_; }

  /// The recorder every compile writes its pipeline-stage spans into (one
  /// span per Fig. 2 stage, category "sdk.pipeline"). Export it with
  /// obs::chrome_trace_json / obs::summary_table, or attach it to a
  /// platform::Device to put device DMA/kernel spans in the same trace.
  [[nodiscard]] obs::TraceRecorder &recorder() { return recorder_; }
  [[nodiscard]] const obs::TraceRecorder &recorder() const { return recorder_; }

  /// Resolves a target name to its device model.
  [[nodiscard]] support::Expected<platform::DeviceSpec> device_by_name(
      const std::string &name) const;

  /// Compiles an EKL kernel source through the full flow. Bindings provide
  /// shapes (and evaluation inputs for verification-style runs).
  support::Expected<CompileResult> compile_ekl(
      const std::string &source, const transforms::EklBindings &bindings,
      const CompileOptions &options = {});

  /// Compiles a CFDlang program through the same backend.
  support::Expected<CompileResult> compile_cfdlang(
      const std::string &source, const CompileOptions &options = {});

  /// Compiles every job, fanning the per-kernel pipelines across a thread
  /// pool of `parallel_jobs` workers (<= 1 compiles serially, in-line). The
  /// returned vector is index-aligned with `jobs` regardless of completion
  /// order, and each element is byte-identical to what a serial
  /// compile_ekl/compile_cfdlang call would have produced: the merge is
  /// deterministic, only wall-clock changes. Pool pressure is mirrored to
  /// the recorder as sdk.pool.queued / sdk.pool.active gauges.
  [[nodiscard]] std::vector<support::Expected<CompileResult>> compile_many(
      const std::vector<CompileJob> &jobs, int parallel_jobs = 1);

  /// Attaches a compile cache (not owned; may be shared across Basecamp
  /// instances and threads). Pass nullptr to detach. The cache's counters
  /// are mirrored onto this instance's recorder.
  void attach_cache(CompileCache *cache);
  [[nodiscard]] CompileCache *cache() const { return cache_; }

  /// Deploys the compiled system onto a device and runs one invocation;
  /// returns end-to-end microseconds on the device timeline.
  support::Expected<double> deploy_and_run(platform::Device &device,
                                           const CompileResult &result) const;

  /// Resilient variant: retries transient faults (injected DMA errors,
  /// alloc flakes, hung kernels) under `policy.retry`, advancing the
  /// device's simulated clock by each backoff; a run that completes past
  /// `policy.deadline` is treated as a retryable DeadlineExceeded failure.
  /// Retry activity lands on the recorder's resil.* metrics.
  support::Expected<double> deploy_and_run(platform::Device &device,
                                           const CompileResult &result,
                                           const resil::ExecutionPolicy &policy);

  /// Builds a multi-tenant request server over a dfg serving graph (see
  /// serve/server.hpp). The host-CPU dfg backend is always present; when
  /// `device` is non-null a DeviceBackend for `kernel` (which must already
  /// be loaded on the device) is placed in front of it, so device faults
  /// fail over to the host path. The server writes its serve.* metrics and
  /// batch spans into this Basecamp's recorder. The returned server is not
  /// started; call start() (and stop()/drain() per its lifecycle).
  support::Expected<std::unique_ptr<serve::Server>> make_server(
      std::shared_ptr<const ir::Module> graph,
      std::shared_ptr<const runtime::NodeRegistry> registry,
      serve::ServerOptions options = {}, platform::Device *device = nullptr,
      const std::string &kernel = {},
      const runtime::DfgExecOptions &exec = {});

private:
  support::Expected<CompileResult> backend(
      std::shared_ptr<ir::Module> frontend_ir,
      std::shared_ptr<ir::Module> teil_ir, const CompileOptions &options,
      std::vector<StageTiming> timings,
      const std::string &direct_fingerprint);

  /// Builds a CompileResult from a cache entry (clones already made by the
  /// cache); shared by the direct-tier and content-tier hit paths.
  support::Expected<CompileResult> result_from_cache(
      std::shared_ptr<ir::Module> frontend_ir, CompileCacheEntry entry,
      const CompileOptions &options, std::vector<StageTiming> timings) const;

  ir::Context ctx_;
  obs::TraceRecorder recorder_;
  CompileCache *cache_ = nullptr;

  /// Worker pool reused across compile_many batches (thread creation costs
  /// milliseconds — a per-batch pool would tax every warm-cache batch with
  /// it). Lazily created, grown when a batch asks for more workers; held by
  /// shared_ptr so a batch in flight keeps its pool alive across a grow.
  std::shared_ptr<support::ThreadPool> pool_;
  std::mutex pool_mutex_;
};

}  // namespace everest::sdk
