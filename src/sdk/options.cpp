#include "sdk/options.hpp"

#include "transforms/base2_legalize.hpp"

namespace everest::sdk {

using support::Error;
using support::Expected;
using support::Status;

CompileOptionsBuilder CompileOptions::make() { return CompileOptionsBuilder(); }

Expected<platform::DeviceSpec> resolve_target(const std::string &name) {
  if (name == "alveo-u55c") return platform::alveo_u55c();
  if (name == "alveo-u280") return platform::alveo_u280();
  if (name == "cloudfpga") return platform::cloudfpga();
  return Error::not_found("unknown target '" + name +
                          "' (alveo-u55c, alveo-u280, cloudfpga)");
}

Status validate_compile_options(const CompileOptions &options) {
  if (auto device = resolve_target(options.target); !device)
    return Status(device.error());
  if (options.number_format != "f64") {
    auto format = transforms::make_format(options.number_format);
    if (!format)
      return Status(Error::unsupported("bad number format '" +
                                       options.number_format +
                                       "': " + format.error().message));
  }
  if (options.olympus.replicas < 1)
    return Status(
        Error::invalid_argument("olympus replicas must be >= 1"));
  return Status::ok();
}

Expected<CompileOptions> CompileOptionsBuilder::build() const {
  if (auto s = validate_compile_options(options_); !s.is_ok())
    return s.error().with_context("compile-options");
  return options_;
}

}  // namespace everest::sdk
