// everest/sdk/options.hpp
//
// Compilation options for one kernel, plus the fluent builder that validates
// target and number format eagerly (coded errors at the API boundary instead
// of a failure deep inside the backend).
#pragma once

#include <string>

#include "hls/scheduler.hpp"
#include "olympus/olympus.hpp"
#include "platform/device.hpp"
#include "support/expected.hpp"

namespace everest::sdk {

class CompileOptionsBuilder;

/// Compilation options for one kernel.
struct CompileOptions {
  std::string target = "alveo-u55c";   // alveo-u55c | alveo-u280 | cloudfpga
  std::string number_format = "f64";   // base2 spec, e.g. "fixed<16,8>"
  bool canonicalize = true;            // fold/CSE/DCE on the teil module
  bool optimize_einsum_order = true;   // esn contraction reordering
  hls::HlsOptions hls;
  olympus::Options olympus;

  /// Starts a fluent builder:
  ///   CompileOptions::make().target("alveo-u280")
  ///       .number_format("fixed<16,8>").replicas(4).build()
  static CompileOptionsBuilder make();
};

/// Fluent builder over CompileOptions. build() validates the target name and
/// number-format spec eagerly and returns coded errors (NotFound /
/// Unsupported) on bad values.
class CompileOptionsBuilder {
public:
  CompileOptionsBuilder &target(std::string name) {
    options_.target = std::move(name);
    return *this;
  }
  CompileOptionsBuilder &number_format(std::string spec) {
    options_.number_format = std::move(spec);
    return *this;
  }
  CompileOptionsBuilder &canonicalize(bool on) {
    options_.canonicalize = on;
    return *this;
  }
  CompileOptionsBuilder &optimize_einsum_order(bool on) {
    options_.optimize_einsum_order = on;
    return *this;
  }
  CompileOptionsBuilder &replicas(int count) {
    options_.olympus.replicas = count;
    return *this;
  }
  CompileOptionsBuilder &hls(hls::HlsOptions hls_options) {
    options_.hls = std::move(hls_options);
    return *this;
  }
  CompileOptionsBuilder &olympus(olympus::Options olympus_options) {
    options_.olympus = std::move(olympus_options);
    return *this;
  }

  /// Validates and returns the options, or the first coded error.
  [[nodiscard]] support::Expected<CompileOptions> build() const;

private:
  CompileOptions options_;
};

/// Resolves a target name to its device model (NotFound on unknown names).
/// The single source of truth behind Basecamp::device_by_name and the
/// builder's eager validation.
support::Expected<platform::DeviceSpec> resolve_target(const std::string &name);

/// Validates target and number format; used by the builder and at the
/// compile_* entry points so bad options fail before any pipeline work.
support::Status validate_compile_options(const CompileOptions &options);

}  // namespace everest::sdk
