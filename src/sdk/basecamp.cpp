#include "sdk/basecamp.hpp"

#include <algorithm>
#include <sstream>

#include "dialects/registry.hpp"
#include "frontend/cfdlang_parser.hpp"
#include "frontend/ekl_parser.hpp"
#include "ir/pass.hpp"
#include "transforms/base2_legalize.hpp"
#include "transforms/canonicalize.hpp"
#include "transforms/cfdlang_to_teil.hpp"
#include "transforms/ekl_to_teil.hpp"
#include "transforms/esn_extract.hpp"
#include "ir/builder.hpp"
#include "transforms/teil_to_loops.hpp"

namespace everest::sdk {

using support::Error;
using support::Expected;

namespace {

/// Runs fn() under a recorder span (category "sdk.pipeline", one span per
/// Fig. 2 stage) and appends the span's duration under `stage`, so
/// CompileResult::timings and the trace are two views of one measurement.
template <typename F>
auto timed(obs::TraceRecorder &recorder, std::vector<StageTiming> &timings,
           const char *stage, F &&fn) {
  auto span = recorder.span(stage, "sdk.pipeline", "basecamp");
  auto result = fn();
  timings.push_back({stage, span.end() / 1000.0});
  return result;
}

/// Direct-tier fingerprint of an EKL compile: everything that determines the
/// backend output. lower_ekl_to_teil consumes bindings only through
/// resolve_ekl_extents, so shapes and extents (not tensor values) suffice.
std::string ekl_fingerprint(const std::string &source,
                            const transforms::EklBindings &bindings,
                            const CompileOptions &options) {
  std::ostringstream fp;
  fp << "ekl\n"
     << CompileCache::options_fingerprint(options) << '\n'
     << source << '\n';
  for (const auto &[name, tensor] : bindings.inputs) {
    fp << name << '=';
    for (auto dim : tensor.shape()) fp << dim << 'x';
    fp << ';';
  }
  for (const auto &[name, extent] : bindings.extents)
    fp << name << ':' << extent << ';';
  return fp.str();
}

std::string cfdlang_fingerprint(const std::string &source,
                                const CompileOptions &options) {
  std::ostringstream fp;
  fp << "cfdlang\n"
     << CompileCache::options_fingerprint(options) << '\n'
     << source;
  return fp.str();
}

}  // namespace

Basecamp::Basecamp() { dialects::register_everest_dialects(ctx_); }

Expected<platform::DeviceSpec> Basecamp::device_by_name(
    const std::string &name) const {
  auto device = resolve_target(name);
  if (!device) return device.error().with_context("basecamp");
  return device;
}

Expected<CompileResult> Basecamp::compile_ekl(
    const std::string &source, const transforms::EklBindings &bindings,
    const CompileOptions &options) {
  if (auto s = validate_compile_options(options); !s.is_ok())
    return s.error().with_context("basecamp");
  std::vector<StageTiming> timings;

  // The direct tier maps this exact source (which already passed frontend
  // verification when its entry was stored) to a content key and remembers
  // the parsed frontend module, so a hit can skip the parser and verifier
  // along with the whole backend.
  std::string fingerprint;
  if (cache_) {
    fingerprint = ekl_fingerprint(source, bindings, options);
    if (auto direct = cache_->direct_lookup_full(fingerprint)) {
      auto hit = timed(recorder_, timings, "cache-lookup",
                       [&] { return cache_->lookup(direct->key); });
      if (hit) {
        std::shared_ptr<ir::Module> frontend_ir = direct->frontend;
        if (!frontend_ir) {
          auto reparsed = timed(recorder_, timings, "parse-ekl",
                                [&] { return frontend::parse_ekl(source); });
          if (!reparsed) return reparsed.error().with_context("basecamp");
          frontend_ir = *reparsed;
        }
        auto result = result_from_cache(std::move(frontend_ir),
                                        std::move(*hit), options,
                                        std::move(timings));
        if (result)
          result->ekl_source_lines = frontend::count_ekl_lines(source);
        return result;
      }
      // Evicted or corrupt entry behind a stale mapping: compile fresh.
    }
  }

  auto parsed = timed(recorder_, timings, "parse-ekl",
                      [&] { return frontend::parse_ekl(source); });
  if (!parsed) return parsed.error().with_context("basecamp");
  if (auto s = ctx_.verify(**parsed); !s.is_ok())
    return Error::internal("basecamp: frontend IR invalid: " + s.message());

  auto teil = timed(recorder_, timings, "lower-ekl-to-teil", [&] {
    return transforms::lower_ekl_to_teil(**parsed, bindings);
  });
  if (!teil) return teil.error();

  auto result = backend(*parsed, *teil, options, std::move(timings),
                        fingerprint);
  if (result) result->ekl_source_lines = frontend::count_ekl_lines(source);
  return result;
}

Expected<CompileResult> Basecamp::compile_cfdlang(const std::string &source,
                                                  const CompileOptions &options) {
  if (auto s = validate_compile_options(options); !s.is_ok())
    return s.error().with_context("basecamp");
  std::vector<StageTiming> timings;

  std::string fingerprint;
  if (cache_) {
    fingerprint = cfdlang_fingerprint(source, options);
    if (auto direct = cache_->direct_lookup_full(fingerprint)) {
      auto hit = timed(recorder_, timings, "cache-lookup",
                       [&] { return cache_->lookup(direct->key); });
      if (hit) {
        std::shared_ptr<ir::Module> frontend_ir = direct->frontend;
        if (!frontend_ir) {
          auto reparsed =
              timed(recorder_, timings, "parse-cfdlang",
                    [&] { return frontend::parse_cfdlang(source); });
          if (!reparsed) return reparsed.error().with_context("basecamp");
          frontend_ir = *reparsed;
        }
        return result_from_cache(std::move(frontend_ir), std::move(*hit),
                                 options, std::move(timings));
      }
    }
  }

  auto parsed = timed(recorder_, timings, "parse-cfdlang",
                      [&] { return frontend::parse_cfdlang(source); });
  if (!parsed) return parsed.error().with_context("basecamp");
  if (auto s = ctx_.verify(**parsed); !s.is_ok())
    return Error::internal("basecamp: frontend IR invalid: " + s.message());

  auto teil = timed(recorder_, timings, "lower-cfdlang-to-teil",
                    [&] { return transforms::lower_cfdlang_to_teil(**parsed); });
  if (!teil) return teil.error();
  return backend(*parsed, *teil, options, std::move(timings), fingerprint);
}

std::vector<Expected<CompileResult>> Basecamp::compile_many(
    const std::vector<CompileJob> &jobs, int parallel_jobs) {
  auto one = [&](std::size_t i) -> Expected<CompileResult> {
    const CompileJob &job = jobs[i];
    auto result = job.kind == CompileJob::Kind::Ekl
                      ? compile_ekl(job.source, job.bindings, job.options)
                      : compile_cfdlang(job.source, job.options);
    if (!result && !job.name.empty())
      return result.error().with_context(job.name);
    return result;
  };
  std::size_t workers =
      parallel_jobs > 1
          ? std::min(jobs.size(), static_cast<std::size_t>(parallel_jobs))
          : 1;
  if (workers <= 1 || jobs.size() < 2) {
    std::vector<Expected<CompileResult>> results;
    results.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) results.push_back(one(i));
    return results;
  }
  std::shared_ptr<support::ThreadPool> pool;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    if (!pool_ || pool_->size() < workers) {
      pool_ = std::make_shared<support::ThreadPool>(workers);
      pool_->set_observer([this](std::size_t queued, std::size_t active) {
        recorder_.gauge("sdk.pool.queued").set(static_cast<double>(queued));
        recorder_.gauge("sdk.pool.active").set(static_cast<double>(active));
      });
    }
    pool = pool_;
  }
  return support::parallel_indexed(pool.get(), jobs.size(), one);
}

void Basecamp::attach_cache(CompileCache *cache) {
  cache_ = cache;
  if (cache_) cache_->attach_recorder(&recorder_);
}

Expected<CompileResult> Basecamp::result_from_cache(
    std::shared_ptr<ir::Module> frontend_ir, CompileCacheEntry entry,
    const CompileOptions &options, std::vector<StageTiming> timings) const {
  CompileResult result;
  result.frontend_ir = std::move(frontend_ir);
  result.teil_ir = std::move(entry.teil_ir);
  result.loop_ir = std::move(entry.loop_ir);
  result.system_ir = std::move(entry.system_ir);
  result.kernel = std::move(entry.kernel);
  result.estimate = entry.estimate;
  result.datapath_bits = entry.datapath_bits;
  result.olympus_options = options.olympus;
  if (options.number_format != "f64")
    result.olympus_options.element_bits = entry.datapath_bits;
  auto device = device_by_name(options.target);
  if (!device) return device.error();
  result.device = *device;
  result.timings = std::move(timings);
  return result;
}

Expected<CompileResult> Basecamp::backend(std::shared_ptr<ir::Module> frontend_ir,
                                          std::shared_ptr<ir::Module> teil_ir,
                                          const CompileOptions &options,
                                          std::vector<StageTiming> timings,
                                          const std::string &direct_fingerprint) {
  CompileResult result;
  result.frontend_ir = std::move(frontend_ir);

  if (auto s = ctx_.verify(*teil_ir); !s.is_ok())
    return Error::internal("basecamp: teil IR invalid: " + s.message());

  if (options.canonicalize) {
    // The mid-end runs as an anchored pass pipeline: canonicalize is
    // func-scoped, so the pass manager fingerprints each top-level func and
    // skips it on a per-pass cache hit — a repeat compile of an unchanged
    // kernel pays one print + hash instead of the rewrite fixpoint.
    auto status = timed(recorder_, timings, "canonicalize", [&] {
      ir::PassManager pm(ctx_);
      // Route pass spans and the ir.arena.* / ir.uselist.nodes storage
      // gauges into this Basecamp's recorder so they land in --trace-out
      // summaries instead of the process-global fallback.
      pm.attach_recorder(&recorder_);
      pm.add_func_pass("canonicalize",
                       [](ir::Operation &func, ir::Context &) {
                         return transforms::canonicalize_func_checked(func);
                       });
      if (cache_) pm.set_pass_cache(&cache_->pass_tier());
      return pm.run(*teil_ir);
    });
    if (!status.is_ok()) return Error::internal("basecamp: " + status.message());
    if (auto s = ctx_.verify(*teil_ir); !s.is_ok())
      return Error::internal("basecamp: teil IR invalid after canonicalize: " +
                             s.message());
  }

  // esn: raise einsums, pick the contraction order, lower back.
  if (options.optimize_einsum_order) {
    auto status = timed(recorder_, timings, "esn-reorder",
                        [&]() -> support::Status {
      transforms::extract_einsums(*teil_ir);
      transforms::eliminate_dead_code(*teil_ir);
      auto flops = transforms::lower_esn(*teil_ir, /*optimize_order=*/true);
      if (!flops) return support::Status::failure(flops.error().message);
      transforms::eliminate_dead_code(*teil_ir);
      return support::Status::ok();
    });
    if (!status.is_ok()) return Error::internal(status.message());
    if (auto s = ctx_.verify(*teil_ir); !s.is_ok())
      return Error::internal("basecamp: teil IR invalid after esn: " +
                             s.message());
  }
  result.teil_ir = teil_ir;

  // Content-addressed tier: keyed on the canonical (pre-base2-annotation)
  // TeIL text, so EKL and CFDlang sources lowering to the same tensor
  // program share one entry. A hit also refreshes the direct tier.
  std::uint64_t content_key = 0;
  if (cache_) {
    auto hit = timed(recorder_, timings, "cache-lookup",
                     [&]() -> Expected<CompileCacheEntry> {
      content_key =
          CompileCache::key(teil_ir->str(), options, options.target);
      return cache_->lookup(content_key);
    });
    if (hit) {
      if (!direct_fingerprint.empty())
        cache_->direct_store(direct_fingerprint, content_key,
                             result.frontend_ir);
      return result_from_cache(std::move(result.frontend_ir), std::move(*hit),
                               options, std::move(timings));
    }
  }

  // base2 format choice adjusts the datapath width seen by HLS.
  CompileOptions effective = options;
  result.datapath_bits = 64;
  if (options.number_format != "f64") {
    auto format = transforms::make_format(options.number_format);
    if (!format) return format.error();
    result.datapath_bits = (*format)->bit_width();
    effective.hls.datapath_bits = result.datapath_bits;
    effective.olympus.element_bits = result.datapath_bits;
  }

  // Loop lowering runs on the f64-typed TeIL; the base2 annotation is
  // applied afterwards so the exported teil_ir carries the chosen types.
  auto loops = timed(recorder_, timings, "lower-teil-to-loops",
                     [&] { return transforms::lower_teil_to_loops(*teil_ir); });
  if (!loops) return loops.error();
  if (auto s = ctx_.verify(**loops); !s.is_ok())
    return Error::internal("basecamp: loop IR invalid: " + s.message());
  result.loop_ir = *loops;

  if (options.number_format != "f64") {
    auto width = timed(recorder_, timings, "base2-legalize", [&] {
      return transforms::annotate_base2(*teil_ir, options.number_format);
    });
    if (!width) return width.error();
  }

  auto kernel = timed(recorder_, timings, "hls-schedule", [&] {
    return hls::schedule_kernel(**loops, effective.hls);
  });
  if (!kernel) return kernel.error();
  result.kernel = *kernel;

  auto device = device_by_name(options.target);
  if (!device) return device.error();
  result.device = *device;

  olympus::SystemGenerator generator(*device);
  result.olympus_options = effective.olympus;
  auto estimate = timed(recorder_, timings, "olympus-estimate", [&] {
    return generator.estimate(*kernel, effective.olympus);
  });
  if (!estimate) return estimate.error();
  result.estimate = *estimate;

  auto system_ir = timed(recorder_, timings, "olympus-generate", [&] {
    return generator.generate_ir(*kernel, effective.olympus);
  });
  if (!system_ir) return system_ir.error();
  // evp integration ops record the deployment intent on the module.
  {
    ir::OpBuilder b(&(*system_ir)->body());
    b.create("evp.platform", {}, {},
             {{"name", ir::Attribute(options.target)}});
    b.create("evp.offload", {}, {},
             {{"kernel", ir::Attribute(kernel->name)},
              {"format", ir::Attribute(options.number_format)}});
  }
  if (auto s = ctx_.verify(**system_ir); !s.is_ok())
    return Error::internal("basecamp: system IR invalid: " + s.message());
  result.system_ir = *system_ir;

  if (cache_) {
    cache_->store(content_key,
                  CompileCacheEntry{result.teil_ir, result.loop_ir,
                                    result.system_ir, result.kernel,
                                    result.estimate, result.datapath_bits});
    if (!direct_fingerprint.empty())
      cache_->direct_store(direct_fingerprint, content_key,
                           result.frontend_ir);
  }

  result.timings = std::move(timings);
  return result;
}

Expected<double> Basecamp::deploy_and_run(platform::Device &device,
                                          const CompileResult &result) const {
  olympus::SystemGenerator generator(result.device);
  return generator.execute_on(device, result.kernel, result.olympus_options);
}

Expected<double> Basecamp::deploy_and_run(platform::Device &device,
                                          const CompileResult &result,
                                          const resil::ExecutionPolicy &policy) {
  olympus::SystemGenerator generator(result.device);
  auto attempt = [&]() -> Expected<double> {
    auto us = generator.execute_on(device, result.kernel,
                                   result.olympus_options);
    if (!us) return us;
    // The simulated run completed but blew its budget: classify as a
    // retryable deadline miss (a later attempt may dodge the injected
    // kernel hang that caused it).
    if (policy.deadline.enabled() && *us > policy.deadline.deadline_us)
      return support::Error::deadline_exceeded(
          "sdk: device run took " + std::to_string(*us) + " us, past the " +
          std::to_string(policy.deadline.deadline_us) + " us deadline on " +
          device.spec().name);
    return us;
  };
  return resil::with_retry(
      policy.retry, attempt, [&](double us) { device.host_wait_us(us); },
      &recorder_, "deploy");
}

Expected<std::unique_ptr<serve::Server>> Basecamp::make_server(
    std::shared_ptr<const ir::Module> graph,
    std::shared_ptr<const runtime::NodeRegistry> registry,
    serve::ServerOptions options, platform::Device *device,
    const std::string &kernel, const runtime::DfgExecOptions &exec) {
  std::vector<std::unique_ptr<serve::Backend>> backends;
  if (device != nullptr) {
    auto device_compute =
        serve::DfgBackend::create(graph, registry, exec, &recorder_);
    if (!device_compute) {
      return device_compute.error().with_context("basecamp make_server");
    }
    auto fpga = serve::DeviceBackend::create(device, kernel,
                                             std::move(*device_compute));
    if (!fpga) return fpga.error().with_context("basecamp make_server");
    backends.push_back(std::move(*fpga));
  }
  auto host = serve::DfgBackend::create(std::move(graph), std::move(registry),
                                        exec, &recorder_);
  if (!host) return host.error().with_context("basecamp make_server");
  backends.push_back(std::move(*host));
  auto server =
      serve::Server::create(std::move(backends), std::move(options), &recorder_);
  if (!server) return server.error().with_context("basecamp make_server");
  return std::move(*server);
}

}  // namespace everest::sdk
