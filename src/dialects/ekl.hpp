// everest/dialects/ekl.hpp
//
// The EVEREST Kernel Language dialect (paper §V-A.1, Fig. 3): a tensor
// expression IR with named indices supporting the four extensions the paper
// calls out beyond classic tensor DSLs:
//   - in-place construction        (ekl.stack:   i_T = [j_T, j_T+1])
//   - broadcasting                 (index-set union on ekl.binary)
//   - index re-association         (named index sets per value)
//   - subscripted subscripts       (ekl.gather:  k[i_eta[x,e], g])
//
// Every value-producing EKL op carries an "indices" string-array attribute
// naming the result dimensions, aligned with the result tensor type.
#pragma once

#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "ir/dialect.hpp"

namespace everest::dialects::ekl {

/// Index names of an EKL value (empty for scalars / non-EKL values).
std::vector<std::string> result_indices(const ir::Value &value);

/// Union of two index sets preserving first-seen order (broadcast rule).
std::vector<std::string> union_indices(const std::vector<std::string> &a,
                                       const std::vector<std::string> &b);

/// Builder helpers producing verified EKL ops. Types are tensor<?x..xf64>
/// with one dynamic dim per index (extents are bound at evaluation time).
ir::Value *make_input(ir::OpBuilder &b, const std::string &name,
                      const std::vector<std::string> &indices);
ir::Value *make_index(ir::OpBuilder &b, const std::string &name);
ir::Value *make_literal(ir::OpBuilder &b, double value);
ir::Value *make_binary(ir::OpBuilder &b, const std::string &fn, ir::Value *lhs,
                       ir::Value *rhs);
ir::Value *make_compare(ir::OpBuilder &b, const std::string &predicate,
                        ir::Value *lhs, ir::Value *rhs);
ir::Value *make_select(ir::OpBuilder &b, ir::Value *cond, ir::Value *then_v,
                       ir::Value *else_v);
ir::Value *make_sum(ir::OpBuilder &b, ir::Value *operand,
                    const std::vector<std::string> &reduce);
ir::Value *make_gather(ir::OpBuilder &b, ir::Value *source,
                       const std::vector<ir::Value *> &index_exprs);
ir::Value *make_stack(ir::OpBuilder &b, const std::vector<ir::Value *> &parts,
                      const std::string &new_index);
void make_output(ir::OpBuilder &b, const std::string &name, ir::Value *value);

/// Creates an `ekl.kernel` op with one region/one block inside `block` and
/// returns a builder positioned in its body.
ir::Operation &make_kernel(ir::Block &parent, const std::string &name);

}  // namespace everest::dialects::ekl
