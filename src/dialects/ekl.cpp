#include "dialects/ekl.hpp"

#include <algorithm>

#include "dialects/registry.hpp"

namespace everest::dialects {

using ir::Attribute;
using ir::OpDef;
using ir::Operation;
using ir::Type;
using ir::Value;
using support::Status;

namespace {

/// All value-producing EKL ops must carry "indices" naming result dims.
Status verify_has_indices(const Operation &op) {
  const Attribute *a = op.attr("indices");
  if (!a || !a->is_array())
    return Status::failure(op.name() + ": missing 'indices' array attribute");
  return Status::ok();
}

}  // namespace

void register_ekl(ir::Context &ctx) {
  auto &d = ctx.make_dialect("ekl");

  OpDef kernel;
  kernel.num_operands = 0;
  kernel.num_results = 0;
  kernel.num_regions = 1;
  kernel.summary = "an EVEREST Kernel Language program";
  kernel.required_attrs = {"sym_name"};
  d.add_op("kernel", kernel);

  OpDef input;
  input.num_operands = 0;
  input.num_results = 1;
  input.summary = "declares a named input tensor with named indices";
  input.required_attrs = {"name", "indices"};
  d.add_op("input", input);

  OpDef index;
  index.num_operands = 0;
  index.num_results = 1;
  index.summary = "the value of an iteration index (i64, indexed by itself)";
  index.required_attrs = {"name", "indices"};
  d.add_op("index", index);

  OpDef literal;
  literal.num_operands = 0;
  literal.num_results = 1;
  literal.summary = "scalar literal";
  literal.required_attrs = {"value", "indices"};
  d.add_op("literal", literal);

  OpDef binary;
  binary.num_operands = 2;
  binary.num_results = 1;
  binary.summary = "broadcasting elementwise binary op (fn: add/sub/mul/div/min/max)";
  binary.required_attrs = {"fn", "indices"};
  binary.verifier = [](const Operation &op) -> Status {
    static const char *fns[] = {"add", "sub", "mul", "div", "min", "max"};
    std::string fn = op.attr_string("fn");
    if (std::find(std::begin(fns), std::end(fns), fn) == std::end(fns))
      return Status::failure("ekl.binary: unknown fn '" + fn + "'");
    return verify_has_indices(op);
  };
  d.add_op("binary", binary);

  OpDef compare;
  compare.num_operands = 2;
  compare.num_results = 1;
  compare.summary = "broadcasting comparison producing 0/1";
  compare.required_attrs = {"predicate", "indices"};
  d.add_op("compare", compare);

  OpDef select;
  select.num_operands = 3;
  select.num_results = 1;
  select.summary = "elementwise select(cond, a, b)";
  select.required_attrs = {"indices"};
  d.add_op("select", select);

  OpDef sum;
  sum.num_operands = 1;
  sum.num_results = 1;
  sum.summary = "sum-reduction over the named indices";
  sum.required_attrs = {"reduce", "indices"};
  sum.verifier = [](const Operation &op) -> Status {
    if (auto s = verify_has_indices(op); !s.is_ok()) return s;
    // Reduced indices must be part of the operand's index set.
    auto operand_idx = ekl::result_indices(*op.operand(0));
    for (const auto &r : op.attr("reduce")->as_string_vector()) {
      if (std::find(operand_idx.begin(), operand_idx.end(), r) ==
          operand_idx.end())
        return Status::failure("ekl.sum: reduced index '" + r +
                               "' not present in operand");
    }
    return Status::ok();
  };
  d.add_op("sum", sum);

  OpDef gather;
  gather.num_operands = -1;  // source + one index expression per source dim
  gather.num_results = 1;
  gather.summary = "subscripted subscripts: src[e0[...], e1[...], ...]";
  gather.required_attrs = {"indices"};
  gather.verifier = [](const Operation &op) -> Status {
    if (op.num_operands() < 2)
      return Status::failure("ekl.gather: needs source + >=1 index expr");
    return verify_has_indices(op);
  };
  d.add_op("gather", gather);

  OpDef stack;
  stack.num_operands = -1;
  stack.num_results = 1;
  stack.summary = "in-place construction: stacks operands along a new index";
  stack.required_attrs = {"new_index", "indices"};
  stack.verifier = [](const Operation &op) -> Status {
    if (op.num_operands() < 1)
      return Status::failure("ekl.stack: needs at least one operand");
    return verify_has_indices(op);
  };
  d.add_op("stack", stack);

  OpDef output;
  output.num_operands = 1;
  output.num_results = 0;
  output.summary = "binds the operand to a named kernel output";
  output.required_attrs = {"name"};
  d.add_op("output", output);
}

namespace ekl {

std::vector<std::string> result_indices(const Value &value) {
  const Operation *def = value.defining_op();
  if (!def) return {};
  const Attribute *a = def->attr("indices");
  if (!a || !a->is_array()) return {};
  return a->as_string_vector();
}

std::vector<std::string> union_indices(const std::vector<std::string> &a,
                                       const std::vector<std::string> &b) {
  std::vector<std::string> out = a;
  for (const auto &x : b) {
    if (std::find(out.begin(), out.end(), x) == out.end()) out.push_back(x);
  }
  return out;
}

namespace {

/// EKL values are dynamically-shaped f64 tensors, one dim per named index.
Type ekl_type(const std::vector<std::string> &indices) {
  if (indices.empty()) return Type::floating(64);
  return Type::tensor(std::vector<std::int64_t>(indices.size(), -1),
                      Type::floating(64));
}

Attribute indices_attr(const std::vector<std::string> &indices) {
  return Attribute::string_array(indices);
}

}  // namespace

Value *make_input(ir::OpBuilder &b, const std::string &name,
                  const std::vector<std::string> &indices) {
  return b.create_value(
      "ekl.input", {}, ekl_type(indices),
      {{"name", Attribute(name)}, {"indices", indices_attr(indices)}});
}

Value *make_index(ir::OpBuilder &b, const std::string &name) {
  std::vector<std::string> indices{name};
  return b.create_value(
      "ekl.index", {}, ekl_type(indices),
      {{"name", Attribute(name)}, {"indices", indices_attr(indices)}});
}

Value *make_literal(ir::OpBuilder &b, double value) {
  return b.create_value(
      "ekl.literal", {}, Type::floating(64),
      {{"value", Attribute(value)}, {"indices", indices_attr({})}});
}

Value *make_binary(ir::OpBuilder &b, const std::string &fn, Value *lhs,
                   Value *rhs) {
  auto indices = union_indices(result_indices(*lhs), result_indices(*rhs));
  return b.create_value(
      "ekl.binary", {lhs, rhs}, ekl_type(indices),
      {{"fn", Attribute(fn)}, {"indices", indices_attr(indices)}});
}

Value *make_compare(ir::OpBuilder &b, const std::string &predicate, Value *lhs,
                    Value *rhs) {
  auto indices = union_indices(result_indices(*lhs), result_indices(*rhs));
  return b.create_value(
      "ekl.compare", {lhs, rhs}, ekl_type(indices),
      {{"predicate", Attribute(predicate)}, {"indices", indices_attr(indices)}});
}

Value *make_select(ir::OpBuilder &b, Value *cond, Value *then_v, Value *else_v) {
  auto indices = union_indices(
      result_indices(*cond),
      union_indices(result_indices(*then_v), result_indices(*else_v)));
  return b.create_value("ekl.select", {cond, then_v, else_v}, ekl_type(indices),
                        {{"indices", indices_attr(indices)}});
}

Value *make_sum(ir::OpBuilder &b, Value *operand,
                const std::vector<std::string> &reduce) {
  std::vector<std::string> indices;
  for (const auto &i : result_indices(*operand)) {
    if (std::find(reduce.begin(), reduce.end(), i) == reduce.end())
      indices.push_back(i);
  }
  return b.create_value("ekl.sum", {operand}, ekl_type(indices),
                        {{"reduce", Attribute::string_array(reduce)},
                         {"indices", indices_attr(indices)}});
}

Value *make_gather(ir::OpBuilder &b, Value *source,
                   const std::vector<Value *> &index_exprs) {
  std::vector<std::string> indices;
  for (Value *e : index_exprs)
    indices = union_indices(indices, result_indices(*e));
  // Subscripts bind positionally to the leading source dims; unsubscripted
  // trailing dims keep their index names (ekl_parser.hpp): m[r, i]
  // subscripted as m[r] stays indexed by i. Without them in "indices" the
  // result type drops the retained dims and both the evaluator and the
  // teil lowering lose those iteration axes.
  const auto source_indices = result_indices(*source);
  for (std::size_t d = index_exprs.size(); d < source_indices.size(); ++d)
    indices = union_indices(indices, {source_indices[d]});
  std::vector<Value *> operands{source};
  operands.insert(operands.end(), index_exprs.begin(), index_exprs.end());
  return b.create_value("ekl.gather", operands, ekl_type(indices),
                        {{"indices", indices_attr(indices)}});
}

Value *make_stack(ir::OpBuilder &b, const std::vector<Value *> &parts,
                  const std::string &new_index) {
  std::vector<std::string> indices;
  for (Value *p : parts) indices = union_indices(indices, result_indices(*p));
  indices.push_back(new_index);
  return b.create_value("ekl.stack", parts, ekl_type(indices),
                        {{"new_index", Attribute(new_index)},
                         {"indices", indices_attr(indices)}});
}

void make_output(ir::OpBuilder &b, const std::string &name, Value *value) {
  b.create("ekl.output", {value}, {}, {{"name", Attribute(name)}});
}

Operation &make_kernel(ir::Block &parent, const std::string &name) {
  Operation *op =
      Operation::create(parent.arena(), ir::Symbol("ekl.kernel"), {}, {},
                        {{"sym_name", Attribute(name)}}, 1);
  op->region(0).add_block();
  return parent.attach(op);
}

}  // namespace ekl

}  // namespace everest::dialects
