// System-side dialects: base2/bit (custom binary numeral types, ref [7]),
// evp (EVEREST platform integration), olympus (system-level dataflow and
// memory architecture, refs [16][24][25][26]).

#include "dialects/registry.hpp"

using everest::ir::Attribute;
using everest::ir::Context;
using everest::ir::OpDef;
using everest::ir::Operation;
using everest::ir::Type;
using everest::support::Status;

namespace everest::dialects {

namespace {

/// Accepts !base2.fixed<t,f>, !base2.float<e,m>, !base2.posit<n,es>.
bool is_base2_type(const Type &t) {
  return t.is_custom() && t.dialect() == "base2" &&
         (t.name() == "fixed" || t.name() == "float" || t.name() == "posit") &&
         t.params().size() == 2;
}

}  // namespace

void register_base2(Context &ctx) {
  auto &d = ctx.make_dialect("base2");

  OpDef quantize;
  quantize.num_operands = 1;
  quantize.num_results = 1;
  quantize.summary = "converts f64/tensor to a custom binary numeral type";
  quantize.verifier = [](const Operation &op) -> Status {
    const Type &t = op.result(0)->type();
    const Type &elem = t.is_tensor() ? t.element() : t;
    if (!is_base2_type(elem))
      return Status::failure("base2.quantize: result must be a base2 type");
    return Status::ok();
  };
  d.add_op("quantize", quantize);

  OpDef dequantize;
  dequantize.num_operands = 1;
  dequantize.num_results = 1;
  dequantize.summary = "converts a base2 value back to f64";
  d.add_op("dequantize", dequantize);

  OpDef cast;
  cast.num_operands = 1;
  cast.num_results = 1;
  cast.summary = "converts between base2 formats (round-to-nearest)";
  d.add_op("cast", cast);

  auto arith = [&](const char *name) {
    OpDef def;
    def.num_operands = 2;
    def.num_results = 1;
    def.summary = std::string("base2 ") + name + " in the operand format";
    def.verifier = [](const Operation &op) -> Status {
      if (op.operand(0)->type() != op.operand(1)->type())
        return Status::failure(op.name() + ": operand formats must match");
      return Status::ok();
    };
    d.add_op(name, def);
  };
  arith("add");
  arith("sub");
  arith("mul");
  arith("div");
}

void register_bit(Context &ctx) {
  auto &d = ctx.make_dialect("bit");

  auto binary = [&](const char *name, const char *summary) {
    OpDef def;
    def.num_operands = 2;
    def.num_results = 1;
    def.summary = summary;
    d.add_op(name, def);
  };
  binary("and", "bitwise and");
  binary("or", "bitwise or");
  binary("xor", "bitwise xor");
  binary("shl", "shift left");
  binary("shr", "logical shift right");
  binary("concat", "bit concatenation");

  OpDef extract;
  extract.num_operands = 1;
  extract.num_results = 1;
  extract.summary = "extracts bits [lo, lo+width)";
  extract.required_attrs = {"lo", "width"};
  d.add_op("extract", extract);
}

void register_evp(Context &ctx) {
  auto &d = ctx.make_dialect("evp");

  OpDef platform;
  platform.num_operands = 0;
  platform.num_results = 0;
  platform.summary = "declares the target platform for the enclosing module";
  platform.required_attrs = {"name"};
  d.add_op("platform", platform);

  OpDef offload;
  offload.num_operands = 0;
  offload.num_results = 0;
  offload.summary = "marks a kernel for FPGA offloading";
  offload.required_attrs = {"kernel"};
  d.add_op("offload", offload);

  OpDef requirement;
  requirement.num_operands = 0;
  requirement.num_results = 0;
  requirement.summary = "resource requirement hint for the runtime";
  d.add_op("require", requirement);
}

void register_olympus(Context &ctx) {
  auto &d = ctx.make_dialect("olympus");

  OpDef system;
  system.num_operands = 0;
  system.num_results = 0;
  system.num_regions = 1;
  system.summary = "an FPGA system architecture under construction";
  system.required_attrs = {"sym_name", "platform"};
  d.add_op("system", system);

  OpDef kernel;
  kernel.num_operands = 0;
  kernel.num_results = 1;
  kernel.summary = "a kernel instance (HLS-scheduled accelerator)";
  kernel.required_attrs = {"name"};
  kernel.verifier = [](const Operation &op) -> Status {
    if (op.attr_int("replicas", 1) < 1)
      return Status::failure("olympus.kernel: replicas must be >= 1");
    return Status::ok();
  };
  d.add_op("kernel", kernel);

  OpDef plm;
  plm.num_operands = 0;
  plm.num_results = 1;
  plm.summary = "private local memory (BRAM/URAM buffer)";
  plm.required_attrs = {"name", "bytes"};
  plm.verifier = [](const Operation &op) -> Status {
    if (op.attr_int("bytes") <= 0)
      return Status::failure("olympus.plm: bytes must be positive");
    if (op.attr_int("banks", 1) < 1)
      return Status::failure("olympus.plm: banks must be >= 1");
    return Status::ok();
  };
  d.add_op("plm", plm);

  OpDef bus;
  bus.num_operands = 0;
  bus.num_results = 1;
  bus.summary = "memory bus with optional lane split (ref [24])";
  bus.required_attrs = {"width_bits"};
  bus.verifier = [](const Operation &op) -> Status {
    std::int64_t width = op.attr_int("width_bits");
    std::int64_t lanes = op.attr_int("lanes", 1);
    if (width <= 0 || lanes <= 0)
      return Status::failure("olympus.bus: width/lanes must be positive");
    if (width % lanes != 0)
      return Status::failure("olympus.bus: width must divide evenly into lanes");
    return Status::ok();
  };
  d.add_op("bus", bus);

  OpDef memory;
  memory.num_operands = 0;
  memory.num_results = 1;
  memory.summary = "external memory node (hbm/ddr/host)";
  memory.required_attrs = {"kind"};
  d.add_op("memory", memory);

  OpDef bind;
  bind.num_operands = 2;
  bind.num_results = 0;
  bind.summary = "connects a kernel port to a PLM/bus/memory";
  bind.required_attrs = {"port", "direction"};
  bind.verifier = [](const Operation &op) -> Status {
    std::string dir = op.attr_string("direction");
    if (dir != "read" && dir != "write" && dir != "readwrite")
      return Status::failure("olympus.bind: direction must be read/write/readwrite");
    return Status::ok();
  };
  d.add_op("bind", bind);

  OpDef transfer;
  transfer.num_operands = 0;
  transfer.num_results = 0;
  transfer.summary = "host<->device data transfer in the generated driver";
  transfer.required_attrs = {"direction", "bytes"};
  d.add_op("host_transfer", transfer);
}

}  // namespace everest::dialects
