// Tensor intermediate dialects: teil (typed imperative tensor language,
// ref [23]), esn (Einstein notation), cfdlang (legacy frontend, ref [22]).

#include <algorithm>

#include "dialects/registry.hpp"

using everest::ir::Attribute;
using everest::ir::Context;
using everest::ir::OpDef;
using everest::ir::Operation;
using everest::support::Status;

namespace everest::dialects {

namespace {

Status verify_static_tensor_result(const Operation &op) {
  for (std::size_t i = 0; i < op.num_results(); ++i) {
    const auto &t = op.result(i)->type();
    if (!t.is_tensor() && !t.is_scalar_numeric())
      return Status::failure(op.name() + ": result must be tensor or scalar");
    if (t.is_tensor()) {
      for (auto d : t.dims()) {
        if (d < 0)
          return Status::failure(op.name() +
                                 ": teil tensors must have static shapes");
      }
    }
  }
  return Status::ok();
}

}  // namespace

void register_teil(Context &ctx) {
  auto &d = ctx.make_dialect("teil");

  OpDef func;
  func.num_operands = 0;
  func.num_results = 0;
  func.num_regions = 1;
  func.summary = "a TeIL tensor program with static shapes";
  func.required_attrs = {"sym_name"};
  d.add_op("func", func);

  OpDef input;
  input.num_operands = 0;
  input.num_results = 1;
  input.summary = "named program input";
  input.required_attrs = {"name"};
  input.verifier = verify_static_tensor_result;
  d.add_op("input", input);

  OpDef constant;
  constant.num_operands = 0;
  constant.num_results = 1;
  constant.summary = "splat constant tensor or scalar";
  constant.required_attrs = {"value"};
  constant.verifier = verify_static_tensor_result;
  d.add_op("constant", constant);

  OpDef iota;
  iota.num_operands = 0;
  iota.num_results = 1;
  iota.summary = "rank-1 tensor [0, 1, ..., n-1]";
  iota.verifier = verify_static_tensor_result;
  d.add_op("iota", iota);

  OpDef map;
  map.num_operands = -1;
  map.num_results = 1;
  map.summary = "elementwise map (fn: add/sub/mul/div/min/max/select/cmp_*)";
  map.required_attrs = {"fn"};
  map.verifier = [](const Operation &op) -> Status {
    if (op.num_operands() < 1)
      return Status::failure("teil.map: needs at least one operand");
    return verify_static_tensor_result(op);
  };
  d.add_op("map", map);

  OpDef broadcast;
  broadcast.num_operands = 1;
  broadcast.num_results = 1;
  broadcast.summary = "broadcast into a larger shape; 'map' gives source dim per output dim (-1 = new)";
  broadcast.required_attrs = {"map"};
  broadcast.verifier = verify_static_tensor_result;
  d.add_op("broadcast", broadcast);

  OpDef reduce;
  reduce.num_operands = 1;
  reduce.num_results = 1;
  reduce.summary = "sum-reduction over axes";
  reduce.required_attrs = {"axes"};
  reduce.verifier = verify_static_tensor_result;
  d.add_op("reduce", reduce);

  OpDef contract;
  contract.num_operands = 2;
  contract.num_results = 1;
  contract.summary = "binary tensor contraction (einsum subscripts)";
  contract.required_attrs = {"lhs", "rhs", "out"};
  contract.verifier = verify_static_tensor_result;
  d.add_op("contract", contract);

  OpDef gather;
  gather.num_operands = -1;
  gather.num_results = 1;
  gather.summary = "src indexed by integer index tensors (one per src dim)";
  gather.verifier = [](const Operation &op) -> Status {
    if (op.num_operands() < 2)
      return Status::failure("teil.gather: needs source + index tensors");
    return verify_static_tensor_result(op);
  };
  d.add_op("gather", gather);

  OpDef stack;
  stack.num_operands = -1;
  stack.num_results = 1;
  stack.summary = "stacks operands along a new trailing axis";
  stack.verifier = verify_static_tensor_result;
  d.add_op("stack", stack);

  OpDef transpose;
  transpose.num_operands = 1;
  transpose.num_results = 1;
  transpose.summary = "permutes dimensions";
  transpose.required_attrs = {"perm"};
  transpose.verifier = verify_static_tensor_result;
  d.add_op("transpose", transpose);

  OpDef output;
  output.num_operands = 1;
  output.num_results = 0;
  output.summary = "binds a value to a named program output";
  output.required_attrs = {"name"};
  d.add_op("output", output);
}

void register_esn(Context &ctx) {
  auto &d = ctx.make_dialect("esn");

  OpDef einsum;
  einsum.num_operands = -1;
  einsum.num_results = 1;
  einsum.summary = "n-ary Einstein summation; subscripts per operand + output";
  einsum.required_attrs = {"subscripts", "out"};
  einsum.verifier = [](const Operation &op) -> Status {
    const Attribute *subs = op.attr("subscripts");
    if (!subs->is_array() || subs->as_array().size() != op.num_operands())
      return Status::failure(
          "esn.einsum: one subscript string required per operand");
    return Status::ok();
  };
  d.add_op("einsum", einsum);

  OpDef elementwise;
  elementwise.num_operands = -1;
  elementwise.num_results = 1;
  elementwise.summary = "elementwise op over aligned subscripts";
  elementwise.required_attrs = {"fn", "subscripts", "out"};
  d.add_op("elementwise", elementwise);
}

void register_cfdlang(Context &ctx) {
  auto &d = ctx.make_dialect("cfdlang");

  OpDef program;
  program.num_operands = 0;
  program.num_results = 0;
  program.num_regions = 1;
  program.summary = "a CFDlang program (legacy tensor DSL)";
  program.required_attrs = {"sym_name"};
  d.add_op("program", program);

  OpDef input;
  input.num_operands = 0;
  input.num_results = 1;
  input.summary = "declared input tensor";
  input.required_attrs = {"name"};
  d.add_op("input", input);

  OpDef outer;
  outer.num_operands = 2;
  outer.num_results = 1;
  outer.summary = "tensor (outer) product: result rank = sum of ranks";
  d.add_op("outer", outer);

  OpDef contract;
  contract.num_operands = 1;
  contract.num_results = 1;
  contract.summary = "contracts dimension pairs of the operand";
  contract.required_attrs = {"pairs"};
  contract.verifier = [](const Operation &op) -> Status {
    const Attribute *pairs = op.attr("pairs");
    if (!pairs->is_array() || pairs->as_array().size() % 2 != 0)
      return Status::failure("cfdlang.contract: 'pairs' must list dim pairs");
    return Status::ok();
  };
  d.add_op("contract", contract);

  OpDef add;
  add.num_operands = 2;
  add.num_results = 1;
  add.summary = "elementwise addition of same-shape tensors";
  d.add_op("add", add);

  OpDef transpose;
  transpose.num_operands = 1;
  transpose.num_results = 1;
  transpose.summary = "dimension permutation";
  transpose.required_attrs = {"perm"};
  d.add_op("transpose", transpose);

  OpDef output;
  output.num_operands = 1;
  output.num_results = 0;
  output.summary = "program output";
  output.required_attrs = {"name"};
  d.add_op("output", output);
}

}  // namespace everest::dialects
