// The dfg (dataflow/coordination) dialect: target of the ConDRust frontend
// (paper §V-A.2, Fig. 4). A dfg.graph contains nodes connected by typed
// streams; nodes carry placement hints consumed by the CPU/FPGA partitioner.

#include "dialects/registry.hpp"

using everest::ir::Attribute;
using everest::ir::Context;
using everest::ir::OpDef;
using everest::ir::Operation;
using everest::ir::Type;
using everest::support::Status;

namespace everest::dialects {

void register_dfg(Context &ctx) {
  auto &d = ctx.make_dialect("dfg");

  OpDef graph;
  graph.num_operands = 0;
  graph.num_results = 0;
  graph.num_regions = 1;
  graph.summary = "a deterministic dataflow graph (ConDRust semantics)";
  graph.required_attrs = {"sym_name"};
  d.add_op("graph", graph);

  OpDef input;
  input.num_operands = 0;
  input.num_results = 1;
  input.summary = "external input stream";
  input.required_attrs = {"name"};
  input.verifier = [](const Operation &op) -> Status {
    const Type &t = op.result(0)->type();
    if (!t.is_custom() || t.dialect() != "dfg" || t.name() != "stream")
      return Status::failure("dfg.input: result must be !dfg.stream<...>");
    return Status::ok();
  };
  d.add_op("input", input);

  OpDef node;
  node.num_operands = -1;
  node.num_results = -1;
  node.summary = "a stateless operator applied per stream element";
  node.required_attrs = {"callee"};
  node.verifier = [](const Operation &op) -> Status {
    std::string placement = op.attr_string("placement", "any");
    if (placement != "any" && placement != "cpu" && placement != "fpga")
      return Status::failure("dfg.node: placement must be any/cpu/fpga");
    return Status::ok();
  };
  d.add_op("node", node);

  OpDef smap;
  smap.num_operands = -1;
  smap.num_results = -1;
  smap.num_regions = 1;
  smap.summary = "data-parallel map over a stream (order-preserving)";
  d.add_op("smap", smap);

  OpDef fold;
  fold.num_operands = -1;
  fold.num_results = -1;
  fold.summary = "ordered stateful fold (runs sequentially; preserves determinism)";
  fold.required_attrs = {"callee"};
  d.add_op("fold", fold);

  OpDef split;
  split.num_operands = 1;
  split.num_results = -1;
  split.summary = "round-robin splits a stream for parallel workers";
  d.add_op("split", split);

  OpDef merge;
  merge.num_operands = -1;
  merge.num_results = 1;
  merge.summary = "order-restoring merge of split streams";
  d.add_op("merge", merge);

  OpDef yield;
  yield.num_operands = -1;
  yield.num_results = 0;
  yield.summary = "terminates an smap body, forwarding element results";
  d.add_op("yield", yield);

  OpDef output;
  output.num_operands = 1;
  output.num_results = 0;
  output.summary = "external output stream";
  output.required_attrs = {"name"};
  d.add_op("output", output);
}

}  // namespace everest::dialects
