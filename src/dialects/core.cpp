// Core-like dialects: arith, func, scf, tensor, memref. These mirror the
// MLIR builtin dialects the EVEREST lowerings target (green boxes in Fig. 5).

#include "dialects/registry.hpp"

using everest::ir::Attribute;
using everest::ir::Context;
using everest::ir::OpDef;
using everest::ir::Operation;
using everest::support::Status;

namespace everest::dialects {

void register_arith(Context &ctx) {
  auto &d = ctx.make_dialect("arith");

  OpDef constant;
  constant.num_operands = 0;
  constant.num_results = 1;
  constant.summary = "materializes a compile-time constant";
  constant.required_attrs = {"value"};
  d.add_op("constant", constant);

  auto binary = [&](const char *name, const char *summary) {
    OpDef def;
    def.num_operands = 2;
    def.num_results = 1;
    def.summary = summary;
    def.verifier = [](const Operation &op) -> Status {
      if (op.operand(0)->type() != op.operand(1)->type())
        return Status::failure("arith: operand types must match in " +
                               op.name());
      return Status::ok();
    };
    d.add_op(name, def);
  };
  binary("addf", "floating-point addition");
  binary("subf", "floating-point subtraction");
  binary("mulf", "floating-point multiplication");
  binary("divf", "floating-point division");
  binary("minf", "floating-point minimum");
  binary("maxf", "floating-point maximum");
  binary("addi", "integer addition");
  binary("subi", "integer subtraction");
  binary("muli", "integer multiplication");

  OpDef cmpf;
  cmpf.num_operands = 2;
  cmpf.num_results = 1;
  cmpf.summary = "floating-point comparison";
  cmpf.required_attrs = {"predicate"};
  d.add_op("cmpf", cmpf);

  OpDef cmpi = cmpf;
  cmpi.summary = "integer comparison";
  d.add_op("cmpi", cmpi);

  OpDef select;
  select.num_operands = 3;
  select.num_results = 1;
  select.summary = "ternary select on an i1 condition";
  select.verifier = [](const Operation &op) -> Status {
    if (op.operand(1)->type() != op.operand(2)->type())
      return Status::failure("arith.select: branch types must match");
    return Status::ok();
  };
  d.add_op("select", select);

  auto unary = [&](const char *name, const char *summary) {
    OpDef def;
    def.num_operands = 1;
    def.num_results = 1;
    def.summary = summary;
    d.add_op(name, def);
  };
  unary("negf", "floating-point negation");
  unary("exp", "exponential");
  unary("log", "natural logarithm");
  unary("sqrt", "square root");
  unary("floor", "floor");
  unary("index_cast", "cast between index and integer types");
  unary("sitofp", "signed integer to floating point");
  unary("fptosi", "floating point to signed integer");
  unary("truncf", "floating-point truncation to a narrower type");
  unary("extf", "floating-point extension to a wider type");
}

void register_func(Context &ctx) {
  auto &d = ctx.make_dialect("func");

  OpDef func;
  func.num_operands = 0;
  func.num_results = 0;
  func.num_regions = 1;
  func.summary = "a named function with one body region";
  func.required_attrs = {"sym_name"};
  d.add_op("func", func);

  OpDef ret;
  ret.num_operands = -1;
  ret.num_results = 0;
  ret.summary = "returns from the enclosing function";
  d.add_op("return", ret);

  OpDef call;
  call.num_operands = -1;
  call.num_results = -1;
  call.summary = "direct call to a named function";
  call.required_attrs = {"callee"};
  d.add_op("call", call);
}

void register_scf(Context &ctx) {
  auto &d = ctx.make_dialect("scf");

  OpDef forop;
  forop.num_operands = -1;  // lo, hi, step, init values...
  forop.num_results = -1;
  forop.num_regions = 1;
  forop.summary = "counted loop (lo, hi, step, iter_args...)";
  forop.verifier = [](const Operation &op) -> Status {
    if (op.num_operands() < 3)
      return Status::failure("scf.for: needs at least lo, hi, step");
    if (op.region(0).empty() || op.region(0).front().num_arguments() < 1)
      return Status::failure("scf.for: body needs an induction variable");
    return Status::ok();
  };
  d.add_op("for", forop);

  OpDef parallel = forop;
  parallel.summary = "parallel counted loop nest";
  parallel.verifier = nullptr;
  d.add_op("parallel", parallel);

  OpDef ifop;
  ifop.num_operands = 1;
  ifop.num_results = -1;
  ifop.num_regions = 2;
  ifop.summary = "conditional with then/else regions";
  d.add_op("if", ifop);

  OpDef yield;
  yield.num_operands = -1;
  yield.num_results = 0;
  yield.summary = "terminates an scf region, forwarding values";
  d.add_op("yield", yield);

  OpDef execute;
  execute.num_operands = -1;
  execute.num_results = -1;
  execute.num_regions = 1;
  execute.summary = "region executed as a pipeline stage";
  d.add_op("execute_region", execute);
}

void register_tensor(Context &ctx) {
  auto &d = ctx.make_dialect("tensor");

  OpDef empty;
  empty.num_operands = 0;
  empty.num_results = 1;
  empty.summary = "creates an uninitialized tensor";
  d.add_op("empty", empty);

  OpDef extract;
  extract.num_operands = -1;  // tensor + indices
  extract.num_results = 1;
  extract.summary = "reads one element of a tensor";
  extract.verifier = [](const Operation &op) -> Status {
    if (op.num_operands() < 1 || !op.operand(0)->type().is_tensor())
      return Status::failure("tensor.extract: first operand must be a tensor");
    return Status::ok();
  };
  d.add_op("extract", extract);

  OpDef insert;
  insert.num_operands = -1;  // scalar, tensor, indices
  insert.num_results = 1;
  insert.summary = "writes one element, yielding the updated tensor";
  d.add_op("insert", insert);

  OpDef dim;
  dim.num_operands = 1;
  dim.num_results = 1;
  dim.summary = "queries a dimension size";
  dim.required_attrs = {"index"};
  d.add_op("dim", dim);
}

void register_memref(Context &ctx) {
  auto &d = ctx.make_dialect("memref");

  OpDef alloc;
  alloc.num_operands = 0;
  alloc.num_results = 1;
  alloc.summary = "allocates a buffer";
  d.add_op("alloc", alloc);

  OpDef load;
  load.num_operands = -1;  // buffer + indices
  load.num_results = 1;
  load.summary = "loads an element from a buffer";
  d.add_op("load", load);

  OpDef store;
  store.num_operands = -1;  // value, buffer, indices
  store.num_results = 0;
  store.summary = "stores an element into a buffer";
  d.add_op("store", store);

  OpDef copy;
  copy.num_operands = 2;
  copy.num_results = 0;
  copy.summary = "bulk copy between buffers";
  d.add_op("copy", copy);

  OpDef dealloc;
  dealloc.num_operands = 1;
  dealloc.num_results = 0;
  dealloc.summary = "frees a buffer";
  d.add_op("dealloc", dealloc);
}

void register_everest_dialects(Context &ctx) {
  register_arith(ctx);
  register_func(ctx);
  register_scf(ctx);
  register_tensor(ctx);
  register_memref(ctx);
  register_ekl(ctx);
  register_cfdlang(ctx);
  register_teil(ctx);
  register_esn(ctx);
  register_dfg(ctx);
  register_base2(ctx);
  register_bit(ctx);
  register_evp(ctx);
  register_olympus(ctx);
}

}  // namespace everest::dialects
