// everest/dialects/registry.hpp
//
// Registration of the EVEREST dialect stack (paper Fig. 5):
//
//   frontends:   ekl, cfdlang, dfg            (kernel / legacy / coordination)
//   tensor IRs:  teil, esn                    (tensor intermediate, Einstein)
//   data types:  base2, bit                   (binary numeral types)
//   system:      evp, olympus                 (platform, system-level dataflow)
//   core-like:   arith, func, scf, tensor, memref
//
// Each register_* adds one dialect with op arities, required attributes, and
// semantic verifiers to a Context. register_everest_dialects wires them all.
#pragma once

#include "ir/dialect.hpp"

namespace everest::dialects {

void register_arith(ir::Context &ctx);
void register_func(ir::Context &ctx);
void register_scf(ir::Context &ctx);
void register_tensor(ir::Context &ctx);
void register_memref(ir::Context &ctx);
void register_ekl(ir::Context &ctx);
void register_cfdlang(ir::Context &ctx);
void register_teil(ir::Context &ctx);
void register_esn(ir::Context &ctx);
void register_dfg(ir::Context &ctx);
void register_base2(ir::Context &ctx);
void register_bit(ir::Context &ctx);
void register_evp(ir::Context &ctx);
void register_olympus(ir::Context &ctx);

/// Registers every dialect above (the full Fig. 5 stack).
void register_everest_dialects(ir::Context &ctx);

}  // namespace everest::dialects
