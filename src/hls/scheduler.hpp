// everest/hls/scheduler.hpp
//
// The EVEREST HLS engine (stand-in for Vitis HLS / Bambu in the SDK, §IV):
// consumes loop-level IR (func.func with scf.for nests over memref buffers,
// produced by lower_teil_to_loops), schedules each loop nest, and emits a
// synthesis report with latency and resource estimates:
//
//   - ASAP scheduling of the innermost body DFG gives the pipeline depth;
//   - initiation interval II = max(resMII, recMII):
//       resMII from memory-port contention (reads/writes per iteration vs
//       available BRAM ports), recMII from loop-carried accumulation cycles
//       (load -> arith chain -> store to the same buffer);
//   - pipelined nest latency = depth + II * (trips - 1); unpipelined
//     latency = depth * trips;
//   - functional units are shared across II slots; buffer BRAM usage from
//     the alloc sizes.
#pragma once

#include <string>
#include <vector>

#include "hls/resources.hpp"
#include "ir/ir.hpp"
#include "support/expected.hpp"
#include "support/json.hpp"

namespace everest::hls {

/// Scheduling options (a subset of Vitis-like knobs).
struct HlsOptions {
  double clock_mhz = 300.0;
  int datapath_bits = 64;      // overridden by base2 legalization
  int mem_read_ports = 2;      // per buffer (true dual-port BRAM)
  int mem_write_ports = 1;
  bool enable_pipelining = true;
};

/// Report for one scheduled loop nest (one tensor-op stage).
struct StageReport {
  std::string label;           // e.g. "nest0"
  std::int64_t trip_count = 1; // product over the nest
  int depth = 1;               // pipeline depth of one iteration
  int ii = 1;
  std::int64_t latency_cycles = 0;
  int loads = 0;
  int stores = 0;
  int flops = 0;               // floating/fixed arithmetic ops per iteration
  bool has_recurrence = false;
  Resources area;
};

/// Full kernel synthesis report.
struct KernelReport {
  std::string name;
  std::vector<StageReport> stages;
  std::int64_t total_cycles = 0;      // stages executed back-to-back
  std::int64_t dataflow_cycles = 0;   // stages overlapped (read/exec/write
                                      // pipelining, ref [16])
  double clock_mhz = 300.0;
  Resources area;                     // shared-unit estimate + buffers
  std::int64_t input_bytes = 0;       // host -> device per invocation
  std::int64_t output_bytes = 0;      // device -> host per invocation
  std::int64_t buffer_bytes = 0;      // on-fabric PLM footprint

  [[nodiscard]] double latency_us(bool dataflow = false) const {
    double cycles = static_cast<double>(dataflow ? dataflow_cycles : total_cycles);
    return cycles / clock_mhz;  // cycles / (cycles/us)
  }
};

/// Schedules the first func.func in `loops`.
support::Expected<KernelReport> schedule_kernel(const ir::Module &loops,
                                                const HlsOptions &options = {});

/// Renders a Vitis-style text report (used by examples and EXPERIMENTS.md).
std::string render_report(const KernelReport &report);

/// Lossless JSON (de)serialization of kernel reports, used by the
/// content-addressed compile cache to persist HLS schedules on disk.
/// report_from_json returns InvalidArgument on structurally bad input.
support::Json report_to_json(const KernelReport &report);
support::Expected<KernelReport> report_from_json(const support::Json &json);

}  // namespace everest::hls
