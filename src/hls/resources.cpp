#include "hls/resources.hpp"

#include <algorithm>
#include <cmath>

namespace everest::hls {

namespace {

/// Width scale factor relative to the 64-bit characterization; area scales
/// roughly quadratically for multipliers and linearly for adders.
double linear_scale(int width_bits) {
  return std::max(width_bits, 1) / 64.0;
}
double quadratic_scale(int width_bits) {
  double s = linear_scale(width_bits);
  return s * s;
}

int scaled_latency(int base, int width_bits) {
  // Narrow fixed-point datapaths need fewer pipeline stages.
  int l = static_cast<int>(std::ceil(base * std::sqrt(linear_scale(width_bits))));
  return std::max(l, 1);
}

}  // namespace

OpSpec op_spec(const std::string &op_name, int width_bits) {
  const double lin = linear_scale(width_bits);
  const double quad = quadratic_scale(width_bits);
  auto luts = [&](double base) { return static_cast<std::int64_t>(base * lin); };
  auto dsps = [&](double base) {
    return static_cast<std::int64_t>(std::ceil(base * quad));
  };

  OpSpec spec;
  if (op_name == "arith.addf" || op_name == "arith.subf" ||
      op_name == "arith.minf" || op_name == "arith.maxf") {
    spec.latency = scaled_latency(8, width_bits);
    spec.area = {luts(650), luts(800), dsps(3), 0};
  } else if (op_name == "arith.mulf") {
    spec.latency = scaled_latency(9, width_bits);
    spec.area = {luts(250), luts(400), dsps(11), 0};
  } else if (op_name == "arith.divf") {
    spec.latency = scaled_latency(30, width_bits);
    spec.ii = 2;
    spec.area = {luts(3200), luts(3600), 0, 0};
  } else if (op_name == "arith.exp" || op_name == "arith.log") {
    spec.latency = scaled_latency(22, width_bits);
    spec.area = {luts(2600), luts(3000), dsps(20), 0};
  } else if (op_name == "arith.sqrt") {
    spec.latency = scaled_latency(28, width_bits);
    spec.ii = 2;
    spec.area = {luts(2100), luts(2500), 0, 0};
  } else if (op_name == "arith.cmpf" || op_name == "arith.cmpi") {
    spec.latency = 1;
    spec.area = {luts(100), luts(60), 0, 0};
  } else if (op_name == "arith.select") {
    spec.latency = 1;
    spec.area = {luts(64), luts(64), 0, 0};
  } else if (op_name == "arith.negf") {
    spec.latency = 1;
    spec.area = {luts(32), luts(32), 0, 0};
  } else if (op_name == "arith.addi" || op_name == "arith.subi" ||
             op_name == "arith.muli") {
    spec.latency = 1;
    spec.area = {luts(80), luts(80), op_name == "arith.muli" ? dsps(2) : 0, 0};
  } else if (op_name == "arith.sitofp" || op_name == "arith.fptosi" ||
             op_name == "arith.index_cast" || op_name == "arith.truncf" ||
             op_name == "arith.extf") {
    spec.latency = 2;
    spec.area = {luts(120), luts(150), 0, 0};
  } else if (op_name == "memref.load") {
    spec.latency = 2;  // BRAM read
    spec.area = {luts(20), luts(20), 0, 0};
  } else if (op_name == "memref.store") {
    spec.latency = 1;
    spec.area = {luts(20), luts(20), 0, 0};
  } else if (op_name == "arith.constant") {
    spec.latency = 0;
    spec.area = {luts(1), 0, 0, 0};
  } else {
    spec.latency = 1;
    spec.area = {luts(16), luts(16), 0, 0};
  }
  return spec;
}

std::int64_t brams_for_bytes(std::int64_t bytes) {
  constexpr std::int64_t kBramBytes = 4608;  // 36Kb
  return std::max<std::int64_t>(1, (bytes + kBramBytes - 1) / kBramBytes);
}

}  // namespace everest::hls
