// everest/hls/resources.hpp
//
// Operator and resource models for the HLS engine: per-operation latency /
// initiation interval / area as a function of datapath width. Numbers follow
// the shape of Vitis HLS f64/f32 operator characterizations on UltraScale+
// fabric at ~300 MHz; narrower base2 formats get proportionally cheaper
// (the paper's "custom data formats ... trading off resource requirements
// and accuracy", §VIII).
#pragma once

#include <cstdint>
#include <string>

namespace everest::hls {

/// FPGA area of one operator or one whole kernel.
struct Resources {
  std::int64_t luts = 0;
  std::int64_t ffs = 0;
  std::int64_t dsps = 0;
  std::int64_t brams = 0;  // 36Kb blocks

  Resources &operator+=(const Resources &other) {
    luts += other.luts;
    ffs += other.ffs;
    dsps += other.dsps;
    brams += other.brams;
    return *this;
  }
  Resources operator*(std::int64_t n) const {
    return Resources{luts * n, ffs * n, dsps * n, brams * n};
  }
};

/// Timing/area characterization of one scheduled operator instance.
struct OpSpec {
  int latency = 1;  // pipeline depth in cycles
  int ii = 1;       // initiation interval of the unit itself
  Resources area;
};

/// Returns the operator spec for an IR op name ("arith.mulf", "memref.load",
/// ...) at the given datapath width in bits. Unknown ops cost one cycle and
/// a handful of LUTs (control logic).
OpSpec op_spec(const std::string &op_name, int width_bits);

/// BRAM blocks needed for a buffer of `bytes` (36Kb = 4.5 KB per block,
/// minimum one block per buffer).
std::int64_t brams_for_bytes(std::int64_t bytes);

}  // namespace everest::hls
