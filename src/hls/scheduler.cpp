#include "hls/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace everest::hls {

namespace {

using ir::Operation;
using ir::Value;
using support::Error;
using support::Expected;

bool is_float_arith(const std::string &name) {
  static const char *ops[] = {"arith.addf", "arith.subf", "arith.mulf",
                              "arith.divf", "arith.minf", "arith.maxf",
                              "arith.negf", "arith.exp",  "arith.log",
                              "arith.sqrt", "arith.cmpf"};
  return std::find(std::begin(ops), std::end(ops), name) != std::end(ops);
}

/// Follows a loop nest down to the innermost body, multiplying trip counts.
const ir::Block *innermost_body(const Operation &for_op, std::int64_t &trips) {
  trips *= std::max<std::int64_t>(for_op.attr_int("trip_count", 1), 1);
  const ir::Block &body = for_op.region(0).front();
  for (const Operation &op : body.operations()) {
    if (op.name() == "scf.for") return innermost_body(op, trips);
  }
  return &body;
}

/// The root buffer an access targets (load: operand 0; store: operand 1).
const Value *accessed_buffer(const Operation &op) {
  if (op.name() == "memref.load") return op.operand(0);
  if (op.name() == "memref.store") return op.operand(1);
  return nullptr;
}

struct StageSchedule {
  StageReport report;
};

StageSchedule schedule_stage(const Operation &for_op, const HlsOptions &opt,
                             std::size_t index) {
  StageSchedule out;
  StageReport &r = out.report;
  r.label = "nest" + std::to_string(index);

  std::int64_t trips = 1;
  const ir::Block *body = innermost_body(for_op, trips);
  r.trip_count = trips;

  // ASAP schedule of the innermost body (straight-line; scf.yield ignored).
  std::map<const Value *, int> ready_at;   // when a value becomes available
  std::map<const Operation *, int> start;  // issue cycle per op
  std::map<std::string, int> op_counts;
  int end_time = 1;

  for (const Operation &op : body->operations()) {
    if (op.name() == "scf.yield" || op.name() == "scf.for") continue;
    OpSpec spec = op_spec(op.name(), opt.datapath_bits);
    int t = 0;
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      auto it = ready_at.find(op.operand(i));
      if (it != ready_at.end()) t = std::max(t, it->second);
    }
    start[&op] = t;
    int done = t + spec.latency;
    end_time = std::max(end_time, done);
    for (std::size_t k = 0; k < op.num_results(); ++k)
      ready_at[op.result(k)] = done;
    ++op_counts[op.name()];

    if (op.name() == "memref.load") ++r.loads;
    if (op.name() == "memref.store") ++r.stores;
    if (is_float_arith(op.name())) ++r.flops;
  }
  r.depth = std::max(end_time, 1);

  // resMII: per-buffer port pressure.
  std::map<const Value *, std::pair<int, int>> per_buffer;  // loads, stores
  for (const Operation &op : body->operations()) {
    const Value *buf = accessed_buffer(op);
    if (!buf) continue;
    if (op.name() == "memref.load") per_buffer[buf].first++;
    else per_buffer[buf].second++;
  }
  int res_mii = 1;
  for (const auto &[buf, counts] : per_buffer) {
    res_mii = std::max(
        res_mii, (counts.first + opt.mem_read_ports - 1) / opt.mem_read_ports);
    res_mii = std::max(res_mii, (counts.second + opt.mem_write_ports - 1) /
                                    opt.mem_write_ports);
  }

  // recMII: loop-carried accumulation — a store whose stored value depends on
  // a load from the same buffer at the SAME address every iteration. When
  // the access is indexed by the innermost induction variable, consecutive
  // iterations touch different addresses and the dependence distance exceeds
  // the II window (HLS pipelines it at II=1).
  const Value *innermost_iv =
      body->num_arguments() > 0 ? &body->argument(0) : nullptr;
  int rec_mii = 1;
  for (const Operation &store : body->operations()) {
    if (store.name() != "memref.store") continue;
    const Value *buf = store.operand(1);
    bool varies_per_iteration = false;
    for (std::size_t i = 2; i < store.num_operands(); ++i) {
      if (store.operand(i) == innermost_iv) varies_per_iteration = true;
    }
    if (varies_per_iteration) continue;
    // Breadth-first over the stored value's def chain within the body.
    std::set<const Operation *> visited;
    std::vector<const Operation *> frontier;
    if (const Operation *def = store.operand(0)->defining_op())
      frontier.push_back(def);
    while (!frontier.empty()) {
      const Operation *def = frontier.back();
      frontier.pop_back();
      if (!visited.insert(def).second) continue;
      if (def->name() == "memref.load" && def->operand(0) == buf) {
        OpSpec store_spec = op_spec("memref.store", opt.datapath_bits);
        int length = start.at(&store) + store_spec.latency -
                     start.at(def);
        rec_mii = std::max(rec_mii, std::max(length, 1));
        r.has_recurrence = true;
      }
      for (std::size_t i = 0; i < def->num_operands(); ++i) {
        if (const Operation *next = def->operand(i)->defining_op())
          frontier.push_back(next);
      }
    }
  }

  r.ii = std::max(res_mii, rec_mii);
  if (opt.enable_pipelining) {
    r.latency_cycles = r.depth + static_cast<std::int64_t>(r.ii) *
                                     std::max<std::int64_t>(r.trip_count - 1, 0);
  } else {
    r.latency_cycles = static_cast<std::int64_t>(r.depth) * r.trip_count;
  }

  // Area with functional-unit sharing across II slots.
  for (const auto &[name, count] : op_counts) {
    OpSpec spec = op_spec(name, opt.datapath_bits);
    std::int64_t units = (count + r.ii - 1) / r.ii;
    r.area += spec.area * units;
  }
  return out;
}

}  // namespace

Expected<KernelReport> schedule_kernel(const ir::Module &loops,
                                       const HlsOptions &options) {
  const Operation *func = nullptr;
  for (const Operation &op : loops.body().operations()) {
    if (op.name() == "func.func") {
      func = &op;
      break;
    }
  }
  if (!func) return Error::make("hls: no func.func in module");

  KernelReport report;
  report.name = func->attr_string("sym_name");
  report.clock_mhz = options.clock_mhz;

  std::size_t nest_index = 0;
  for (const Operation &op : func->region(0).front().operations()) {
    if (op.name() == "memref.alloc") {
      std::int64_t bytes = op.attr_int("bytes");
      std::string kind = op.attr_string("kind", "");
      if (kind == "input") {
        report.input_bytes += bytes;  // external: streamed over the bus
      } else if (kind == "output") {
        report.output_bytes += bytes;
      } else {
        // Only internal buffers occupy on-fabric BRAM; I/O-tagged buffers
        // live in HBM/DDR behind the AXI interfaces Olympus generates.
        report.buffer_bytes += bytes;
        report.area.brams += brams_for_bytes(bytes);
      }
    } else if (op.name() == "scf.for") {
      auto stage = schedule_stage(op, options, nest_index++);
      report.total_cycles += stage.report.latency_cycles;
      report.area += stage.report.area;
      report.stages.push_back(std::move(stage.report));
    }
  }
  if (report.stages.empty())
    return Error::make("hls: kernel has no loop nests to schedule");

  // Dataflow (read/execute/write pipelining, ref [16]): stages overlap, so
  // steady-state cost is the slowest stage; other stages contribute their
  // fill depth once.
  std::int64_t max_stage = 0;
  std::int64_t fill = 0;
  for (const auto &s : report.stages) {
    max_stage = std::max(max_stage, s.latency_cycles);
    fill += s.depth;
  }
  report.dataflow_cycles = max_stage + fill;
  return report;
}

std::string render_report(const KernelReport &r) {
  std::string out;
  out += "== EVEREST HLS synthesis report: " + r.name + " ==\n";
  out += "clock: " + support::format_double(r.clock_mhz) + " MHz\n";
  support::Table t({"stage", "trips", "depth", "II", "cycles", "loads",
                    "stores", "flops", "rec"});
  for (const auto &s : r.stages) {
    t.add_row({s.label, std::to_string(s.trip_count), std::to_string(s.depth),
               std::to_string(s.ii), std::to_string(s.latency_cycles),
               std::to_string(s.loads), std::to_string(s.stores),
               std::to_string(s.flops), s.has_recurrence ? "yes" : "no"});
  }
  out += t.render();
  out += "total cycles (sequential): " + std::to_string(r.total_cycles) +
         "  (" + support::format_double(r.latency_us(false)) + " us)\n";
  out += "total cycles (dataflow):   " + std::to_string(r.dataflow_cycles) +
         "  (" + support::format_double(r.latency_us(true)) + " us)\n";
  out += "area: " + std::to_string(r.area.luts) + " LUT, " +
         std::to_string(r.area.ffs) + " FF, " + std::to_string(r.area.dsps) +
         " DSP, " + std::to_string(r.area.brams) + " BRAM\n";
  out += "host traffic: in " + support::format_bytes(static_cast<double>(r.input_bytes)) +
         ", out " + support::format_bytes(static_cast<double>(r.output_bytes)) +
         "; PLM " + support::format_bytes(static_cast<double>(r.buffer_bytes)) + "\n";
  return out;
}

// --------------------------------------------------------- JSON round trip

namespace {

support::Json resources_to_json(const Resources &a) {
  auto j = support::Json::object();
  j.set("luts", a.luts);
  j.set("ffs", a.ffs);
  j.set("dsps", a.dsps);
  j.set("brams", a.brams);
  return j;
}

Resources resources_from_json(const support::Json &j) {
  return Resources{j["luts"].as_int(), j["ffs"].as_int(), j["dsps"].as_int(),
                   j["brams"].as_int()};
}

}  // namespace

support::Json report_to_json(const KernelReport &report) {
  auto j = support::Json::object();
  j.set("name", report.name);
  j.set("total_cycles", report.total_cycles);
  j.set("dataflow_cycles", report.dataflow_cycles);
  j.set("clock_mhz", report.clock_mhz);
  j.set("area", resources_to_json(report.area));
  j.set("input_bytes", report.input_bytes);
  j.set("output_bytes", report.output_bytes);
  j.set("buffer_bytes", report.buffer_bytes);
  auto stages = support::Json::array();
  for (const auto &s : report.stages) {
    auto stage = support::Json::object();
    stage.set("label", s.label);
    stage.set("trip_count", s.trip_count);
    stage.set("depth", s.depth);
    stage.set("ii", s.ii);
    stage.set("latency_cycles", s.latency_cycles);
    stage.set("loads", s.loads);
    stage.set("stores", s.stores);
    stage.set("flops", s.flops);
    stage.set("has_recurrence", s.has_recurrence);
    stage.set("area", resources_to_json(s.area));
    stages.push_back(std::move(stage));
  }
  j.set("stages", std::move(stages));
  return j;
}

support::Expected<KernelReport> report_from_json(const support::Json &json) {
  if (!json.is_object() || !json["name"].is_string() ||
      !json["stages"].is_array() || !json["area"].is_object())
    return support::Error::invalid_argument(
        "hls report: malformed JSON kernel report");
  KernelReport r;
  r.name = json["name"].as_string();
  r.total_cycles = json["total_cycles"].as_int();
  r.dataflow_cycles = json["dataflow_cycles"].as_int();
  r.clock_mhz = json["clock_mhz"].as_number();
  r.area = resources_from_json(json["area"]);
  r.input_bytes = json["input_bytes"].as_int();
  r.output_bytes = json["output_bytes"].as_int();
  r.buffer_bytes = json["buffer_bytes"].as_int();
  for (std::size_t i = 0; i < json["stages"].size(); ++i) {
    const auto &stage = json["stages"][i];
    if (!stage.is_object() || !stage["label"].is_string())
      return support::Error::invalid_argument(
          "hls report: malformed JSON stage entry");
    StageReport s;
    s.label = stage["label"].as_string();
    s.trip_count = stage["trip_count"].as_int();
    s.depth = static_cast<int>(stage["depth"].as_int());
    s.ii = static_cast<int>(stage["ii"].as_int());
    s.latency_cycles = stage["latency_cycles"].as_int();
    s.loads = static_cast<int>(stage["loads"].as_int());
    s.stores = static_cast<int>(stage["stores"].as_int());
    s.flops = static_cast<int>(stage["flops"].as_int());
    s.has_recurrence = stage["has_recurrence"].as_bool();
    s.area = resources_from_json(stage["area"]);
    r.stages.push_back(std::move(s));
  }
  return r;
}

}  // namespace everest::hls
