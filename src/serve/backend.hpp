// everest/serve/backend.hpp
//
// Execution backends of the serving layer. A Backend runs one *batch* — the
// concatenation of several requests' input records into streams — through
// the serving graph and returns the output streams. DfgBackend is the
// host-CPU path (the deterministic dfg executor); DeviceBackend fronts a
// simulated FPGA device: it charges the batch launch to the device's clock
// (amortizing one kernel launch over the whole batch, surfacing injected
// device faults) and delegates the functional computation to an inner
// DfgBackend. The Server fails over across its backend list in order, so
// [DeviceBackend, DfgBackend] is "FPGA first, host CPU as the degraded
// fallback".
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "platform/xrt.hpp"
#include "runtime/dfg_executor.hpp"
#include "support/expected.hpp"

namespace everest::serve {

/// Runs batches against the serving graph. Implementations must be safe to
/// call from multiple dispatcher threads concurrently.
class Backend {
public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual const std::string &name() const = 0;
  /// The dfg.input stream names every request must populate.
  [[nodiscard]] virtual const std::vector<std::string> &input_names() const = 0;

  /// Executes one batch: every input stream holds one record per request, in
  /// batch order; every output stream must come back with the same length
  /// and order.
  virtual support::Expected<std::map<std::string, runtime::Stream>> run_batch(
      const std::map<std::string, runtime::Stream> &inputs) = 0;
};

/// Host-CPU backend over execute_dfg. Construction validates that the graph
/// is servable: it must contain a dfg.graph with at least one dfg.input and
/// every dfg.node / dfg.fold callee must be registered. Fold-free graphs run
/// each batch as one concatenated stream; graphs with dfg.fold stages (a
/// fold collapses the stream, so concatenation would fuse requests) run per
/// request — one element at a time, outputs re-concatenated in batch order —
/// so batched and unbatched results stay byte-identical either way.
class DfgBackend final : public Backend {
public:
  static support::Expected<std::unique_ptr<DfgBackend>> create(
      std::shared_ptr<const ir::Module> graph,
      std::shared_ptr<const runtime::NodeRegistry> registry,
      runtime::DfgExecOptions options = {},
      obs::TraceRecorder *recorder = nullptr);

  [[nodiscard]] const std::string &name() const override { return name_; }
  [[nodiscard]] const std::vector<std::string> &input_names() const override {
    return input_names_;
  }

  support::Expected<std::map<std::string, runtime::Stream>> run_batch(
      const std::map<std::string, runtime::Stream> &inputs) override;

private:
  DfgBackend(std::shared_ptr<const ir::Module> graph,
             std::shared_ptr<const runtime::NodeRegistry> registry,
             runtime::DfgExecOptions options, obs::TraceRecorder *recorder,
             std::vector<std::string> input_names, bool has_fold)
      : graph_(std::move(graph)), registry_(std::move(registry)),
        options_(options), recorder_(recorder),
        input_names_(std::move(input_names)), has_fold_(has_fold) {}

  std::string name_ = "host-cpu";
  std::shared_ptr<const ir::Module> graph_;
  std::shared_ptr<const runtime::NodeRegistry> registry_;
  runtime::DfgExecOptions options_;
  obs::TraceRecorder *recorder_;
  std::vector<std::string> input_names_;
  bool has_fold_ = false;
};

/// FPGA backend: one simulated kernel launch per batch (this is where
/// batching pays — launch and DMA overheads amortize across the batch),
/// functional results computed by the wrapped host backend so batched and
/// unbatched outputs stay byte-identical. Device faults injected into the
/// launch surface as retryable errors. The device's simulated clock is not
/// thread-safe, so launches are serialized internally.
class DeviceBackend final : public Backend {
public:
  /// `kernel` must already be loaded on `device`. `launch_deadline_us` is
  /// the per-launch watchdog passed to Device::run (< 0 disables).
  static support::Expected<std::unique_ptr<DeviceBackend>> create(
      platform::Device *device, std::string kernel,
      std::unique_ptr<DfgBackend> compute, double launch_deadline_us = -1.0);

  [[nodiscard]] const std::string &name() const override { return name_; }
  [[nodiscard]] const std::vector<std::string> &input_names() const override {
    return compute_->input_names();
  }

  support::Expected<std::map<std::string, runtime::Stream>> run_batch(
      const std::map<std::string, runtime::Stream> &inputs) override;

private:
  DeviceBackend(platform::Device *device, std::string kernel,
                std::unique_ptr<DfgBackend> compute, double launch_deadline_us)
      : device_(device), kernel_(std::move(kernel)),
        compute_(std::move(compute)),
        launch_deadline_us_(launch_deadline_us),
        name_(device->spec().name) {}

  platform::Device *device_;
  std::string kernel_;
  std::unique_ptr<DfgBackend> compute_;
  double launch_deadline_us_;
  std::string name_;
  std::mutex launch_mu_;
};

}  // namespace everest::serve
