// everest/serve/cluster.hpp
//
// The cluster front door of the serving layer: shards `everest::serve`
// across N simulated FPGA nodes (the paper's cloudFPGA deployment and the
// 1st-CLaaS "FPGA-webserver" shape — many clients, one cluster-wide front
// door, per-node accelerator pools). Each node owns its own
// AdmissionQueue/DynamicBatcher/Device-backed Server; the front door
// consistent-hash routes tenants to a primary node, load-aware-forwards to
// replica nodes when the primary is backlogged — with the forward priced
// through the ZRLMPI/cloudFPGA network model, so the PCIe-vs-10Gb latency
// asymmetry genuinely shapes routing — and fails over across replicas when
// a node sheds (per-node resil::CircuitBreaker). Elastic capacity comes
// from everest::virt: each node's FPGA replica set is a group of SR-IOV
// virtual functions hot-plugged in and out by autoscale(), driven by the
// node's serve.queue_depth gauge.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "hls/scheduler.hpp"
#include "obs/trace.hpp"
#include "platform/device.hpp"
#include "platform/network.hpp"
#include "resil/failover.hpp"
#include "serve/backend.hpp"
#include "serve/server.hpp"
#include "virt/virt.hpp"

namespace everest::serve {

/// Consistent-hash ring: each node contributes `vnodes` virtual points, a
/// tenant maps to the first point clockwise of its hash. Deterministic
/// (FNV-1a), and adding/removing a node only remaps the tenants whose arc
/// it owns — the property that makes cluster resizes cheap.
class HashRing {
public:
  HashRing(int nodes, int vnodes_per_node);

  /// The tenant's primary node.
  [[nodiscard]] int route(const std::string &tenant) const;
  /// The primary plus the next `count - 1` distinct nodes clockwise —
  /// the tenant's failover/forwarding candidates, primary first.
  [[nodiscard]] std::vector<int> replicas(const std::string &tenant,
                                          int count) const;
  [[nodiscard]] int nodes() const { return nodes_; }

private:
  int nodes_;
  std::vector<std::pair<std::uint64_t, int>> ring_;  // sorted (hash, node)
};

/// FPGA backend over an elastic replica set of SR-IOV virtual functions.
/// Every batch is one simulated kernel launch placed by a thread-safe
/// resil::FailoverGroup in RoundRobin rotation (plugged capacity spreads
/// load; injected faults fail over to the next VF in ring order), then the
/// functional result is computed by the wrapped host backend so batched,
/// unbatched, and any-replica outputs stay byte-identical.
class ElasticDeviceBackend final : public Backend {
public:
  /// `devices` are VF devices with `kernel` already loaded; the caller
  /// (Cluster) keeps ownership of the devices themselves.
  ElasticDeviceBackend(std::string name,
                       std::vector<platform::Device *> devices,
                       std::string kernel,
                       std::unique_ptr<DfgBackend> compute,
                       resil::FailoverOptions options,
                       obs::TraceRecorder *recorder = nullptr);

  [[nodiscard]] const std::string &name() const override { return name_; }
  [[nodiscard]] const std::vector<std::string> &input_names() const override {
    return compute_->input_names();
  }

  support::Expected<std::map<std::string, runtime::Stream>> run_batch(
      const std::map<std::string, runtime::Stream> &inputs) override;

  /// VF hot-plug: grows/shrinks the replica ring. remove_replica() returns
  /// the removed device so the owner can detach its VF; it fails rather
  /// than empty the ring.
  void add_replica(platform::Device *device) { group_.add_device(device); }
  support::Expected<platform::Device *> remove_replica() {
    return group_.remove_last_device();
  }

  [[nodiscard]] std::size_t replicas() const { return group_.size(); }
  [[nodiscard]] resil::FailoverStats launch_stats() const {
    return group_.stats();
  }

private:
  std::string name_;
  std::string kernel_;
  resil::FailoverGroup group_;
  std::unique_ptr<DfgBackend> compute_;
};

struct ClusterOptions {
  /// Simulated nodes behind the front door.
  int nodes = 2;
  /// Routing candidates per tenant (primary + replicas - 1 failover
  /// targets). Clamped to [1, nodes].
  int replicas = 2;
  /// Virtual points per node on the consistent-hash ring.
  int vnodes_per_node = 96;
  /// Per-node Server template (batching, dispatchers, QoS, retry, breaker).
  ServerOptions server;
  /// FPGA card per node; an empty name defaults to alveo_u55c().
  platform::DeviceSpec card;
  /// SR-IOV VF pool: every node starts with min_vfs attached, autoscale()
  /// plugs up to max_vfs (the card's static PF limit).
  int min_vfs = 1;
  int max_vfs = 4;
  /// autoscale() watermarks on the node's serve.queue_depth gauge.
  double scale_up_depth = 16.0;
  double scale_down_depth = 2.0;
  /// The serving kernel charged per batch launch on a VF's simulated clock.
  std::string kernel = "serve-graph";
  std::int64_t kernel_cycles = 2'000;
  double launch_deadline_us = -1.0;
  /// Per-node VF replica-group policy (placement is forced to RoundRobin;
  /// host fallback stays with the Server's backend chain).
  resil::FailoverOptions vf_failover;
  /// The 10 Gb data-center fabric forwarding rides on, and the payload a
  /// forwarded request carries (request out + response back are priced).
  platform::NetworkSpec network;
  std::int64_t request_bytes = 4'096;
  /// Load-aware routing: estimated service time per queued request. The
  /// front door forwards to a replica only when
  ///   primary_depth * estimate > replica_depth * estimate + forward_cost,
  /// i.e. the 10 Gb round trip must pay for itself in queueing delay.
  double service_estimate_us = 40.0;
  /// Front-door health per node: repeated admission sheds trip the breaker
  /// and routing prefers the other replicas while it cools down.
  resil::CircuitBreaker::Options node_breaker{8, 5'000.0};
};

struct ClusterNodeStats {
  std::string name;
  std::int64_t routed = 0;        // admissions on this node
  std::int64_t forwarded_in = 0;  //  ... of which another node was primary
  std::int64_t shed = 0;          // admission failures the front door saw
  int vfs = 0;
  /// Max simulated compute time across the node's VF devices — the node's
  /// accelerator busy time under the parallel-VF capacity model.
  double device_busy_us = 0.0;
  double forward_net_us = 0.0;  // simulated fabric time charged to forwards
  std::size_t queue_depth = 0;
  ServerStats server;
};

struct ClusterStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t forwarded = 0;
  std::int64_t shed = 0;
  std::int64_t scale_ups = 0;
  std::int64_t scale_downs = 0;
  std::vector<ClusterNodeStats> nodes;
};

/// Result of one autoscale() pass.
struct AutoscaleReport {
  int attached = 0;
  int detached = 0;
};

/// Front door over N sharded serve::Servers. submit() is thread-safe;
/// start()/drain()/stop() fan out to every node (drain keeps the new
/// Server semantics: submits racing a drain shed with Unavailable).
class Cluster {
public:
  static support::Expected<std::unique_ptr<Cluster>> create(
      std::shared_ptr<const ir::Module> graph,
      std::shared_ptr<const runtime::NodeRegistry> registry,
      ClusterOptions options, obs::TraceRecorder *recorder = nullptr);

  ~Cluster();
  Cluster(const Cluster &) = delete;
  Cluster &operator=(const Cluster &) = delete;

  void start();
  /// Routes and admits one request; Unavailable when every candidate node
  /// shed it (cluster-wide overload).
  support::Expected<std::future<Response>> submit(Request request);
  void drain();
  void stop();

  /// One elasticity pass: reads every node's serve.queue_depth gauge and
  /// hot-plugs VFs across the watermarks (one plug/unplug per node per
  /// pass, so capacity ramps rather than thrashes).
  AutoscaleReport autoscale();

  [[nodiscard]] int primary_node(const std::string &tenant) const;
  [[nodiscard]] std::vector<int> route_candidates(
      const std::string &tenant) const;
  /// Simulated round-trip cost of forwarding `bytes` over the fabric.
  [[nodiscard]] double forward_cost_us(std::int64_t bytes) const;

  [[nodiscard]] ClusterStats stats() const;
  [[nodiscard]] const ClusterOptions &options() const { return options_; }
  [[nodiscard]] int nodes() const { return static_cast<int>(nodes_.size()); }
  /// The per-node recorder carrying that node's serve.* metrics.
  [[nodiscard]] obs::TraceRecorder &node_recorder(int node) const;

private:
  struct Node;

  Cluster(ClusterOptions options, obs::TraceRecorder *recorder);

  ClusterOptions options_;
  HashRing ring_;
  obs::TraceRecorder *recorder_;
  /// Front-door wall clock: the timeline node breakers run on.
  obs::TraceRecorder clock_;
  /// The HLS report programmed onto every VF (also by later hot-plugs).
  hls::KernelReport kernel_report_;

  mutable std::mutex mu_;  // routing state: breakers + front-door stats
  std::vector<std::unique_ptr<Node>> nodes_;
  std::int64_t submitted_ = 0;
  std::int64_t admitted_ = 0;
  std::int64_t forwarded_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t scale_ups_ = 0;
  std::int64_t scale_downs_ = 0;
};

}  // namespace everest::serve
