#include "serve/cluster.hpp"

#include <algorithm>
#include <utility>

namespace everest::serve {

using support::Error;
using support::Expected;

namespace {

// FNV-1a, 64 bit, with a splitmix64-style finalizer: FNV alone avalanches
// poorly in the high bits for short sequential keys ("node-3#17"), and ring
// placement sorts on exactly those bits — without the finalizer most of the
// ring arc collapses onto one node.
std::uint64_t fnv1a(const std::string &s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

resil::FailoverOptions vf_group_options(const ClusterOptions &options) {
  resil::FailoverOptions vf = options.vf_failover;
  // The replica ring exists to spread launches, and the host-CPU fallback
  // belongs to the Server's backend chain (where it is accounted as a
  // degraded backend), not to the launch group.
  vf.placement = resil::FailoverOptions::Placement::RoundRobin;
  vf.host_fallback_us = -1.0;
  if (options.launch_deadline_us >= 0.0)
    vf.deadline.deadline_us = options.launch_deadline_us;
  return vf;
}

}  // namespace

// --------------------------------------------------------------------------
// HashRing

HashRing::HashRing(int nodes, int vnodes_per_node)
    : nodes_(nodes < 1 ? 1 : nodes) {
  if (vnodes_per_node < 1) vnodes_per_node = 1;
  ring_.reserve(static_cast<std::size_t>(nodes_) * vnodes_per_node);
  for (int n = 0; n < nodes_; ++n) {
    const std::string base = "node-" + std::to_string(n) + "#";
    for (int v = 0; v < vnodes_per_node; ++v)
      ring_.emplace_back(fnv1a(base + std::to_string(v)), n);
  }
  std::sort(ring_.begin(), ring_.end());
}

int HashRing::route(const std::string &tenant) const {
  return replicas(tenant, 1).front();
}

std::vector<int> HashRing::replicas(const std::string &tenant,
                                    int count) const {
  count = std::clamp(count, 1, nodes_);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count));
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(),
      std::make_pair(fnv1a(tenant), 0));
  for (std::size_t step = 0;
       step < ring_.size() && out.size() < static_cast<std::size_t>(count);
       ++step, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end())
      out.push_back(it->second);
  }
  return out;
}

// --------------------------------------------------------------------------
// ElasticDeviceBackend

ElasticDeviceBackend::ElasticDeviceBackend(
    std::string name, std::vector<platform::Device *> devices,
    std::string kernel, std::unique_ptr<DfgBackend> compute,
    resil::FailoverOptions options, obs::TraceRecorder *recorder)
    : name_(std::move(name)),
      kernel_(std::move(kernel)),
      group_(std::move(devices), std::move(options), recorder),
      compute_(std::move(compute)) {}

Expected<std::map<std::string, runtime::Stream>>
ElasticDeviceBackend::run_batch(
    const std::map<std::string, runtime::Stream> &inputs) {
  // One launch per batch, placed round-robin over the plugged VFs; the
  // error code (and hence retryability) of a failed launch is preserved so
  // the Server's per-backend retry/breaker policy sees the real fault.
  auto launch = group_.run(kernel_, /*dataflow=*/true);
  if (!launch)
    return launch.error().with_context("serve: elastic backend '" + name_ +
                                       "'");
  return compute_->run_batch(inputs);
}

// --------------------------------------------------------------------------
// Cluster

struct Cluster::Node {
  explicit Node(const resil::CircuitBreaker::Options &breaker_options)
      : breaker(breaker_options) {}

  std::string name;
  /// Per-node recorder: serve.* gauges/counters from different nodes must
  /// not collide, and autoscale() reads this node's serve.queue_depth.
  std::unique_ptr<obs::TraceRecorder> recorder;
  std::unique_ptr<virt::VirtNode> virt;
  virt::VmId vm = -1;
  /// Attach-ordered, parallel to the elastic backend's replica ring: the
  /// ring removes from the back, so vfs.back()/devices.back() is always the
  /// replica a scale-down unplugs.
  std::vector<virt::VfHandle> vfs;
  std::vector<platform::Device *> devices;
  ElasticDeviceBackend *elastic = nullptr;  // owned by server's backend list
  std::unique_ptr<Server> server;
  resil::CircuitBreaker breaker;
  std::int64_t routed = 0;
  std::int64_t forwarded_in = 0;
  std::int64_t shed = 0;
  double forward_net_us = 0.0;
};

Cluster::Cluster(ClusterOptions options, obs::TraceRecorder *recorder)
    : options_(std::move(options)),
      ring_(options_.nodes, options_.vnodes_per_node),
      recorder_(recorder) {}

Cluster::~Cluster() { stop(); }

Expected<std::unique_ptr<Cluster>> Cluster::create(
    std::shared_ptr<const ir::Module> graph,
    std::shared_ptr<const runtime::NodeRegistry> registry,
    ClusterOptions options, obs::TraceRecorder *recorder) {
  if (options.nodes < 1)
    return Error::invalid_argument("serve: cluster needs at least one node");
  if (options.min_vfs < 1)
    return Error::invalid_argument("serve: cluster needs min_vfs >= 1");
  if (options.max_vfs < options.min_vfs)
    return Error::invalid_argument("serve: cluster max_vfs < min_vfs");
  if (options.kernel_cycles < 1)
    return Error::invalid_argument("serve: cluster kernel_cycles must be > 0");
  options.replicas = std::clamp(options.replicas, 1, options.nodes);
  if (options.card.name.empty()) options.card = platform::alveo_u55c();

  auto cluster =
      std::unique_ptr<Cluster>(new Cluster(std::move(options), recorder));
  const ClusterOptions &opt = cluster->options_;

  hls::KernelReport &report = cluster->kernel_report_;
  report.name = opt.kernel;
  report.total_cycles = opt.kernel_cycles;
  report.dataflow_cycles = opt.kernel_cycles;
  report.clock_mhz = opt.card.clock_mhz;
  report.area = {10'000, 10'000, 10, 10};

  for (int i = 0; i < opt.nodes; ++i) {
    auto node = std::make_unique<Node>(opt.node_breaker);
    node->name = "node-" + std::to_string(i);
    node->recorder = std::make_unique<obs::TraceRecorder>();

    node->virt = std::make_unique<virt::VirtNode>(
        node->name, /*cores=*/16,
        std::vector<platform::DeviceSpec>{opt.card}, opt.max_vfs);
    auto vm = node->virt->create_vm(node->name + "-serve-vm", /*vcpus=*/8);
    if (!vm) return vm.error().with_context("serve: cluster " + node->name);
    node->vm = *vm;

    for (int v = 0; v < opt.min_vfs; ++v) {
      auto handle = node->virt->attach_vf(node->vm, /*card=*/0);
      if (!handle)
        return handle.error().with_context("serve: cluster " + node->name);
      auto device = node->virt->vm_device(node->vm, *handle);
      if (!device)
        return device.error().with_context("serve: cluster " + node->name);
      auto loaded = (*device)->load_kernel(opt.kernel, report);
      if (!loaded)
        return loaded.error().with_context("serve: cluster " + node->name);
      node->vfs.push_back(*handle);
      node->devices.push_back(*device);
    }

    auto compute = DfgBackend::create(graph, registry, {},
                                      node->recorder.get());
    if (!compute)
      return compute.error().with_context("serve: cluster " + node->name);
    auto host = DfgBackend::create(graph, registry, {}, node->recorder.get());
    if (!host)
      return host.error().with_context("serve: cluster " + node->name);

    auto elastic = std::make_unique<ElasticDeviceBackend>(
        node->name + "-fpga", node->devices, opt.kernel, std::move(*compute),
        vf_group_options(opt), node->recorder.get());
    node->elastic = elastic.get();

    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(std::move(elastic));
    backends.push_back(std::move(*host));
    auto server = Server::create(std::move(backends), opt.server,
                                 node->recorder.get());
    if (!server)
      return server.error().with_context("serve: cluster " + node->name);
    node->server = std::move(*server);

    cluster->nodes_.push_back(std::move(node));
  }
  return cluster;
}

void Cluster::start() {
  for (auto &node : nodes_) node->server->start();
}

Expected<std::future<Response>> Cluster::submit(Request request) {
  std::lock_guard<std::mutex> lock(mu_);
  ++submitted_;
  const std::vector<int> candidates =
      ring_.replicas(request.tenant, options_.replicas);
  const int primary = candidates.front();
  const double forward_us = forward_cost_us(options_.request_bytes);

  // Load-aware candidate order: estimated queueing delay, with non-primary
  // nodes paying the simulated fabric round trip — forwarding happens only
  // when it beats waiting locally.
  struct Candidate {
    int node;
    double est_us;
  };
  std::vector<Candidate> order;
  order.reserve(candidates.size());
  for (int n : candidates) {
    double est = static_cast<double>(nodes_[n]->server->queue_depth()) *
                 options_.service_estimate_us;
    if (n != primary) est += forward_us;
    order.push_back({n, est});
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const Candidate &a, const Candidate &b) {
                     return a.est_us < b.est_us;
                   });

  const double now = clock_.now_us();
  Error last = Error::unavailable("serve: every candidate node is unhealthy");
  bool tried_any = false;
  for (const Candidate &candidate : order) {
    Node &node = *nodes_[candidate.node];
    if (!node.breaker.allow(now)) continue;
    tried_any = true;
    Request attempt = request;  // per-attempt copy: Server::submit consumes
    auto future = node.server->submit(std::move(attempt));
    if (future) {
      node.breaker.on_success();
      ++admitted_;
      ++node.routed;
      if (candidate.node != primary) {
        ++forwarded_;
        ++node.forwarded_in;
        node.forward_net_us += forward_us;
        if (recorder_) recorder_->counter("cluster.forwarded").add(1);
      }
      return future;
    }
    node.breaker.on_failure(now);
    ++node.shed;
    last = future.error();
  }
  ++shed_;
  if (recorder_) recorder_->counter("cluster.shed").add(1);
  if (!tried_any)
    return last.with_context("serve: cluster tenant '" + request.tenant + "'");
  return last.with_context("serve: cluster shed tenant '" + request.tenant +
                           "' on every candidate node");
}

void Cluster::drain() {
  for (auto &node : nodes_) node->server->drain();
}

void Cluster::stop() {
  for (auto &node : nodes_) node->server->stop();
}

AutoscaleReport Cluster::autoscale() {
  AutoscaleReport report;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto &np : nodes_) {
    Node &node = *np;
    const double depth = node.recorder->gauge("serve.queue_depth").value();
    const int vfs = static_cast<int>(node.vfs.size());
    if (depth >= options_.scale_up_depth && vfs < options_.max_vfs) {
      auto handle = node.virt->attach_vf(node.vm, /*card=*/0);
      if (!handle) continue;
      auto device = node.virt->vm_device(node.vm, *handle);
      if (!device) {
        node.virt->detach_vf(node.vm, *handle);
        continue;
      }
      if (!(*device)->load_kernel(options_.kernel, kernel_report_)) {
        node.virt->detach_vf(node.vm, *handle);
        continue;
      }
      node.vfs.push_back(*handle);
      node.devices.push_back(*device);
      node.elastic->add_replica(*device);
      ++report.attached;
      ++scale_ups_;
      if (recorder_) recorder_->counter("cluster.scale_up").add(1);
    } else if (depth <= options_.scale_down_depth && vfs > options_.min_vfs) {
      // Remove from the launch ring first — that serializes against
      // in-flight launches — and only then unplug the VF, which destroys
      // the Device.
      auto removed = node.elastic->remove_replica();
      if (!removed) continue;
      node.virt->detach_vf(node.vm, node.vfs.back());
      node.vfs.pop_back();
      node.devices.pop_back();
      ++report.detached;
      ++scale_downs_;
      if (recorder_) recorder_->counter("cluster.scale_down").add(1);
    }
  }
  return report;
}

int Cluster::primary_node(const std::string &tenant) const {
  return ring_.route(tenant);
}

std::vector<int> Cluster::route_candidates(const std::string &tenant) const {
  return ring_.replicas(tenant, options_.replicas);
}

double Cluster::forward_cost_us(std::int64_t bytes) const {
  // Request out plus response back over the 10 Gb fabric.
  return 2.0 * platform::message_seconds(options_.network, bytes) * 1e6;
}

ClusterStats Cluster::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ClusterStats out;
  out.submitted = submitted_;
  out.admitted = admitted_;
  out.forwarded = forwarded_;
  out.shed = shed_;
  out.scale_ups = scale_ups_;
  out.scale_downs = scale_downs_;
  out.nodes.reserve(nodes_.size());
  for (const auto &np : nodes_) {
    const Node &node = *np;
    ClusterNodeStats ns;
    ns.name = node.name;
    ns.routed = node.routed;
    ns.forwarded_in = node.forwarded_in;
    ns.shed = node.shed;
    ns.vfs = static_cast<int>(node.vfs.size());
    for (const platform::Device *device : node.devices)
      ns.device_busy_us = std::max(ns.device_busy_us,
                                   device->stats().compute_us);
    ns.forward_net_us = node.forward_net_us;
    ns.queue_depth = node.server->queue_depth();
    ns.server = node.server->stats();
    out.nodes.push_back(std::move(ns));
  }
  return out;
}

obs::TraceRecorder &Cluster::node_recorder(int node) const {
  return *nodes_[static_cast<std::size_t>(node)]->recorder;
}

}  // namespace everest::serve
