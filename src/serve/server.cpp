#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <sstream>

namespace everest::serve {

namespace {

std::string join_names(const std::vector<std::string> &names) {
  std::ostringstream out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ", ";
    out << names[i];
  }
  return out.str();
}

}  // namespace

support::Expected<std::unique_ptr<Server>> Server::create(
    std::vector<std::unique_ptr<Backend>> backends, ServerOptions options,
    obs::TraceRecorder *recorder) {
  if (backends.empty()) {
    return support::Error::invalid_argument("serve: server needs >= 1 backend");
  }
  for (const auto &b : backends) {
    if (!b) return support::Error::invalid_argument("serve: null backend");
  }
  // Failover only makes sense when every backend serves the same graph.
  const auto &reference = backends.front()->input_names();
  for (std::size_t i = 1; i < backends.size(); ++i) {
    if (backends[i]->input_names() != reference) {
      return support::Error::invalid_argument(
          "serve: backend '" + backends[i]->name() +
          "' serves different input streams than '" +
          backends.front()->name() + "'");
    }
  }
  if (options.dispatchers < 1) options.dispatchers = 1;
  if (options.queue_bound == 0) options.queue_bound = 1024;
  return std::unique_ptr<Server>(
      new Server(std::move(backends), std::move(options), recorder));
}

Server::Server(std::vector<std::unique_ptr<Backend>> backends,
               ServerOptions options, obs::TraceRecorder *recorder)
    : backends_(std::move(backends)), options_(std::move(options)),
      batcher_(options_.batch), recorder_(recorder),
      queue_(options_.queue_bound) {
  for (const auto &[name, config] : options_.tenants) {
    queue_.configure_tenant(name, config);
  }
  breakers_.reserve(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    breakers_.emplace_back(options_.breaker);
  }
}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stopping_) return;
  started_ = true;
  dispatchers_.reserve(static_cast<std::size_t>(options_.dispatchers));
  for (int i = 0; i < options_.dispatchers; ++i) {
    dispatchers_.emplace_back([this, i] { dispatcher_loop(i); });
  }
}

support::Expected<std::future<Response>> Server::submit(Request request) {
  // Validate the payload against the serving graph before queueing.
  const auto &expected_inputs = backends_.front()->input_names();
  if (request.inputs.size() != expected_inputs.size()) {
    return support::Error::invalid_argument(
        "serve: request carries " + std::to_string(request.inputs.size()) +
        " inputs, serving graph expects {" + join_names(expected_inputs) + "}");
  }
  for (const auto &name : expected_inputs) {
    if (request.inputs.find(name) == request.inputs.end()) {
      return support::Error::invalid_argument(
          "serve: request is missing input stream '" + name + "'");
    }
  }
  if (request.tenant.empty()) request.tenant = "default";

  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) {
    return support::Error::unavailable("serve: server is stopped");
  }
  if (draining_) {
    // Admitting here would keep the queue non-empty and livelock drain()'s
    // idle predicate under sustained load; shed instead.
    ++stats_.submitted;
    ++stats_.shed_drain;
    ++stats_.tenants[request.tenant].shed;
    if (recorder_) recorder_->counter("serve.shed.drain").add(1);
    return support::Error::unavailable("serve: server is draining");
  }
  double now = clock_.now_us();
  if (request.deadline_us < 0.0 && options_.default_deadline_budget_us >= 0.0) {
    request.deadline_us = now + options_.default_deadline_budget_us;
  }
  PendingRequest pending;
  pending.id = next_request_id_++;
  pending.request = std::move(request);
  pending.admit_us = now;
  // admit() moves `pending` into the queue on success — take what the
  // bookkeeping needs first.
  const std::string tenant = pending.request.tenant;
  std::future<Response> future = pending.promise.get_future();

  ++stats_.submitted;
  ShedReason reason = ShedReason::None;
  auto admitted = queue_.admit(pending, now, &reason);
  if (!admitted.is_ok()) {
    ++stats_.tenants[tenant].shed;
    if (reason == ShedReason::RateLimit) {
      ++stats_.shed_rate;
      if (recorder_) recorder_->counter("serve.shed.rate").add(1);
    } else {
      ++stats_.shed_queue;
      if (recorder_) recorder_->counter("serve.shed.queue").add(1);
    }
    return admitted.error();
  }
  ++stats_.admitted;
  ++stats_.tenants[tenant].admitted;
  if (recorder_) {
    recorder_->counter("serve.admitted").add(1);
    recorder_->gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));
  }
  lock.unlock();
  work_cv_.notify_one();
  return future;
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_) {
    // No dispatchers will ever run: fail queued requests instead of hanging.
    double now = clock_.now_us();
    while (auto pending = queue_.pop(now)) {
      PendingRequest p = std::move(*pending);
      lock.unlock();
      finish_shed(std::move(p),
                  support::Error::unavailable("serve: server never started"));
      lock.lock();
    }
    return;
  }
  draining_ = true;
  work_cv_.notify_all();
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_batches_ == 0; });
  draining_ = false;
}

void Server::stop() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      lock.unlock();
    } else {
      stopping_ = true;
      lock.unlock();
      work_cv_.notify_all();
    }
  }
  for (auto &t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();
  // Whatever is still queued (server never started, or raced into the queue
  // during shutdown) fails cleanly rather than dangling its promise.
  std::unique_lock<std::mutex> lock(mu_);
  double now = clock_.now_us();
  while (auto pending = queue_.pop(now)) {
    PendingRequest p = std::move(*pending);
    lock.unlock();
    finish_shed(std::move(p),
                support::Error::unavailable("serve: server is stopped"));
    lock.lock();
  }
}

void Server::dispatcher_loop(int worker_index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Dynamic batching: hold the batch open until it fills, the oldest
    // request's wait budget expires, or the server drains/stops.
    while (!stopping_ && !draining_) {
      double now = clock_.now_us();
      if (batcher_.should_dispatch(queue_.size(), queue_.oldest_admit_us(),
                                   now, /*draining=*/false,
                                   queue_.earliest_deadline_us())) {
        break;
      }
      double budget = batcher_.wait_budget_us(queue_.oldest_admit_us(), now,
                                              queue_.earliest_deadline_us());
      auto status = work_cv_.wait_for(
          lock, std::chrono::duration<double, std::micro>(budget));
      if (queue_.empty()) break;  // another dispatcher took the work
      if (status == std::cv_status::timeout) break;
    }
    if (queue_.empty()) continue;

    double now = clock_.now_us();
    std::vector<PendingRequest> batch;
    std::vector<PendingRequest> expired;
    while (batch.size() < batcher_.max_batch() && !queue_.empty()) {
      auto pending = queue_.pop(now);
      if (!pending) break;
      if (pending->request.deadline_us >= 0.0 &&
          now > pending->request.deadline_us) {
        expired.push_back(std::move(*pending));
      } else {
        batch.push_back(std::move(*pending));
      }
    }
    for (const auto &p : expired) {
      ++stats_.shed_deadline;
      ++stats_.tenants[p.request.tenant].shed;
    }
    if (recorder_) {
      recorder_->gauge("serve.queue_depth")
          .set(static_cast<double>(queue_.size()));
      if (!expired.empty()) {
        recorder_->counter("serve.shed.deadline")
            .add(static_cast<std::int64_t>(expired.size()));
      }
    }
    std::uint64_t batch_id = batch.empty() ? 0 : next_batch_id_++;
    ++in_flight_batches_;
    lock.unlock();

    for (auto &p : expired) {
      double waited = clock_.now_us() - p.admit_us;
      finish_shed(std::move(p),
                  support::Error::deadline_exceeded(
                      "serve: request waited " + std::to_string(waited) +
                      " us, past its deadline"));
    }
    if (!batch.empty()) {
      execute_batch(std::move(batch), batch_id, worker_index);
    }

    lock.lock();
    --in_flight_batches_;
    if (queue_.empty() && in_flight_batches_ == 0) idle_cv_.notify_all();
  }
}

Response Server::base_response(const PendingRequest &pending,
                               double finish) const {
  Response r;
  r.request_id = pending.id;
  r.tenant = pending.request.tenant;
  r.admit_us = pending.admit_us;
  r.finish_us = finish;
  r.latency_us = finish - pending.admit_us;
  return r;
}

void Server::finish_shed(PendingRequest pending, support::Error error) {
  Response r = base_response(pending, clock_.now_us());
  r.status = support::Status(std::move(error));
  pending.promise.set_value(std::move(r));
}

void Server::execute_batch(std::vector<PendingRequest> batch,
                           std::uint64_t batch_id, int worker_index) {
  // Coalesce: one stream element per request, in batch (fair-dequeue) order.
  const auto &input_names = backends_.front()->input_names();
  std::map<std::string, runtime::Stream> inputs;
  for (const auto &name : input_names) inputs[name].reserve(batch.size());
  std::set<std::string> tenants_in_batch;
  for (auto &p : batch) {
    for (const auto &name : input_names) {
      inputs[name].push_back(p.request.inputs.at(name));
    }
    tenants_in_batch.insert(p.request.tenant);
  }

  std::optional<obs::TraceRecorder::Span> span;
  if (recorder_) {
    span.emplace(recorder_->span("batch-" + std::to_string(batch_id),
                                 "serve.batch",
                                 "serve.dispatcher-" +
                                     std::to_string(worker_index)));
    span->arg("batch_size", std::to_string(batch.size()));
    span->arg("tenants", std::to_string(tenants_in_batch.size()));
  }

  // Backend chain: breaker gate -> retry policy -> next backend on failure.
  std::map<std::string, runtime::Stream> outputs;
  bool ok = false;
  std::size_t used_backend = 0;
  std::int64_t breaker_rejections = 0;
  support::Error last_error =
      support::Error::unavailable("serve: no backend accepted the batch");
  auto wall_wait = [](double us) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(us));
  };
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!breakers_[i].allow(clock_.now_us())) {
        ++breaker_rejections;
        last_error = support::Error::unavailable(
            "serve: circuit breaker open for backend '" +
            backends_[i]->name() + "'");
        continue;
      }
    }
    auto result = resil::with_retry(
        options_.retry, [&] { return backends_[i]->run_batch(inputs); },
        wall_wait, recorder_, "serve." + backends_[i]->name());
    std::lock_guard<std::mutex> lock(mu_);
    if (result) {
      breakers_[i].on_success();
      // A malformed backend (wrong stream lengths) must not fan garbage out
      // to the clients.
      bool shape_ok = true;
      for (const auto &[name, stream] : *result) {
        if (stream.size() != batch.size()) shape_ok = false;
      }
      if (!shape_ok) {
        // A malformed result is a backend failure like any other: trip the
        // breaker so a persistently malformed backend stops being retried
        // first on every batch, and fail over to the next backend.
        breakers_[i].on_failure(clock_.now_us());
        last_error = support::Error::internal(
            "serve: backend '" + backends_[i]->name() +
            "' returned streams whose length differs from the batch size");
        if (recorder_ && i + 1 < backends_.size()) {
          recorder_->counter("serve.failover").add(1);
        }
        continue;
      }
      outputs = std::move(*result);
      ok = true;
      used_backend = i;
      break;
    }
    breakers_[i].on_failure(clock_.now_us());
    last_error = result.error();
    if (recorder_ && i + 1 < backends_.size()) {
      recorder_->counter("serve.failover").add(1);
    }
  }

  double finish = clock_.now_us();
  if (span) {
    span->arg("backend", ok ? backends_[used_backend]->name() : "none");
    span->end();
  }

  // Fan the batch result back out to per-request responses.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Response r = base_response(batch[i], finish);
    r.batch_id = batch_id;
    r.batch_size = batch.size();
    if (ok) {
      r.backend = backends_[used_backend]->name();
      r.degraded = used_backend > 0;
      for (const auto &[name, stream] : outputs) {
        r.outputs[name] = stream[i];
      }
    } else {
      r.status = support::Status(
          last_error.with_context("serve: batch " + std::to_string(batch_id)));
    }
    batch[i].promise.set_value(std::move(r));
  }

  // Stats + metrics.
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.batches;
  stats_.batch_size.push(static_cast<double>(batch.size()));
  stats_.breaker_rejections += breaker_rejections;
  if (ok && used_backend > 0) ++stats_.failovers;
  for (const auto &p : batch) {
    TenantStats &t = stats_.tenants[p.request.tenant];
    if (ok) {
      ++t.completed;
      ++stats_.completed;
      t.latency_us.push(finish - p.admit_us);
    } else {
      ++t.failed;
      ++stats_.failed;
    }
  }
  if (recorder_) {
    recorder_->counter("serve.batches").add(1);
    recorder_->histogram("serve.batch_size")
        .record(static_cast<double>(batch.size()));
    for (const auto &p : batch) {
      if (ok) {
        recorder_->histogram("serve.latency_us." + p.request.tenant)
            .record(finish - p.admit_us);
        recorder_->counter("serve.completed").add(1);
      } else {
        recorder_->counter("serve.failed").add(1);
      }
    }
    if (breaker_rejections > 0) {
      recorder_->counter("serve.breaker.rejected").add(breaker_rejections);
    }
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace everest::serve
