// everest/serve/qos.hpp
//
// Per-tenant QoS primitives of the serving layer: token-bucket admission
// rate limits, and a bounded, weighted-fair admission queue (stride
// scheduling across tenants, priority order within a tenant). Everything is
// clock-explicit — callers pass `now_us` — so the policies are exactly
// testable; the queue itself is not synchronized and is owned by the
// Server's lock.
#pragma once

#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "serve/request.hpp"
#include "support/expected.hpp"

namespace everest::serve {

/// Deterministic token bucket: refills `rate_per_s` tokens per second of the
/// caller's clock up to `burst`; each admitted request takes one token. A
/// non-positive rate disables limiting entirely.
class TokenBucket {
public:
  TokenBucket() = default;
  TokenBucket(double rate_per_s, double burst)
      : rate_per_s_(rate_per_s), burst_(burst < 1.0 ? 1.0 : burst),
        tokens_(burst_) {}

  /// Takes one token at clock time `now_us`; false means the caller should
  /// shed the request.
  bool try_take(double now_us);

  /// Tokens available at `now_us` (after refill), for introspection.
  [[nodiscard]] double available(double now_us);

private:
  void refill(double now_us);

  double rate_per_s_ = 0.0;
  double burst_ = 1.0;
  double tokens_ = 1.0;
  double last_us_ = 0.0;
};

/// A request admitted into the server, waiting for (or riding in) a batch.
struct PendingRequest {
  std::uint64_t id = 0;
  Request request;
  double admit_us = 0.0;
  std::promise<Response> promise;
};

/// Why an admission was shed (both surface as ErrorCode::Unavailable).
enum class ShedReason { None, QueueBound, RateLimit };

/// Bounded multi-tenant queue with weighted-fair dequeue.
///
/// Fairness is stride scheduling: each tenant carries a virtual time that
/// advances by 1/weight per dequeued request, and pop() always serves the
/// backlogged tenant with the smallest virtual time (ties break on the
/// tenant name, so the order is fully deterministic). A tenant becoming
/// backlogged resumes at the current global virtual time, so idling never
/// banks credit. Within a tenant, higher `priority` dequeues first and
/// equal priorities stay FIFO.
class AdmissionQueue {
public:
  explicit AdmissionQueue(std::size_t default_bound = 1024)
      : default_bound_(default_bound) {}

  /// Installs (or replaces) a tenant's QoS configuration. Unknown tenants
  /// are lazily created with defaults on first admit.
  void configure_tenant(const std::string &name, const TenantConfig &config);

  /// Admits `pending` at clock time `now_us`. On success the request is
  /// moved into the queue; on shedding (queue bound, rate limit) the status
  /// carries ErrorCode::Unavailable, `pending` is left untouched, and
  /// `reason` (when non-null) says which policy fired.
  support::Status admit(PendingRequest &pending, double now_us,
                        ShedReason *reason = nullptr);

  /// Weighted-fair pop; nullopt when empty.
  std::optional<PendingRequest> pop(double now_us);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Earliest admit_us over all queued requests (0 when empty). The batcher
  /// ages batches off this. O(log n): admit/pop maintain a running multiset
  /// of admit times, so the dispatcher's wait loop never scans the queues.
  [[nodiscard]] double oldest_admit_us() const;
  /// Earliest absolute deadline over all queued requests that carry one
  /// (-1 when none). The dispatcher caps its batch-fill wait at this time so
  /// an expired request is shed eagerly instead of aging in the queue.
  [[nodiscard]] double earliest_deadline_us() const;
  [[nodiscard]] std::size_t tenant_depth(const std::string &name) const;

private:
  struct Tenant {
    TenantConfig config;
    TokenBucket bucket;
    std::deque<PendingRequest> waiting;
    double vtime = 0.0;
  };

  Tenant &tenant(const std::string &name);

  std::size_t default_bound_;
  std::size_t size_ = 0;
  double global_vtime_ = 0.0;
  std::map<std::string, Tenant> tenants_;
  /// Running minima maintained by admit()/pop(): admit times of every queued
  /// request, and the absolute deadlines of the queued requests that have
  /// one. Keeps oldest_admit_us()/earliest_deadline_us() off the O(queue)
  /// scan the dispatcher wait loop would otherwise repeat per iteration.
  std::multiset<double> admit_times_;
  std::multiset<double> deadlines_;
};

}  // namespace everest::serve
