// everest/serve/request.hpp
//
// Typed requests and responses of the everest::serve layer. The serving
// runtime turns the SDK from a one-DFG-per-call library into a multi-tenant
// request server (the design-environment paper's virtualized-node runtime,
// and the 1st-CLaaS FPGA-as-a-service shape: many clients, one accelerator
// pool, batched dispatch). One server fronts one serving graph; a request is
// one element of that graph's input streams.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "runtime/dfg_executor.hpp"
#include "support/expected.hpp"

namespace everest::serve {

/// One inference/analytics request: a single element for every input stream
/// of the serving graph.
struct Request {
  std::string tenant = "default";
  /// One record per graph input stream, keyed by the dfg.input name. Every
  /// declared input must be present.
  std::map<std::string, runtime::Record> inputs;
  /// Absolute deadline on the server clock (us since server construction);
  /// < 0 means none. Requests still queued past their deadline are shed
  /// with DeadlineExceeded instead of executed. See Server::admit_deadline.
  double deadline_us = -1.0;
  /// Higher priority dequeues first *within* a tenant; tenants compete only
  /// through their fair-share weights.
  int priority = 0;
};

/// The completed (or shed/failed) counterpart of one Request.
struct Response {
  std::uint64_t request_id = 0;
  std::string tenant;
  /// Ok when `outputs` is valid; otherwise the error that shed or failed
  /// the request (Unavailable for load shedding / exhausted backends,
  /// DeadlineExceeded for deadline shedding).
  support::Status status;
  /// One record per graph output stream — byte-identical to what a
  /// single-request (unbatched) execution would produce.
  std::map<std::string, runtime::Record> outputs;
  /// Server-clock timestamps (us) and derived latency.
  double admit_us = 0.0;
  double finish_us = 0.0;
  double latency_us = 0.0;
  /// The batch this request rode in.
  std::uint64_t batch_id = 0;
  std::size_t batch_size = 0;
  /// Which backend executed it ("" when shed before dispatch).
  std::string backend;
  /// True when the request ran on a non-primary backend (failover).
  bool degraded = false;
};

/// Per-tenant QoS knobs.
struct TenantConfig {
  /// Fair-share weight: a tenant with weight 2 dequeues twice as often as a
  /// weight-1 tenant under contention. Must be > 0.
  double weight = 1.0;
  /// Token-bucket admission rate in requests/second; <= 0 disables rate
  /// limiting for the tenant.
  double rate_per_s = 0.0;
  /// Token-bucket burst capacity (only meaningful when rate_per_s > 0).
  double burst = 8.0;
  /// Per-tenant queue bound; 0 falls back to the server default. Admissions
  /// beyond the bound are shed with Unavailable.
  std::size_t queue_bound = 0;
};

}  // namespace everest::serve
