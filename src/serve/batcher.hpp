// everest/serve/batcher.hpp
//
// Dynamic-batching policy: pure decision functions over (queue depth, age of
// the oldest queued request, now). Kept free of threads and clocks so the
// policy is unit-testable on its own; the Server supplies the lock, the
// condition-variable waits, and the wall clock.
#pragma once

#include <algorithm>
#include <cstddef>

namespace everest::serve {

/// Dispatch a batch when `max_batch` requests are queued, or when the oldest
/// queued request has waited `max_wait_us` of wall time (0 = dispatch
/// immediately, i.e. batches only form under concurrent load), or when the
/// server is draining.
struct BatcherOptions {
  std::size_t max_batch = 8;
  double max_wait_us = 0.0;
};

class DynamicBatcher {
public:
  DynamicBatcher() = default;
  explicit DynamicBatcher(BatcherOptions options) : options_(options) {
    if (options_.max_batch == 0) options_.max_batch = 1;
    if (options_.max_wait_us < 0.0) options_.max_wait_us = 0.0;
  }

  [[nodiscard]] const BatcherOptions &options() const { return options_; }
  [[nodiscard]] std::size_t max_batch() const { return options_.max_batch; }

  /// Whether a dispatcher holding the queue lock should cut a batch now.
  /// `earliest_deadline_us` is the soonest absolute deadline pending in the
  /// queue (< 0 when none): once it has passed, the dispatcher must cut
  /// immediately so the expired request is shed eagerly instead of sitting
  /// in the queue until the wait budget of `max_wait_us` runs out.
  [[nodiscard]] bool should_dispatch(std::size_t depth, double oldest_admit_us,
                                     double now_us, bool draining,
                                     double earliest_deadline_us = -1.0) const {
    if (depth == 0) return false;
    if (depth >= options_.max_batch) return true;
    if (draining) return true;
    if (earliest_deadline_us >= 0.0 && now_us >= earliest_deadline_us) {
      return true;
    }
    return now_us - oldest_admit_us >= options_.max_wait_us;
  }

  /// How long (us) the dispatcher may keep waiting for the batch to fill
  /// before the oldest request's wait budget runs out — capped at the
  /// earliest pending deadline, so a request never outlives its deadline
  /// inside the queue just because `max_wait_us` is large.
  [[nodiscard]] double wait_budget_us(double oldest_admit_us, double now_us,
                                      double earliest_deadline_us = -1.0) const {
    double budget =
        std::max(0.0, options_.max_wait_us - (now_us - oldest_admit_us));
    if (earliest_deadline_us >= 0.0) {
      budget = std::min(budget, std::max(0.0, earliest_deadline_us - now_us));
    }
    return budget;
  }

private:
  BatcherOptions options_;
};

}  // namespace everest::serve
