#include "serve/backend.hpp"

namespace everest::serve {

support::Expected<std::unique_ptr<DfgBackend>> DfgBackend::create(
    std::shared_ptr<const ir::Module> graph,
    std::shared_ptr<const runtime::NodeRegistry> registry,
    runtime::DfgExecOptions options, obs::TraceRecorder *recorder) {
  if (!graph) {
    return support::Error::invalid_argument("serve: null serving graph");
  }
  if (!registry) {
    return support::Error::invalid_argument("serve: null node registry");
  }
  const ir::Operation *dfg = nullptr;
  graph->walk([&](const ir::Operation &op) {
    if (dfg == nullptr && op.name() == "dfg.graph") dfg = &op;
  });
  if (dfg == nullptr || dfg->num_regions() == 0 || dfg->region(0).empty()) {
    return support::Error::invalid_argument(
        "serve: module contains no dfg.graph to serve");
  }
  std::vector<std::string> input_names;
  bool has_fold = false;
  support::Status bad = support::Status::ok();
  for (const ir::Operation &op : dfg->region(0).front().operations()) {
    if (op.name() == "dfg.input") {
      input_names.push_back(op.attr_string("name"));
    } else if (op.name() == "dfg.fold") {
      // A fold collapses the whole stream into one record, so the batch
      // cannot be run as one concatenated stream — run_batch executes fold
      // graphs per request instead (each request's fold starts from the
      // initial state and sees only that request's records).
      has_fold = true;
      std::string callee = op.attr_string("callee");
      if (registry->find_fold(callee) == nullptr) {
        bad = support::Error::not_found(
            "serve: dfg.fold callee '" + callee + "' is not registered");
      }
    } else if (op.name() == "dfg.node") {
      std::string callee = op.attr_string("callee");
      if (registry->find_node(callee) == nullptr) {
        bad = support::Error::not_found(
            "serve: dfg.node callee '" + callee + "' is not registered");
      }
    }
  }
  if (!bad.is_ok()) return bad.error();
  if (input_names.empty()) {
    return support::Error::invalid_argument(
        "serve: serving graph declares no dfg.input streams");
  }
  return std::unique_ptr<DfgBackend>(
      new DfgBackend(std::move(graph), std::move(registry), options, recorder,
                     std::move(input_names), has_fold));
}

support::Expected<std::map<std::string, runtime::Stream>> DfgBackend::run_batch(
    const std::map<std::string, runtime::Stream> &inputs) {
  if (!has_fold_) {
    return runtime::execute_dfg(*graph_, *registry_, inputs, options_,
                                /*stats=*/nullptr, recorder_);
  }
  // Fold graphs: batching as one concatenated stream would fuse the
  // requests' data into a single fold state. Execute per request instead —
  // slice one record per input stream, run the graph, and concatenate the
  // per-request outputs back into batch-ordered streams. Each request's
  // input streams hold exactly one record, so every per-request output
  // stream has length one and the batch contract (same length and order as
  // the inputs) is preserved.
  std::size_t batch = 0;
  for (const auto &[name, stream] : inputs) {
    (void)name;
    batch = std::max(batch, stream.size());
  }
  std::map<std::string, runtime::Stream> outputs;
  for (std::size_t b = 0; b < batch; ++b) {
    std::map<std::string, runtime::Stream> slice;
    for (const auto &[name, stream] : inputs) {
      if (b >= stream.size()) {
        return support::Error::invalid_argument(
            "serve: ragged batch — input stream '" + name + "' has " +
            std::to_string(stream.size()) + " records, batch needs " +
            std::to_string(batch));
      }
      slice[name] = runtime::Stream{stream[b]};
    }
    auto result = runtime::execute_dfg(*graph_, *registry_, slice, options_,
                                       /*stats=*/nullptr, recorder_);
    if (!result) {
      return result.error().with_context("serve: fold graph, batch element " +
                                         std::to_string(b));
    }
    for (auto &[name, stream] : *result) {
      auto &out = outputs[name];
      out.insert(out.end(), stream.begin(), stream.end());
    }
  }
  return outputs;
}

support::Expected<std::unique_ptr<DeviceBackend>> DeviceBackend::create(
    platform::Device *device, std::string kernel,
    std::unique_ptr<DfgBackend> compute, double launch_deadline_us) {
  if (device == nullptr) {
    return support::Error::invalid_argument("serve: null device");
  }
  if (!compute) {
    return support::Error::invalid_argument(
        "serve: DeviceBackend needs a compute backend for functional results");
  }
  return std::unique_ptr<DeviceBackend>(
      new DeviceBackend(device, std::move(kernel), std::move(compute),
                        launch_deadline_us));
}

support::Expected<std::map<std::string, runtime::Stream>>
DeviceBackend::run_batch(const std::map<std::string, runtime::Stream> &inputs) {
  {
    // One simulated launch per batch: this is the amortization batching
    // buys, and the hook where injected device faults (DMA flakes, hung
    // kernels) surface as retryable errors.
    std::lock_guard<std::mutex> lock(launch_mu_);
    auto launch = device_->run(kernel_, /*dataflow=*/true, launch_deadline_us_);
    if (!launch) {
      return launch.error().with_context("serve: launch on " + name_);
    }
  }
  return compute_->run_batch(inputs);
}

}  // namespace everest::serve
