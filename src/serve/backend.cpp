#include "serve/backend.hpp"

namespace everest::serve {

support::Expected<std::unique_ptr<DfgBackend>> DfgBackend::create(
    std::shared_ptr<const ir::Module> graph,
    std::shared_ptr<const runtime::NodeRegistry> registry,
    runtime::DfgExecOptions options, obs::TraceRecorder *recorder) {
  if (!graph) {
    return support::Error::invalid_argument("serve: null serving graph");
  }
  if (!registry) {
    return support::Error::invalid_argument("serve: null node registry");
  }
  const ir::Operation *dfg = nullptr;
  graph->walk([&](const ir::Operation &op) {
    if (dfg == nullptr && op.name() == "dfg.graph") dfg = &op;
  });
  if (dfg == nullptr || dfg->num_regions() == 0 || dfg->region(0).empty()) {
    return support::Error::invalid_argument(
        "serve: module contains no dfg.graph to serve");
  }
  std::vector<std::string> input_names;
  support::Status bad = support::Status::ok();
  for (const ir::Operation &op : dfg->region(0).front().operations()) {
    if (op.name() == "dfg.input") {
      input_names.push_back(op.attr_string("name"));
    } else if (op.name() == "dfg.fold") {
      // A fold collapses the whole stream into one record, so running two
      // requests in one batch would fuse their data — batching must refuse.
      bad = support::Error::unsupported(
          "serve: graph contains dfg.fold '" + op.attr_string("callee") +
          "' — fold stages are stateful across the stream and cannot be "
          "batched");
    } else if (op.name() == "dfg.node") {
      std::string callee = op.attr_string("callee");
      if (registry->find_node(callee) == nullptr) {
        bad = support::Error::not_found(
            "serve: dfg.node callee '" + callee + "' is not registered");
      }
    }
  }
  if (!bad.is_ok()) return bad.error();
  if (input_names.empty()) {
    return support::Error::invalid_argument(
        "serve: serving graph declares no dfg.input streams");
  }
  return std::unique_ptr<DfgBackend>(
      new DfgBackend(std::move(graph), std::move(registry), options, recorder,
                     std::move(input_names)));
}

support::Expected<std::map<std::string, runtime::Stream>> DfgBackend::run_batch(
    const std::map<std::string, runtime::Stream> &inputs) {
  return runtime::execute_dfg(*graph_, *registry_, inputs, options_,
                              /*stats=*/nullptr, recorder_);
}

support::Expected<std::unique_ptr<DeviceBackend>> DeviceBackend::create(
    platform::Device *device, std::string kernel,
    std::unique_ptr<DfgBackend> compute, double launch_deadline_us) {
  if (device == nullptr) {
    return support::Error::invalid_argument("serve: null device");
  }
  if (!compute) {
    return support::Error::invalid_argument(
        "serve: DeviceBackend needs a compute backend for functional results");
  }
  return std::unique_ptr<DeviceBackend>(
      new DeviceBackend(device, std::move(kernel), std::move(compute),
                        launch_deadline_us));
}

support::Expected<std::map<std::string, runtime::Stream>>
DeviceBackend::run_batch(const std::map<std::string, runtime::Stream> &inputs) {
  {
    // One simulated launch per batch: this is the amortization batching
    // buys, and the hook where injected device faults (DMA flakes, hung
    // kernels) surface as retryable errors.
    std::lock_guard<std::mutex> lock(launch_mu_);
    auto launch = device_->run(kernel_, /*dataflow=*/true, launch_deadline_us_);
    if (!launch) {
      return launch.error().with_context("serve: launch on " + name_);
    }
  }
  return compute_->run_batch(inputs);
}

}  // namespace everest::serve
