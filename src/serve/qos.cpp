#include "serve/qos.hpp"

#include <algorithm>
#include <limits>

namespace everest::serve {

void TokenBucket::refill(double now_us) {
  if (now_us > last_us_) {
    tokens_ = std::min(burst_, tokens_ + rate_per_s_ * (now_us - last_us_) / 1e6);
    last_us_ = now_us;
  }
}

bool TokenBucket::try_take(double now_us) {
  if (rate_per_s_ <= 0.0) return true;
  refill(now_us);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

double TokenBucket::available(double now_us) {
  if (rate_per_s_ <= 0.0) return std::numeric_limits<double>::infinity();
  refill(now_us);
  return tokens_;
}

AdmissionQueue::Tenant &AdmissionQueue::tenant(const std::string &name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    Tenant t;
    t.vtime = global_vtime_;
    it = tenants_.emplace(name, std::move(t)).first;
  }
  return it->second;
}

void AdmissionQueue::configure_tenant(const std::string &name,
                                      const TenantConfig &config) {
  Tenant &t = tenant(name);
  t.config = config;
  if (t.config.weight <= 0.0) t.config.weight = 1.0;
  // A bucket whose burst is below one token could never accumulate the one
  // token an admission costs, so a rate-limited tenant with burst < 1 would
  // shed every request forever. Clamp at the QoS layer so the effective
  // config is what introspection reports.
  if (t.config.burst < 1.0) t.config.burst = 1.0;
  t.bucket = TokenBucket(t.config.rate_per_s, t.config.burst);
}

support::Status AdmissionQueue::admit(PendingRequest &pending, double now_us,
                                      ShedReason *reason) {
  if (reason != nullptr) *reason = ShedReason::None;
  Tenant &t = tenant(pending.request.tenant);
  std::size_t bound = t.config.queue_bound > 0 ? t.config.queue_bound
                                               : default_bound_;
  if (t.waiting.size() >= bound) {
    if (reason != nullptr) *reason = ShedReason::QueueBound;
    return support::Status(support::Error::unavailable(
        "tenant '" + pending.request.tenant + "' queue bound (" +
        std::to_string(bound) + ") exceeded"));
  }
  if (!t.bucket.try_take(now_us)) {
    if (reason != nullptr) *reason = ShedReason::RateLimit;
    return support::Status(support::Error::unavailable(
        "tenant '" + pending.request.tenant + "' over its admission rate"));
  }
  // A tenant going idle->backlogged resumes at the global virtual time, so
  // it cannot bank credit while idle and then starve everyone else.
  if (t.waiting.empty()) t.vtime = std::max(t.vtime, global_vtime_);
  // Priority-ordered, stable within equal priority.
  auto pos = std::find_if(t.waiting.begin(), t.waiting.end(),
                          [&](const PendingRequest &q) {
                            return q.request.priority < pending.request.priority;
                          });
  admit_times_.insert(pending.admit_us);
  if (pending.request.deadline_us >= 0.0) {
    deadlines_.insert(pending.request.deadline_us);
  }
  t.waiting.insert(pos, std::move(pending));
  ++size_;
  return support::Status::ok();
}

std::optional<PendingRequest> AdmissionQueue::pop(double /*now_us*/) {
  if (size_ == 0) return std::nullopt;
  Tenant *best = nullptr;
  for (auto &[name, t] : tenants_) {
    if (t.waiting.empty()) continue;
    if (best == nullptr || t.vtime < best->vtime) best = &t;
    // std::map iterates names in order, so "first seen wins" on equal vtime
    // is the lexicographic tie-break.
  }
  if (best == nullptr) return std::nullopt;
  PendingRequest out = std::move(best->waiting.front());
  best->waiting.pop_front();
  --size_;
  global_vtime_ = best->vtime;
  best->vtime += 1.0 / best->config.weight;
  auto admit_it = admit_times_.find(out.admit_us);
  if (admit_it != admit_times_.end()) admit_times_.erase(admit_it);
  if (out.request.deadline_us >= 0.0) {
    auto deadline_it = deadlines_.find(out.request.deadline_us);
    if (deadline_it != deadlines_.end()) deadlines_.erase(deadline_it);
  }
  return out;
}

double AdmissionQueue::oldest_admit_us() const {
  return admit_times_.empty() ? 0.0 : *admit_times_.begin();
}

double AdmissionQueue::earliest_deadline_us() const {
  return deadlines_.empty() ? -1.0 : *deadlines_.begin();
}

std::size_t AdmissionQueue::tenant_depth(const std::string &name) const {
  auto it = tenants_.find(name);
  return it == tenants_.end() ? 0 : it->second.waiting.size();
}

}  // namespace everest::serve
