// everest/serve/server.hpp
//
// The everest::serve request server: a thread-safe admission queue feeding
// dispatcher threads that coalesce compatible requests into batches
// (dynamic batching: dispatch when max_batch fills or the oldest request
// has waited max_wait_us) and run them through the backend chain with
// failover. Per-tenant QoS — token-bucket rate limits, weighted-fair
// dequeue, bounded queues with load shedding — lives in qos.hpp; this file
// owns the threading, the batch lifecycle, the resilience wiring (retry
// per backend attempt, circuit breaker per backend, deadline shedding),
// and the observability surface (serve.* counters/gauges/histograms plus
// one span per dispatched batch).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "resil/policy.hpp"
#include "serve/backend.hpp"
#include "serve/batcher.hpp"
#include "serve/qos.hpp"
#include "serve/request.hpp"
#include "support/stats.hpp"

namespace everest::serve {

struct ServerOptions {
  BatcherOptions batch;
  /// Dispatcher (batch-forming/executing) threads.
  int dispatchers = 1;
  /// Default per-tenant queue bound (TenantConfig::queue_bound overrides).
  std::size_t queue_bound = 1024;
  /// Pre-configured tenants; unknown tenants get default QoS on first use.
  std::map<std::string, TenantConfig> tenants;
  /// Retry budget per backend per batch (retryable errors only).
  resil::RetryPolicy retry;
  /// Circuit-breaker options, one breaker instantiated per backend.
  resil::CircuitBreaker::Options breaker;
  /// Default latency budget (us) applied at admission when a request
  /// carries no deadline; < 0 means no default deadline.
  double default_deadline_budget_us = -1.0;
};

/// Aggregate serving statistics (snapshot via Server::stats()).
struct TenantStats {
  std::int64_t admitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t shed = 0;
  support::RunningStats latency_us;
};

struct ServerStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t shed_queue = 0;
  std::int64_t shed_rate = 0;
  std::int64_t shed_deadline = 0;
  /// Submits rejected because the server was draining. drain() flushes the
  /// requests admitted before it began; concurrent submitters are shed with
  /// Unavailable instead of being allowed to livelock the drain.
  std::int64_t shed_drain = 0;
  std::int64_t batches = 0;
  std::int64_t failovers = 0;
  std::int64_t breaker_rejections = 0;
  support::RunningStats batch_size;
  std::map<std::string, TenantStats> tenants;
};

/// Multi-tenant request server over a backend chain.
///
/// Lifecycle: construct (validated via create()), start(), submit() from any
/// number of client threads, drain() to flush, stop() (also run by the
/// destructor). Backends are tried in order per batch; each is guarded by
/// its own circuit breaker and retried per `options.retry`; a batch that
/// exhausts every backend fails all its requests with the last error.
/// Requests served by a non-primary backend report `degraded = true`.
class Server {
public:
  static support::Expected<std::unique_ptr<Server>> create(
      std::vector<std::unique_ptr<Backend>> backends, ServerOptions options,
      obs::TraceRecorder *recorder = nullptr);

  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Spawns the dispatcher threads. Idempotent.
  void start();

  /// Submits a request. On admission returns a future resolving to the
  /// Response (which itself may carry a shed/failed status, e.g.
  /// DeadlineExceeded discovered at dispatch). Requests shed *at admission*
  /// (queue bound, rate limit, server draining or stopped) fail fast here
  /// with Unavailable instead.
  support::Expected<std::future<Response>> submit(Request request);

  /// Blocks until the queue is empty and no batch is in flight, flushing
  /// partial batches immediately. Submits racing a drain are shed with
  /// Unavailable (otherwise a sustained submitter could keep the queue
  /// non-empty forever and livelock the drain); submitting resumes once
  /// drain() returns.
  void drain();

  /// Drains, then joins the dispatcher threads. Further submits fail.
  void stop();

  /// Microseconds since server construction — the clock `deadline_us` is
  /// measured on. `admit_deadline(budget)` is now_us() + budget.
  [[nodiscard]] double now_us() const { return clock_.now_us(); }
  [[nodiscard]] double admit_deadline(double budget_us) const {
    return now_us() + budget_us;
  }

  [[nodiscard]] ServerStats stats() const;
  /// Requests currently waiting for a batch (the serve.queue_depth gauge).
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] const std::vector<std::unique_ptr<Backend>> &backends() const {
    return backends_;
  }

private:
  Server(std::vector<std::unique_ptr<Backend>> backends, ServerOptions options,
         obs::TraceRecorder *recorder);

  void dispatcher_loop(int worker_index);
  void execute_batch(std::vector<PendingRequest> batch, std::uint64_t batch_id,
                     int worker_index);
  void finish_shed(PendingRequest pending, support::Error error);
  Response base_response(const PendingRequest &pending, double finish) const;

  std::vector<std::unique_ptr<Backend>> backends_;
  ServerOptions options_;
  DynamicBatcher batcher_;
  obs::TraceRecorder *recorder_;
  /// Private wall clock so deadlines are well-defined without a recorder.
  obs::TraceRecorder clock_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // queue gained work / state changed
  std::condition_variable idle_cv_;   // queue drained / batch finished
  AdmissionQueue queue_;
  std::vector<resil::CircuitBreaker> breakers_;
  ServerStats stats_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t next_batch_id_ = 1;
  int in_flight_batches_ = 0;
  bool started_ = false;
  bool draining_ = false;
  bool stopping_ = false;

  std::vector<std::thread> dispatchers_;
};

}  // namespace everest::serve
