// everest/resil/fault.hpp
//
// Cluster-level fault descriptions shared by the resource manager and the
// fault-injection tooling (paper §VI-A: the runtime monitor "reschedules
// tasks if needed"). Node faults describe *what* goes wrong on the cluster
// timeline; the policies in policy.hpp describe how the runtime reacts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace everest::resil {

/// How a cluster node misbehaves.
enum class NodeFaultKind {
  Crash,  // node dies: running tasks are lost and rescheduled
  Drain,  // node stops accepting new tasks; running tasks finish
};

/// One fault on the cluster timeline.
struct NodeFaultSpec {
  std::string node;
  double at_ms = 0.0;
  NodeFaultKind kind = NodeFaultKind::Crash;
};

/// Deterministically samples node faults: each node (except `spared`, which
/// guarantees a survivor so every plan stays schedulable) crashes with
/// probability `fault_rate` at a time drawn uniformly from
/// [0.1, 0.9] * horizon_ms. Pure function of (seed, nodes, rate, horizon).
std::vector<NodeFaultSpec> sample_node_faults(
    std::uint64_t seed, const std::vector<std::string> &nodes,
    double fault_rate, double horizon_ms, const std::string &spared = {});

}  // namespace everest::resil
