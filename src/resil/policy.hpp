// everest/resil/policy.hpp
//
// Resilience policies for the EVEREST runtime (paper §V-B: the runtime
// "adapts the execution" on the cluster). Everything here is deterministic
// on purpose: backoff jitter is a pure function of (seed, attempt), the
// circuit breaker runs on the simulated clock, and with_retry() advances
// simulated time through a caller-supplied wait hook — so a faulted run is
// exactly reproducible and testable bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/trace.hpp"
#include "support/expected.hpp"

namespace everest::resil {

/// Exponential backoff with deterministic jitter and a bounded attempt
/// budget. backoff_us(n) is a pure function of (policy, n).
struct RetryPolicy {
  int max_attempts = 3;             // total tries, including the first
  double initial_backoff_us = 100.0;
  double backoff_multiplier = 2.0;
  double max_backoff_us = 50'000.0;
  double jitter = 0.2;              // +- fraction of the backoff
  std::uint64_t jitter_seed = 0x5eedULL;

  /// Backoff before retry number `attempt` (attempt >= 1 is the wait after
  /// the attempt-th failure). Deterministic, capped, jittered.
  [[nodiscard]] double backoff_us(int attempt) const;
};

/// An absolute time budget on some clock (simulated device clock or
/// wall clock; the policy does not care which).
struct Deadline {
  double deadline_us = -1.0;  // < 0: no deadline

  [[nodiscard]] bool enabled() const { return deadline_us >= 0.0; }
  [[nodiscard]] bool expired(double now_us) const {
    return enabled() && now_us > deadline_us;
  }
  [[nodiscard]] double remaining_us(double now_us) const {
    return enabled() ? deadline_us - now_us : -1.0;
  }
};

/// Per-device health tracker: after `failure_threshold` consecutive
/// failures the breaker opens and rejects work for `open_us` of clock time,
/// then half-opens to let one probe through. Success closes it again.
class CircuitBreaker {
public:
  struct Options {
    int failure_threshold = 3;
    double open_us = 1'000.0;
  };
  enum class State { Closed, Open, HalfOpen };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// Whether a call may proceed at clock time `now_us`. Transitions
  /// Open -> HalfOpen once the cooldown has elapsed.
  bool allow(double now_us);
  void on_success();
  void on_failure(double now_us);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] int consecutive_failures() const { return failures_; }

private:
  Options options_;
  State state_ = State::Closed;
  int failures_ = 0;
  double open_until_us_ = 0.0;
};

/// Retry + deadline bundle used by the SDK entry points (basecamp
/// deploy_and_run, the CLI's --retry/--deadline-us flags).
struct ExecutionPolicy {
  RetryPolicy retry;
  Deadline deadline;
};

/// Checkpoint configuration for the dfg executor: snapshot fold state and
/// the stream cursor every `interval` elements (0 disables checkpointing,
/// so a mid-fold fault recomputes from the start of the stream).
struct CheckpointSpec {
  std::size_t interval = 0;
};

/// Runs `attempt` (a callable returning Expected<T> or Status) under the
/// retry policy. Retryable failures (Unavailable, DeadlineExceeded) back
/// off through `wait` — pass the device's host_wait_us so backoff advances
/// the simulated clock — and try again up to policy.max_attempts. When a
/// recorder is given, attempts/backoffs/outcomes land on resil.* metrics.
template <typename F>
auto with_retry(const RetryPolicy &policy, F &&attempt,
                const std::function<void(double)> &wait = nullptr,
                obs::TraceRecorder *recorder = nullptr,
                const std::string &op = "op") -> decltype(attempt()) {
  int budget = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int tried = 1;; ++tried) {
    auto result = attempt();
    if (result) {
      if (recorder && tried > 1)
        recorder->counter("resil.retry.recovered").add(1);
      return result;
    }
    const support::Error &err = result.error();
    if (!support::is_retryable(err.code_enum()) || tried >= budget) {
      if (recorder)
        recorder->counter("resil.retry.exhausted." + op).add(1);
      return result;
    }
    double backoff = policy.backoff_us(tried);
    if (recorder) {
      recorder->counter("resil.retry.attempts").add(1);
      recorder->histogram("resil.retry.backoff_us").record(backoff);
    }
    if (wait) wait(backoff);
  }
}

}  // namespace everest::resil
