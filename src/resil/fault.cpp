#include "resil/fault.hpp"

#include "support/rng.hpp"

namespace everest::resil {

std::vector<NodeFaultSpec> sample_node_faults(
    std::uint64_t seed, const std::vector<std::string> &nodes,
    double fault_rate, double horizon_ms, const std::string &spared) {
  std::vector<NodeFaultSpec> faults;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i] == spared) continue;
    // Keyed per node index, not a shared stream, so adding a node does not
    // shift every other node's draw.
    support::SplitMix64 sm(seed ^ ((i + 1) * 0x9e3779b97f4a7c15ULL));
    double u_fault = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
    if (u_fault >= fault_rate) continue;
    double u_time = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
    faults.push_back({nodes[i], (0.1 + 0.8 * u_time) * horizon_ms,
                      NodeFaultKind::Crash});
  }
  return faults;
}

}  // namespace everest::resil
