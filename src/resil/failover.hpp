// everest/resil/failover.hpp
//
// Device failover for kernel launches: try the primary device under a retry
// policy; if its attempt budget is exhausted (or its circuit breaker is
// open) re-place the work on a backup device, and as a last resort fall
// back to a host-CPU execution estimate with degraded-mode accounting.
// This is the PCIe-vs-network trade-off of the EVEREST design environment
// made operational: work migrates across the devices that remain healthy.
//
// The group is thread-safe and its membership is dynamic: the serving
// layer's VF elasticity hot-plugs SR-IOV virtual functions in and out of a
// node's replica group at runtime (add_device / remove_last_device), and
// Placement::RoundRobin rotates the starting replica per launch so plugged
// capacity actually spreads load instead of only absorbing failures.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "platform/xrt.hpp"
#include "resil/policy.hpp"
#include "support/expected.hpp"

namespace everest::resil {

struct FailoverOptions {
  RetryPolicy retry;              // per-device attempt budget
  Deadline deadline;              // per-launch deadline (watchdog abort)
  CircuitBreaker::Options breaker;
  double host_fallback_us = -1.0; // host-CPU estimate; < 0 disables fallback
  /// How the group picks the device that a launch tries first. PrimaryFirst
  /// is the classic primary + ordered backups; RoundRobin rotates the start
  /// index per launch (replica load balancing), still failing over through
  /// the remaining devices in ring order.
  enum class Placement { PrimaryFirst, RoundRobin };
  Placement placement = Placement::PrimaryFirst;
};

/// Where and how one launch finally ran.
struct FailoverOutcome {
  double latency_us = 0.0;
  std::string executed_on;  // device name, or "host-cpu"
  int attempts = 0;         // total launch attempts across all devices
  bool degraded = false;    // did not run on the device tried first
};

/// Cumulative degraded-mode accounting.
struct FailoverStats {
  std::int64_t primary_runs = 0;
  std::int64_t failover_runs = 0;
  std::int64_t host_fallback_runs = 0;
  std::int64_t breaker_rejections = 0;
};

/// A primary device plus ordered backups, each behind a circuit breaker.
/// Kernels must already be loaded on every member device. Launches, stats
/// reads, and membership changes serialize on an internal mutex, so the
/// group may be shared by concurrent dispatcher threads.
class FailoverGroup {
public:
  FailoverGroup(std::vector<platform::Device *> devices,
                FailoverOptions options = {},
                obs::TraceRecorder *recorder = nullptr);

  /// Launches `kernel` on the first healthy device that completes it within
  /// the policy, falling back to the host estimate when every device fails.
  support::Expected<FailoverOutcome> run(const std::string &kernel,
                                         bool dataflow = false);

  /// Appends a device (fresh closed breaker) to the replica ring. The
  /// caller keeps ownership and must have loaded the kernels already.
  void add_device(platform::Device *device);
  /// Removes the most recently added device from the ring and returns it so
  /// the owner can unplug it. Fails when it would empty the group. Safe
  /// against in-flight launches: removal holds the same lock launches do.
  support::Expected<platform::Device *> remove_last_device();

  [[nodiscard]] FailoverStats stats() const;
  [[nodiscard]] CircuitBreaker::State breaker_state(std::size_t i) const;
  [[nodiscard]] std::size_t size() const;

private:
  mutable std::mutex mu_;
  std::vector<platform::Device *> devices_;
  std::vector<CircuitBreaker> breakers_;
  FailoverOptions options_;
  obs::TraceRecorder *recorder_;
  FailoverStats stats_;
  std::size_t next_start_ = 0;  // RoundRobin rotation cursor
};

}  // namespace everest::resil
