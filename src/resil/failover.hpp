// everest/resil/failover.hpp
//
// Device failover for kernel launches: try the primary device under a retry
// policy; if its attempt budget is exhausted (or its circuit breaker is
// open) re-place the work on a backup device, and as a last resort fall
// back to a host-CPU execution estimate with degraded-mode accounting.
// This is the PCIe-vs-network trade-off of the EVEREST design environment
// made operational: work migrates across the devices that remain healthy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "platform/xrt.hpp"
#include "resil/policy.hpp"
#include "support/expected.hpp"

namespace everest::resil {

struct FailoverOptions {
  RetryPolicy retry;              // per-device attempt budget
  Deadline deadline;              // per-launch deadline (watchdog abort)
  CircuitBreaker::Options breaker;
  double host_fallback_us = -1.0; // host-CPU estimate; < 0 disables fallback
};

/// Where and how one launch finally ran.
struct FailoverOutcome {
  double latency_us = 0.0;
  std::string executed_on;  // device name, or "host-cpu"
  int attempts = 0;         // total launch attempts across all devices
  bool degraded = false;    // did not run on the primary device
};

/// Cumulative degraded-mode accounting.
struct FailoverStats {
  std::int64_t primary_runs = 0;
  std::int64_t failover_runs = 0;
  std::int64_t host_fallback_runs = 0;
  std::int64_t breaker_rejections = 0;
};

/// A primary device plus ordered backups, each behind a circuit breaker.
/// Kernels must already be loaded on every member device.
class FailoverGroup {
public:
  FailoverGroup(std::vector<platform::Device *> devices,
                FailoverOptions options = {},
                obs::TraceRecorder *recorder = nullptr);

  /// Launches `kernel` on the first healthy device that completes it within
  /// the policy, falling back to the host estimate when every device fails.
  support::Expected<FailoverOutcome> run(const std::string &kernel,
                                         bool dataflow = false);

  [[nodiscard]] const FailoverStats &stats() const { return stats_; }
  [[nodiscard]] const CircuitBreaker &breaker(std::size_t i) const {
    return breakers_[i];
  }
  [[nodiscard]] std::size_t size() const { return devices_.size(); }

private:
  std::vector<platform::Device *> devices_;
  std::vector<CircuitBreaker> breakers_;
  FailoverOptions options_;
  obs::TraceRecorder *recorder_;
  FailoverStats stats_;
};

}  // namespace everest::resil
