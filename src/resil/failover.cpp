#include "resil/failover.hpp"

namespace everest::resil {

using support::Error;
using support::Expected;

FailoverGroup::FailoverGroup(std::vector<platform::Device *> devices,
                             FailoverOptions options,
                             obs::TraceRecorder *recorder)
    : devices_(std::move(devices)),
      options_(std::move(options)),
      recorder_(recorder) {
  breakers_.assign(devices_.size(), CircuitBreaker(options_.breaker));
}

Expected<FailoverOutcome> FailoverGroup::run(const std::string &kernel,
                                             bool dataflow) {
  std::lock_guard<std::mutex> lock(mu_);
  Error last = Error::unavailable("resil: failover group has no devices");
  int attempts = 0;
  std::size_t start = 0;
  if (options_.placement == FailoverOptions::Placement::RoundRobin &&
      !devices_.empty()) {
    start = next_start_++ % devices_.size();
  }
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    std::size_t d = (start + i) % devices_.size();
    platform::Device &dev = *devices_[d];
    if (!breakers_[d].allow(dev.now_us())) {
      ++stats_.breaker_rejections;
      if (recorder_) recorder_->counter("resil.breaker.rejected").add(1);
      continue;
    }
    auto attempt = [&]() -> Expected<double> {
      ++attempts;
      return dev.run(kernel, dataflow, options_.deadline.deadline_us);
    };
    auto result = with_retry(
        options_.retry, attempt,
        [&](double us) { dev.host_wait_us(us); }, recorder_,
        "run." + dev.spec().name);
    if (result) {
      breakers_[d].on_success();
      // "Primary" is the device this launch tried first (ring start under
      // RoundRobin); landing anywhere else means the launch was degraded.
      bool primary = i == 0;
      if (primary) ++stats_.primary_runs;
      else ++stats_.failover_runs;
      if (recorder_ && !primary)
        recorder_->counter("resil.failover.runs").add(1);
      return FailoverOutcome{*result, dev.spec().name, attempts, !primary};
    }
    breakers_[d].on_failure(dev.now_us());
    last = result.error();
    if (recorder_) recorder_->counter("resil.failover.device_exhausted").add(1);
  }
  if (options_.host_fallback_us >= 0.0) {
    ++stats_.host_fallback_runs;
    if (recorder_) recorder_->counter("resil.failover.host_fallback").add(1);
    return FailoverOutcome{options_.host_fallback_us, "host-cpu", attempts,
                           true};
  }
  return last.with_context("resil: kernel '" + kernel +
                           "' failed on every device in the group");
}

void FailoverGroup::add_device(platform::Device *device) {
  std::lock_guard<std::mutex> lock(mu_);
  devices_.push_back(device);
  breakers_.emplace_back(options_.breaker);
}

Expected<platform::Device *> FailoverGroup::remove_last_device() {
  std::lock_guard<std::mutex> lock(mu_);
  if (devices_.size() <= 1) {
    return Error::unavailable(
        "resil: cannot remove the last device of a failover group");
  }
  platform::Device *device = devices_.back();
  devices_.pop_back();
  breakers_.pop_back();
  if (next_start_ >= devices_.size()) next_start_ = 0;
  return device;
}

FailoverStats FailoverGroup::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

CircuitBreaker::State FailoverGroup::breaker_state(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return breakers_[i].state();
}

std::size_t FailoverGroup::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return devices_.size();
}

}  // namespace everest::resil
