#include "resil/failover.hpp"

namespace everest::resil {

using support::Error;
using support::Expected;

FailoverGroup::FailoverGroup(std::vector<platform::Device *> devices,
                             FailoverOptions options,
                             obs::TraceRecorder *recorder)
    : devices_(std::move(devices)),
      options_(std::move(options)),
      recorder_(recorder) {
  breakers_.assign(devices_.size(), CircuitBreaker(options_.breaker));
}

Expected<FailoverOutcome> FailoverGroup::run(const std::string &kernel,
                                             bool dataflow) {
  Error last = Error::unavailable("resil: failover group has no devices");
  int attempts = 0;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    platform::Device &dev = *devices_[d];
    if (!breakers_[d].allow(dev.now_us())) {
      ++stats_.breaker_rejections;
      if (recorder_) recorder_->counter("resil.breaker.rejected").add(1);
      continue;
    }
    auto attempt = [&]() -> Expected<double> {
      ++attempts;
      return dev.run(kernel, dataflow, options_.deadline.deadline_us);
    };
    auto result = with_retry(
        options_.retry, attempt,
        [&](double us) { dev.host_wait_us(us); }, recorder_,
        "run." + dev.spec().name);
    if (result) {
      breakers_[d].on_success();
      bool primary = d == 0;
      if (primary) ++stats_.primary_runs;
      else ++stats_.failover_runs;
      if (recorder_ && !primary)
        recorder_->counter("resil.failover.runs").add(1);
      return FailoverOutcome{*result, dev.spec().name, attempts, !primary};
    }
    breakers_[d].on_failure(dev.now_us());
    last = result.error();
    if (recorder_) recorder_->counter("resil.failover.device_exhausted").add(1);
  }
  if (options_.host_fallback_us >= 0.0) {
    ++stats_.host_fallback_runs;
    if (recorder_) recorder_->counter("resil.failover.host_fallback").add(1);
    return FailoverOutcome{options_.host_fallback_us, "host-cpu", attempts,
                           true};
  }
  return last.with_context("resil: kernel '" + kernel +
                           "' failed on every device in the group");
}

}  // namespace everest::resil
