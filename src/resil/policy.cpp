#include "resil/policy.hpp"

#include <algorithm>
#include <cmath>

#include "support/rng.hpp"

namespace everest::resil {

double RetryPolicy::backoff_us(int attempt) const {
  if (attempt < 1) attempt = 1;
  double base = initial_backoff_us *
                std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  base = std::min(base, max_backoff_us);
  if (jitter <= 0.0) return base;
  // Deterministic jitter: pure function of (jitter_seed, attempt), so the
  // same policy replays the same backoff sequence run after run.
  support::SplitMix64 sm(jitter_seed ^
                         (static_cast<std::uint64_t>(attempt) *
                          0xd1342543de82ef95ULL));
  double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  double factor = 1.0 + jitter * (2.0 * u - 1.0);
  return base * factor;
}

bool CircuitBreaker::allow(double now_us) {
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      if (now_us >= open_until_us_) {
        state_ = State::HalfOpen;
        return true;
      }
      return false;
    case State::HalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::on_success() {
  failures_ = 0;
  state_ = State::Closed;
}

void CircuitBreaker::on_failure(double now_us) {
  ++failures_;
  if (state_ == State::HalfOpen || failures_ >= options_.failure_threshold) {
    state_ = State::Open;
    open_until_us_ = now_us + options_.open_us;
  }
}

}  // namespace everest::resil
