#include "hpcc/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "frontend/condrust_parser.hpp"
#include "platform/network.hpp"
#include "support/rng.hpp"
#include "transforms/teil_eval.hpp"

namespace everest::hpcc {

namespace {

using numerics::Shape;
using numerics::Tensor;
using support::Error;
using support::Expected;
using support::Json;

Tensor random_tensor(support::Pcg32 &rng, Shape shape, double lo = -1.0,
                     double hi = 1.0) {
  Tensor t(std::move(shape));
  for (double &v : t.data()) v = rng.uniform(lo, hi);
  return t;
}

/// Fetches one named output of the compiled run; infinity on absence keeps
/// the validation contract "error < epsilon" failing loudly.
double output_error(const std::map<std::string, Tensor> &outputs,
                    const std::string &name, const Tensor &ref) {
  auto it = outputs.find(name);
  if (it == outputs.end()) return std::numeric_limits<double>::infinity();
  return max_rel_error(ref, it->second);
}

}  // namespace

// --------------------------------------------------------------- STREAM

StreamBenchmark::StreamBenchmark()
    : HpccBenchmark("stream", "GB/s", "hbm-pseudo-channels", 1e-12) {}

Expected<BenchmarkResult> StreamBenchmark::run(HpccHarness &h) {
  const std::int64_t n = h.config().n;
  support::Pcg32 rng(h.config().seed ^ 0x53545245u);  // "STRE"
  transforms::EklBindings bind;
  bind.inputs.emplace("a", random_tensor(rng, {n}));
  bind.inputs.emplace("b", random_tensor(rng, {n}));
  const Tensor &a = bind.inputs.at("a");
  const Tensor &b = bind.inputs.at("b");

  auto compiled = h.compile_kernel("stream.ekl", bind);
  if (!compiled) return compiled.error();

  std::map<std::string, Tensor> ref;
  ref.emplace("copy", a);
  Tensor scale({n}), add({n}), triad({n});
  for (std::int64_t i = 0; i < n; ++i) {
    scale(i) = 0.42 * b(i);
    add(i) = a(i) + b(i);
    triad(i) = a(i) + 0.42 * b(i);
  }
  ref.emplace("scale", std::move(scale));
  ref.emplace("add", std::move(add));
  ref.emplace("triad", std::move(triad));

  auto outputs = h.run_compiled(*compiled, bind.inputs);
  if (!outputs) return outputs.error();

  BenchmarkResult r = make_result();
  for (const auto &[name, tensor] : ref)
    r.error = std::max(r.error, output_error(*outputs, name, tensor));
  r.validated = r.error < r.epsilon;
  h.fill_roofline(r, *compiled);
  auto us = h.best_device_us(*compiled);
  if (!us) return us.error();
  r.device_us = *us;
  r.extra.set("system_total_us", compiled->estimate.total_us);
  r.extra.set("effective_bandwidth_gbps",
              compiled->estimate.effective_bandwidth_gbps);
  return r;
}

// ----------------------------------------------------------------- GEMM

GemmBenchmark::GemmBenchmark()
    : HpccBenchmark("gemm", "GFLOP/s", "hls-scheduling+plm-tiling", 1e-9) {}

Expected<BenchmarkResult> GemmBenchmark::run(HpccHarness &h) {
  const std::int64_t n = h.config().n;
  support::Pcg32 rng(h.config().seed ^ 0x47454d4du);  // "GEMM"
  transforms::EklBindings bind;
  bind.inputs.emplace("a", random_tensor(rng, {n, n}));
  bind.inputs.emplace("b", random_tensor(rng, {n, n}));
  bind.inputs.emplace("c0", random_tensor(rng, {n, n}));
  const Tensor &a = bind.inputs.at("a");
  const Tensor &b = bind.inputs.at("b");
  const Tensor &c0 = bind.inputs.at("c0");

  auto compiled = h.compile_kernel("gemm.ekl", bind);
  if (!compiled) return compiled.error();

  Tensor c({n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < n; ++k) acc += a(i, k) * b(k, j);
      c(i, j) = 0.5 * acc + 0.25 * c0(i, j);
    }
  }

  auto outputs = h.run_compiled(*compiled, bind.inputs);
  if (!outputs) return outputs.error();

  BenchmarkResult r = make_result();
  r.error = output_error(*outputs, "c", c);
  r.validated = r.error < r.epsilon;
  r.flops = static_cast<double>(transforms::teil_flop_count(*compiled->teil_ir));
  h.fill_roofline(r, *compiled);
  auto us = h.best_device_us(*compiled);
  if (!us) return us.error();
  r.device_us = *us;
  r.extra.set("plm_tile_bytes", compiled->olympus_options.plm_tile_bytes);
  r.extra.set("tiles", compiled->estimate.tiles);
  return r;
}

// --------------------------------------------------------------- PTRANS

PtransBenchmark::PtransBenchmark()
    : HpccBenchmark("ptrans", "GB/s", "hbm-pseudo-channels", 1e-12) {}

Expected<BenchmarkResult> PtransBenchmark::run(HpccHarness &h) {
  const std::int64_t n = h.config().n;
  support::Pcg32 rng(h.config().seed ^ 0x50545241u);  // "PTRA"
  transforms::EklBindings bind;
  bind.inputs.emplace("a", random_tensor(rng, {n, n}));
  bind.inputs.emplace("c", random_tensor(rng, {n, n}));
  const Tensor &a = bind.inputs.at("a");
  const Tensor &c = bind.inputs.at("c");

  auto compiled = h.compile_kernel("ptrans.ekl", bind);
  if (!compiled) return compiled.error();

  // b is indexed [j, i]: b(p, q) = a(p, q) + c(q, p) — A plus C transposed,
  // the PTRANS update relabeled onto the output's index order.
  Tensor b({n, n});
  double checksum = 0.0;
  for (std::int64_t p = 0; p < n; ++p) {
    for (std::int64_t q = 0; q < n; ++q) {
      b(p, q) = a(p, q) + c(q, p);
      checksum += b(p, q);
    }
  }

  auto outputs = h.run_compiled(*compiled, bind.inputs);
  if (!outputs) return outputs.error();

  BenchmarkResult r = make_result();
  r.error = output_error(*outputs, "b", b);
  r.error = std::max(
      r.error, output_error(*outputs, "checksum", Tensor::scalar(checksum)));
  r.validated = r.error < r.epsilon;
  h.fill_roofline(r, *compiled);
  auto us = h.best_device_us(*compiled);
  if (!us) return us.error();
  r.device_us = *us;
  r.extra.set("checksum", checksum);
  return r;
}

// ------------------------------------------------------------------ FFT

FftBenchmark::FftBenchmark()
    : HpccBenchmark("fft", "GFLOP/s", "hls-scheduling+packing", 1e-9) {}

Expected<BenchmarkResult> FftBenchmark::run(HpccHarness &h) {
  const std::int64_t N = h.config().n;   // transform length
  const std::int64_t B = 4;              // batched transforms
  support::Pcg32 rng(h.config().seed ^ 0x46465421u);  // "FFT!"
  transforms::EklBindings bind;
  bind.inputs.emplace("xr", random_tensor(rng, {B, N}));
  bind.inputs.emplace("xi", random_tensor(rng, {B, N}));
  Tensor cosm({N, N}), sinm({N, N});
  const double two_pi = 2.0 * 3.14159265358979323846;
  for (std::int64_t k = 0; k < N; ++k) {
    for (std::int64_t t = 0; t < N; ++t) {
      double angle = two_pi * static_cast<double>(k * t) /
                     static_cast<double>(N);
      cosm(k, t) = std::cos(angle);
      sinm(k, t) = std::sin(angle);
    }
  }
  bind.inputs.emplace("cosm", std::move(cosm));
  bind.inputs.emplace("sinm", std::move(sinm));
  const Tensor &xr = bind.inputs.at("xr");
  const Tensor &xi = bind.inputs.at("xi");
  const Tensor &cm = bind.inputs.at("cosm");
  const Tensor &sm = bind.inputs.at("sinm");

  auto compiled = h.compile_kernel("fft.ekl", bind);
  if (!compiled) return compiled.error();

  // Two independent contractions per output, matching the kernel's two
  // sum() terms (same accumulation order as the interpreter).
  Tensor yr({B, N}), yi({B, N});
  for (std::int64_t q = 0; q < B; ++q) {
    for (std::int64_t k = 0; k < N; ++k) {
      double rc = 0.0, rs = 0.0, ic = 0.0, is = 0.0;
      for (std::int64_t t = 0; t < N; ++t) {
        rc += xr(q, t) * cm(k, t);
        rs += xi(q, t) * sm(k, t);
        ic += xi(q, t) * cm(k, t);
        is += xr(q, t) * sm(k, t);
      }
      yr(q, k) = rc + rs;
      yi(q, k) = ic - is;
    }
  }

  auto outputs = h.run_compiled(*compiled, bind.inputs);
  if (!outputs) return outputs.error();

  BenchmarkResult r = make_result();
  r.error = std::max(output_error(*outputs, "yr", yr),
                     output_error(*outputs, "yi", yi));
  r.validated = r.error < r.epsilon;
  r.flops = static_cast<double>(transforms::teil_flop_count(*compiled->teil_ir));
  h.fill_roofline(r, *compiled);
  auto us = h.best_device_us(*compiled);
  if (!us) return us.error();
  r.device_us = *us;
  r.extra.set("batch", B);
  r.extra.set("transform_length", N);
  return r;
}

// --------------------------------------------------------- RandomAccess

RandomAccessBenchmark::RandomAccessBenchmark()
    : HpccBenchmark("randomaccess", "GUPS", "dma-latency", 1e-12) {}

Expected<RandomAccessGraph> make_randomaccess_graph(
    const std::string &source, runtime::Record initial_table) {
  auto graph = frontend::parse_condrust(source);
  if (!graph) return graph.error();
  const std::size_t size = initial_table.size();
  auto registry = std::make_shared<runtime::NodeRegistry>();
  registry->register_fold(
      "apply_update", std::move(initial_table),
      [size](const runtime::Record &state,
             const std::vector<const runtime::Record *> &in) {
        runtime::Record next = state;
        const runtime::Record &update = *in.at(0);
        auto slot = static_cast<std::int64_t>(std::llround(update.at(0)));
        slot = std::clamp<std::int64_t>(slot, 0,
                                        static_cast<std::int64_t>(size) - 1);
        next[static_cast<std::size_t>(slot)] += update.at(1);
        return next;
      });
  return RandomAccessGraph{*graph, std::move(registry)};
}

Expected<BenchmarkResult> RandomAccessBenchmark::run(HpccHarness &h) {
  const std::int64_t n = h.config().n;       // table slots
  const std::int64_t updates = 4 * n;        // HPCC's 4x table size
  support::Pcg32 rng(h.config().seed ^ 0x52414e44u);  // "RAND"
  transforms::EklBindings bind;
  bind.inputs.emplace("t", random_tensor(rng, {n}));
  Tensor idx({updates}), val({updates});
  for (std::int64_t u = 0; u < updates; ++u) {
    idx(u) = static_cast<double>(
        std::min<std::int64_t>(n - 1, static_cast<std::int64_t>(
                                          rng.uniform(0.0, 1.0) *
                                          static_cast<double>(n))));
    val(u) = rng.uniform(-1.0, 1.0);
  }
  bind.inputs.emplace("idx", std::move(idx));
  bind.inputs.emplace("val", std::move(val));
  const Tensor &t = bind.inputs.at("t");
  const Tensor &ix = bind.inputs.at("idx");
  const Tensor &vv = bind.inputs.at("val");

  // Probe kernel: the gather side of the update loop on the device.
  auto compiled = h.compile_kernel("randomaccess.ekl", bind);
  if (!compiled) return compiled.error();

  Tensor g({updates});
  for (std::int64_t u = 0; u < updates; ++u)
    g(u) = t(static_cast<std::int64_t>(ix(u))) + vv(u);

  auto outputs = h.run_compiled(*compiled, bind.inputs);
  if (!outputs) return outputs.error();

  BenchmarkResult r = make_result();
  r.error = output_error(*outputs, "g", g);

  // Functional update loop: the ordered dfg.fold against the table state,
  // validated exactly against a sequential host loop.
  auto condrust = h.read_kernel("randomaccess.rs");
  if (!condrust) return condrust.error();
  runtime::Record table(t.data().begin(), t.data().end());
  auto fold = make_randomaccess_graph(*condrust, table);
  if (!fold) return fold.error();
  runtime::Stream stream;
  for (std::int64_t u = 0; u < updates; ++u)
    stream.push_back({ix(u), vv(u)});
  auto folded = runtime::execute_dfg(*fold->graph, *fold->registry,
                                     {{"updates", stream}}, /*workers=*/2);
  if (!folded) return folded.error();
  for (std::int64_t u = 0; u < updates; ++u)
    table[static_cast<std::size_t>(ix(u))] += vv(u);
  const auto &out_stream = folded->at("table");
  if (out_stream.size() != 1 || out_stream.front().size() != table.size()) {
    r.error = std::numeric_limits<double>::infinity();
  } else {
    for (std::size_t i = 0; i < table.size(); ++i) {
      double scale = std::max(1.0, std::abs(table[i]));
      r.error = std::max(r.error,
                         std::abs(table[i] - out_stream.front()[i]) / scale);
    }
  }
  r.validated = r.error < r.epsilon;

  // GUPS against the DMA/link roofline: every update moves a 16-byte
  // (index, value) record across the host link, so peak update rate is
  // link bandwidth / 16 bytes. End-to-end device time includes that DMA.
  auto us = h.best_device_us(*compiled);
  if (!us) return us.error();
  r.device_us = *us;
  r.measured = static_cast<double>(updates) / (r.device_us * 1e3);
  r.roofline = peak_link_gbps(compiled->device) / 16.0;
  r.ratio = r.measured / r.roofline;
  r.bytes = static_cast<double>(compiled->kernel.input_bytes +
                                compiled->kernel.output_bytes);
  r.extra.set("updates", updates);
  r.extra.set("table_slots", n);
  r.extra.set("link_latency_us", compiled->device.link.latency_us);
  return r;
}

// -------------------------------------------------------------- LINPACK

LinpackBenchmark::LinpackBenchmark()
    : HpccBenchmark("linpack", "GFLOP/s", "hls-scheduling", 1e-9) {}

Expected<BenchmarkResult> LinpackBenchmark::run(HpccHarness &h) {
  const std::int64_t n = h.config().n;
  support::Pcg32 rng(h.config().seed ^ 0x4c494e50u);  // "LINP"
  Tensor A = random_tensor(rng, {n, n});

  // Host LU with partial pivoting (the HPCL/LINPACK contract): PA = LU.
  Tensor LU = A;
  std::vector<std::int64_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::int64_t k = 0; k < n; ++k) {
    std::int64_t pivot = k;
    for (std::int64_t i = k + 1; i < n; ++i)
      if (std::abs(LU(i, k)) > std::abs(LU(pivot, k))) pivot = i;
    if (pivot != k) {
      for (std::int64_t j = 0; j < n; ++j) std::swap(LU(k, j), LU(pivot, j));
      std::swap(perm[static_cast<std::size_t>(k)],
                perm[static_cast<std::size_t>(pivot)]);
    }
    if (std::abs(LU(k, k)) < 1e-300) continue;
    for (std::int64_t i = k + 1; i < n; ++i) {
      LU(i, k) /= LU(k, k);
      for (std::int64_t j = k + 1; j < n; ++j)
        LU(i, j) -= LU(i, k) * LU(k, j);
    }
  }
  // Scaled residual max|PA - LU| / (n * max|A|).
  double max_a = 0.0;
  for (double v : A.data()) max_a = std::max(max_a, std::abs(v));
  double residual = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double lu = 0.0;
      std::int64_t kmax = std::min(i, j);
      for (std::int64_t k = 0; k <= kmax; ++k) {
        double lik = i == k ? 1.0 : LU(i, k);
        lu += lik * LU(k, j);
      }
      double pa = A(perm[static_cast<std::size_t>(i)], j);
      residual = std::max(residual, std::abs(pa - lu));
    }
  }
  residual /= static_cast<double>(n) * std::max(1.0, max_a);

  // The device executes the rank-1 Schur-complement update; validate the
  // compiled kernel differentially on random operands.
  transforms::EklBindings bind;
  bind.inputs.emplace("a", random_tensor(rng, {n, n}));
  bind.inputs.emplace("l", random_tensor(rng, {n}));
  bind.inputs.emplace("u", random_tensor(rng, {n}));
  const Tensor &a = bind.inputs.at("a");
  const Tensor &l = bind.inputs.at("l");
  const Tensor &u = bind.inputs.at("u");

  auto compiled = h.compile_kernel("linpack.ekl", bind);
  if (!compiled) return compiled.error();

  Tensor anew({n, n});
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      anew(i, j) = a(i, j) - l(i) * u(j);

  auto outputs = h.run_compiled(*compiled, bind.inputs);
  if (!outputs) return outputs.error();

  BenchmarkResult r = make_result();
  r.error = std::max(residual, output_error(*outputs, "anew", anew));
  r.validated = r.error < r.epsilon;
  r.flops = static_cast<double>(transforms::teil_flop_count(*compiled->teil_ir));
  h.fill_roofline(r, *compiled);
  auto us = h.best_device_us(*compiled);
  if (!us) return us.error();
  r.device_us = *us;
  // A full factorization runs the update once per elimination step over a
  // shrinking trailing matrix: sum_k (n-k)^2 / n^2 ~= n/3 full-size steps.
  double lu_us = compiled->estimate.total_us * static_cast<double>(n) / 3.0;
  double lu_flops = 2.0 / 3.0 * static_cast<double>(n) *
                    static_cast<double>(n) * static_cast<double>(n);
  r.extra.set("lu_residual", residual);
  r.extra.set("factorization_us", lu_us);
  r.extra.set("factorization_gflops", lu_flops / (lu_us * 1e3));
  return r;
}

// ---------------------------------------------------------------- b_eff

BeffBenchmark::BeffBenchmark()
    : HpccBenchmark("b_eff", "GB/s", "inter-fpga-network", 1e-12) {}

Expected<BenchmarkResult> BeffBenchmark::run(HpccHarness &h) {
  const std::int64_t n = h.config().n;  // message elements per rank
  const int world = h.config().beff_world;
  const std::int64_t ranks = world - 1;  // rank 0 is the host
  support::Pcg32 rng(h.config().seed ^ 0x42454646u);  // "BEFF"
  transforms::EklBindings bind;
  bind.inputs.emplace("m", random_tensor(rng, {ranks, n}));
  const Tensor &m = bind.inputs.at("m");

  // b_eff runs on the network-attached cloudFPGA target.
  auto options = h.base_options();
  options.target = "cloudfpga";
  options.olympus.replicas = 1;
  auto compiled = h.compile_kernel("beff.ekl", bind, options);
  if (!compiled) return compiled.error();

  Tensor s({ranks});
  for (std::int64_t rr = 0; rr < ranks; ++rr) {
    double acc = 0.0;
    for (std::int64_t i = 0; i < n; ++i) acc += m(rr, i);
    s(rr) = acc;
  }

  auto outputs = h.run_compiled(*compiled, bind.inputs);
  if (!outputs) return outputs.error();

  BenchmarkResult r = make_result();
  r.error = output_error(*outputs, "s", s);
  r.validated = r.error < r.epsilon;

  // Message-size sweep over the ZRLMPI fabric: broadcast + gather per size,
  // achieved payload bandwidth from the communicator's clock; b_eff is the
  // average across sizes (the HPCC b_eff aggregation).
  platform::NetworkSpec net;
  Json sweep = Json::array();
  double sum_gbps = 0.0;
  const std::int64_t sizes[] = {1 << 10, 1 << 12, 1 << 14,
                                1 << 16, 1 << 18, 1 << 20};
  int measured_sizes = 0;
  for (std::int64_t bytes : sizes) {
    platform::ZrlmpiCommunicator comm(world, net);
    if (auto st = comm.broadcast(0, bytes); !st.is_ok()) return st.error();
    if (auto st = comm.gather(0, bytes); !st.is_ok()) return st.error();
    double gbps =
        static_cast<double>(comm.bytes_moved()) / (comm.now_us() * 1e3);
    Json row = Json::object();
    row.set("message_bytes", bytes);
    row.set("achieved_gbps", gbps);
    row.set("messages", comm.messages());
    sweep.push_back(std::move(row));
    sum_gbps += gbps;
    ++measured_sizes;
  }

  r.measured = sum_gbps / measured_sizes;
  r.roofline = network_peak_gbps(net);
  r.ratio = r.measured / r.roofline;
  r.bytes = static_cast<double>(compiled->kernel.input_bytes +
                                compiled->kernel.output_bytes);
  auto us = h.best_device_us(*compiled);
  if (!us) return us.error();
  r.device_us = *us;
  r.extra.set("world_size", world);
  r.extra.set("sweep", std::move(sweep));
  return r;
}

// ---------------------------------------------------------------- suite

std::vector<std::unique_ptr<HpccBenchmark>> make_suite() {
  std::vector<std::unique_ptr<HpccBenchmark>> suite;
  suite.push_back(std::make_unique<StreamBenchmark>());
  suite.push_back(std::make_unique<GemmBenchmark>());
  suite.push_back(std::make_unique<PtransBenchmark>());
  suite.push_back(std::make_unique<FftBenchmark>());
  suite.push_back(std::make_unique<RandomAccessBenchmark>());
  suite.push_back(std::make_unique<LinpackBenchmark>());
  suite.push_back(std::make_unique<BeffBenchmark>());
  return suite;
}

}  // namespace everest::hpcc
