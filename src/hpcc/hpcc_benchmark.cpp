#include "hpcc/hpcc_benchmark.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "transforms/loop_eval.hpp"

#ifndef EVEREST_HPCC_DATA_DIR
#define EVEREST_HPCC_DATA_DIR "tests/data/hpcc"
#endif

namespace everest::hpcc {

using support::Error;
using support::Expected;
using support::Json;
using support::Status;

Expected<HpccConfig> parse_hpcc_args(int argc, const char *const *argv) {
  HpccConfig config;
  auto number = [](const std::string &flag, const std::string &text,
                   double &out) -> Status {
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
      return Status::failure("hpcc: bad value '" + text + "' for " + flag,
                             support::ErrorCode::InvalidArgument);
    return Status::ok();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eq = arg.find('=');
    std::string flag = arg.substr(0, eq);
    std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
    double v = 0.0;
    if (flag == "--n") {
      if (auto s = number(flag, value, v); !s.is_ok()) return s.error();
      config.n = static_cast<std::int64_t>(v);
    } else if (flag == "--replications") {
      if (auto s = number(flag, value, v); !s.is_ok()) return s.error();
      config.replications = static_cast<int>(v);
    } else if (flag == "--target") {
      config.target = value;
    } else if (flag == "--format") {
      config.number_format = value;
    } else if (flag == "--data-dir") {
      config.data_dir = value;
    } else if (flag == "--seed") {
      if (auto s = number(flag, value, v); !s.is_ok()) return s.error();
      config.seed = static_cast<std::uint64_t>(v);
    } else if (flag == "--replicas") {
      if (auto s = number(flag, value, v); !s.is_ok()) return s.error();
      config.replicas = static_cast<int>(v);
    } else if (flag == "--tile-bytes") {
      if (auto s = number(flag, value, v); !s.is_ok()) return s.error();
      config.tile_bytes = static_cast<std::int64_t>(v);
    } else if (flag == "--world") {
      if (auto s = number(flag, value, v); !s.is_ok()) return s.error();
      config.beff_world = static_cast<int>(v);
    } else if (flag == "--out") {
      config.out = value;
    } else {
      return Error::invalid_argument("hpcc: unknown flag '" + flag + "'");
    }
  }
  if (config.n < 4)
    return Error::invalid_argument("hpcc: --n must be >= 4");
  if (config.replications < 1)
    return Error::invalid_argument("hpcc: --replications must be >= 1");
  if (config.beff_world < 2)
    return Error::invalid_argument("hpcc: --world must be >= 2");
  return config;
}

Json BenchmarkResult::to_json() const {
  Json row = Json::object();
  row.set("name", name);
  row.set("unit", unit);
  row.set("axis", axis);
  row.set("measured", measured);
  row.set("roofline", roofline);
  row.set("ratio", ratio);
  row.set("error", error);
  row.set("epsilon", epsilon);
  row.set("validated", Json(validated));
  row.set("device_us", device_us);
  row.set("bytes", bytes);
  row.set("flops", flops);
  row.set("extra", extra);
  return row;
}

double peak_memory_gbps(const platform::DeviceSpec &spec) {
  if (spec.memory.hbm_channels > 0)
    return spec.memory.hbm_channels * spec.memory.hbm_gbps_per_channel;
  return spec.memory.ddr_gbps;
}

double peak_link_gbps(const platform::DeviceSpec &spec) {
  return spec.link.gbps / 8.0;  // LinkSpec carries gigabits/s
}

double network_peak_gbps(const platform::NetworkSpec &net) {
  return net.gbps / 8.0;
}

double max_rel_error(const numerics::Tensor &ref, const numerics::Tensor &got) {
  if (!ref.same_shape(got)) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  auto r = ref.data();
  auto g = got.data();
  for (std::size_t i = 0; i < r.size(); ++i) {
    double scale = std::max(1.0, std::abs(r[i]));
    worst = std::max(worst, std::abs(r[i] - g[i]) / scale);
  }
  return worst;
}

HpccHarness::HpccHarness(HpccConfig config) : config_(std::move(config)) {
  if (config_.data_dir.empty()) config_.data_dir = EVEREST_HPCC_DATA_DIR;
  basecamp_.attach_cache(&cache_);
}

Expected<std::string> HpccHarness::read_kernel(
    const std::string &filename) const {
  std::string path = config_.data_dir + "/" + filename;
  std::ifstream in(path);
  if (!in)
    return Error::not_found("hpcc: cannot read kernel source '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

sdk::CompileOptions HpccHarness::base_options() const {
  sdk::CompileOptions options;
  options.target = config_.target;
  options.number_format = config_.number_format;
  options.olympus.replicas = config_.replicas;
  options.olympus.plm_tile_bytes = config_.tile_bytes;
  return options;
}

Expected<sdk::CompileResult> HpccHarness::compile_kernel(
    const std::string &filename, const transforms::EklBindings &bindings) {
  return compile_kernel(filename, bindings, base_options());
}

Expected<sdk::CompileResult> HpccHarness::compile_kernel(
    const std::string &filename, const transforms::EklBindings &bindings,
    const sdk::CompileOptions &options) {
  auto source = read_kernel(filename);
  if (!source) return source.error();
  auto result = basecamp_.compile_ekl(*source, bindings, options);
  if (!result) return result.error().with_context("hpcc: " + filename);
  return result;
}

Expected<std::map<std::string, numerics::Tensor>> HpccHarness::run_compiled(
    const sdk::CompileResult &result,
    const std::map<std::string, numerics::Tensor> &inputs) const {
  if (!result.loop_ir)
    return Error::internal("hpcc: compile result carries no loop IR");
  return transforms::evaluate_loops(*result.loop_ir, inputs);
}

Expected<double> HpccHarness::best_device_us(const sdk::CompileResult &result) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < config_.replications; ++rep) {
    platform::Device device(result.device);
    auto us = basecamp_.deploy_and_run(device, result);
    if (!us) return us.error();
    best = std::min(best, *us);
  }
  return best;
}

void HpccHarness::fill_roofline(BenchmarkResult &r,
                                const sdk::CompileResult &c) const {
  double traffic = static_cast<double>(c.kernel.input_bytes) +
                   static_cast<double>(c.kernel.output_bytes);
  double peak = peak_memory_gbps(c.device);
  r.bytes = traffic;
  // bytes / (us * 1e3) == GB/s on the generated system's analytic timeline.
  double streamed_gbps = traffic / (c.estimate.total_us * 1e3);
  if (r.flops > 0.0) {
    double intensity = r.flops / traffic;  // flops per byte
    r.measured = r.flops / (c.estimate.total_us * 1e3);  // GFLOP/s
    r.roofline = peak * intensity;  // bandwidth-bound roofline
  } else {
    r.measured = streamed_gbps;
    r.roofline = peak;
  }
  // Either way the ratio reduces to streamed-vs-peak bandwidth, which the
  // Olympus contention model keeps within (0, 1]: effective bandwidth never
  // exceeds the channels' aggregate, and total_us >= memory_us.
  r.ratio = r.measured / r.roofline;
}

Expected<std::vector<BenchmarkResult>> run_suite(HpccHarness &harness) {
  std::vector<BenchmarkResult> results;
  for (auto &benchmark : make_suite()) {
    auto result = benchmark->run(harness);
    if (!result)
      return result.error().with_context("hpcc: " + benchmark->name());
    results.push_back(std::move(*result));
  }
  return results;
}

Json suite_json(const HpccConfig &config, const platform::DeviceSpec &device,
                const std::vector<BenchmarkResult> &results) {
  Json doc = Json::object();
  doc.set("suite", "hpcc");

  Json cfg = Json::object();
  cfg.set("n", config.n);
  cfg.set("replications", config.replications);
  cfg.set("target", config.target);
  cfg.set("number_format", config.number_format);
  cfg.set("seed", static_cast<std::int64_t>(config.seed));
  cfg.set("replicas", config.replicas);
  cfg.set("tile_bytes", config.tile_bytes);
  cfg.set("beff_world", config.beff_world);
  doc.set("config", std::move(cfg));

  Json dev = Json::object();
  dev.set("name", device.name);
  dev.set("peak_memory_gbps", peak_memory_gbps(device));
  dev.set("peak_link_gbps", peak_link_gbps(device));
  dev.set("network_peak_gbps", network_peak_gbps(platform::NetworkSpec{}));
  doc.set("device", std::move(dev));

  Json rows = Json::array();
  for (const auto &r : results) rows.push_back(r.to_json());
  doc.set("benchmarks", std::move(rows));
  return doc;
}

Status check_suite_json(const Json &doc) {
  auto fail = [](const std::string &msg) {
    return Status::failure("hpcc json: " + msg,
                           support::ErrorCode::InvalidArgument);
  };
  if (!doc.is_object()) return fail("document is not an object");
  if (!doc["suite"].is_string() || doc["suite"].as_string() != "hpcc")
    return fail("missing suite == \"hpcc\"");
  if (!doc["config"].is_object() || !doc["config"]["n"].is_number() ||
      !doc["config"]["target"].is_string())
    return fail("config object missing n / target");
  const Json &dev = doc["device"];
  if (!dev.is_object() || !dev["name"].is_string())
    return fail("device object missing name");
  for (const char *key :
       {"peak_memory_gbps", "peak_link_gbps", "network_peak_gbps"}) {
    if (!dev[key].is_number() || dev[key].as_number() <= 0.0)
      return fail(std::string("device roofline source '") + key +
                  "' missing or non-positive");
  }
  if (!doc["benchmarks"].is_array())
    return fail("benchmarks is not an array");

  static const char *expected[] = {"stream",       "gemm",    "ptrans", "fft",
                                   "randomaccess", "linpack", "b_eff"};
  std::map<std::string, int> seen;
  for (std::size_t i = 0; i < doc["benchmarks"].size(); ++i) {
    const Json &row = doc["benchmarks"][i];
    if (!row.is_object()) return fail("benchmark row is not an object");
    const std::string label =
        row["name"].is_string() ? row["name"].as_string()
                                : "#" + std::to_string(i);
    for (const char *key : {"name", "unit", "axis"}) {
      if (!row[key].is_string())
        return fail("row " + label + ": missing string field '" + key + "'");
    }
    for (const char *key : {"measured", "roofline", "ratio", "error",
                            "epsilon", "device_us", "bytes", "flops"}) {
      if (!row[key].is_number())
        return fail("row " + label + ": missing number field '" + key + "'");
    }
    if (!row["validated"].is_bool() || !row["validated"].as_bool())
      return fail("row " + label + ": validated is not true");
    if (!(row["error"].as_number() < row["epsilon"].as_number()))
      return fail("row " + label + ": error !< epsilon");
    double ratio = row["ratio"].as_number();
    if (!(ratio > 0.0) || !(ratio <= 1.0))
      return fail("row " + label + ": measured/roofline ratio " +
                  std::to_string(ratio) + " outside (0, 1]");
    if (!(row["measured"].as_number() > 0.0) ||
        !(row["roofline"].as_number() > 0.0))
      return fail("row " + label + ": non-positive measured or roofline");
    if (!(row["device_us"].as_number() > 0.0))
      return fail("row " + label + ": non-positive device_us");
    seen[row["name"].as_string()]++;
  }
  for (const char *name : expected) {
    auto it = seen.find(name);
    if (it == seen.end())
      return fail(std::string("workload '") + name + "' missing from suite");
    if (it->second != 1)
      return fail(std::string("workload '") + name + "' appears " +
                  std::to_string(it->second) + " times");
  }
  return Status::ok();
}

}  // namespace everest::hpcc
