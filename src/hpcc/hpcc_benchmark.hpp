// everest/hpcc/hpcc_benchmark.hpp
//
// Host-side harness for the HPCC-FPGA workload suite (pc2/HPCC_FPGA,
// arXiv:2004.11059), modeled on its shared/hpcc_benchmark.hpp: every
// benchmark owns a kernel source under tests/data/hpcc/, compiles it through
// the full Basecamp pipeline (frontend -> IR passes -> Olympus packing ->
// HLS estimate -> device model), executes it against the device timeline,
// and validates the compiled path against an independent scalar host
// reference with an `error < epsilon` self-check. The harness layer owns
// config parsing (problem size, replications, target), roofline computation
// from the device model's published HBM/DMA/network bandwidths, and the
// uniform result record every benchmark reports.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "platform/network.hpp"
#include "sdk/basecamp.hpp"
#include "support/json.hpp"

namespace everest::hpcc {

/// Suite configuration (HPCC-FPGA's base_parameters equivalent).
struct HpccConfig {
  std::int64_t n = 64;        // problem size: vector length / matrix edge
  int replications = 2;       // timed device runs per benchmark (best-of)
  std::string target = "alveo-u55c";
  std::string number_format = "f64";
  std::string data_dir;       // kernel sources; default tests/data/hpcc
  std::uint64_t seed = 42;    // rng seed for input data
  int replicas = 4;           // Olympus kernel copies (memory lanes)
  std::int64_t tile_bytes = 256 * 1024;  // Olympus PLM tile (GEMM knob)
  int beff_world = 4;         // ZRLMPI ranks in the b_eff sweep
  std::string out = "BENCH_hpcc.json";
};

/// Parses --n= / --replications= / --target= / --format= / --data-dir= /
/// --seed= / --replicas= / --tile-bytes= / --world= / --out= flags; coded
/// error on unknown flags or unparsable values.
support::Expected<HpccConfig> parse_hpcc_args(int argc, const char *const *argv);

/// Uniform result record: one row of BENCH_hpcc.json.
struct BenchmarkResult {
  std::string name;
  std::string unit;       // "GB/s", "GFLOP/s", or "GUPS"
  std::string axis;       // the device-model axis this kernel stresses
  double measured = 0.0;  // in `unit`
  double roofline = 0.0;  // peak in `unit` from the device model
  double ratio = 0.0;     // measured / roofline; must land in (0, 1]
  double error = 0.0;     // validation error vs the host reference
  double epsilon = 0.0;   // per-benchmark acceptance bound
  bool validated = false; // error < epsilon
  double device_us = 0.0; // best end-to-end device run (deploy_and_run)
  double bytes = 0.0;     // memory traffic per invocation
  double flops = 0.0;     // scalar flops per invocation (0 for bandwidth kernels)
  support::Json extra = support::Json::object();  // per-benchmark detail

  [[nodiscard]] support::Json to_json() const;
};

/// Roofline sources: the device model's published bandwidth numbers.
/// Aggregate external-memory bandwidth in GB/s (HBM pseudo-channels when
/// present, DDR otherwise).
double peak_memory_gbps(const platform::DeviceSpec &spec);
/// Host-link (PCIe DMA or network) payload bandwidth in GB/s.
double peak_link_gbps(const platform::DeviceSpec &spec);
/// Inter-FPGA fabric payload bandwidth in GB/s.
double network_peak_gbps(const platform::NetworkSpec &net);

/// Largest relative element error between two tensors (|ref - got| scaled
/// by max(1, |ref|)); +inf on shape mismatch.
double max_rel_error(const numerics::Tensor &ref, const numerics::Tensor &got);

/// The shared harness: owns the Basecamp instance, its compile cache, and
/// the timing/validation helpers every workload uses.
class HpccHarness {
public:
  explicit HpccHarness(HpccConfig config);

  [[nodiscard]] const HpccConfig &config() const { return config_; }
  [[nodiscard]] sdk::Basecamp &basecamp() { return basecamp_; }
  [[nodiscard]] sdk::CompileCache &cache() { return cache_; }

  /// Reads a kernel source from the configured data directory.
  [[nodiscard]] support::Expected<std::string> read_kernel(
      const std::string &filename) const;

  /// CompileOptions seeded from the config (target, format, replicas, PLM
  /// tile); workloads override fields (e.g. b_eff retargets cloudfpga).
  [[nodiscard]] sdk::CompileOptions base_options() const;

  /// Compiles `filename` through the full Basecamp pipeline.
  support::Expected<sdk::CompileResult> compile_kernel(
      const std::string &filename, const transforms::EklBindings &bindings);
  support::Expected<sdk::CompileResult> compile_kernel(
      const std::string &filename, const transforms::EklBindings &bindings,
      const sdk::CompileOptions &options);

  /// Functional compiled path: evaluates the loop-level IR the HLS engine
  /// scheduled — the last point where the kernel is still executable.
  support::Expected<std::map<std::string, numerics::Tensor>> run_compiled(
      const sdk::CompileResult &result,
      const std::map<std::string, numerics::Tensor> &inputs) const;

  /// Best end-to-end device time over config.replications runs, each on a
  /// fresh device (HPCC reports the best replication).
  support::Expected<double> best_device_us(const sdk::CompileResult &result);

  /// Fills the measured/roofline/ratio fields of `r` for a memory-bound
  /// compiled kernel: the bandwidth ratio is (traffic / total_us) against
  /// the device's peak memory bandwidth, which the Olympus contention model
  /// guarantees lands in (0, 1]. When `r.flops` is non-zero the headline
  /// `measured`/`roofline` are expressed in GFLOP/s at the kernel's
  /// arithmetic intensity; otherwise in GB/s.
  void fill_roofline(BenchmarkResult &r, const sdk::CompileResult &c) const;

private:
  HpccConfig config_;
  sdk::CompileCache cache_;
  sdk::Basecamp basecamp_;
};

/// One HPCC workload.
class HpccBenchmark {
public:
  HpccBenchmark(std::string name, std::string unit, std::string axis,
                double epsilon)
      : name_(std::move(name)), unit_(std::move(unit)), axis_(std::move(axis)),
        epsilon_(epsilon) {}
  virtual ~HpccBenchmark() = default;

  [[nodiscard]] const std::string &name() const { return name_; }
  [[nodiscard]] double epsilon() const { return epsilon_; }

  /// Compiles, executes, and validates the workload end to end.
  virtual support::Expected<BenchmarkResult> run(HpccHarness &harness) = 0;

protected:
  /// A result pre-filled with the benchmark's identity and epsilon.
  [[nodiscard]] BenchmarkResult make_result() const {
    BenchmarkResult r;
    r.name = name_;
    r.unit = unit_;
    r.axis = axis_;
    r.epsilon = epsilon_;
    return r;
  }

private:
  std::string name_;
  std::string unit_;
  std::string axis_;
  double epsilon_;
};

/// The seven HPCC-FPGA workloads, in canonical order: STREAM, GEMM, PTRANS,
/// FFT, RandomAccess, LINPACK, b_eff.
std::vector<std::unique_ptr<HpccBenchmark>> make_suite();

/// Runs the full suite; fails on the first benchmark error.
support::Expected<std::vector<BenchmarkResult>> run_suite(HpccHarness &harness);

/// Assembles the BENCH_hpcc.json document: config, the device's published
/// roofline sources, and one row per benchmark.
support::Json suite_json(const HpccConfig &config,
                         const platform::DeviceSpec &device,
                         const std::vector<BenchmarkResult> &results);

/// Schema self-check for a suite document: structure, the presence of all
/// seven workloads, `validated: true` on every row, `error < epsilon`, and
/// measured-vs-roofline ratios in (0, 1]. CI runs this against the emitted
/// file so silently-skipped workloads fail loudly.
support::Status check_suite_json(const support::Json &doc);

}  // namespace everest::hpcc
