// everest/hpcc/workloads.hpp
//
// The seven HPCC-FPGA workloads over the shared harness. Each benchmark
// compiles its kernel source from tests/data/hpcc/ through Basecamp,
// validates the compiled loop-level IR against an independent scalar host
// reference, times the deployed system on the device model, and reports a
// measured-vs-roofline ratio against the axis it stresses:
//
//   STREAM        GB/s     HBM pseudo-channel aggregate bandwidth
//   GEMM          GFLOP/s  HLS scheduling + Olympus PLM tiling
//   PTRANS        GB/s     HBM pseudo-channels (strided 2-d walk)
//   FFT           GFLOP/s  HLS scheduling + packing/double buffering
//   RandomAccess  GUPS     DMA/link latency (single-element updates)
//   LINPACK       GFLOP/s  HLS scheduling (rank-1 update per step)
//   b_eff         GB/s     inter-FPGA ZRLMPI network (message-size sweep)
#pragma once

#include "hpcc/hpcc_benchmark.hpp"
#include "runtime/dfg_executor.hpp"

namespace everest::hpcc {

class StreamBenchmark final : public HpccBenchmark {
public:
  StreamBenchmark();
  support::Expected<BenchmarkResult> run(HpccHarness &harness) override;
};

class GemmBenchmark final : public HpccBenchmark {
public:
  GemmBenchmark();
  support::Expected<BenchmarkResult> run(HpccHarness &harness) override;
};

class PtransBenchmark final : public HpccBenchmark {
public:
  PtransBenchmark();
  support::Expected<BenchmarkResult> run(HpccHarness &harness) override;
};

class FftBenchmark final : public HpccBenchmark {
public:
  FftBenchmark();
  support::Expected<BenchmarkResult> run(HpccHarness &harness) override;
};

class RandomAccessBenchmark final : public HpccBenchmark {
public:
  RandomAccessBenchmark();
  support::Expected<BenchmarkResult> run(HpccHarness &harness) override;
};

class LinpackBenchmark final : public HpccBenchmark {
public:
  LinpackBenchmark();
  support::Expected<BenchmarkResult> run(HpccHarness &harness) override;
};

class BeffBenchmark final : public HpccBenchmark {
public:
  BeffBenchmark();
  support::Expected<BenchmarkResult> run(HpccHarness &harness) override;
};

/// The RandomAccess coordination program: a dfg.graph whose ordered fold
/// applies (index, value) update records to the table state. Shared with
/// the serving layer's fold regression tests.
struct RandomAccessGraph {
  std::shared_ptr<ir::Module> graph;
  std::shared_ptr<runtime::NodeRegistry> registry;
};

/// Parses `source` (the randomaccess.rs ConDRust program) and registers the
/// apply_update fold with `initial_table` as the starting table state; each
/// update record is (slot index, addend) and out-of-range slots clamp.
support::Expected<RandomAccessGraph> make_randomaccess_graph(
    const std::string &source, runtime::Record initial_table);

}  // namespace everest::hpcc
