#include "support/stats.hpp"

#include <algorithm>
#include <set>

namespace everest::support {

double average_precision(std::span<const double> scores,
                         const std::vector<std::size_t> &truth) {
  if (scores.empty() || truth.empty()) return 0.0;
  std::set<std::size_t> positives(truth.begin(), truth.end());
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });
  double hits = 0.0, ap = 0.0;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    if (positives.count(order[rank])) {
      hits += 1.0;
      ap += hits / static_cast<double>(rank + 1);
    }
  }
  return ap / static_cast<double>(positives.size());
}

BinaryScore score_detection(const std::vector<std::size_t> &predicted,
                            const std::vector<std::size_t> &truth) {
  std::set<std::size_t> pred(predicted.begin(), predicted.end());
  std::set<std::size_t> pos(truth.begin(), truth.end());

  BinaryScore s;
  for (std::size_t i : pred) {
    if (pos.count(i)) ++s.true_positives;
    else ++s.false_positives;
  }
  for (std::size_t i : pos) {
    if (!pred.count(i)) ++s.false_negatives;
  }
  double tp = static_cast<double>(s.true_positives);
  double fp = static_cast<double>(s.false_positives);
  double fn = static_cast<double>(s.false_negatives);
  s.precision = (tp + fp) > 0 ? tp / (tp + fp) : 0.0;
  s.recall = (tp + fn) > 0 ? tp / (tp + fn) : 0.0;
  s.f1 = (s.precision + s.recall) > 0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

}  // namespace everest::support
