// everest/support/strings.hpp
//
// Small string utilities shared by the parsers, printers, and report writers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace everest::support {

/// Stable 64-bit FNV-1a hash. Used wherever a content address must be
/// reproducible across runs and platforms (the compile cache keys on it);
/// never replace with std::hash, whose value is implementation-defined.
constexpr std::uint64_t fnv1a(std::string_view text,
                              std::uint64_t seed = 14695981039346656037ull) {
  std::uint64_t hash = seed;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string> &parts, std::string_view sep);

/// True if `text` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string text, std::string_view from,
                        std::string_view to);

/// True if `text` is a valid identifier ([A-Za-z_][A-Za-z0-9_.]*).
bool is_identifier(std::string_view text);

/// Formats a double compactly (no trailing zeros, max 6 significant digits).
std::string format_double(double value);

/// Formats a byte count with binary units ("4.00 KiB", "1.50 GiB").
std::string format_bytes(double bytes);

}  // namespace everest::support
