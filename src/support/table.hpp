// everest/support/table.hpp
//
// ASCII table renderer used by the bench harness to print the rows each
// experiment reports (EXPERIMENTS.md records these tables).
#pragma once

#include <string>
#include <vector>

namespace everest::support {

/// Accumulates rows of string cells and renders an aligned ASCII table with a
/// header rule. Numeric cells are right-aligned automatically.
class Table {
public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders the table (header, rule, rows) with two-space column gaps.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace everest::support
