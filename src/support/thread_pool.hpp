// everest/support/thread_pool.hpp
//
// Fixed-size thread pool shared by the compilation layers (parallel
// per-kernel Basecamp compiles, autotuner variant evaluation). Tasks are
// submitted as futures; an optional observer is invoked on every queue
// transition so higher layers can mirror queue depth / active workers into
// obs gauges without this (bottom-of-stack) library depending on obs.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace everest::support {

class ThreadPool {
public:
  /// Called (outside the queue lock) after every enqueue/dequeue/finish with
  /// the current queue depth and number of running tasks.
  using Observer = std::function<void(std::size_t queued, std::size_t active)>;

  /// Spawns `threads` workers (clamped to at least one).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }
  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] std::size_t active() const;

  void set_observer(Observer observer);

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown by
  /// `fn` surface through the future.
  template <typename F>
  auto submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Blocks until every queued and running task has finished.
  void wait_idle();

private:
  void enqueue(std::function<void()> job);
  void worker_loop();
  void notify_observer();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  Observer observer_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Deterministic fan-out helper: runs fn(0..count-1) across `pool` (or
/// inline when pool is null or has one worker) and returns the results in
/// index order — the merge is byte-identical to the serial loop regardless
/// of completion order.
template <typename Fn>
auto parallel_indexed(ThreadPool *pool, std::size_t count, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, std::size_t>> {
  using R = std::invoke_result_t<Fn &, std::size_t>;
  std::vector<R> results;
  results.reserve(count);
  if (!pool || pool->size() <= 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) results.push_back(fn(i));
    return results;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    futures.push_back(pool->submit([&fn, i] { return fn(i); }));
  for (auto &f : futures) results.push_back(f.get());
  return results;
}

}  // namespace everest::support
