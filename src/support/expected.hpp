// everest/support/expected.hpp
//
// Minimal Expected<T, E> for C++20 (std::expected is C++23). Used across the
// SDK for recoverable errors: parsers, lowering pipelines, runtime requests.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace everest::support {

/// Machine-readable error taxonomy shared across the SDK. Values are stable
/// and serialize through Error::code (an int, for compatibility with callers
/// that predate the enum).
enum class ErrorCode : int {
  Internal = 1,          // invariant violation, bug, unexpected state
  InvalidArgument = 2,   // malformed input: source text, bad task spec
  NotFound = 3,          // unknown target, kernel, or resource name
  Unsupported = 4,       // recognized but not implemented / not allowed
  ResourceExhausted = 5, // out of device memory, fabric area, cores
  Unavailable = 6,       // transient fault: DMA error, link flap, alloc flake
  DeadlineExceeded = 7,  // operation ran past its deadline (e.g. hung kernel)
};

[[nodiscard]] constexpr const char *error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::Internal: return "internal";
    case ErrorCode::InvalidArgument: return "invalid-argument";
    case ErrorCode::NotFound: return "not-found";
    case ErrorCode::Unsupported: return "unsupported";
    case ErrorCode::ResourceExhausted: return "resource-exhausted";
    case ErrorCode::Unavailable: return "unavailable";
    case ErrorCode::DeadlineExceeded: return "deadline-exceeded";
  }
  return "internal";
}

/// True for codes that a retry/backoff policy may reasonably retry: the
/// failure is a property of the attempt (transient fault, missed deadline),
/// not of the request itself.
[[nodiscard]] constexpr bool is_retryable(ErrorCode code) {
  return code == ErrorCode::Unavailable || code == ErrorCode::DeadlineExceeded;
}

/// Error payload carried by Expected on failure. Holds a human-readable
/// message plus a machine-readable code from the ErrorCode taxonomy.
struct Error {
  std::string message;
  int code = static_cast<int>(ErrorCode::Internal);

  /// Deprecated: message-only (or raw-int-coded) construction. Kept so
  /// existing callers compile unchanged; new code should use the coded
  /// factories below.
  static Error make(std::string msg, int code = 1) {
    return Error{std::move(msg), code};
  }

  static Error make(std::string msg, ErrorCode code) {
    return Error{std::move(msg), static_cast<int>(code)};
  }
  static Error invalid_argument(std::string msg) {
    return make(std::move(msg), ErrorCode::InvalidArgument);
  }
  static Error not_found(std::string msg) {
    return make(std::move(msg), ErrorCode::NotFound);
  }
  static Error unsupported(std::string msg) {
    return make(std::move(msg), ErrorCode::Unsupported);
  }
  static Error resource_exhausted(std::string msg) {
    return make(std::move(msg), ErrorCode::ResourceExhausted);
  }
  static Error internal(std::string msg) {
    return make(std::move(msg), ErrorCode::Internal);
  }
  static Error unavailable(std::string msg) {
    return make(std::move(msg), ErrorCode::Unavailable);
  }
  static Error deadline_exceeded(std::string msg) {
    return make(std::move(msg), ErrorCode::DeadlineExceeded);
  }

  /// The taxonomy view of `code`; raw ints outside the enum map to Internal.
  [[nodiscard]] ErrorCode code_enum() const {
    switch (code) {
      case static_cast<int>(ErrorCode::InvalidArgument):
        return ErrorCode::InvalidArgument;
      case static_cast<int>(ErrorCode::NotFound): return ErrorCode::NotFound;
      case static_cast<int>(ErrorCode::Unsupported):
        return ErrorCode::Unsupported;
      case static_cast<int>(ErrorCode::ResourceExhausted):
        return ErrorCode::ResourceExhausted;
      case static_cast<int>(ErrorCode::Unavailable):
        return ErrorCode::Unavailable;
      case static_cast<int>(ErrorCode::DeadlineExceeded):
        return ErrorCode::DeadlineExceeded;
      default: return ErrorCode::Internal;
    }
  }
  [[nodiscard]] const char *code_name() const {
    return error_code_name(code_enum());
  }

  /// Chains a caller-side context prefix onto the message, preserving the
  /// code: Error::not_found("x").with_context("basecamp") reads
  /// "basecamp: x".
  [[nodiscard]] Error with_context(std::string context) const & {
    return Error{std::move(context) + ": " + message, code};
  }
  [[nodiscard]] Error with_context(std::string context) && {
    message.insert(0, ": ");
    message.insert(0, context);
    return std::move(*this);
  }
};

/// A value-or-error sum type. `has_value()` selects between `value()` and
/// `error()`. Accessing the wrong alternative asserts in debug builds.
template <typename T>
class Expected {
public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Error err) : storage_(std::in_place_index<1>, std::move(err)) {}

  [[nodiscard]] bool has_value() const { return storage_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T &value() {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T &value() const {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const Error &error() const {
    assert(!has_value());
    return std::get<1>(storage_);
  }

  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }

  /// Returns the contained value or `fallback` when in the error state.
  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<0>(storage_) : std::move(fallback);
  }

private:
  std::variant<T, Error> storage_;
};

/// Status is Expected<void>: success or an Error.
class Status {
public:
  Status() = default;
  Status(Error err) : error_(std::move(err)) {}

  static Status ok() { return Status(); }
  static Status failure(std::string msg, int code = 1) {
    return Status(Error::make(std::move(msg), code));
  }
  static Status failure(std::string msg, ErrorCode code) {
    return Status(Error::make(std::move(msg), code));
  }

  [[nodiscard]] bool is_ok() const { return !error_.has_value(); }
  explicit operator bool() const { return is_ok(); }
  [[nodiscard]] const Error &error() const {
    assert(!is_ok());
    return *error_;
  }
  [[nodiscard]] std::string message() const {
    return is_ok() ? std::string() : error_->message;
  }

private:
  std::optional<Error> error_;
};

}  // namespace everest::support
