// everest/support/expected.hpp
//
// Minimal Expected<T, E> for C++20 (std::expected is C++23). Used across the
// SDK for recoverable errors: parsers, lowering pipelines, runtime requests.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace everest::support {

/// Error payload carried by Expected on failure. Holds a human-readable
/// message plus an optional machine-readable code.
struct Error {
  std::string message;
  int code = 1;

  static Error make(std::string msg, int code = 1) {
    return Error{std::move(msg), code};
  }
};

/// A value-or-error sum type. `has_value()` selects between `value()` and
/// `error()`. Accessing the wrong alternative asserts in debug builds.
template <typename T>
class Expected {
public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(Error err) : storage_(std::in_place_index<1>, std::move(err)) {}

  [[nodiscard]] bool has_value() const { return storage_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T &value() {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const T &value() const {
    assert(has_value());
    return std::get<0>(storage_);
  }
  [[nodiscard]] const Error &error() const {
    assert(!has_value());
    return std::get<1>(storage_);
  }

  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }

  /// Returns the contained value or `fallback` when in the error state.
  [[nodiscard]] T value_or(T fallback) const {
    return has_value() ? std::get<0>(storage_) : std::move(fallback);
  }

private:
  std::variant<T, Error> storage_;
};

/// Status is Expected<void>: success or an Error.
class Status {
public:
  Status() = default;
  Status(Error err) : error_(std::move(err)) {}

  static Status ok() { return Status(); }
  static Status failure(std::string msg, int code = 1) {
    return Status(Error::make(std::move(msg), code));
  }

  [[nodiscard]] bool is_ok() const { return !error_.has_value(); }
  explicit operator bool() const { return is_ok(); }
  [[nodiscard]] const Error &error() const {
    assert(!is_ok());
    return *error_;
  }
  [[nodiscard]] std::string message() const {
    return is_ok() ? std::string() : error_->message;
  }

private:
  std::optional<Error> error_;
};

}  // namespace everest::support
