#include "support/strings.hpp"

#include <array>
#include <cctype>
#include <cstdio>

namespace everest::support {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(const std::vector<std::string> &parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

bool is_identifier(std::string_view text) {
  if (text.empty()) return false;
  auto head = static_cast<unsigned char>(text[0]);
  if (!std::isalpha(head) && head != '_') return false;
  for (char c : text.substr(1)) {
    auto u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && u != '_' && u != '.') return false;
  }
  return true;
}

std::string format_double(double value) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.6g", value);
  return std::string(buf.data());
}

std::string format_bytes(double bytes) {
  static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.2f %s", bytes, units[u]);
  return std::string(buf.data());
}

}  // namespace everest::support
