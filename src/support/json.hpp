// everest/support/json.hpp
//
// Self-contained JSON value model, parser, and writer. Used by the anomaly
// detection service (its contract in the paper is "a JSON file containing the
// indexes of data points that are considered anomalous"), the ONNX-like model
// importer, and the bench report emitters.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/expected.hpp"

namespace everest::support {

/// A JSON value: null, bool, number (double), string, array, or object.
/// Objects keep keys sorted (std::map) so serialization is deterministic.
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {}
  Json(bool b) : kind_(Kind::Bool), bool_(b) {}
  Json(double n) : kind_(Kind::Number), number_(n) {}
  Json(int n) : kind_(Kind::Number), number_(n) {}
  Json(std::int64_t n) : kind_(Kind::Number), number_(static_cast<double>(n)) {}
  Json(std::size_t n) : kind_(Kind::Number), number_(static_cast<double>(n)) {}
  Json(const char *s) : kind_(Kind::String), string_(s) {}
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

  static Json array() {
    Json j;
    j.kind_ = Kind::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::Object;
    return j;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] std::int64_t as_int() const {
    return static_cast<std::int64_t>(number_);
  }
  [[nodiscard]] const std::string &as_string() const { return string_; }
  [[nodiscard]] const std::vector<Json> &items() const { return array_; }
  [[nodiscard]] const std::map<std::string, Json> &fields() const {
    return object_;
  }

  /// Array access; asserts kind in debug builds via vector bounds.
  [[nodiscard]] std::size_t size() const {
    return kind_ == Kind::Array ? array_.size() : object_.size();
  }
  const Json &operator[](std::size_t i) const { return array_.at(i); }

  /// Object access; returns a shared null for missing keys.
  const Json &operator[](const std::string &key) const;
  [[nodiscard]] bool contains(const std::string &key) const {
    return kind_ == Kind::Object && object_.count(key) > 0;
  }

  /// Mutators (convert kind when currently null).
  void push_back(Json v);
  Json &set(const std::string &key, Json v);

  /// Serializes to a compact or pretty-printed string.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses JSON text; returns an error with position info on malformed input.
  static Expected<Json> parse(std::string_view text);

private:
  void dump_impl(std::string &out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace everest::support
