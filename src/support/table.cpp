#include "support/table.hpp"

#include <algorithm>
#include <cctype>

namespace everest::support {

namespace {

bool looks_numeric(const std::string &cell) {
  if (cell.empty()) return false;
  std::size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  bool any_digit = false;
  for (; i < cell.size(); ++i) {
    char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      any_digit = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return any_digit;
}

}  // namespace

std::string Table::render() const {
  std::size_t cols = header_.size();
  for (const auto &row : rows_) cols = std::max(cols, row.size());

  std::vector<std::size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string> &row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  measure(header_);
  for (const auto &row : rows_) measure(row);

  auto emit_row = [&](std::string &out, const std::vector<std::string> &row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      std::size_t pad = width[c] - cell.size();
      if (looks_numeric(cell)) {
        out.append(pad, ' ');
        out += cell;
      } else {
        out += cell;
        out.append(pad, ' ');
      }
      if (c + 1 != cols) out += "  ";
    }
    // Strip trailing spaces for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  std::string out;
  emit_row(out, header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < cols; ++c) rule += width[c] + (c + 1 != cols ? 2 : 0);
  out.append(rule, '-');
  out += '\n';
  for (const auto &row : rows_) emit_row(out, row);
  return out;
}

}  // namespace everest::support
