// everest/support/stats.hpp
//
// Descriptive statistics and error metrics used by the autotuner monitors,
// the anomaly detectors, and the use-case evaluation harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace everest::support {

/// Arithmetic mean; 0 for empty input.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Sample variance (n-1 denominator); 0 for fewer than two samples.
inline double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

inline double stddev(std::span<const double> xs) {
  return std::sqrt(variance(xs));
}

/// Linear-interpolated quantile, q in [0,1].
inline double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

inline double median(std::vector<double> xs) {
  return quantile(std::move(xs), 0.5);
}

/// Mean absolute error between predictions and ground truth.
inline double mae(std::span<const double> pred, std::span<const double> truth) {
  std::size_t n = std::min(pred.size(), truth.size());
  if (n == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::fabs(pred[i] - truth[i]);
  return s / static_cast<double>(n);
}

/// Root mean squared error.
inline double rmse(std::span<const double> pred, std::span<const double> truth) {
  std::size_t n = std::min(pred.size(), truth.size());
  if (n == 0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double d = pred[i] - truth[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(n));
}

/// Maximum absolute elementwise difference.
inline double max_abs_diff(std::span<const double> a,
                           std::span<const double> b) {
  std::size_t n = std::min(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

/// Pearson correlation coefficient; 0 when either side is constant.
inline double pearson(std::span<const double> a, std::span<const double> b) {
  std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double ma = mean(a.subspan(0, n));
  double mb = mean(b.subspan(0, n));
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

/// Classification quality of a binary detector given predicted and true
/// positive index sets (sizes refer to a universe of `n` points).
struct BinaryScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
};

BinaryScore score_detection(const std::vector<std::size_t> &predicted,
                            const std::vector<std::size_t> &truth);

/// Average precision of a ranking: `scores[i]` is the anomaly score of point
/// i, `truth` lists the truly anomalous indices. AP = mean of precision@k
/// over the ranks k where a true anomaly appears (continuous in the scores,
/// unlike thresholded F1).
double average_precision(std::span<const double> scores,
                         const std::vector<std::size_t> &truth);

/// Online mean/variance accumulator (Welford). Used by runtime monitors.
class RunningStats {
public:
  void push(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  void reset() { *this = RunningStats(); }

private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace everest::support
