#include "support/thread_pool.hpp"

namespace everest::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto &w : workers_) w.join();
}

std::size_t ThreadPool::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void ThreadPool::set_observer(Observer observer) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(observer);
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(job));
  }
  cv_.notify_one();
  notify_observer();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::notify_observer() {
  Observer observer;
  std::size_t queued = 0, active = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!observer_) return;
    observer = observer_;
    queued = queue_.size();
    active = active_;
  }
  observer(queued, active);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    notify_observer();
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
    notify_observer();
  }
}

}  // namespace everest::support
