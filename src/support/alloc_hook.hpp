// everest/support/alloc_hook.hpp
//
// Opt-in global-heap allocation counter for benchmarks and perf gates.
// Linking alloc_hook.cpp into a binary replaces the global operator new /
// operator delete with malloc/free wrappers that bump an atomic counter
// while counting is enabled; the bench_compile section uses this to prove
// the clone fast path performs ~zero global-heap allocations per cloned op.
//
// The hook is deliberately NOT part of the everest libraries: only binaries
// that need the gate (bench_fig5_dialect_lowerings and the arena tests) add
// the translation unit. Under asan/tsan the replacement operators would
// fight the sanitizer runtime's interceptors, so the hook compiles to a
// no-op there and alloc_counter_available() reports false — callers skip
// the gate instead of measuring garbage.
#pragma once

#include <cstdint>

namespace everest::support {

/// True when the replacement operators are live (hook TU linked in and not
/// compiled under a sanitizer). When false the counters always read zero.
[[nodiscard]] bool alloc_counter_available();

/// Starts/stops counting. Counting is process-global and thread-safe;
/// keep the measured section single-threaded for attributable numbers.
void alloc_counter_enable(bool enabled);

/// Zeroes the counter.
void alloc_counter_reset();

/// Number of global operator new / new[] calls observed while enabled.
[[nodiscard]] std::uint64_t alloc_counter_news();

}  // namespace everest::support
