// everest/support/rng.hpp
//
// Deterministic random number generation for the whole SDK. Every stochastic
// component (workload generators, schedulers with tie-breaking, TPE sampler,
// PTDR Monte Carlo) draws from a seeded Pcg32 so experiments are exactly
// reproducible; benches print their seeds.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace everest::support {

/// SplitMix64: used to expand a single user seed into stream seeds.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// PCG32 (Melissa O'Neill's pcg32_oneseq variant): small, fast, and with
/// excellent statistical quality for simulation workloads.
class Pcg32 {
public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  result_type next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform() { return next() * (1.0 / 4294967296.0); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint32_t bounded(std::uint32_t n) {
    if (n == 0) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next()) * n;
    auto l = static_cast<std::uint32_t>(m);
    if (l < n) {
      std::uint32_t t = (0u - n) % n;
      while (l < t) {
        m = static_cast<std::uint64_t>(next()) * n;
        l = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-12) u1 = uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * std::numbers::pi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with rate lambda.
  double exponential(double lambda) {
    double u = 0.0;
    while (u <= 1e-12) u = uniform();
    return -std::log(u) / lambda;
  }

  /// Log-normal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Samples an index from a discrete distribution given non-negative weights.
  std::size_t discrete(const std::vector<double> &weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0;
    double x = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (x < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Derives an independent child generator (for per-stream determinism).
  Pcg32 split() {
    std::uint64_t s = (static_cast<std::uint64_t>(next()) << 32) | next();
    std::uint64_t t = (static_cast<std::uint64_t>(next()) << 32) | next();
    return Pcg32(s, t | 1);
  }

private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace everest::support
