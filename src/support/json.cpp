#include "support/json.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace everest::support {

namespace {
const Json kNull{};
}

const Json &Json::operator[](const std::string &key) const {
  auto it = object_.find(key);
  return it == object_.end() ? kNull : it->second;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  array_.push_back(std::move(v));
}

Json &Json::set(const std::string &key, Json v) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  object_[key] = std::move(v);
  return *this;
}

namespace {

void escape_string(std::string &out, const std::string &s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::array<char, 8> buf{};
          std::snprintf(buf.data(), buf.size(), "\\u%04x", c);
          out += buf.data();
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_number(std::string &out, double n) {
  if (std::isfinite(n) && n == std::floor(n) && std::fabs(n) < 9.0e15) {
    std::array<char, 32> buf{};
    std::snprintf(buf.data(), buf.size(), "%lld",
                  static_cast<long long>(n));
    out += buf.data();
  } else if (std::isfinite(n)) {
    std::array<char, 48> buf{};
    std::snprintf(buf.data(), buf.size(), "%.17g", n);
    out += buf.data();
  } else {
    out += "null";  // JSON cannot represent inf/nan.
  }
}

void put_newline_indent(std::string &out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::dump_impl(std::string &out, int indent, int depth) const {
  switch (kind_) {
    case Kind::Null: out += "null"; return;
    case Kind::Bool: out += bool_ ? "true" : "false"; return;
    case Kind::Number: write_number(out, number_); return;
    case Kind::String: escape_string(out, string_); return;
    case Kind::Array: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        put_newline_indent(out, indent, depth + 1);
        array_[i].dump_impl(out, indent, depth + 1);
      }
      put_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto &[key, value] : object_) {
        if (!first) out += ',';
        first = false;
        put_newline_indent(out, indent, depth + 1);
        escape_string(out, key);
        out += indent < 0 ? ":" : ": ";
        value.dump_impl(out, indent, depth + 1);
      }
      put_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser.
class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  Expected<Json> run() {
    skip_ws();
    auto v = parse_value();
    if (!v) return v;
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing characters after JSON value");
    return v;
  }

private:
  Expected<Json> fail(const std::string &msg) {
    return Error::make("json: " + msg + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool match_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) == kw) {
      pos_ += kw.size();
      return true;
    }
    return false;
  }

  Expected<Json> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return s.error();
      return Json(std::move(*s));
    }
    if (match_keyword("true")) return Json(true);
    if (match_keyword("false")) return Json(false);
    if (match_keyword("null")) return Json(nullptr);
    return parse_number();
  }

  Expected<std::string> parse_string() {
    if (!consume('"')) {
      return Error::make("json: expected string at offset " +
                         std::to_string(pos_));
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case '/': out += '/'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'u': {
            if (pos_ + 4 > text_.size())
              return Error::make("json: truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Error::make("json: bad \\u escape");
            }
            // Encode BMP code point as UTF-8 (surrogates not supported).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error::make("json: invalid escape character");
        }
      } else {
        out += c;
      }
    }
    return Error::make("json: unterminated string");
  }

  Expected<Json> parse_number() {
    std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    auto eat_digits = [&] {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    eat_digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      eat_digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      eat_digits();
    }
    if (!any) return fail("invalid number");
    std::string token(text_.substr(start, pos_ - start));
    return Json(std::strtod(token.c_str(), nullptr));
  }

  Expected<Json> parse_array() {
    consume('[');
    Json out = Json::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      skip_ws();
      auto v = parse_value();
      if (!v) return v;
      out.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return out;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  Expected<Json> parse_object() {
    consume('{');
    Json out = Json::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      skip_ws();
      auto v = parse_value();
      if (!v) return v;
      out.set(std::move(*key), std::move(*v));
      skip_ws();
      if (consume('}')) return out;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Expected<Json> Json::parse(std::string_view text) {
  return Parser(text).run();
}

}  // namespace everest::support
