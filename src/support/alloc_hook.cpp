#include "support/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

// Sanitizer runtimes intercept malloc/operator new themselves; defining the
// replacement operators alongside them is undefined behaviour territory.
// Compile the hook to a stub there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EVEREST_ALLOC_HOOK_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define EVEREST_ALLOC_HOOK_DISABLED 1
#endif
#endif

namespace everest::support {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_news{0};

}  // namespace

bool alloc_counter_available() {
#if defined(EVEREST_ALLOC_HOOK_DISABLED)
  return false;
#else
  return true;
#endif
}

void alloc_counter_enable(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void alloc_counter_reset() { g_news.store(0, std::memory_order_relaxed); }

std::uint64_t alloc_counter_news() {
  return g_news.load(std::memory_order_relaxed);
}

namespace detail {

inline void *counted_alloc(std::size_t size) {
  if (g_enabled.load(std::memory_order_relaxed))
    g_news.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

}  // namespace detail
}  // namespace everest::support

#if !defined(EVEREST_ALLOC_HOOK_DISABLED)

// Replacement global allocation functions. The default operators are
// malloc/free based, so pairing these with the default-looking deletes below
// is safe regardless of which TU an allocation came from.

void *operator new(std::size_t size) {
  void *p = everest::support::detail::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void *operator new[](std::size_t size) {
  void *p = everest::support::detail::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void *operator new(std::size_t size, const std::nothrow_t &) noexcept {
  return everest::support::detail::counted_alloc(size);
}

void *operator new[](std::size_t size, const std::nothrow_t &) noexcept {
  return everest::support::detail::counted_alloc(size);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, const std::nothrow_t &) noexcept {
  std::free(p);
}
void operator delete[](void *p, const std::nothrow_t &) noexcept {
  std::free(p);
}

#endif  // !EVEREST_ALLOC_HOOK_DISABLED
