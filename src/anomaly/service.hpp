// everest/anomaly/service.hpp
//
// The two nodes developers drop into their workflows (paper §VII): *model
// selection* — AutoML over the detector families with TPE hyperparameter
// sampling, returning the best model found within the trial budget — and
// *detection* — runs the selected model over incoming data and produces a
// JSON document with the indexes of anomalous points; the model is
// continuously updated with current data.
#pragma once

#include <cstdint>
#include <memory>

#include "anomaly/detectors.hpp"
#include "anomaly/tpe.hpp"
#include "support/json.hpp"

namespace everest::anomaly {

/// Budget and objective settings for model selection.
struct SelectionConfig {
  int max_trials = 60;           // "specified amount of time" stand-in
  double contamination = 0.05;   // expected anomaly fraction
  std::uint64_t seed = 42;
  bool use_tpe = true;           // false = pure random search (E7 baseline)
  std::size_t startup_trials = 8;  // random trials before TPE guidance
};

/// Result of the model-selection node. The search objective is average
/// precision of the anomaly ranking (continuous, so hyperparameters are
/// distinguishable); F1 at the contamination threshold is reported for the
/// winning model.
struct SelectionResult {
  std::string model;
  std::map<std::string, double> hyperparams;
  double best_ap = 0.0;           // search objective of the winner
  double best_f1 = 0.0;           // thresholded F1 of the winner
  std::vector<Trial> history;     // all evaluated trials (loss = 1 - AP)
  std::vector<double> best_curve; // best AP after each trial
};

/// Runs model selection on `rows` with validation labels `truth` (indices of
/// truly anomalous rows). Trials are split across detector families; each
/// family gets its own TPE sampler over its hyperparameter space.
support::Expected<SelectionResult> select_model(const Table &rows,
                                                const std::vector<std::size_t> &truth,
                                                const SelectionConfig &config);

/// The detection node: holds a fitted model, scores incoming batches, emits
/// the JSON contract, and refits on a sliding window of recent data.
class DetectionNode {
public:
  DetectionNode(std::unique_ptr<Detector> detector, double contamination,
                std::size_t window = 4096)
      : detector_(std::move(detector)),
        contamination_(contamination),
        window_(window) {}

  /// Fits the model on initial data.
  support::Status fit(const Table &rows);

  /// Scores a batch, updates the sliding window, refits, and returns the
  /// JSON document: {"anomalies": [indices...], "model": name, "count": n}.
  support::Expected<support::Json> process(const Table &batch);

  [[nodiscard]] const Detector &detector() const { return *detector_; }

private:
  std::unique_ptr<Detector> detector_;
  double contamination_;
  std::size_t window_;
  Table recent_;
};

/// Hyperparameter search space of a detector family (shared between the
/// service and the E7 bench).
std::vector<ParamSpec> hyper_space(const std::string &family);

}  // namespace everest::anomaly
