#include "anomaly/detectors.hpp"

#include <algorithm>
#include <cmath>

#include "numerics/linalg.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace everest::anomaly {

using support::Error;
using support::Expected;
using support::Status;

namespace {

Status require_table(const Table &rows, std::size_t min_rows = 2) {
  if (rows.size() < min_rows)
    return Status::failure("detector: need at least " +
                           std::to_string(min_rows) + " rows");
  for (const auto &r : rows) {
    if (r.size() != rows.front().size())
      return Status::failure("detector: ragged rows");
  }
  if (rows.front().empty()) return Status::failure("detector: zero features");
  return Status::ok();
}

std::vector<double> column(const Table &rows, std::size_t d) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const auto &r : rows) out.push_back(r[d]);
  return out;
}

}  // namespace

// ------------------------------------------------------------------- zscore

Status ZScoreDetector::fit(const Table &rows) {
  if (auto s = require_table(rows); !s.is_ok()) return s;
  std::size_t d = rows.front().size();
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    auto col = column(rows, j);
    mean_[j] = support::mean(col);
    stddev_[j] = std::max(support::stddev(col), 1e-12);
  }
  return Status::ok();
}

double ZScoreDetector::score(const Row &row) const {
  double m = 0.0;
  for (std::size_t j = 0; j < mean_.size() && j < row.size(); ++j)
    m = std::max(m, std::fabs((row[j] - mean_[j]) / stddev_[j]));
  return m;
}

// ---------------------------------------------------------------------- iqr

Status IqrDetector::fit(const Table &rows) {
  if (auto s = require_table(rows); !s.is_ok()) return s;
  std::size_t d = rows.front().size();
  lo_.assign(d, 0.0);
  hi_.assign(d, 0.0);
  iqr_.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    auto col = column(rows, j);
    double q1 = support::quantile(col, 0.25);
    double q3 = support::quantile(col, 0.75);
    double iqr = std::max(q3 - q1, 1e-12);
    lo_[j] = q1 - k_ * iqr;
    hi_[j] = q3 + k_ * iqr;
    iqr_[j] = iqr;
  }
  return Status::ok();
}

double IqrDetector::score(const Row &row) const {
  double m = 0.0;
  for (std::size_t j = 0; j < lo_.size() && j < row.size(); ++j) {
    double v = 0.0;
    if (row[j] < lo_[j]) v = (lo_[j] - row[j]) / iqr_[j];
    if (row[j] > hi_[j]) v = (row[j] - hi_[j]) / iqr_[j];
    m = std::max(m, v);
  }
  return m;
}

// -------------------------------------------------------------- mahalanobis

Status MahalanobisDetector::fit(const Table &rows) {
  if (auto s = require_table(rows, 3); !s.is_ok()) return s;
  std::size_t n = rows.size(), d = rows.front().size();
  mean_.assign(d, 0.0);
  for (const auto &r : rows) {
    for (std::size_t j = 0; j < d; ++j) mean_[j] += r[j];
  }
  for (auto &m : mean_) m /= static_cast<double>(n);

  numerics::Tensor cov(numerics::Shape{static_cast<std::int64_t>(d),
                                       static_cast<std::int64_t>(d)});
  for (const auto &r : rows) {
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = 0; b < d; ++b) {
        cov(static_cast<std::int64_t>(a), static_cast<std::int64_t>(b)) +=
            (r[a] - mean_[a]) * (r[b] - mean_[b]);
      }
    }
  }
  cov *= 1.0 / static_cast<double>(n - 1);
  for (std::size_t a = 0; a < d; ++a)
    cov(static_cast<std::int64_t>(a), static_cast<std::int64_t>(a)) += ridge_;

  auto l = numerics::cholesky(cov);
  if (!l) return Status::failure("mahalanobis: covariance not SPD");
  chol_.assign(d, std::vector<double>(d, 0.0));
  for (std::size_t a = 0; a < d; ++a) {
    for (std::size_t b = 0; b <= a; ++b) {
      chol_[a][b] = (*l)(static_cast<std::int64_t>(a),
                         static_cast<std::int64_t>(b));
    }
  }
  return Status::ok();
}

double MahalanobisDetector::score(const Row &row) const {
  std::size_t d = mean_.size();
  // Solve L y = (x - mu); distance^2 = ||y||^2.
  std::vector<double> y(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    double s = (i < row.size() ? row[i] : 0.0) - mean_[i];
    for (std::size_t k = 0; k < i; ++k) s -= chol_[i][k] * y[k];
    y[i] = s / chol_[i][i];
  }
  double sq = 0.0;
  for (double v : y) sq += v * v;
  return std::sqrt(sq);
}

// --------------------------------------------------------- isolation forest

namespace {

double harmonic(double n) { return std::log(n) + 0.5772156649015329; }

/// Expected path length of an unsuccessful BST search (Liu et al.).
double c_factor(double n) {
  if (n <= 1.0) return 0.0;
  return 2.0 * harmonic(n - 1.0) - 2.0 * (n - 1.0) / n;
}

}  // namespace

Status IsolationForest::fit(const Table &rows) {
  if (auto s = require_table(rows, 4); !s.is_ok()) return s;
  if (trees_ < 1 || subsample_ < 2)
    return Status::failure("isolation_forest: bad hyperparameters");
  std::size_t n = rows.size(), d = rows.front().size();
  auto sample_size = static_cast<std::size_t>(
      std::min<std::int64_t>(subsample_, static_cast<std::int64_t>(n)));
  int max_depth =
      static_cast<int>(std::ceil(std::log2(static_cast<double>(sample_size))));
  c_norm_ = c_factor(static_cast<double>(sample_size));

  support::Pcg32 rng(seed_);
  forest_.clear();
  forest_.reserve(static_cast<std::size_t>(trees_));

  for (int t = 0; t < trees_; ++t) {
    // Draw the subsample.
    std::vector<std::size_t> idx(sample_size);
    for (auto &i : idx) i = rng.bounded(static_cast<std::uint32_t>(n));

    Tree tree;
    // Recursive build via explicit stack.
    struct Frame {
      std::vector<std::size_t> points;
      int depth;
      int node;
    };
    tree.nodes.push_back({});
    std::vector<Frame> stack{{idx, 0, 0}};
    while (!stack.empty()) {
      Frame f = std::move(stack.back());
      stack.pop_back();
      Node &node = tree.nodes[static_cast<std::size_t>(f.node)];
      if (f.depth >= max_depth || f.points.size() <= 1) {
        node.size = static_cast<int>(f.points.size());
        continue;
      }
      // Pick a random feature with spread.
      int feature = -1;
      double lo = 0, hi = 0;
      for (int attempt = 0; attempt < 8; ++attempt) {
        int fcand = static_cast<int>(rng.bounded(static_cast<std::uint32_t>(d)));
        lo = hi = rows[f.points[0]][static_cast<std::size_t>(fcand)];
        for (std::size_t p : f.points) {
          lo = std::min(lo, rows[p][static_cast<std::size_t>(fcand)]);
          hi = std::max(hi, rows[p][static_cast<std::size_t>(fcand)]);
        }
        if (hi > lo) {
          feature = fcand;
          break;
        }
      }
      if (feature < 0) {
        node.size = static_cast<int>(f.points.size());
        continue;
      }
      double threshold = rng.uniform(lo, hi);
      std::vector<std::size_t> left, right;
      for (std::size_t p : f.points) {
        (rows[p][static_cast<std::size_t>(feature)] < threshold ? left : right)
            .push_back(p);
      }
      node.feature = feature;
      node.threshold = threshold;
      node.left = static_cast<int>(tree.nodes.size());
      node.right = node.left + 1;
      int left_id = node.left, right_id = node.right;
      tree.nodes.push_back({});
      tree.nodes.push_back({});
      stack.push_back({std::move(left), f.depth + 1, left_id});
      stack.push_back({std::move(right), f.depth + 1, right_id});
    }
    forest_.push_back(std::move(tree));
  }
  return Status::ok();
}

double IsolationForest::path_length(const Tree &tree, const Row &row) const {
  int node = 0;
  double depth = 0.0;
  while (true) {
    const Node &n = tree.nodes[static_cast<std::size_t>(node)];
    if (n.feature < 0) {
      return depth + c_factor(static_cast<double>(std::max(n.size, 1)));
    }
    double v = static_cast<std::size_t>(n.feature) < row.size()
                   ? row[static_cast<std::size_t>(n.feature)]
                   : 0.0;
    node = v < n.threshold ? n.left : n.right;
    depth += 1.0;
  }
}

double IsolationForest::score(const Row &row) const {
  if (forest_.empty()) return 0.0;
  double avg = 0.0;
  for (const auto &tree : forest_) avg += path_length(tree, row);
  avg /= static_cast<double>(forest_.size());
  return std::pow(2.0, -avg / std::max(c_norm_, 1e-9));
}

// ---------------------------------------------------------------------- knn

Status KnnDetector::fit(const Table &rows) {
  if (auto s = require_table(rows); !s.is_ok()) return s;
  if (k_ < 1) return Status::failure("knn: k must be >= 1");
  train_ = rows;
  return Status::ok();
}

double KnnDetector::score(const Row &row) const {
  std::vector<double> dists;
  dists.reserve(train_.size());
  for (const auto &t : train_) {
    double d2 = 0.0;
    for (std::size_t j = 0; j < t.size() && j < row.size(); ++j) {
      double diff = t[j] - row[j];
      d2 += diff * diff;
    }
    dists.push_back(std::sqrt(d2));
  }
  auto k = static_cast<std::size_t>(
      std::min<std::int64_t>(k_, static_cast<std::int64_t>(dists.size())));
  std::partial_sort(dists.begin(),
                    dists.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(k + 1, dists.size())),
                    dists.end());
  // Self-exclusion: when scoring a training row, its zero distance to itself
  // would mask the neighborhood.
  std::size_t begin = (!dists.empty() && dists[0] == 0.0) ? 1 : 0;
  double avg = 0.0;
  std::size_t used = 0;
  for (std::size_t i = begin; i < dists.size() && used < k; ++i, ++used)
    avg += dists[i];
  return used > 0 ? avg / static_cast<double>(used) : 0.0;
}

// ------------------------------------------------------------------ factory

std::vector<std::string> detector_names() {
  return {"zscore", "iqr", "mahalanobis", "isolation_forest", "knn"};
}

Expected<std::unique_ptr<Detector>> make_detector(
    const std::string &name, const std::map<std::string, double> &hyper,
    std::uint64_t seed) {
  auto get = [&](const char *key, double fallback) {
    auto it = hyper.find(key);
    return it == hyper.end() ? fallback : it->second;
  };
  if (name == "zscore") return std::unique_ptr<Detector>(new ZScoreDetector());
  if (name == "iqr")
    return std::unique_ptr<Detector>(new IqrDetector(get("k", 1.5)));
  if (name == "mahalanobis")
    return std::unique_ptr<Detector>(
        new MahalanobisDetector(get("ridge", 1e-3)));
  if (name == "isolation_forest")
    return std::unique_ptr<Detector>(new IsolationForest(
        static_cast<int>(get("trees", 64)),
        static_cast<int>(get("subsample", 128)), seed));
  if (name == "knn")
    return std::unique_ptr<Detector>(
        new KnnDetector(static_cast<int>(get("k", 8))));
  return Error::make("detector: unknown family '" + name + "'");
}

std::vector<std::size_t> detect_anomalies(const Detector &detector,
                                          const Table &rows,
                                          double contamination) {
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    scored.emplace_back(detector.score(rows[i]), i);
  std::sort(scored.begin(), scored.end(),
            [](const auto &a, const auto &b) { return a.first > b.first; });
  auto count = static_cast<std::size_t>(
      std::round(contamination * static_cast<double>(rows.size())));
  count = std::min(count, rows.size());
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(scored[i].second);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace everest::anomaly
