#include "anomaly/tpe.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace everest::anomaly {

double TpeSampler::to_internal(const ParamSpec &p, double external) const {
  return p.log_scale ? std::log(std::max(external, 1e-300)) : external;
}

double TpeSampler::to_external(const ParamSpec &p, double internal) const {
  double v = p.log_scale ? std::exp(internal) : internal;
  v = std::clamp(v, p.lo, p.hi);
  if (p.integral) v = std::round(v);
  return v;
}

std::map<std::string, double> TpeSampler::sample_random() {
  std::map<std::string, double> out;
  for (const auto &p : space_) {
    double lo = to_internal(p, p.lo);
    double hi = to_internal(p, p.hi);
    out[p.name] = to_external(p, rng_.uniform(lo, hi));
  }
  return out;
}

double TpeSampler::parzen_log_density(const std::vector<double> &centers,
                                      double bandwidth, double x) const {
  // Mixture of equal-weight Gaussians at the centers.
  double acc = 0.0;
  const double inv = 1.0 / bandwidth;
  const double norm =
      1.0 / (bandwidth * std::sqrt(2.0 * std::numbers::pi) *
             static_cast<double>(centers.size()));
  for (double c : centers) {
    double z = (x - c) * inv;
    acc += std::exp(-0.5 * z * z);
  }
  return std::log(std::max(acc * norm, 1e-300));
}

std::map<std::string, double> TpeSampler::suggest(
    const std::vector<Trial> &history) {
  if (history.size() < startup_) return sample_random();

  // Split at the gamma quantile of loss: good (low loss) vs bad.
  std::vector<std::size_t> order(history.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return history[a].loss < history[b].loss;
  });
  auto n_good = static_cast<std::size_t>(std::max<double>(
      2.0, std::ceil(gamma_ * static_cast<double>(history.size()))));
  n_good = std::min(n_good, history.size() - 1);

  // Per-parameter centers for l (good) and g (bad).
  std::map<std::string, std::vector<double>> good, bad;
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const Trial &t = history[order[rank]];
    for (const auto &p : space_) {
      auto it = t.params.find(p.name);
      if (it == t.params.end()) continue;
      (rank < n_good ? good[p.name] : bad[p.name])
          .push_back(to_internal(p, it->second));
    }
  }

  // Scott-rule-ish bandwidth per parameter over its internal range.
  auto bandwidth = [&](const ParamSpec &p, std::size_t n) {
    double range = to_internal(p, p.hi) - to_internal(p, p.lo);
    return std::max(range / std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1))),
                    1e-6 * std::max(range, 1.0));
  };

  // Draw candidates from l(x) (perturbed good centers), keep the best EI
  // surrogate log l(x) - log g(x), summed over parameters.
  std::map<std::string, double> best;
  double best_score = -1e300;
  for (int c = 0; c < candidates_; ++c) {
    std::map<std::string, double> candidate;
    double score = 0.0;
    for (const auto &p : space_) {
      const auto &centers = good[p.name];
      if (centers.empty()) {
        candidate[p.name] = sample_random()[p.name];
        continue;
      }
      double bw_l = bandwidth(p, centers.size());
      double center = centers[rng_.bounded(
          static_cast<std::uint32_t>(centers.size()))];
      double x = center + bw_l * rng_.normal();
      x = std::clamp(x, to_internal(p, p.lo), to_internal(p, p.hi));
      candidate[p.name] = to_external(p, x);

      double log_l = parzen_log_density(centers, bw_l, x);
      const auto &bad_centers = bad[p.name];
      double log_g =
          bad_centers.empty()
              ? std::log(1.0 / std::max(to_internal(p, p.hi) -
                                            to_internal(p, p.lo),
                                        1e-12))
              : parzen_log_density(bad_centers, bandwidth(p, bad_centers.size()),
                                   x);
      score += log_l - log_g;
    }
    if (score > best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  return best;
}

}  // namespace everest::anomaly
