// everest/anomaly/detectors.hpp
//
// Anomaly detectors for the EVEREST anomaly-detection service (paper §VII).
// The model-selection node searches over these families and their
// hyperparameters; the detection node runs the selected model and emits the
// anomalous indices. All detectors are deterministic given their seed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/expected.hpp"

namespace everest::anomaly {

using Row = std::vector<double>;
using Table = std::vector<Row>;

/// Base interface: fit on a table, then score rows (higher = more anomalous).
class Detector {
public:
  virtual ~Detector() = default;
  virtual support::Status fit(const Table &rows) = 0;
  [[nodiscard]] virtual double score(const Row &row) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Per-feature z-score; score is the max |z| across features.
class ZScoreDetector final : public Detector {
public:
  support::Status fit(const Table &rows) override;
  [[nodiscard]] double score(const Row &row) const override;
  [[nodiscard]] std::string name() const override { return "zscore"; }

private:
  std::vector<double> mean_, stddev_;
};

/// Tukey fences per feature; score is the max normalized fence violation.
class IqrDetector final : public Detector {
public:
  explicit IqrDetector(double k = 1.5) : k_(k) {}
  support::Status fit(const Table &rows) override;
  [[nodiscard]] double score(const Row &row) const override;
  [[nodiscard]] std::string name() const override { return "iqr"; }

private:
  double k_;
  std::vector<double> lo_, hi_, iqr_;
};

/// Mahalanobis distance with a ridge-regularized covariance.
class MahalanobisDetector final : public Detector {
public:
  explicit MahalanobisDetector(double ridge = 1e-3) : ridge_(ridge) {}
  support::Status fit(const Table &rows) override;
  [[nodiscard]] double score(const Row &row) const override;
  [[nodiscard]] std::string name() const override { return "mahalanobis"; }

private:
  double ridge_;
  std::vector<double> mean_;
  std::vector<std::vector<double>> chol_;  // lower-triangular factor
};

/// Isolation forest (Liu et al.): average isolation path length over random
/// trees; short paths = anomalous.
class IsolationForest final : public Detector {
public:
  IsolationForest(int trees = 64, int subsample = 128,
                  std::uint64_t seed = 42)
      : trees_(trees), subsample_(subsample), seed_(seed) {}
  support::Status fit(const Table &rows) override;
  [[nodiscard]] double score(const Row &row) const override;
  [[nodiscard]] std::string name() const override { return "isolation_forest"; }

private:
  struct Node {
    int feature = -1;      // -1 = leaf
    double threshold = 0;
    int left = -1, right = -1;
    int size = 0;          // leaf: points that landed here
  };
  struct Tree {
    std::vector<Node> nodes;
  };
  double path_length(const Tree &tree, const Row &row) const;

  int trees_;
  int subsample_;
  std::uint64_t seed_;
  std::vector<Tree> forest_;
  double c_norm_ = 1.0;  // expected path length normalizer c(n)
};

/// k-nearest-neighbor distance detector (LOF-style global variant):
/// score = mean distance to the k nearest training rows.
class KnnDetector final : public Detector {
public:
  explicit KnnDetector(int k = 8) : k_(k) {}
  support::Status fit(const Table &rows) override;
  [[nodiscard]] double score(const Row &row) const override;
  [[nodiscard]] std::string name() const override { return "knn"; }

private:
  int k_;
  Table train_;
};

/// Names of all detector families, in search order.
std::vector<std::string> detector_names();

/// Builds a detector by family name with numeric hyperparameters:
///   iqr: k;  mahalanobis: ridge;  isolation_forest: trees, subsample;
///   knn: k.  Unknown keys are ignored; missing keys use defaults.
support::Expected<std::unique_ptr<Detector>> make_detector(
    const std::string &name, const std::map<std::string, double> &hyper,
    std::uint64_t seed = 42);

/// Indices of the `contamination` fraction of rows with the highest scores.
std::vector<std::size_t> detect_anomalies(const Detector &detector,
                                          const Table &rows,
                                          double contamination);

}  // namespace everest::anomaly
