// everest/anomaly/tpe.hpp
//
// Tree-structured Parzen Estimator hyperparameter sampler — the algorithm
// Optuna uses and the paper names for the model-selection node (§VII:
// "using the Tree-structured Parzen Estimator algorithm for hyperparameter
// sampling of Optuna"). Implemented from the Bergstra et al. formulation:
// split past trials at the gamma quantile of the loss into good/bad sets,
// fit per-parameter Parzen (Gaussian-kernel) densities l(x) and g(x), draw
// candidates from l, and keep the candidate maximizing l(x)/g(x).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace everest::anomaly {

/// One tunable parameter: uniform (optionally log-scaled) over [lo, hi];
/// `integral` rounds sampled values.
struct ParamSpec {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  bool log_scale = false;
  bool integral = false;
};

/// A completed trial.
struct Trial {
  std::map<std::string, double> params;
  double loss = 0.0;
};

/// The sampler. Deterministic given the seed.
class TpeSampler {
public:
  TpeSampler(std::vector<ParamSpec> space, std::uint64_t seed,
             double gamma = 0.25, int candidates = 24,
             std::size_t startup_trials = 8)
      : space_(std::move(space)),
        rng_(seed),
        gamma_(gamma),
        candidates_(candidates),
        startup_(startup_trials) {}

  /// Proposes the next parameter set given the trial history.
  std::map<std::string, double> suggest(const std::vector<Trial> &history);

  /// Purely random proposal (the baseline of experiment E7 and the sampler's
  /// own behaviour during startup).
  std::map<std::string, double> sample_random();

private:
  double to_internal(const ParamSpec &p, double external) const;
  double to_external(const ParamSpec &p, double internal) const;
  double parzen_log_density(const std::vector<double> &centers,
                            double bandwidth, double x) const;

  std::vector<ParamSpec> space_;
  support::Pcg32 rng_;
  double gamma_;
  int candidates_;
  std::size_t startup_;
};

}  // namespace everest::anomaly
