#include "anomaly/service.hpp"

#include <algorithm>

#include "support/stats.hpp"

namespace everest::anomaly {

using support::Error;
using support::Expected;
using support::Json;
using support::Status;

std::vector<ParamSpec> hyper_space(const std::string &family) {
  if (family == "iqr") return {{"k", 0.5, 4.0, false, false}};
  if (family == "mahalanobis") return {{"ridge", 1e-6, 1.0, true, false}};
  if (family == "isolation_forest")
    return {{"trees", 8, 128, false, true}, {"subsample", 32, 512, true, true}};
  if (family == "knn") return {{"k", 1, 32, false, true}};
  return {};  // zscore has no hyperparameters
}

Expected<SelectionResult> select_model(const Table &rows,
                                       const std::vector<std::size_t> &truth,
                                       const SelectionConfig &config) {
  if (rows.empty()) return Error::make("select_model: empty data");
  if (config.max_trials < 1)
    return Error::make("select_model: max_trials must be >= 1");

  auto families = detector_names();
  int per_family = std::max(
      1, config.max_trials / static_cast<int>(families.size()));

  SelectionResult result;
  result.best_ap = -1.0;

  std::uint64_t seed_stream = config.seed;
  for (const auto &family : families) {
    auto space = hyper_space(family);
    TpeSampler sampler(space, ++seed_stream, /*gamma=*/0.25,
                       /*candidates=*/24, config.startup_trials);
    std::vector<Trial> family_history;

    int trials = space.empty() ? 1 : per_family;
    for (int t = 0; t < trials; ++t) {
      auto params = config.use_tpe ? sampler.suggest(family_history)
                                   : sampler.sample_random();
      auto detector = make_detector(family, params, config.seed + 17);
      if (!detector) return detector.error();
      if (auto s = (*detector)->fit(rows); !s.is_ok()) continue;

      // Objective: average precision of the anomaly ranking.
      std::vector<double> scores;
      scores.reserve(rows.size());
      for (const auto &row : rows) scores.push_back((*detector)->score(row));
      double ap = support::average_precision(scores, truth);

      Trial trial;
      trial.params = params;
      trial.loss = 1.0 - ap;
      family_history.push_back(trial);
      result.history.push_back(trial);
      if (ap > result.best_ap) {
        result.best_ap = ap;
        result.model = family;
        result.hyperparams = params;
        auto predicted =
            detect_anomalies(**detector, rows, config.contamination);
        result.best_f1 = support::score_detection(predicted, truth).f1;
      }
      result.best_curve.push_back(result.best_ap);
    }
  }

  if (result.model.empty())
    return Error::make("select_model: no detector could be fitted");
  return result;
}

Status DetectionNode::fit(const Table &rows) {
  recent_ = rows;
  if (recent_.size() > window_) {
    recent_.erase(recent_.begin(),
                  recent_.end() - static_cast<std::ptrdiff_t>(window_));
  }
  return detector_->fit(recent_);
}

Expected<Json> DetectionNode::process(const Table &batch) {
  if (recent_.empty())
    return Error::make("detection node: fit() before process()");
  auto anomalies = detect_anomalies(*detector_, batch, contamination_);

  Json doc = Json::object();
  Json idx = Json::array();
  for (std::size_t i : anomalies) idx.push_back(static_cast<std::int64_t>(i));
  doc.set("anomalies", std::move(idx));
  doc.set("model", detector_->name());
  doc.set("count", static_cast<std::int64_t>(anomalies.size()));
  doc.set("batch_size", static_cast<std::int64_t>(batch.size()));

  // Continuous update: fold the batch into the window and refit.
  recent_.insert(recent_.end(), batch.begin(), batch.end());
  if (recent_.size() > window_) {
    recent_.erase(recent_.begin(),
                  recent_.end() - static_cast<std::ptrdiff_t>(window_));
  }
  if (auto s = detector_->fit(recent_); !s.is_ok())
    return Error::make(s.message());
  return doc;
}

}  // namespace everest::anomaly
