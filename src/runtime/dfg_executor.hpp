// everest/runtime/dfg_executor.hpp
//
// Deterministic parallel executor for dfg.graph coordination programs
// (ConDRust semantics, paper §V-A.2: "provable determinism ... and exposes
// parallelism"). Stateless dfg.node stages run data-parallel over worker
// threads with order-restoring merges; dfg.fold stages run sequentially in
// stream order. The output is therefore bit-identical for any worker count —
// a property the tests check.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "obs/trace.hpp"
#include "platform/fault_injector.hpp"
#include "resil/policy.hpp"
#include "support/expected.hpp"

namespace everest::runtime {

/// Stream elements are flat double records (the coordination level is typed
/// by the frontend; execution uses this neutral representation).
using Record = std::vector<double>;
using Stream = std::vector<Record>;

/// A stateless operator: one record per input stream -> one output record.
using NodeFn =
    std::function<Record(const std::vector<const Record *> &inputs)>;

/// An ordered fold: (state, element inputs) -> new state. The final state is
/// broadcast as the single element of the output stream.
using FoldFn = std::function<Record(const Record &state,
                                    const std::vector<const Record *> &inputs)>;

/// Registry binding dfg callee names to executable operators.
class NodeRegistry {
public:
  void register_node(const std::string &name, NodeFn fn) {
    nodes_[name] = std::move(fn);
  }
  void register_fold(const std::string &name, Record initial_state, FoldFn fn) {
    folds_[name] = {std::move(initial_state), std::move(fn)};
  }
  [[nodiscard]] const NodeFn *find_node(const std::string &name) const {
    auto it = nodes_.find(name);
    return it == nodes_.end() ? nullptr : &it->second;
  }
  struct Fold {
    Record initial;
    FoldFn fn;
  };
  [[nodiscard]] const Fold *find_fold(const std::string &name) const {
    auto it = folds_.find(name);
    return it == folds_.end() ? nullptr : &it->second;
  }

private:
  std::map<std::string, NodeFn> nodes_;
  std::map<std::string, Fold> folds_;
};

/// Execution statistics.
struct DfgRunStats {
  std::size_t elements = 0;
  std::size_t node_invocations = 0;
  std::size_t fold_invocations = 0;
  int workers = 1;
  // Resilience accounting (non-zero only under fault injection).
  std::size_t faults_injected = 0;
  std::size_t element_retries = 0;
  std::size_t checkpoints_saved = 0;
  std::size_t checkpoint_restores = 0;
  std::size_t elements_replayed = 0;
};

/// Execution knobs beyond the worker count. Fault decisions are keyed by
/// (stage ordinal, element index, attempt) — pure functions of the
/// injector's seed — so faulted runs produce bit-identical outputs for any
/// worker count.
struct DfgExecOptions {
  int workers = 1;
  /// Consulted per node invocation (FaultSite::NodeInvoke) and per fold
  /// step (FaultSite::FoldStep); nullptr runs fault-free.
  platform::FaultInjector *faults = nullptr;
  /// Attempt budget for a faulted node invocation; exhausting it fails the
  /// run with Unavailable.
  resil::RetryPolicy retry;
  /// Fold checkpointing: snapshot fold state + stream cursor every
  /// `interval` elements, so a mid-fold fault replays only the tail.
  resil::CheckpointSpec checkpoint;
  /// Wall-clock budget per stage; a stage finishing past it fails the run
  /// with DeadlineExceeded. < 0 disables.
  double stage_deadline_us = -1.0;
};

/// Executes the first dfg.graph in `module` over the named input streams.
/// All input streams must have equal length (element-aligned). When
/// `recorder` is given, each stage bumps an invocation counter
/// ("dfg.node.<callee>" / "dfg.fold.<callee>"), every worker records a
/// wall-clock span per stage chunk (track "dfg.worker-<i>"), and the
/// resilience machinery mirrors its work to resil.* counters.
support::Expected<std::map<std::string, Stream>> execute_dfg(
    const ir::Module &module, const NodeRegistry &registry,
    const std::map<std::string, Stream> &inputs, const DfgExecOptions &options,
    DfgRunStats *stats = nullptr, obs::TraceRecorder *recorder = nullptr);

/// Back-compatible form: `workers` only, no faults or checkpoints.
support::Expected<std::map<std::string, Stream>> execute_dfg(
    const ir::Module &module, const NodeRegistry &registry,
    const std::map<std::string, Stream> &inputs, int workers = 1,
    DfgRunStats *stats = nullptr, obs::TraceRecorder *recorder = nullptr);

}  // namespace everest::runtime
