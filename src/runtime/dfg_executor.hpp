// everest/runtime/dfg_executor.hpp
//
// Deterministic parallel executor for dfg.graph coordination programs
// (ConDRust semantics, paper §V-A.2: "provable determinism ... and exposes
// parallelism"). Stateless dfg.node stages run data-parallel over worker
// threads with order-restoring merges; dfg.fold stages run sequentially in
// stream order. The output is therefore bit-identical for any worker count —
// a property the tests check.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "obs/trace.hpp"
#include "support/expected.hpp"

namespace everest::runtime {

/// Stream elements are flat double records (the coordination level is typed
/// by the frontend; execution uses this neutral representation).
using Record = std::vector<double>;
using Stream = std::vector<Record>;

/// A stateless operator: one record per input stream -> one output record.
using NodeFn =
    std::function<Record(const std::vector<const Record *> &inputs)>;

/// An ordered fold: (state, element inputs) -> new state. The final state is
/// broadcast as the single element of the output stream.
using FoldFn = std::function<Record(const Record &state,
                                    const std::vector<const Record *> &inputs)>;

/// Registry binding dfg callee names to executable operators.
class NodeRegistry {
public:
  void register_node(const std::string &name, NodeFn fn) {
    nodes_[name] = std::move(fn);
  }
  void register_fold(const std::string &name, Record initial_state, FoldFn fn) {
    folds_[name] = {std::move(initial_state), std::move(fn)};
  }
  [[nodiscard]] const NodeFn *find_node(const std::string &name) const {
    auto it = nodes_.find(name);
    return it == nodes_.end() ? nullptr : &it->second;
  }
  struct Fold {
    Record initial;
    FoldFn fn;
  };
  [[nodiscard]] const Fold *find_fold(const std::string &name) const {
    auto it = folds_.find(name);
    return it == folds_.end() ? nullptr : &it->second;
  }

private:
  std::map<std::string, NodeFn> nodes_;
  std::map<std::string, Fold> folds_;
};

/// Execution statistics.
struct DfgRunStats {
  std::size_t elements = 0;
  std::size_t node_invocations = 0;
  std::size_t fold_invocations = 0;
  int workers = 1;
};

/// Executes the first dfg.graph in `module` over the named input streams.
/// All input streams must have equal length (element-aligned). `workers`
/// bounds the thread-level parallelism of stateless stages. When `recorder`
/// is given, each stage bumps an invocation counter
/// ("dfg.node.<callee>" / "dfg.fold.<callee>") and every worker records a
/// wall-clock span per stage chunk (track "dfg.worker-<i>").
support::Expected<std::map<std::string, Stream>> execute_dfg(
    const ir::Module &module, const NodeRegistry &registry,
    const std::map<std::string, Stream> &inputs, int workers = 1,
    DfgRunStats *stats = nullptr, obs::TraceRecorder *recorder = nullptr);

}  // namespace everest::runtime
