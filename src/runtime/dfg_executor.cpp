#include "runtime/dfg_executor.hpp"

#include <atomic>
#include <optional>
#include <thread>

namespace everest::runtime {

namespace {

using ir::Operation;
using ir::Value;
using support::Error;
using support::Expected;

/// Applies a stateless node element-wise with `workers` threads. Elements
/// are written into a pre-sized output vector, so completion order cannot
/// perturb the result (order-restoring merge). Each worker's chunk records
/// one span on its own track when a recorder is attached.
Stream parallel_map(const NodeFn &fn, const std::string &callee,
                    const std::vector<const Stream *> &input_streams,
                    std::size_t count, int workers,
                    std::atomic<std::size_t> &invocations,
                    obs::TraceRecorder *recorder) {
  Stream out(count);
  auto work = [&](std::size_t begin, std::size_t end, int worker) {
    std::optional<obs::TraceRecorder::Span> span;
    if (recorder) {
      span.emplace(recorder->span(callee, "dfg.stage",
                                  "dfg.worker-" + std::to_string(worker)));
      span->arg("elements", std::to_string(end - begin));
    }
    std::vector<const Record *> args(input_streams.size());
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t s = 0; s < input_streams.size(); ++s)
        args[s] = &(*input_streams[s])[i];
      out[i] = fn(args);
      invocations.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (workers <= 1 || count < 2) {
    work(0, count, 0);
    return out;
  }
  std::vector<std::thread> pool;
  std::size_t per = (count + static_cast<std::size_t>(workers) - 1) /
                    static_cast<std::size_t>(workers);
  for (int w = 0; w < workers; ++w) {
    std::size_t begin = static_cast<std::size_t>(w) * per;
    std::size_t end = std::min(begin + per, count);
    if (begin >= end) break;
    pool.emplace_back(work, begin, end, w);
  }
  for (auto &t : pool) t.join();
  return out;
}

}  // namespace

Expected<std::map<std::string, Stream>> execute_dfg(
    const ir::Module &module, const NodeRegistry &registry,
    const std::map<std::string, Stream> &inputs, int workers,
    DfgRunStats *stats, obs::TraceRecorder *recorder) {
  const Operation *graph = nullptr;
  for (const auto &op : module.body().operations()) {
    if (op->name() == "dfg.graph") {
      graph = op.get();
      break;
    }
  }
  if (!graph) return Error::make("dfg exec: no dfg.graph in module");
  if (workers < 1) return Error::make("dfg exec: workers must be >= 1");

  std::map<const Value *, Stream> streams;
  std::map<std::string, Stream> outputs;
  std::size_t element_count = 0;
  bool have_count = false;
  std::atomic<std::size_t> node_invocations{0};
  std::size_t fold_invocations = 0;

  for (const auto &op_ptr : graph->region(0).front().operations()) {
    const Operation &op = *op_ptr;
    const std::string &name = op.name();

    if (name == "dfg.input") {
      auto it = inputs.find(op.attr_string("name"));
      if (it == inputs.end())
        return Error::make("dfg exec: missing input stream '" +
                           op.attr_string("name") + "'");
      if (have_count && it->second.size() != element_count)
        return Error::make("dfg exec: input streams must be element-aligned");
      element_count = it->second.size();
      have_count = true;
      streams[op.result(0)] = it->second;
      continue;
    }

    if (name == "dfg.output") {
      auto it = streams.find(op.operand(0));
      if (it == streams.end())
        return Error::make("dfg exec: output of unevaluated stream");
      outputs[op.attr_string("name")] = it->second;
      continue;
    }

    if (name == "dfg.node") {
      const NodeFn *fn = registry.find_node(op.attr_string("callee"));
      if (!fn)
        return Error::make("dfg exec: no registered operator '" +
                           op.attr_string("callee") + "'");
      std::vector<const Stream *> args;
      std::size_t count = 0;
      for (std::size_t i = 0; i < op.num_operands(); ++i) {
        const Stream &s = streams.at(op.operand(i));
        args.push_back(&s);
        count = std::max(count, s.size());
      }
      // Fold outputs have length 1 and broadcast; general case requires
      // aligned lengths.
      for (const Stream *s : args) {
        if (s->size() != count && s->size() != 1)
          return Error::make("dfg exec: stream length mismatch at node '" +
                             op.attr_string("callee") + "'");
      }
      std::vector<Stream> broadcast_storage;
      std::vector<const Stream *> aligned = args;
      for (auto &s : aligned) {
        if (s->size() == 1 && count > 1) {
          broadcast_storage.emplace_back(count, (*s)[0]);
          s = &broadcast_storage.back();
        }
      }
      streams[op.result(0)] = parallel_map(*fn, op.attr_string("callee"),
                                           aligned, count, workers,
                                           node_invocations, recorder);
      if (recorder)
        recorder->counter("dfg.node." + op.attr_string("callee"))
            .add(static_cast<std::int64_t>(count));
      continue;
    }

    if (name == "dfg.fold") {
      const NodeRegistry::Fold *fold =
          registry.find_fold(op.attr_string("callee"));
      if (!fold)
        return Error::make("dfg exec: no registered fold '" +
                           op.attr_string("callee") + "'");
      std::vector<const Stream *> args;
      std::size_t count = 0;
      for (std::size_t i = 0; i < op.num_operands(); ++i) {
        const Stream &s = streams.at(op.operand(i));
        args.push_back(&s);
        count = std::max(count, s.size());
      }
      std::optional<obs::TraceRecorder::Span> span;
      if (recorder)
        span.emplace(recorder->span(op.attr_string("callee"), "dfg.fold",
                                    "dfg.fold"));
      Record state = fold->initial;
      std::vector<const Record *> element(args.size());
      for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t s = 0; s < args.size(); ++s)
          element[s] = args[s]->size() == 1 ? &(*args[s])[0] : &(*args[s])[i];
        state = fold->fn(state, element);
        ++fold_invocations;
      }
      if (recorder)
        recorder->counter("dfg.fold." + op.attr_string("callee"))
            .add(static_cast<std::int64_t>(count));
      streams[op.result(0)] = Stream{state};
      continue;
    }

    return Error::make("dfg exec: unsupported op '" + name + "'");
  }

  if (stats) {
    stats->elements = element_count;
    stats->node_invocations = node_invocations.load();
    stats->fold_invocations = fold_invocations;
    stats->workers = workers;
  }
  return outputs;
}

}  // namespace everest::runtime
