#include "runtime/dfg_executor.hpp"

#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <thread>

namespace everest::runtime {

namespace {

using ir::Operation;
using ir::Value;
using platform::FaultInjector;
using platform::FaultSite;
using platform::InjectedFault;
using support::Error;
using support::Expected;

/// Fault-decision salt for (stage, attempt): stages get independent
/// decision streams, and each retry attempt re-rolls.
std::uint64_t stage_salt(std::size_t stage, int attempt) {
  return static_cast<std::uint64_t>(stage) * 0x100000001b3ULL +
         static_cast<std::uint64_t>(attempt);
}

/// Applies a stateless node element-wise with `workers` threads. Elements
/// are written into a pre-sized output vector, so completion order cannot
/// perturb the result (order-restoring merge). Injected faults are decided
/// purely from (seed, stage, element, attempt), so the set of faulted
/// elements — and therefore the output and any failure — is identical for
/// every worker count. Each worker's chunk records one span on its own
/// track when a recorder is attached.
Expected<Stream> parallel_map(const NodeFn &fn, const std::string &callee,
                              const std::vector<const Stream *> &input_streams,
                              std::size_t count, const DfgExecOptions &options,
                              std::size_t stage,
                              std::atomic<std::size_t> &invocations,
                              std::atomic<std::size_t> &faults_injected,
                              std::atomic<std::size_t> &element_retries,
                              obs::TraceRecorder *recorder) {
  Stream out(count);
  int max_attempts =
      options.retry.max_attempts < 1 ? 1 : options.retry.max_attempts;
  std::mutex failed_mu;
  std::optional<std::size_t> first_failed;

  auto work = [&](std::size_t begin, std::size_t end, int worker) {
    std::optional<obs::TraceRecorder::Span> span;
    if (recorder) {
      span.emplace(recorder->span(callee, "dfg.stage",
                                  "dfg.worker-" + std::to_string(worker)));
      span->arg("elements", std::to_string(end - begin));
    }
    std::vector<const Record *> args(input_streams.size());
    for (std::size_t i = begin; i < end; ++i) {
      for (std::size_t s = 0; s < input_streams.size(); ++s)
        args[s] = &(*input_streams[s])[i];
      bool ok = false;
      for (int attempt = 0; attempt < max_attempts; ++attempt) {
        out[i] = fn(args);
        invocations.fetch_add(1, std::memory_order_relaxed);
        if (!options.faults ||
            options.faults->decide(FaultSite::NodeInvoke, i,
                                   stage_salt(stage, attempt)) ==
                InjectedFault::None) {
          ok = true;
          break;
        }
        // The invocation's result was lost; roll the dice again.
        options.faults->tally(InjectedFault::NodeFault);
        faults_injected.fetch_add(1, std::memory_order_relaxed);
        element_retries.fetch_add(1, std::memory_order_relaxed);
      }
      if (!ok) {
        std::lock_guard<std::mutex> lock(failed_mu);
        if (!first_failed || i < *first_failed) first_failed = i;
      }
    }
  };

  int workers = options.workers;
  if (workers <= 1 || count < 2) {
    work(0, count, 0);
  } else {
    std::vector<std::thread> pool;
    std::size_t per = (count + static_cast<std::size_t>(workers) - 1) /
                      static_cast<std::size_t>(workers);
    for (int w = 0; w < workers; ++w) {
      std::size_t begin = static_cast<std::size_t>(w) * per;
      std::size_t end = std::min(begin + per, count);
      if (begin >= end) break;
      pool.emplace_back(work, begin, end, w);
    }
    for (auto &t : pool) t.join();
  }
  if (first_failed) {
    return Error::unavailable(
        "dfg exec: node '" + callee + "' lost element " +
        std::to_string(*first_failed) + " after " +
        std::to_string(max_attempts) + " attempts (injected node-fault)");
  }
  return out;
}

}  // namespace

Expected<std::map<std::string, Stream>> execute_dfg(
    const ir::Module &module, const NodeRegistry &registry,
    const std::map<std::string, Stream> &inputs, const DfgExecOptions &options,
    DfgRunStats *stats, obs::TraceRecorder *recorder) {
  const Operation *graph = nullptr;
  for (const Operation &op : module.body().operations()) {
    if (op.name() == "dfg.graph") {
      graph = &op;
      break;
    }
  }
  if (!graph) return Error::make("dfg exec: no dfg.graph in module");
  if (options.workers < 1)
    return Error::make("dfg exec: workers must be >= 1");

  std::map<const Value *, Stream> streams;
  std::map<std::string, Stream> outputs;
  std::size_t element_count = 0;
  bool have_count = false;
  std::atomic<std::size_t> node_invocations{0};
  std::atomic<std::size_t> faults_injected{0};
  std::atomic<std::size_t> element_retries{0};
  std::size_t fold_invocations = 0;
  std::size_t checkpoints_saved = 0;
  std::size_t checkpoint_restores = 0;
  std::size_t elements_replayed = 0;
  std::size_t stage_ordinal = 0;

  // Wall-clock budget per stage (node or fold). Checked when the stage
  // completes: a blown budget fails the run with DeadlineExceeded.
  auto stage_clock = [] { return std::chrono::steady_clock::now(); };
  auto stage_overrun =
      [&](const std::string &callee,
          std::chrono::steady_clock::time_point start) -> support::Status {
    if (options.stage_deadline_us < 0.0) return support::Status::ok();
    double elapsed_us =
        std::chrono::duration<double, std::micro>(stage_clock() - start)
            .count();
    if (elapsed_us <= options.stage_deadline_us) return support::Status::ok();
    if (recorder) recorder->counter("resil.deadline.stage_exceeded").add(1);
    return support::Status(Error::deadline_exceeded(
        "dfg exec: stage '" + callee + "' ran " + std::to_string(elapsed_us) +
        " us, past the " + std::to_string(options.stage_deadline_us) +
        " us stage deadline"));
  };

  for (const Operation &op : graph->region(0).front().operations()) {
    const std::string &name = op.name();

    if (name == "dfg.input") {
      auto it = inputs.find(op.attr_string("name"));
      if (it == inputs.end())
        return Error::make("dfg exec: missing input stream '" +
                           op.attr_string("name") + "'");
      if (have_count && it->second.size() != element_count)
        return Error::make("dfg exec: input streams must be element-aligned");
      element_count = it->second.size();
      have_count = true;
      streams[op.result(0)] = it->second;
      continue;
    }

    if (name == "dfg.output") {
      auto it = streams.find(op.operand(0));
      if (it == streams.end())
        return Error::make("dfg exec: output of unevaluated stream");
      outputs[op.attr_string("name")] = it->second;
      continue;
    }

    if (name == "dfg.node") {
      const NodeFn *fn = registry.find_node(op.attr_string("callee"));
      if (!fn)
        return Error::make("dfg exec: no registered operator '" +
                           op.attr_string("callee") + "'");
      std::vector<const Stream *> args;
      std::size_t count = 0;
      for (std::size_t i = 0; i < op.num_operands(); ++i) {
        const Stream &s = streams.at(op.operand(i));
        args.push_back(&s);
        count = std::max(count, s.size());
      }
      // Fold outputs have length 1 and broadcast; general case requires
      // aligned lengths.
      for (const Stream *s : args) {
        if (s->size() != count && s->size() != 1)
          return Error::make("dfg exec: stream length mismatch at node '" +
                             op.attr_string("callee") + "'");
      }
      std::vector<Stream> broadcast_storage;
      std::vector<const Stream *> aligned = args;
      for (auto &s : aligned) {
        if (s->size() == 1 && count > 1) {
          broadcast_storage.emplace_back(count, (*s)[0]);
          s = &broadcast_storage.back();
        }
      }
      auto stage_start = stage_clock();
      auto result = parallel_map(*fn, op.attr_string("callee"), aligned, count,
                                 options, stage_ordinal, node_invocations,
                                 faults_injected, element_retries, recorder);
      ++stage_ordinal;
      if (!result) return result.error();
      if (auto s = stage_overrun(op.attr_string("callee"), stage_start);
          !s.is_ok())
        return s.error();
      streams[op.result(0)] = std::move(*result);
      if (recorder)
        recorder->counter("dfg.node." + op.attr_string("callee"))
            .add(static_cast<std::int64_t>(count));
      continue;
    }

    if (name == "dfg.fold") {
      const NodeRegistry::Fold *fold =
          registry.find_fold(op.attr_string("callee"));
      if (!fold)
        return Error::make("dfg exec: no registered fold '" +
                           op.attr_string("callee") + "'");
      std::vector<const Stream *> args;
      std::size_t count = 0;
      for (std::size_t i = 0; i < op.num_operands(); ++i) {
        const Stream &s = streams.at(op.operand(i));
        args.push_back(&s);
        count = std::max(count, s.size());
      }
      std::optional<obs::TraceRecorder::Span> span;
      if (recorder)
        span.emplace(recorder->span(op.attr_string("callee"), "dfg.fold",
                                    "dfg.fold"));
      auto stage_start = stage_clock();

      // Sequential fold with optional checkpointing: snapshot (state,
      // cursor) every `interval` elements; an injected fold fault restores
      // the latest snapshot and replays from there instead of recomputing
      // the whole stream. Replayed steps are bit-identical because the fold
      // function is pure, so the final state matches a fault-free run.
      Record state = fold->initial;
      Record ckpt_state = fold->initial;
      std::size_t ckpt_cursor = 0;
      std::size_t interval = options.checkpoint.interval;
      std::uint64_t incarnation = 0;
      std::size_t fold_restores = 0;
      const std::size_t max_restores = 16 + 4 * count;
      std::vector<const Record *> element(args.size());
      std::size_t i = 0;
      while (i < count) {
        if (interval > 0 && i > ckpt_cursor && i % interval == 0) {
          ckpt_state = state;
          ckpt_cursor = i;
          ++checkpoints_saved;
        }
        if (options.faults &&
            options.faults->decide(FaultSite::FoldStep, i,
                                   stage_salt(stage_ordinal, 0) +
                                       incarnation) !=
                InjectedFault::None) {
          options.faults->tally(InjectedFault::FoldFault);
          faults_injected.fetch_add(1, std::memory_order_relaxed);
          if (++fold_restores > max_restores)
            return Error::unavailable(
                "dfg exec: fold '" + op.attr_string("callee") +
                "' exceeded its fault budget (" +
                std::to_string(max_restores) + " restores)");
          ++incarnation;
          ++checkpoint_restores;
          elements_replayed += i - ckpt_cursor;
          state = ckpt_state;
          i = ckpt_cursor;
          if (recorder) recorder->counter("resil.checkpoint.restored").add(1);
          continue;
        }
        for (std::size_t s = 0; s < args.size(); ++s)
          element[s] = args[s]->size() == 1 ? &(*args[s])[0] : &(*args[s])[i];
        state = fold->fn(state, element);
        ++fold_invocations;
        ++i;
      }
      ++stage_ordinal;
      if (auto s = stage_overrun(op.attr_string("callee"), stage_start);
          !s.is_ok())
        return s.error();
      if (recorder)
        recorder->counter("dfg.fold." + op.attr_string("callee"))
            .add(static_cast<std::int64_t>(count));
      streams[op.result(0)] = Stream{state};
      continue;
    }

    return Error::make("dfg exec: unsupported op '" + name + "'");
  }

  if (recorder) {
    if (checkpoints_saved > 0)
      recorder->counter("resil.checkpoint.saved")
          .add(static_cast<std::int64_t>(checkpoints_saved));
    if (elements_replayed > 0)
      recorder->counter("resil.checkpoint.replayed_elements")
          .add(static_cast<std::int64_t>(elements_replayed));
    if (element_retries.load() > 0)
      recorder->counter("resil.dfg.element_retries")
          .add(static_cast<std::int64_t>(element_retries.load()));
  }
  if (stats) {
    stats->elements = element_count;
    stats->node_invocations = node_invocations.load();
    stats->fold_invocations = fold_invocations;
    stats->workers = options.workers;
    stats->faults_injected = faults_injected.load();
    stats->element_retries = element_retries.load();
    stats->checkpoints_saved = checkpoints_saved;
    stats->checkpoint_restores = checkpoint_restores;
    stats->elements_replayed = elements_replayed;
  }
  return outputs;
}

Expected<std::map<std::string, Stream>> execute_dfg(
    const ir::Module &module, const NodeRegistry &registry,
    const std::map<std::string, Stream> &inputs, int workers,
    DfgRunStats *stats, obs::TraceRecorder *recorder) {
  DfgExecOptions options;
  options.workers = workers;
  return execute_dfg(module, registry, inputs, options, stats, recorder);
}

}  // namespace everest::runtime
