// everest/runtime/resource_manager.hpp
//
// The EVEREST resource manager (paper §VI-A): "(1) schedules and assigns the
// workflow tasks to the computational nodes while respecting their
// dependencies and resource requests; (2) load-balances the computation;
// (3) performs data transfers when an input of a task is computed on a
// different node; (4) monitors the cluster and reschedules tasks if needed."
//
// Applications talk to it through a Dask-like API (submit returning
// futures, extended with EVEREST resource requests — §VI-A). Execution is an
// event-driven simulation over a cluster model, so scheduling policies are
// measurable and deterministic (experiment E5).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "resil/fault.hpp"
#include "support/expected.hpp"

namespace everest::runtime {

using TaskId = std::int64_t;

/// One compute node of the cluster (paper §III: Xeon/EPYC hosts, some with
/// Alveo cards).
struct NodeSpec {
  std::string name;
  int cores = 8;
  bool has_fpga = false;
  double speed = 1.0;  // relative CPU speed factor
};

/// Cluster topology: homogeneous interconnect model.
struct ClusterSpec {
  std::vector<NodeSpec> nodes;
  double net_gbps = 10.0;
  double net_latency_ms = 0.05;

  [[nodiscard]] double transfer_ms(std::int64_t bytes) const {
    return net_latency_ms + static_cast<double>(bytes) / (net_gbps * 1e6 / 8.0);
  }
};

/// Task description with EVEREST-specific resource requests.
///
/// Variant semantics: a negative duration marks the variant as infeasible.
/// `cpu_ms < 0, fpga_ms >= 0` is an FPGA-only task — it is placed exclusively
/// on FPGA nodes, always with `used_fpga = true`, exactly as if `needs_fpga`
/// were set. `cpu_ms >= 0, fpga_ms < 0` is CPU-only. Submitting a task with
/// both variants negative is rejected.
struct TaskSpec {
  std::string name;
  std::vector<TaskId> deps;
  double cpu_ms = 1.0;      // duration on one CPU core (speed 1.0); < 0 => FPGA only
  double fpga_ms = -1.0;    // duration when offloaded; < 0 => CPU only
  int cores = 1;            // CPU cores requested
  bool needs_fpga = false;  // hard FPGA requirement
  std::int64_t output_bytes = 0;
};

/// Dask-like future: resolved after run() with placement and timing.
struct Future {
  TaskId id = -1;
};

/// Scheduling policy knobs (E5 ablation).
struct SchedulerOptions {
  enum class Policy { Heft, Fifo } policy = Policy::Heft;
  bool transfer_aware = true;  // account for data locality when placing
};

/// Per-task outcome.
struct TaskOutcome {
  std::string node;
  double start_ms = 0.0;
  double finish_ms = 0.0;
  int attempts = 1;
  bool used_fpga = false;
};

/// One task occupying a node on the simulated timeline.
struct BusyInterval {
  TaskId task = -1;
  double start_ms = 0.0;
  double end_ms = 0.0;
  bool used_fpga = false;
};

/// Whole-run report.
struct RunReport {
  double makespan_ms = 0.0;
  double total_transfer_ms = 0.0;
  std::int64_t bytes_transferred = 0;
  double avg_core_utilization = 0.0;  // busy core-ms / (makespan * cores)
  int rescheduled_tasks = 0;
  std::map<TaskId, TaskOutcome> tasks;
  /// Nodes a fault touched during the run (degraded-mode accounting).
  std::vector<std::string> faulted_nodes;
  /// Per-node busy intervals, sorted by start time — the Gantt view of the
  /// run; this is also what feeds the tracer's per-node tracks.
  std::map<std::string, std::vector<BusyInterval>> node_timeline;

  /// True when faults forced any rescheduling (the run completed in
  /// degraded mode).
  [[nodiscard]] bool degraded() const { return rescheduled_tasks > 0; }
};

/// Cluster fault descriptions are the shared resil types, so the resource
/// manager, the fault-injection tooling, and the benches speak the same
/// vocabulary (paper §VI-A: the monitor "reschedules tasks if needed").
using FaultKind = resil::NodeFaultKind;
using FaultSpec = resil::NodeFaultSpec;

/// The resource manager / Dask-like client.
class ResourceManager {
public:
  explicit ResourceManager(ClusterSpec cluster)
      : cluster_(std::move(cluster)) {}

  /// Submits a task; dependencies must already be submitted.
  support::Expected<Future> submit(TaskSpec spec);

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }

  /// Injects a fault into the next run. Crash kills in-flight tasks (they
  /// are rescheduled after the failure, modeling the monitor's
  /// re-submission); Drain lets running tasks finish but starts nothing new
  /// on the node.
  void inject_failure(FaultSpec fault);

  /// Injects a whole fault plan (e.g. from resil::sample_node_faults).
  void inject_failures(const std::vector<FaultSpec> &faults);

  /// Runs the event-driven schedule simulation. Can be called repeatedly
  /// with different options (state is rebuilt per run). When `recorder` is
  /// given, the run exports one span per task placement on the *simulated*
  /// timeline (track = node, category "resman.task"), cross-node transfer
  /// spans (track "network"), and resman.* counters — an inspectable Gantt
  /// trace of the schedule.
  support::Expected<RunReport> run(const SchedulerOptions &options = {},
                                   obs::TraceRecorder *recorder = nullptr) const;

private:
  ClusterSpec cluster_;
  std::vector<TaskSpec> tasks_;
  std::map<std::string, FaultSpec> failures_;  // node -> injected fault
};

}  // namespace everest::runtime
