#include "runtime/resource_manager.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

namespace everest::runtime {

namespace {

using support::Error;
using support::Expected;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct NodeState {
  std::vector<double> core_free;  // per-core busy-until
  double fpga_free = 0.0;
  double fail_at = kInf;
  FaultKind fail_kind = FaultKind::Crash;
};

/// Earliest time `cores` cores are simultaneously free, and which they are.
double earliest_cores(const NodeState &n, int cores,
                      std::vector<std::size_t> &picked) {
  std::vector<std::size_t> order(n.core_free.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return n.core_free[a] < n.core_free[b];
  });
  picked.assign(order.begin(), order.begin() + cores);
  return n.core_free[picked.back()];
}

}  // namespace

Expected<Future> ResourceManager::submit(TaskSpec spec) {
  for (TaskId dep : spec.deps) {
    if (dep < 0 || dep >= static_cast<TaskId>(tasks_.size()))
      return Error::invalid_argument("resman: dependency " +
                                     std::to_string(dep) +
                                     " not submitted yet");
  }
  if (spec.cores < 1)
    return Error::invalid_argument("resman: cores must be >= 1");
  if (spec.cpu_ms < 0 && spec.fpga_ms < 0)
    return Error::invalid_argument("resman: task has no executable variant");
  tasks_.push_back(std::move(spec));
  return Future{static_cast<TaskId>(tasks_.size()) - 1};
}

void ResourceManager::inject_failure(FaultSpec fault) {
  failures_[fault.node] = std::move(fault);
}

void ResourceManager::inject_failures(const std::vector<FaultSpec> &faults) {
  for (const auto &fault : faults) inject_failure(fault);
}

Expected<RunReport> ResourceManager::run(const SchedulerOptions &options,
                                         obs::TraceRecorder *recorder) const {
  if (tasks_.empty())
    return Error::invalid_argument("resman: no tasks submitted");
  // A negative cpu_ms means the task has no CPU variant at all (submit()
  // guarantees fpga_ms >= 0 in that case), so it can only ever be placed on
  // an FPGA node — exactly like an explicit needs_fpga request.
  auto fpga_required = [](const TaskSpec &t) {
    return t.needs_fpga || t.cpu_ms < 0.0;
  };
  for (const auto &t : tasks_) {
    if (t.cores > 0) {
      bool fits_somewhere = false;
      for (const auto &n : cluster_.nodes) {
        if (t.cores <= n.cores && (!fpga_required(t) || n.has_fpga))
          fits_somewhere = true;
      }
      if (!fits_somewhere)
        return Error::resource_exhausted("resman: task '" + t.name +
                                         "' fits on no cluster node");
    }
  }

  // Consumers, for HEFT ranks and transfer accounting.
  std::vector<std::vector<TaskId>> consumers(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    for (TaskId dep : tasks_[i].deps)
      consumers[static_cast<std::size_t>(dep)].push_back(
          static_cast<TaskId>(i));
  }

  // Mean duration per task across nodes (for ranking only). FPGA-only tasks
  // (cpu_ms < 0) contribute their FPGA duration — dividing a negative cpu_ms
  // by the node speed would corrupt the HEFT ranks.
  auto mean_duration = [&](const TaskSpec &t) {
    double sum = 0.0;
    int count = 0;
    for (const auto &n : cluster_.nodes) {
      if (fpga_required(t) && !n.has_fpga) continue;
      double d;
      if (t.cpu_ms < 0.0) {
        d = t.fpga_ms;
      } else {
        d = t.cpu_ms / n.speed;
        if (n.has_fpga && t.fpga_ms >= 0.0) d = std::min(d, t.fpga_ms);
      }
      sum += d;
      ++count;
    }
    return count > 0 ? sum / count : std::max(t.cpu_ms, t.fpga_ms);
  };

  // HEFT upward rank (memoized, graph is a DAG).
  std::vector<double> rank(tasks_.size(), -1.0);
  std::function<double(TaskId)> upward = [&](TaskId id) -> double {
    auto idx = static_cast<std::size_t>(id);
    if (rank[idx] >= 0.0) return rank[idx];
    double best_child = 0.0;
    for (TaskId c : consumers[idx]) {
      double transfer = cluster_.transfer_ms(tasks_[idx].output_bytes);
      best_child = std::max(best_child, transfer + upward(c));
    }
    rank[idx] = mean_duration(tasks_[idx]) + best_child;
    return rank[idx];
  };
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    upward(static_cast<TaskId>(i));

  // Two passes: first without failure constraints to find killed tasks, then
  // final with kill-aware constraints (rescheduled tasks restart after the
  // failure time, modeling the monitor's re-submission).
  std::vector<bool> killed(tasks_.size(), false);
  // When a crash kills a task, the restart happens after *that* fault — not
  // after the earliest fault anywhere on the cluster.
  std::vector<double> restart_at(tasks_.size(), 0.0);
  // Tasks a fault displaced (crash-killed or drain-moved) count a second
  // submission attempt either way.
  std::vector<bool> displaced(tasks_.size(), false);

  auto simulate = [&](bool enforce_failures,
                      RunReport &report) -> support::Status {
    std::vector<NodeState> nodes(cluster_.nodes.size());
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      nodes[n].core_free.assign(static_cast<std::size_t>(
                                    cluster_.nodes[n].cores),
                                0.0);
      auto it = failures_.find(cluster_.nodes[n].name);
      if (enforce_failures && it != failures_.end()) {
        nodes[n].fail_at = it->second.at_ms;
        nodes[n].fail_kind = it->second.kind;
      }
    }

    std::vector<double> finish(tasks_.size(), -1.0);
    std::vector<int> placed_node(tasks_.size(), -1);
    std::vector<bool> done(tasks_.size(), false);
    std::size_t completed = 0;
    double busy_core_ms = 0.0;

    // Scheduling order.
    std::vector<TaskId> order(tasks_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<TaskId>(i);
    if (options.policy == SchedulerOptions::Policy::Heft) {
      std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
        return rank[static_cast<std::size_t>(a)] >
               rank[static_cast<std::size_t>(b)];
      });
    }

    // List scheduling: repeatedly take the highest-priority ready task.
    while (completed < tasks_.size()) {
      TaskId chosen = -1;
      for (TaskId id : order) {
        auto idx = static_cast<std::size_t>(id);
        if (done[idx]) continue;
        bool ready = true;
        for (TaskId dep : tasks_[idx].deps) {
          if (!done[static_cast<std::size_t>(dep)]) ready = false;
        }
        if (ready) {
          chosen = id;
          break;
        }
      }
      if (chosen < 0)
        return support::Status::failure(
            "resman: dependency cycle detected in task graph",
            support::ErrorCode::InvalidArgument);

      auto idx = static_cast<std::size_t>(chosen);
      const TaskSpec &t = tasks_[idx];

      // Evaluate EFT on every node.
      int best_node = -1;
      double best_eft = kInf, best_start = 0.0, best_duration = 0.0;
      bool best_fpga = false;
      std::vector<std::size_t> best_cores;
      double actual_data_ready_best = 0.0;

      for (std::size_t n = 0; n < nodes.size(); ++n) {
        const NodeSpec &spec = cluster_.nodes[n];
        if (t.cores > spec.cores) continue;
        if (fpga_required(t) && !spec.has_fpga) continue;

        // FPGA-only tasks (cpu_ms < 0, fpga_ms >= 0 — submit() rejects the
        // doubly-negative case) must take the FPGA variant: the negative
        // cpu_ms is "infeasible on CPU", not a duration.
        double duration;
        bool use_fpga;
        if (t.cpu_ms < 0.0) {
          duration = t.fpga_ms;
          use_fpga = true;
        } else {
          duration = t.cpu_ms / spec.speed;
          use_fpga = false;
          if (spec.has_fpga && t.fpga_ms >= 0.0 && t.fpga_ms < duration) {
            duration = t.fpga_ms;
            use_fpga = true;
          }
        }

        // Data arrival: cross-node inputs pay a transfer.
        double data_ready = 0.0, data_ready_for_placement = 0.0;
        for (TaskId dep : t.deps) {
          auto d = static_cast<std::size_t>(dep);
          double arrive = finish[d];
          if (placed_node[d] != static_cast<int>(n))
            arrive += cluster_.transfer_ms(tasks_[d].output_bytes);
          data_ready = std::max(data_ready, arrive);
          data_ready_for_placement = std::max(
              data_ready_for_placement,
              options.transfer_aware ? arrive : finish[d]);
        }

        std::vector<std::size_t> cores;
        double cores_free = earliest_cores(nodes[n], t.cores, cores);
        double start = std::max(cores_free, data_ready);
        if (use_fpga) start = std::max(start, nodes[n].fpga_free);
        if (enforce_failures && killed[idx]) {
          // Crash-killed tasks restart after the fault that actually killed
          // them (the crash on their first-pass node), modeling the
          // monitor's re-submission of the lost work.
          start = std::max(start, restart_at[idx]);
        }
        double finish_here = start + duration;
        if (nodes[n].fail_kind == FaultKind::Crash) {
          if (finish_here > nodes[n].fail_at) continue;  // node dies mid-task
        } else {
          if (start >= nodes[n].fail_at) continue;  // drained: no new starts
        }

        double placement_start =
            std::max(cores_free, data_ready_for_placement);
        double placement_eft = placement_start + duration;
        if (placement_eft < best_eft) {
          best_eft = placement_eft;
          best_node = static_cast<int>(n);
          best_start = start;
          best_duration = duration;
          best_fpga = use_fpga;
          best_cores = cores;
          actual_data_ready_best = data_ready;
        }
      }
      (void)actual_data_ready_best;
      if (best_node < 0)
        return support::Status::failure(
            "resman: task '" + t.name + "' has no feasible placement",
            support::ErrorCode::ResourceExhausted);

      NodeState &n = nodes[static_cast<std::size_t>(best_node)];
      double finish_time = best_start + best_duration;
      for (std::size_t c : best_cores) n.core_free[c] = finish_time;
      if (best_fpga) n.fpga_free = finish_time;
      finish[idx] = finish_time;
      placed_node[idx] = best_node;
      done[idx] = true;
      ++completed;
      busy_core_ms += best_duration * t.cores;

      TaskOutcome outcome;
      outcome.node = cluster_.nodes[static_cast<std::size_t>(best_node)].name;
      outcome.start_ms = best_start;
      outcome.finish_ms = finish_time;
      outcome.used_fpga = best_fpga;
      outcome.attempts = displaced[idx] && enforce_failures ? 2 : 1;
      report.node_timeline[outcome.node].push_back(
          {chosen, best_start, finish_time, best_fpga});
      report.tasks[chosen] = outcome;
      report.makespan_ms = std::max(report.makespan_ms, finish_time);
    }
    for (auto &[node_name, intervals] : report.node_timeline) {
      std::sort(intervals.begin(), intervals.end(),
                [](const BusyInterval &a, const BusyInterval &b) {
                  return a.start_ms < b.start_ms;
                });
    }

    // Transfers actually incurred.
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      for (TaskId dep : tasks_[i].deps) {
        auto d = static_cast<std::size_t>(dep);
        if (placed_node[d] != placed_node[i]) {
          report.bytes_transferred += tasks_[d].output_bytes;
          report.total_transfer_ms +=
              cluster_.transfer_ms(tasks_[d].output_bytes);
        }
      }
    }
    int total_cores = 0;
    for (const auto &spec : cluster_.nodes) total_cores += spec.cores;
    if (report.makespan_ms > 0.0 && total_cores > 0)
      report.avg_core_utilization =
          busy_core_ms / (report.makespan_ms * total_cores);
    return support::Status::ok();
  };

  // Exports the final schedule as spans on the simulated timeline: one span
  // per task placement (track = node), one per cross-node transfer edge
  // (track "network"), plus aggregate counters. 1 simulated ms = 1000 trace
  // microseconds.
  auto export_trace = [&](const RunReport &report) {
    if (!recorder) return;
    for (const auto &[id, outcome] : report.tasks) {
      const TaskSpec &t = tasks_[static_cast<std::size_t>(id)];
      obs::TraceEvent event;
      event.name = t.name;
      event.category = "resman.task";
      event.track = outcome.node;
      event.start_us = outcome.start_ms * 1000.0;
      event.duration_us = (outcome.finish_ms - outcome.start_ms) * 1000.0;
      event.args.emplace_back("task", std::to_string(id));
      event.args.emplace_back("attempts", std::to_string(outcome.attempts));
      event.args.emplace_back("resource", outcome.used_fpga ? "fpga" : "cpu");
      recorder->record(std::move(event));
      recorder->histogram("resman.task_ms")
          .record(outcome.finish_ms - outcome.start_ms);
    }
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      for (TaskId dep : tasks_[i].deps) {
        const auto &producer = report.tasks.at(dep);
        const auto &consumer = report.tasks.at(static_cast<TaskId>(i));
        if (producer.node == consumer.node) continue;
        const TaskSpec &dep_spec = tasks_[static_cast<std::size_t>(dep)];
        obs::TraceEvent event;
        event.name = dep_spec.name + " -> " + tasks_[i].name;
        event.category = "resman.transfer";
        event.track = "network";
        event.start_us = producer.finish_ms * 1000.0;
        event.duration_us = cluster_.transfer_ms(dep_spec.output_bytes) * 1000.0;
        event.args.emplace_back("bytes", std::to_string(dep_spec.output_bytes));
        event.args.emplace_back("from", producer.node);
        event.args.emplace_back("to", consumer.node);
        recorder->record(std::move(event));
      }
    }
    recorder->counter("resman.tasks").add(
        static_cast<std::int64_t>(report.tasks.size()));
    recorder->counter("resman.rescheduled").add(report.rescheduled_tasks);
    recorder->counter("resman.bytes_transferred").add(report.bytes_transferred);
    recorder->gauge("resman.makespan_ms").set(report.makespan_ms);
  };

  RunReport first;
  if (auto s = simulate(false, first); !s.is_ok()) return s.error();
  if (failures_.empty()) {
    export_trace(first);
    return first;
  }

  // Find tasks the failures kill, then re-run with constraints. Crash kills
  // everything still in flight at the failure; Drain only invalidates starts
  // after it (running tasks complete).
  int rescheduled = 0;
  for (const auto &[id, outcome] : first.tasks) {
    auto it = failures_.find(outcome.node);
    if (it == failures_.end()) continue;
    const FaultSpec &fault = it->second;
    if (fault.kind == FaultKind::Crash) {
      // In-flight work is lost; the monitor re-submits it after the failure.
      if (outcome.finish_ms > fault.at_ms) {
        killed[static_cast<std::size_t>(id)] = true;
        restart_at[static_cast<std::size_t>(id)] = fault.at_ms;
        displaced[static_cast<std::size_t>(id)] = true;
        ++rescheduled;
      }
    } else {
      // Drained: tasks that would have started there are placed elsewhere.
      // No lost work restarts, but the re-placement is still a second
      // submission attempt.
      if (outcome.start_ms >= fault.at_ms) {
        displaced[static_cast<std::size_t>(id)] = true;
        ++rescheduled;
      }
    }
  }
  RunReport final_report;
  if (auto s = simulate(true, final_report); !s.is_ok()) return s.error();
  final_report.rescheduled_tasks = rescheduled;
  for (const auto &[node, fault] : failures_)
    final_report.faulted_nodes.push_back(node);
  if (recorder) {
    recorder->counter("resil.node_faults")
        .add(static_cast<std::int64_t>(failures_.size()));
    recorder->counter("resil.rescheduled_tasks").add(rescheduled);
  }
  export_trace(final_report);
  return final_report;
}

}  // namespace everest::runtime
