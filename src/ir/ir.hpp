// everest/ir/ir.hpp
//
// Core IR data structures: Value, Use, Operation, Block, Region, Module. This
// is the EVEREST SDK's analogue of MLIR's core IR (paper §V-B): operations
// carry a dialect-qualified name, typed operands/results, an attribute
// dictionary, and nested regions; SSA def-use chains are maintained
// automatically through intrusive use-lists.
//
// Ownership model: every IR object is allocated from the owning Module's
// Arena. Creation returns raw pointers (`Operation::create(arena, ...)`),
// list membership is pointer splicing (`Block::attach/attach_before/detach`),
// and erasure tombstones the op in place — the memory stays valid (reads are
// safe, e.g. for worklist deduplication) until the arena resets. The Module
// handle owns the arena; destroying or moving-from it is the only bulk
// deallocation point.
//
// Storage model: an Operation's operand/result/region arrays live inline in
// the op's own arena allocation (trailing storage); growth past the inline
// capacity spills to a fresh arena array and abandons the old one. Each
// operand slot is a Use node — {value, user, operand_index} threaded on a
// doubly-linked per-Value use-list — so there is exactly one Use per slot
// (duplicate operands included) and set_operand / drop_all_operands /
// replace_all_uses_with unlink in O(1) per use instead of scanning a users
// vector. Nothing on the build path touches the global heap. See DESIGN.md
// "IR ownership and memory model".
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/arena.hpp"
#include "ir/attributes.hpp"
#include "ir/interner.hpp"
#include "ir/types.hpp"

namespace everest::ir {

class Operation;
class Block;
class Region;
class Value;

/// One operand slot: records which operation uses which value at which
/// operand index, and threads itself on the value's intrusive use-list.
/// Use nodes live inline in their op's operand array (arena storage) — they
/// are never allocated individually and never freed; unlinking just splices
/// the node out of the value's list.
class Use {
public:
  Use() = default;
  Use(const Use &) = delete;
  Use &operator=(const Use &) = delete;

  /// The value occupying this operand slot (nullptr while unlinked).
  [[nodiscard]] Value *get() const { return value_; }
  /// The operation owning this slot.
  [[nodiscard]] Operation *user() const { return user_; }
  /// Which operand slot of `user()` this is.
  [[nodiscard]] std::uint32_t operand_index() const { return index_; }
  /// Next use of the same value (use-list order is most-recently-linked
  /// first; nullptr at the end).
  [[nodiscard]] const Use *next_use() const { return next_; }

private:
  friend class Operation;
  friend class Value;

  inline void link(Value *v);
  inline void unlink();

  Value *value_ = nullptr;
  Operation *user_ = nullptr;
  Use *next_ = nullptr;
  Use **prev_ = nullptr;
  std::uint32_t index_ = 0;
};

namespace detail {

/// Range over an intrusive singly-walked list of iterators whose end is a
/// default-constructed iterator (use-lists). size() is O(length).
template <typename Iter>
struct ChainRange {
  Iter first;
  [[nodiscard]] Iter begin() const { return first; }
  [[nodiscard]] Iter end() const { return Iter(); }
  [[nodiscard]] bool empty() const { return !(first != Iter()); }
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (Iter it = first; it != Iter(); ++it) ++n;
    return n;
  }
};

}  // namespace detail

/// An SSA value: either an operation result or a block argument. Arena-owned;
/// pointer-stable for the life of the owning module.
class Value {
public:
  Value(Type type, Operation *defining_op, std::size_t index)
      : type_(std::move(type)), defining_op_(defining_op), index_(index) {}
  Value(Type type, Block *owner_block, std::size_t index)
      : type_(std::move(type)), owner_block_(owner_block), index_(index) {}

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  [[nodiscard]] const Type &type() const { return type_; }
  void set_type(Type t) { type_ = std::move(t); }

  /// The op producing this value, or nullptr for block arguments.
  [[nodiscard]] Operation *defining_op() const { return defining_op_; }
  /// The block owning this argument, or nullptr for op results.
  [[nodiscard]] Block *owner_block() const { return owner_block_; }
  /// Result index or argument index.
  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] bool is_block_argument() const { return owner_block_ != nullptr; }

  /// Forward iterator over the value's Use nodes.
  class use_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Use;
    using reference = const Use &;
    using pointer = const Use *;
    using difference_type = std::ptrdiff_t;

    explicit use_iterator(const Use *use = nullptr) : use_(use) {}
    reference operator*() const { return *use_; }
    pointer operator->() const { return use_; }
    use_iterator &operator++() {
      use_ = use_->next_use();
      return *this;
    }
    use_iterator operator++(int) {
      use_iterator copy = *this;
      ++(*this);
      return copy;
    }
    friend bool operator==(use_iterator a, use_iterator b) {
      return a.use_ == b.use_;
    }
    friend bool operator!=(use_iterator a, use_iterator b) {
      return a.use_ != b.use_;
    }

  private:
    const Use *use_;
  };

  /// Forward iterator over the using operations (one entry per use, so an op
  /// appears once per operand slot referencing this value).
  class user_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Operation *;
    using reference = Operation *;
    using pointer = Operation *const *;
    using difference_type = std::ptrdiff_t;

    explicit user_iterator(const Use *use = nullptr) : use_(use) {}
    reference operator*() const { return use_->user(); }
    user_iterator &operator++() {
      use_ = use_->next_use();
      return *this;
    }
    user_iterator operator++(int) {
      user_iterator copy = *this;
      ++(*this);
      return copy;
    }
    friend bool operator==(user_iterator a, user_iterator b) {
      return a.use_ == b.use_;
    }
    friend bool operator!=(user_iterator a, user_iterator b) {
      return a.use_ != b.use_;
    }

  private:
    const Use *use_;
  };

  using UseRange = detail::ChainRange<use_iterator>;
  using UserRange = detail::ChainRange<user_iterator>;

  /// The value's uses as Use nodes (slot-level: user + operand index).
  [[nodiscard]] UseRange uses() const { return {use_iterator(first_use_)}; }
  /// Operations currently using this value, one entry per use (an op shows
  /// up once per operand slot). Iterable range — use has_uses()/use_count()
  /// for emptiness and counting; do not assume any particular order.
  [[nodiscard]] UserRange users() const { return {user_iterator(first_use_)}; }
  [[nodiscard]] bool has_uses() const { return first_use_ != nullptr; }
  /// Number of uses (O(uses) list walk).
  [[nodiscard]] std::size_t use_count() const { return uses().size(); }

private:
  friend class Operation;
  friend class Use;
  Type type_;
  Operation *defining_op_ = nullptr;
  Block *owner_block_ = nullptr;
  std::size_t index_ = 0;
  Use *first_use_ = nullptr;
};

inline void Use::link(Value *v) {
  value_ = v;
  next_ = v->first_use_;
  prev_ = &v->first_use_;
  if (next_ != nullptr) next_->prev_ = &next_;
  v->first_use_ = this;
}

inline void Use::unlink() {
  if (value_ == nullptr) return;
  *prev_ = next_;
  if (next_ != nullptr) next_->prev_ = prev_;
  value_ = nullptr;
  next_ = nullptr;
  prev_ = nullptr;
}

/// A non-owning view of a contiguous run of `Value *` — the operand-passing
/// currency of `Operation::create`/`OpBuilder::create`. Implicitly built from
/// braced lists and vectors so call sites read unchanged, but no
/// std::allocator runs anywhere on the path: the callee copies the pointers
/// straight into arena storage.
class ValueRange {
public:
  ValueRange() = default;
  // The view never outlives the full expression it is an argument in, so
  // pointing at the initializer_list's backing array is safe (same contract
  // as LLVM's ArrayRef); GCC cannot see that and warns.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  ValueRange(std::initializer_list<Value *> values)
      : data_(values.begin()), size_(values.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  ValueRange(const std::vector<Value *> &values)
      : data_(values.data()), size_(values.size()) {}
  ValueRange(Value *const *data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] Value *operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] Value *const *begin() const { return data_; }
  [[nodiscard]] Value *const *end() const { return data_ + size_; }

private:
  Value *const *data_ = nullptr;
  std::size_t size_ = 0;
};

/// Non-owning view of a contiguous run of `Type` (result types at creation).
class TypeRange {
public:
  TypeRange() = default;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  TypeRange(std::initializer_list<Type> types)
      : data_(types.begin()), size_(types.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  TypeRange(const std::vector<Type> &types)
      : data_(types.data()), size_(types.size()) {}
  TypeRange(const Type *data, std::size_t size) : data_(data), size_(size) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] const Type &operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const Type *begin() const { return data_; }
  [[nodiscard]] const Type *end() const { return data_ + size_; }

private:
  const Type *data_ = nullptr;
  std::size_t size_ = 0;
};

namespace detail {

/// Forward iterator over an array of element pointers, dereferencing to
/// references (Region::blocks()).
template <typename T>
class DerefIterator {
public:
  using iterator_category = std::forward_iterator_tag;
  using value_type = T;
  using reference = T &;
  using pointer = T *;
  using difference_type = std::ptrdiff_t;

  explicit DerefIterator(T *const *slot = nullptr) : slot_(slot) {}
  reference operator*() const { return **slot_; }
  pointer operator->() const { return *slot_; }
  DerefIterator &operator++() {
    ++slot_;
    return *this;
  }
  DerefIterator operator++(int) {
    DerefIterator copy = *this;
    ++slot_;
    return copy;
  }
  friend bool operator==(DerefIterator a, DerefIterator b) {
    return a.slot_ == b.slot_;
  }
  friend bool operator!=(DerefIterator a, DerefIterator b) {
    return a.slot_ != b.slot_;
  }

private:
  T *const *slot_;
};

template <typename Iter>
struct IterRange {
  Iter first, last;
  [[nodiscard]] Iter begin() const { return first; }
  [[nodiscard]] Iter end() const { return last; }
};

}  // namespace detail

/// A region: an ordered list of blocks owned by an operation. Blocks are
/// arena-allocated; `add_block` is the single insertion choke point (blocks
/// are never removed individually — they die with the arena). The block
/// pointer table itself is an arena array.
class Region {
public:
  Region(Arena &arena, Operation *parent) : arena_(&arena), parent_(parent) {}
  Region(const Region &) = delete;
  Region &operator=(const Region &) = delete;

  [[nodiscard]] Operation *parent_op() const { return parent_; }
  [[nodiscard]] Arena &arena() const { return *arena_; }
  [[nodiscard]] bool empty() const { return num_blocks_ == 0; }
  [[nodiscard]] std::size_t num_blocks() const { return num_blocks_; }

  /// Appends a new empty block and returns it. The only way blocks enter a
  /// region.
  Block &add_block();

  [[nodiscard]] Block &front() { return *blocks_[0]; }
  [[nodiscard]] const Block &front() const { return *blocks_[0]; }
  [[nodiscard]] Block &back() { return *blocks_[num_blocks_ - 1]; }
  [[nodiscard]] Block &block(std::size_t i) {
    assert(i < num_blocks_ && "block index out of range");
    return *blocks_[i];
  }
  [[nodiscard]] const Block &block(std::size_t i) const {
    assert(i < num_blocks_ && "block index out of range");
    return *blocks_[i];
  }

  using block_iterator = detail::DerefIterator<Block>;
  using const_block_iterator = detail::DerefIterator<const Block>;

  /// Iteration over blocks as `Block&` (the container itself is private).
  [[nodiscard]] detail::IterRange<block_iterator> blocks() {
    return {block_iterator(blocks_), block_iterator(blocks_ + num_blocks_)};
  }
  [[nodiscard]] detail::IterRange<const_block_iterator> blocks() const {
    auto *data = const_cast<const Block *const *>(blocks_);
    return {const_block_iterator(data),
            const_block_iterator(data + num_blocks_)};
  }

private:
  Arena *arena_;
  Operation *parent_;
  Block **blocks_ = nullptr;
  std::uint32_t num_blocks_ = 0;
  std::uint32_t block_cap_ = 0;
};

/// A basic block: typed arguments plus an intrusively linked operation list.
/// Membership changes are pointer splices; no per-op allocation happens here.
/// The argument pointer table is an arena array.
class Block {
public:
  Block(Arena &arena, Region *parent) : arena_(&arena), parent_(parent) {}
  Block(const Block &) = delete;
  Block &operator=(const Block &) = delete;

  [[nodiscard]] Region *parent_region() const { return parent_; }
  /// The operation owning the parent region (nullptr for detached blocks).
  [[nodiscard]] Operation *parent_op() const;
  /// The arena backing ops created into this block.
  [[nodiscard]] Arena &arena() const { return *arena_; }

  Value &add_argument(Type type);
  [[nodiscard]] std::size_t num_arguments() const { return num_arguments_; }
  [[nodiscard]] Value &argument(std::size_t i) {
    assert(i < num_arguments_ && "argument index out of range");
    return *arguments_[i];
  }
  [[nodiscard]] const Value &argument(std::size_t i) const {
    assert(i < num_arguments_ && "argument index out of range");
    return *arguments_[i];
  }

  template <bool Const>
  class OpIter;
  using iterator = OpIter<false>;
  using const_iterator = OpIter<true>;

  /// Lightweight range over the ops of one block, yielding `Operation&`.
  template <bool Const>
  struct OpRangeT {
    using BlockT = std::conditional_t<Const, const Block, Block>;
    BlockT *block = nullptr;
    [[nodiscard]] OpIter<Const> begin() const;
    [[nodiscard]] OpIter<Const> end() const;
    [[nodiscard]] bool empty() const { return block->empty(); }
    [[nodiscard]] std::size_t size() const { return block->size(); }
  };

  [[nodiscard]] OpRangeT<false> operations() { return {this}; }
  [[nodiscard]] OpRangeT<true> operations() const { return {this}; }
  [[nodiscard]] iterator begin();
  [[nodiscard]] iterator end();
  [[nodiscard]] const_iterator begin() const;
  [[nodiscard]] const_iterator end() const;

  [[nodiscard]] bool empty() const { return first_ == nullptr; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] Operation &front() { return *first_; }
  [[nodiscard]] const Operation &front() const { return *first_; }
  [[nodiscard]] Operation &back() { return *last_; }
  [[nodiscard]] const Operation &back() const { return *last_; }

  /// Splices a detached op onto the end of this block.
  Operation &attach(Operation *op) { return attach_before(op, nullptr); }
  /// Splices a detached op before `before` (nullptr appends).
  Operation &attach_before(Operation *op, Operation *before);
  /// Unlinks `op` from this block without tombstoning it (the op can be
  /// re-attached elsewhere). Its operand uses are kept.
  void detach(Operation *op);
  /// Unlinks `op` and tombstones it and everything nested in it: operand
  /// uses are dropped, `Operation::erased()` turns true, and the memory
  /// stays valid (but must not be reattached) until the arena resets. The
  /// op's results must be unused.
  void erase(Operation *op);

private:
  friend class Operation;
  Arena *arena_;
  Region *parent_;
  Value **arguments_ = nullptr;
  std::uint32_t num_arguments_ = 0;
  std::uint32_t argument_cap_ = 0;
  Operation *first_ = nullptr;
  Operation *last_ = nullptr;
  std::size_t size_ = 0;
};

/// A generic operation. Ops are identified by an interned "dialect.mnemonic"
/// name and are extensible via attributes and regions; dialects attach
/// verifiers through the Context registry. Arena-owned and pointer-stable.
///
/// Operand/result/region storage lives inline after the Operation object in
/// its arena allocation, sized exactly at creation; `append_operand`/
/// `add_result`/`add_region` past the inline capacity spill to fresh arena
/// arrays (the parser's create-then-add pattern). Operand slots are Use
/// nodes threaded on each operand value's use-list.
class Operation {
public:
  /// Creates a detached operation in `arena`. Use Block::attach / OpBuilder
  /// to place it. String-based creation is an OpBuilder convenience that
  /// interns eagerly — there is deliberately no string_view overload here.
  static Operation *create(Arena &arena, Symbol name, ValueRange operands,
                           TypeRange result_types, AttrDict attributes = {},
                           std::size_t num_regions = 0);

  /// Low-level creation: pre-sizes the inline operand/result/region storage
  /// but fills nothing in (operands are appended, results/regions added
  /// afterwards without spilling). The clone fast path builds ops this way
  /// to map operands in place with no intermediate buffers; everyone else
  /// should call create().
  static Operation *create_with_capacity(Arena &arena, Symbol name,
                                         AttrDict attributes,
                                         std::size_t operand_capacity,
                                         std::size_t result_capacity,
                                         std::size_t region_capacity);

  Operation(const Operation &) = delete;
  Operation &operator=(const Operation &) = delete;

  [[nodiscard]] const std::string &name() const { return name_.str(); }
  /// The interned name: pattern dispatch compares these by pointer.
  [[nodiscard]] Symbol name_symbol() const { return name_; }
  /// Dialect prefix of the name ("ekl" for "ekl.contract"). The split is
  /// computed once when the name is interned; this never allocates.
  [[nodiscard]] std::string_view dialect() const { return name_.dialect(); }
  /// Mnemonic suffix of the name ("contract" for "ekl.contract").
  [[nodiscard]] std::string_view mnemonic() const { return name_.mnemonic(); }

  /// The arena this op (and everything it references) lives in.
  [[nodiscard]] Arena &arena() const { return *arena_; }
  /// True once the op has been erased (tombstoned). The object stays
  /// readable until the arena resets; rewrite drivers use this to skip
  /// stale worklist entries.
  [[nodiscard]] bool erased() const { return erased_; }

  [[nodiscard]] std::size_t num_operands() const { return num_operands_; }
  [[nodiscard]] Value *operand(std::size_t i) const {
    assert(i < num_operands_ && "operand index out of range");
    return operands_[i].get();
  }
  /// The Use node for operand slot `i` (user back-pointer + slot index).
  [[nodiscard]] const Use &operand_use(std::size_t i) const {
    assert(i < num_operands_ && "operand index out of range");
    return operands_[i];
  }

  /// Iterator over operand slots yielding `Value *`.
  class operand_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Value *;
    using reference = Value *;
    using pointer = Value *const *;
    using difference_type = std::ptrdiff_t;

    explicit operand_iterator(const Use *slot = nullptr) : slot_(slot) {}
    reference operator*() const { return slot_->get(); }
    operand_iterator &operator++() {
      ++slot_;
      return *this;
    }
    operand_iterator operator++(int) {
      operand_iterator copy = *this;
      ++slot_;
      return copy;
    }
    friend bool operator==(operand_iterator a, operand_iterator b) {
      return a.slot_ == b.slot_;
    }
    friend bool operator!=(operand_iterator a, operand_iterator b) {
      return a.slot_ != b.slot_;
    }

  private:
    const Use *slot_;
  };

  /// Indexable range over operand values. Replaces the old
  /// `const std::vector<Value*>&` accessor — same range-for call sites, but
  /// the storage behind it is the inline Use array.
  struct OperandRange {
    const Use *slots = nullptr;
    std::size_t count = 0;
    [[nodiscard]] operand_iterator begin() const {
      return operand_iterator(slots);
    }
    [[nodiscard]] operand_iterator end() const {
      return operand_iterator(slots + count);
    }
    [[nodiscard]] std::size_t size() const { return count; }
    [[nodiscard]] bool empty() const { return count == 0; }
    [[nodiscard]] Value *operator[](std::size_t i) const {
      return slots[i].get();
    }
  };

  [[nodiscard]] OperandRange operands() const {
    return {operands_, num_operands_};
  }
  void set_operand(std::size_t i, Value *v);
  void append_operand(Value *v);
  void drop_all_operands();

  [[nodiscard]] std::size_t num_results() const { return num_results_; }
  [[nodiscard]] Value *result(std::size_t i = 0) {
    assert(i < num_results_ && "result index out of range");
    return results_[i];
  }
  [[nodiscard]] const Value *result(std::size_t i = 0) const {
    assert(i < num_results_ && "result index out of range");
    return results_[i];
  }
  /// Appends a result value (parser use: results become known only after the
  /// signature is read). Returns the new value.
  Value *add_result(Type type);

  [[nodiscard]] const AttrDict &attributes() const { return attributes_; }
  /// Replaces the whole dictionary (clone path: one COW handoff instead of
  /// per-key set calls).
  void set_attributes(AttrDict attributes) {
    attributes_ = std::move(attributes);
  }
  void set_attr(std::string_view key, Attribute value) {
    attributes_.set(key, std::move(value));
  }
  void set_attr(Symbol key, Attribute value) {
    attributes_.set(key, std::move(value));
  }
  [[nodiscard]] bool has_attr(std::string_view key) const {
    return attributes_.contains(key);
  }
  /// Returns the attribute or nullptr when absent.
  [[nodiscard]] const Attribute *attr(std::string_view key) const {
    return attributes_.find(key);
  }
  [[nodiscard]] const Attribute *attr(Symbol key) const {
    return attributes_.find(key);
  }
  /// Typed attribute getters with fallback defaults.
  [[nodiscard]] std::int64_t attr_int(std::string_view key,
                                      std::int64_t fallback = 0) const;
  [[nodiscard]] double attr_double(std::string_view key,
                                   double fallback = 0.0) const;
  [[nodiscard]] std::string attr_string(std::string_view key,
                                        std::string fallback = "") const;

  [[nodiscard]] std::size_t num_regions() const { return num_regions_; }
  [[nodiscard]] Region &region(std::size_t i = 0) {
    assert(i < num_regions_ && "region index out of range");
    return *regions_[i];
  }
  [[nodiscard]] const Region &region(std::size_t i = 0) const {
    assert(i < num_regions_ && "region index out of range");
    return *regions_[i];
  }
  Region &add_region();

  [[nodiscard]] Block *parent_block() const { return parent_; }
  /// The op owning the region this op lives in (nullptr at module level).
  [[nodiscard]] Operation *parent_op() const;
  /// Intrusive-list neighbours within the parent block (nullptr at ends).
  [[nodiscard]] Operation *next_in_block() const { return next_; }
  [[nodiscard]] Operation *prev_in_block() const { return prev_; }

  /// Replaces every use of this op's results with `replacements` (one value
  /// per result), as a simultaneous substitution: uses are all unlinked
  /// before any relink, so a replacement that is itself one of this op's
  /// results (r0 -> r1) is not chased through the later r1 pass.
  void replace_all_uses_with(ValueRange replacements);

  /// Pre-order walk over this op and all nested ops.
  void walk(const std::function<void(Operation &)> &fn);
  void walk(const std::function<void(const Operation &)> &fn) const;

  /// Prints the op in generic textual form (see printer.cpp).
  [[nodiscard]] std::string str() const;

private:
  friend class Arena;
  friend class Block;
  Operation(Arena &arena, Symbol name, AttrDict attributes)
      : name_(name), attributes_(std::move(attributes)), arena_(&arena) {}

  /// Placement-initializes operand slot `i` (caller manages num_operands_).
  void init_operand(std::uint32_t i, Value *v);
  void grow_operands(std::uint32_t min_cap);
  void grow_results(std::uint32_t min_cap);
  void grow_regions(std::uint32_t min_cap);

  Symbol name_;
  AttrDict attributes_;
  Arena *arena_;
  Block *parent_ = nullptr;
  Operation *prev_ = nullptr;
  Operation *next_ = nullptr;
  Use *operands_ = nullptr;
  Value **results_ = nullptr;
  Region **regions_ = nullptr;
  std::uint32_t num_operands_ = 0;
  std::uint32_t operand_cap_ = 0;
  std::uint32_t num_results_ = 0;
  std::uint32_t result_cap_ = 0;
  std::uint32_t num_regions_ = 0;
  std::uint32_t region_cap_ = 0;
  bool erased_ = false;
};

template <bool Const>
class Block::OpIter {
public:
  using OpT = std::conditional_t<Const, const Operation, Operation>;
  using iterator_category = std::forward_iterator_tag;
  using value_type = OpT;
  using reference = OpT &;
  using pointer = OpT *;
  using difference_type = std::ptrdiff_t;

  explicit OpIter(OpT *op = nullptr) : op_(op) {}
  reference operator*() const { return *op_; }
  pointer operator->() const { return op_; }
  OpIter &operator++() {
    op_ = op_->next_in_block();
    return *this;
  }
  OpIter operator++(int) {
    OpIter copy = *this;
    op_ = op_->next_in_block();
    return copy;
  }
  friend bool operator==(OpIter a, OpIter b) { return a.op_ == b.op_; }
  friend bool operator!=(OpIter a, OpIter b) { return a.op_ != b.op_; }

private:
  OpT *op_;
};

template <bool Const>
Block::OpIter<Const> Block::OpRangeT<Const>::begin() const {
  return OpIter<Const>(block->empty() ? nullptr : &block->front());
}
template <bool Const>
Block::OpIter<Const> Block::OpRangeT<Const>::end() const {
  return OpIter<Const>(nullptr);
}

inline Block::iterator Block::begin() { return operations().begin(); }
inline Block::iterator Block::end() { return operations().end(); }
inline Block::const_iterator Block::begin() const {
  return operations().begin();
}
inline Block::const_iterator Block::end() const { return operations().end(); }

/// The top-level container: an arena plus an op named "builtin.module" with
/// one region holding one block. The Module is the owning handle — move-only;
/// destroying it resets the arena and with it every op/value/block/region.
class Module {
public:
  Module();
  Module(Module &&other) noexcept
      : arena_(std::move(other.arena_)), op_(other.op_) {
    other.op_ = nullptr;
  }
  Module &operator=(Module &&other) noexcept {
    if (this != &other) {
      arena_ = std::move(other.arena_);
      op_ = other.op_;
      other.op_ = nullptr;
    }
    return *this;
  }
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  /// The arena owning all IR reachable from this module.
  [[nodiscard]] Arena &arena() const { return *arena_; }

  [[nodiscard]] Operation &op() { return *op_; }
  [[nodiscard]] const Operation &op() const { return *op_; }
  [[nodiscard]] Block &body() { return op_->region(0).front(); }
  [[nodiscard]] const Block &body() const { return op_->region(0).front(); }

  /// Pre-order walk over all ops in the module (excluding the module op).
  void walk(const std::function<void(Operation &)> &fn);
  void walk(const std::function<void(const Operation &)> &fn) const;

  /// Finds the first op with the given name, or nullptr.
  [[nodiscard]] Operation *find_first(std::string_view name);
  /// Collects all ops with the given name.
  [[nodiscard]] std::vector<Operation *> find_all(std::string_view name);

  /// Total number of ops in the module (excluding the module op itself).
  [[nodiscard]] std::size_t op_count() const;

  /// Prints the whole module in generic textual form.
  [[nodiscard]] std::string str() const;

private:
  std::unique_ptr<Arena> arena_;
  Operation *op_ = nullptr;
};

/// Deep-copies a module into a fresh arena-owning Module handle: new
/// operations, values, blocks, and regions with identical structure, names,
/// types, and attributes. The clone prints byte-identically to the original
/// (the compile cache relies on this to hand out private copies of cached IR
/// without a print/parse round trip). Fast path: per-op storage is rebuilt
/// arena-to-arena through pre-sized inline arrays and a single open-addressed
/// value map — amortized zero global-heap allocations per cloned op.
[[nodiscard]] Module clone_module(const Module &module);

/// Deep-copies one operation (with nested regions) into `dst`'s arena,
/// splicing the clone before `before` (nullptr appends). `src` must be
/// self-contained: its operands may only reference values defined inside the
/// cloned subtree (true for func-like ops, which is what the per-pass
/// incremental cache clones). Returns the clone.
Operation *clone_op_into(const Operation &src, Block &dst,
                         Operation *before = nullptr);

}  // namespace everest::ir
