// everest/ir/ir.hpp
//
// Core IR data structures: Value, Operation, Block, Region, Module. This is
// the EVEREST SDK's analogue of MLIR's core IR (paper §V-B): operations carry
// a dialect-qualified name, typed operands/results, an attribute dictionary,
// and nested regions; SSA def-use chains are maintained automatically.
//
// Ownership model: every IR object is allocated from the owning Module's
// Arena. Creation returns raw pointers (`Operation::create(arena, ...)`),
// list membership is pointer splicing (`Block::attach/attach_before/detach`),
// and erasure tombstones the op in place — the memory stays valid (reads are
// safe, e.g. for worklist deduplication) until the arena resets. The Module
// handle owns the arena; destroying or moving-from it is the only bulk
// deallocation point. See DESIGN.md "IR ownership and memory model".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/arena.hpp"
#include "ir/attributes.hpp"
#include "ir/interner.hpp"
#include "ir/types.hpp"

namespace everest::ir {

class Operation;
class Block;
class Region;

/// An SSA value: either an operation result or a block argument. Arena-owned;
/// pointer-stable for the life of the owning module.
class Value {
public:
  Value(Type type, Operation *defining_op, std::size_t index)
      : type_(std::move(type)), defining_op_(defining_op), index_(index) {}
  Value(Type type, Block *owner_block, std::size_t index)
      : type_(std::move(type)), owner_block_(owner_block), index_(index) {}

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  [[nodiscard]] const Type &type() const { return type_; }
  void set_type(Type t) { type_ = std::move(t); }

  /// The op producing this value, or nullptr for block arguments.
  [[nodiscard]] Operation *defining_op() const { return defining_op_; }
  /// The block owning this argument, or nullptr for op results.
  [[nodiscard]] Block *owner_block() const { return owner_block_; }
  /// Result index or argument index.
  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] bool is_block_argument() const { return owner_block_ != nullptr; }

  /// Operations currently using this value (duplicates per use).
  [[nodiscard]] const std::vector<Operation *> &users() const { return users_; }
  [[nodiscard]] bool has_uses() const { return !users_.empty(); }

private:
  friend class Operation;
  Type type_;
  Operation *defining_op_ = nullptr;
  Block *owner_block_ = nullptr;
  std::size_t index_ = 0;
  std::vector<Operation *> users_;
};

namespace detail {

/// Forward iterator over a vector of element pointers, dereferencing to
/// references (Region::blocks()).
template <typename T>
class DerefIterator {
public:
  using iterator_category = std::forward_iterator_tag;
  using value_type = T;
  using reference = T &;
  using pointer = T *;
  using difference_type = std::ptrdiff_t;

  explicit DerefIterator(T *const *slot = nullptr) : slot_(slot) {}
  reference operator*() const { return **slot_; }
  pointer operator->() const { return *slot_; }
  DerefIterator &operator++() {
    ++slot_;
    return *this;
  }
  DerefIterator operator++(int) {
    DerefIterator copy = *this;
    ++slot_;
    return copy;
  }
  friend bool operator==(DerefIterator a, DerefIterator b) {
    return a.slot_ == b.slot_;
  }
  friend bool operator!=(DerefIterator a, DerefIterator b) {
    return a.slot_ != b.slot_;
  }

private:
  T *const *slot_;
};

template <typename Iter>
struct IterRange {
  Iter first, last;
  [[nodiscard]] Iter begin() const { return first; }
  [[nodiscard]] Iter end() const { return last; }
};

}  // namespace detail

/// A region: an ordered list of blocks owned by an operation. Blocks are
/// arena-allocated; `add_block` is the single insertion choke point (blocks
/// are never removed individually — they die with the arena).
class Region {
public:
  Region(Arena &arena, Operation *parent) : arena_(&arena), parent_(parent) {}
  Region(const Region &) = delete;
  Region &operator=(const Region &) = delete;

  [[nodiscard]] Operation *parent_op() const { return parent_; }
  [[nodiscard]] Arena &arena() const { return *arena_; }
  [[nodiscard]] bool empty() const { return blocks_.empty(); }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

  /// Appends a new empty block and returns it. The only way blocks enter a
  /// region.
  Block &add_block();

  [[nodiscard]] Block &front() { return *blocks_.front(); }
  [[nodiscard]] const Block &front() const { return *blocks_.front(); }
  [[nodiscard]] Block &back() { return *blocks_.back(); }
  [[nodiscard]] Block &block(std::size_t i) { return *blocks_.at(i); }
  [[nodiscard]] const Block &block(std::size_t i) const {
    return *blocks_.at(i);
  }

  using block_iterator = detail::DerefIterator<Block>;
  using const_block_iterator = detail::DerefIterator<const Block>;

  /// Iteration over blocks as `Block&` (the container itself is private).
  [[nodiscard]] detail::IterRange<block_iterator> blocks() {
    return {block_iterator(blocks_.data()),
            block_iterator(blocks_.data() + blocks_.size())};
  }
  [[nodiscard]] detail::IterRange<const_block_iterator> blocks() const {
    auto *data = const_cast<const Block *const *>(blocks_.data());
    return {const_block_iterator(data),
            const_block_iterator(data + blocks_.size())};
  }

private:
  Arena *arena_;
  Operation *parent_;
  std::vector<Block *> blocks_;
};

/// A basic block: typed arguments plus an intrusively linked operation list.
/// Membership changes are pointer splices; no per-op allocation happens here.
class Block {
public:
  Block(Arena &arena, Region *parent) : arena_(&arena), parent_(parent) {}
  Block(const Block &) = delete;
  Block &operator=(const Block &) = delete;

  [[nodiscard]] Region *parent_region() const { return parent_; }
  /// The operation owning the parent region (nullptr for detached blocks).
  [[nodiscard]] Operation *parent_op() const;
  /// The arena backing ops created into this block.
  [[nodiscard]] Arena &arena() const { return *arena_; }

  Value &add_argument(Type type);
  [[nodiscard]] std::size_t num_arguments() const { return arguments_.size(); }
  [[nodiscard]] Value &argument(std::size_t i) { return *arguments_.at(i); }
  [[nodiscard]] const Value &argument(std::size_t i) const {
    return *arguments_.at(i);
  }

  template <bool Const>
  class OpIter;
  using iterator = OpIter<false>;
  using const_iterator = OpIter<true>;

  /// Lightweight range over the ops of one block, yielding `Operation&`.
  template <bool Const>
  struct OpRangeT {
    using BlockT = std::conditional_t<Const, const Block, Block>;
    BlockT *block = nullptr;
    [[nodiscard]] OpIter<Const> begin() const;
    [[nodiscard]] OpIter<Const> end() const;
    [[nodiscard]] bool empty() const { return block->empty(); }
    [[nodiscard]] std::size_t size() const { return block->size(); }
  };

  [[nodiscard]] OpRangeT<false> operations() { return {this}; }
  [[nodiscard]] OpRangeT<true> operations() const { return {this}; }
  [[nodiscard]] iterator begin();
  [[nodiscard]] iterator end();
  [[nodiscard]] const_iterator begin() const;
  [[nodiscard]] const_iterator end() const;

  [[nodiscard]] bool empty() const { return first_ == nullptr; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] Operation &front() { return *first_; }
  [[nodiscard]] const Operation &front() const { return *first_; }
  [[nodiscard]] Operation &back() { return *last_; }
  [[nodiscard]] const Operation &back() const { return *last_; }

  /// Splices a detached op onto the end of this block.
  Operation &attach(Operation *op) { return attach_before(op, nullptr); }
  /// Splices a detached op before `before` (nullptr appends).
  Operation &attach_before(Operation *op, Operation *before);
  /// Unlinks `op` from this block without tombstoning it (the op can be
  /// re-attached elsewhere). Its operand uses are kept.
  void detach(Operation *op);
  /// Unlinks `op` and tombstones it and everything nested in it: operand
  /// uses are dropped, `Operation::erased()` turns true, and the memory
  /// stays valid (but must not be reattached) until the arena resets. The
  /// op's results must be unused.
  void erase(Operation *op);

private:
  friend class Operation;
  Arena *arena_;
  Region *parent_;
  std::vector<Value *> arguments_;
  Operation *first_ = nullptr;
  Operation *last_ = nullptr;
  std::size_t size_ = 0;
};

/// A generic operation. Ops are identified by an interned "dialect.mnemonic"
/// name and are extensible via attributes and regions; dialects attach
/// verifiers through the Context registry. Arena-owned and pointer-stable.
class Operation {
public:
  /// Creates a detached operation in `arena`. Use Block::attach / OpBuilder
  /// to place it. String-based creation is an OpBuilder convenience that
  /// interns eagerly — there is deliberately no string_view overload here.
  static Operation *create(Arena &arena, Symbol name,
                           std::vector<Value *> operands,
                           std::vector<Type> result_types,
                           AttrDict attributes = {},
                           std::size_t num_regions = 0);

  Operation(const Operation &) = delete;
  Operation &operator=(const Operation &) = delete;

  [[nodiscard]] const std::string &name() const { return name_.str(); }
  /// The interned name: pattern dispatch compares these by pointer.
  [[nodiscard]] Symbol name_symbol() const { return name_; }
  /// Dialect prefix of the name ("ekl" for "ekl.contract"). The split is
  /// computed once when the name is interned; this never allocates.
  [[nodiscard]] std::string_view dialect() const { return name_.dialect(); }
  /// Mnemonic suffix of the name ("contract" for "ekl.contract").
  [[nodiscard]] std::string_view mnemonic() const { return name_.mnemonic(); }

  /// The arena this op (and everything it references) lives in.
  [[nodiscard]] Arena &arena() const { return *arena_; }
  /// True once the op has been erased (tombstoned). The object stays
  /// readable until the arena resets; rewrite drivers use this to skip
  /// stale worklist entries.
  [[nodiscard]] bool erased() const { return erased_; }

  [[nodiscard]] std::size_t num_operands() const { return operands_.size(); }
  [[nodiscard]] Value *operand(std::size_t i) const { return operands_.at(i); }
  [[nodiscard]] const std::vector<Value *> &operands() const { return operands_; }
  void set_operand(std::size_t i, Value *v);
  void append_operand(Value *v);
  void drop_all_operands();

  [[nodiscard]] std::size_t num_results() const { return results_.size(); }
  [[nodiscard]] Value *result(std::size_t i = 0) { return results_.at(i); }
  [[nodiscard]] const Value *result(std::size_t i = 0) const {
    return results_.at(i);
  }
  /// Appends a result value (parser use: results become known only after the
  /// signature is read). Returns the new value.
  Value *add_result(Type type);

  [[nodiscard]] const AttrDict &attributes() const { return attributes_; }
  void set_attr(std::string_view key, Attribute value) {
    attributes_.set(key, std::move(value));
  }
  void set_attr(Symbol key, Attribute value) {
    attributes_.set(key, std::move(value));
  }
  [[nodiscard]] bool has_attr(std::string_view key) const {
    return attributes_.contains(key);
  }
  /// Returns the attribute or nullptr when absent.
  [[nodiscard]] const Attribute *attr(std::string_view key) const {
    return attributes_.find(key);
  }
  [[nodiscard]] const Attribute *attr(Symbol key) const {
    return attributes_.find(key);
  }
  /// Typed attribute getters with fallback defaults.
  [[nodiscard]] std::int64_t attr_int(std::string_view key,
                                      std::int64_t fallback = 0) const;
  [[nodiscard]] double attr_double(std::string_view key,
                                   double fallback = 0.0) const;
  [[nodiscard]] std::string attr_string(std::string_view key,
                                        std::string fallback = "") const;

  [[nodiscard]] std::size_t num_regions() const { return regions_.size(); }
  [[nodiscard]] Region &region(std::size_t i = 0) { return *regions_.at(i); }
  [[nodiscard]] const Region &region(std::size_t i = 0) const {
    return *regions_.at(i);
  }
  Region &add_region();

  [[nodiscard]] Block *parent_block() const { return parent_; }
  /// The op owning the region this op lives in (nullptr at module level).
  [[nodiscard]] Operation *parent_op() const;
  /// Intrusive-list neighbours within the parent block (nullptr at ends).
  [[nodiscard]] Operation *next_in_block() const { return next_; }
  [[nodiscard]] Operation *prev_in_block() const { return prev_; }

  /// Replaces every use of this op's results with `replacements` (one value
  /// per result).
  void replace_all_uses_with(const std::vector<Value *> &replacements);

  /// Pre-order walk over this op and all nested ops.
  void walk(const std::function<void(Operation &)> &fn);
  void walk(const std::function<void(const Operation &)> &fn) const;

  /// Prints the op in generic textual form (see printer.cpp).
  [[nodiscard]] std::string str() const;

private:
  friend class Arena;
  friend class Block;
  Operation(Arena &arena, Symbol name, std::vector<Value *> operands,
            AttrDict attributes);

  Symbol name_;
  std::vector<Value *> operands_;
  std::vector<Value *> results_;
  AttrDict attributes_;
  std::vector<Region *> regions_;
  Arena *arena_;
  Block *parent_ = nullptr;
  Operation *prev_ = nullptr;
  Operation *next_ = nullptr;
  bool erased_ = false;
};

template <bool Const>
class Block::OpIter {
public:
  using OpT = std::conditional_t<Const, const Operation, Operation>;
  using iterator_category = std::forward_iterator_tag;
  using value_type = OpT;
  using reference = OpT &;
  using pointer = OpT *;
  using difference_type = std::ptrdiff_t;

  explicit OpIter(OpT *op = nullptr) : op_(op) {}
  reference operator*() const { return *op_; }
  pointer operator->() const { return op_; }
  OpIter &operator++() {
    op_ = op_->next_in_block();
    return *this;
  }
  OpIter operator++(int) {
    OpIter copy = *this;
    op_ = op_->next_in_block();
    return copy;
  }
  friend bool operator==(OpIter a, OpIter b) { return a.op_ == b.op_; }
  friend bool operator!=(OpIter a, OpIter b) { return a.op_ != b.op_; }

private:
  OpT *op_;
};

template <bool Const>
Block::OpIter<Const> Block::OpRangeT<Const>::begin() const {
  return OpIter<Const>(block->empty() ? nullptr : &block->front());
}
template <bool Const>
Block::OpIter<Const> Block::OpRangeT<Const>::end() const {
  return OpIter<Const>(nullptr);
}

inline Block::iterator Block::begin() { return operations().begin(); }
inline Block::iterator Block::end() { return operations().end(); }
inline Block::const_iterator Block::begin() const {
  return operations().begin();
}
inline Block::const_iterator Block::end() const { return operations().end(); }

/// The top-level container: an arena plus an op named "builtin.module" with
/// one region holding one block. The Module is the owning handle — move-only;
/// destroying it resets the arena and with it every op/value/block/region.
class Module {
public:
  Module();
  Module(Module &&other) noexcept
      : arena_(std::move(other.arena_)), op_(other.op_) {
    other.op_ = nullptr;
  }
  Module &operator=(Module &&other) noexcept {
    if (this != &other) {
      arena_ = std::move(other.arena_);
      op_ = other.op_;
      other.op_ = nullptr;
    }
    return *this;
  }
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  /// The arena owning all IR reachable from this module.
  [[nodiscard]] Arena &arena() const { return *arena_; }

  [[nodiscard]] Operation &op() { return *op_; }
  [[nodiscard]] const Operation &op() const { return *op_; }
  [[nodiscard]] Block &body() { return op_->region(0).front(); }
  [[nodiscard]] const Block &body() const { return op_->region(0).front(); }

  /// Pre-order walk over all ops in the module (excluding the module op).
  void walk(const std::function<void(Operation &)> &fn);
  void walk(const std::function<void(const Operation &)> &fn) const;

  /// Finds the first op with the given name, or nullptr.
  [[nodiscard]] Operation *find_first(std::string_view name);
  /// Collects all ops with the given name.
  [[nodiscard]] std::vector<Operation *> find_all(std::string_view name);

  /// Total number of ops in the module (excluding the module op itself).
  [[nodiscard]] std::size_t op_count() const;

  /// Prints the whole module in generic textual form.
  [[nodiscard]] std::string str() const;

private:
  std::unique_ptr<Arena> arena_;
  Operation *op_ = nullptr;
};

/// Deep-copies a module into a fresh arena-owning Module handle: new
/// operations, values, blocks, and regions with identical structure, names,
/// types, and attributes. The clone prints byte-identically to the original
/// (the compile cache relies on this to hand out private copies of cached IR
/// without a print/parse round trip).
[[nodiscard]] Module clone_module(const Module &module);

/// Deep-copies one operation (with nested regions) into `dst`'s arena,
/// splicing the clone before `before` (nullptr appends). `src` must be
/// self-contained: its operands may only reference values defined inside the
/// cloned subtree (true for func-like ops, which is what the per-pass
/// incremental cache clones). Returns the clone.
Operation *clone_op_into(const Operation &src, Block &dst,
                         Operation *before = nullptr);

}  // namespace everest::ir
