// everest/ir/ir.hpp
//
// Core IR data structures: Value, Operation, Block, Region, Module. This is
// the EVEREST SDK's analogue of MLIR's core IR (paper §V-B): operations carry
// a dialect-qualified name, typed operands/results, an attribute dictionary,
// and nested regions; SSA def-use chains are maintained automatically.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/attributes.hpp"
#include "ir/interner.hpp"
#include "ir/types.hpp"

namespace everest::ir {

class Operation;
class Block;
class Region;

/// An SSA value: either an operation result or a block argument.
class Value {
public:
  Value(Type type, Operation *defining_op, std::size_t index)
      : type_(std::move(type)), defining_op_(defining_op), index_(index) {}
  Value(Type type, Block *owner_block, std::size_t index)
      : type_(std::move(type)), owner_block_(owner_block), index_(index) {}

  Value(const Value &) = delete;
  Value &operator=(const Value &) = delete;

  [[nodiscard]] const Type &type() const { return type_; }
  void set_type(Type t) { type_ = std::move(t); }

  /// The op producing this value, or nullptr for block arguments.
  [[nodiscard]] Operation *defining_op() const { return defining_op_; }
  /// The block owning this argument, or nullptr for op results.
  [[nodiscard]] Block *owner_block() const { return owner_block_; }
  /// Result index or argument index.
  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] bool is_block_argument() const { return owner_block_ != nullptr; }

  /// Operations currently using this value (duplicates per use).
  [[nodiscard]] const std::vector<Operation *> &users() const { return users_; }
  [[nodiscard]] bool has_uses() const { return !users_.empty(); }

private:
  friend class Operation;
  Type type_;
  Operation *defining_op_ = nullptr;
  Block *owner_block_ = nullptr;
  std::size_t index_ = 0;
  std::vector<Operation *> users_;
};

/// A region: an ordered list of blocks owned by an operation.
class Region {
public:
  explicit Region(Operation *parent) : parent_(parent) {}
  Region(const Region &) = delete;
  Region &operator=(const Region &) = delete;

  [[nodiscard]] Operation *parent_op() const { return parent_; }
  [[nodiscard]] bool empty() const { return blocks_.empty(); }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

  /// Appends a new empty block and returns it.
  Block &add_block();

  [[nodiscard]] Block &front() { return *blocks_.front(); }
  [[nodiscard]] const Block &front() const { return *blocks_.front(); }

  [[nodiscard]] std::list<std::unique_ptr<Block>> &blocks() { return blocks_; }
  [[nodiscard]] const std::list<std::unique_ptr<Block>> &blocks() const {
    return blocks_;
  }

private:
  Operation *parent_;
  std::list<std::unique_ptr<Block>> blocks_;
};

/// A basic block: typed arguments plus an ordered operation list.
class Block {
public:
  explicit Block(Region *parent) : parent_(parent) {}
  Block(const Block &) = delete;
  Block &operator=(const Block &) = delete;

  [[nodiscard]] Region *parent_region() const { return parent_; }
  /// Re-parents a block after moving it between regions (parser/transform
  /// internal use).
  void set_parent_region(Region *region) { parent_ = region; }
  /// The operation owning the parent region (nullptr for detached blocks).
  [[nodiscard]] Operation *parent_op() const;

  Value &add_argument(Type type);
  [[nodiscard]] std::size_t num_arguments() const { return arguments_.size(); }
  [[nodiscard]] Value &argument(std::size_t i) { return *arguments_.at(i); }
  [[nodiscard]] const Value &argument(std::size_t i) const {
    return *arguments_.at(i);
  }

  using OpList = std::list<std::unique_ptr<Operation>>;
  [[nodiscard]] OpList &operations() { return ops_; }
  [[nodiscard]] const OpList &operations() const { return ops_; }
  [[nodiscard]] bool empty() const { return ops_.empty(); }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  [[nodiscard]] Operation &front() { return *ops_.front(); }
  [[nodiscard]] Operation &back() { return *ops_.back(); }

  /// Appends `op` and takes ownership.
  Operation &push_back(std::unique_ptr<Operation> op);
  /// Inserts `op` before `pos` and takes ownership.
  Operation &insert(OpList::iterator pos, std::unique_ptr<Operation> op);
  /// Removes `op` from this block and returns ownership (drops its operand uses).
  std::unique_ptr<Operation> take(Operation *op);
  /// Erases `op` (operand use-lists are updated; op must have no used results).
  void erase(Operation *op);

  /// Returns the iterator pointing at `op` within this block.
  OpList::iterator iterator_to(Operation *op);

private:
  Region *parent_;
  std::vector<std::unique_ptr<Value>> arguments_;
  OpList ops_;
};

/// A generic operation. Ops are identified by a "dialect.mnemonic" name and
/// are extensible via attributes and regions; dialects attach verifiers
/// through the Context registry.
class Operation {
public:
  /// Creates a detached operation. Use Block::push_back / OpBuilder to place it.
  static std::unique_ptr<Operation> create(std::string_view name,
                                           std::vector<Value *> operands,
                                           std::vector<Type> result_types,
                                           AttrDict attributes = {},
                                           std::size_t num_regions = 0);
  static std::unique_ptr<Operation> create(Symbol name,
                                           std::vector<Value *> operands,
                                           std::vector<Type> result_types,
                                           AttrDict attributes = {},
                                           std::size_t num_regions = 0);

  ~Operation();
  Operation(const Operation &) = delete;
  Operation &operator=(const Operation &) = delete;

  [[nodiscard]] const std::string &name() const { return name_.str(); }
  /// The interned name: pattern dispatch compares these by pointer.
  [[nodiscard]] Symbol name_symbol() const { return name_; }
  /// Dialect prefix of the name ("ekl" for "ekl.contract"). The split is
  /// computed once when the name is interned; this never allocates.
  [[nodiscard]] std::string_view dialect() const { return name_.dialect(); }
  /// Mnemonic suffix of the name ("contract" for "ekl.contract").
  [[nodiscard]] std::string_view mnemonic() const { return name_.mnemonic(); }

  [[nodiscard]] std::size_t num_operands() const { return operands_.size(); }
  [[nodiscard]] Value *operand(std::size_t i) const { return operands_.at(i); }
  [[nodiscard]] const std::vector<Value *> &operands() const { return operands_; }
  void set_operand(std::size_t i, Value *v);
  void append_operand(Value *v);
  void drop_all_operands();

  [[nodiscard]] std::size_t num_results() const { return results_.size(); }
  [[nodiscard]] Value *result(std::size_t i = 0) {
    return results_.at(i).get();
  }
  [[nodiscard]] const Value *result(std::size_t i = 0) const {
    return results_.at(i).get();
  }

  [[nodiscard]] const AttrDict &attributes() const { return attributes_; }
  void set_attr(std::string_view key, Attribute value) {
    attributes_.set(key, std::move(value));
  }
  void set_attr(Symbol key, Attribute value) {
    attributes_.set(key, std::move(value));
  }
  [[nodiscard]] bool has_attr(std::string_view key) const {
    return attributes_.contains(key);
  }
  /// Returns the attribute or nullptr when absent.
  [[nodiscard]] const Attribute *attr(std::string_view key) const {
    return attributes_.find(key);
  }
  [[nodiscard]] const Attribute *attr(Symbol key) const {
    return attributes_.find(key);
  }
  /// Typed attribute getters with fallback defaults.
  [[nodiscard]] std::int64_t attr_int(std::string_view key,
                                      std::int64_t fallback = 0) const;
  [[nodiscard]] double attr_double(std::string_view key,
                                   double fallback = 0.0) const;
  [[nodiscard]] std::string attr_string(std::string_view key,
                                        std::string fallback = "") const;

  [[nodiscard]] std::size_t num_regions() const { return regions_.size(); }
  [[nodiscard]] Region &region(std::size_t i = 0) { return *regions_.at(i); }
  [[nodiscard]] const Region &region(std::size_t i = 0) const {
    return *regions_.at(i);
  }
  Region &add_region();

  [[nodiscard]] Block *parent_block() const { return parent_; }
  /// The op owning the region this op lives in (nullptr at module level).
  [[nodiscard]] Operation *parent_op() const;

  /// Replaces every use of this op's results with `replacements` (one value
  /// per result).
  void replace_all_uses_with(const std::vector<Value *> &replacements);

  /// Pre-order walk over this op and all nested ops.
  void walk(const std::function<void(Operation &)> &fn);
  void walk(const std::function<void(const Operation &)> &fn) const;

  /// Prints the op in generic textual form (see printer.cpp).
  [[nodiscard]] std::string str() const;

private:
  friend class Block;
  Operation(Symbol name, std::vector<Value *> operands, AttrDict attributes);

  Symbol name_;
  std::vector<Value *> operands_;
  std::vector<std::unique_ptr<Value>> results_;
  AttrDict attributes_;
  std::vector<std::unique_ptr<Region>> regions_;
  Block *parent_ = nullptr;
};

/// The top-level container: an op named "builtin.module" with one region
/// holding one block.
class Module {
public:
  Module();

  [[nodiscard]] Operation &op() { return *op_; }
  [[nodiscard]] const Operation &op() const { return *op_; }
  [[nodiscard]] Block &body() { return op_->region(0).front(); }
  [[nodiscard]] const Block &body() const { return op_->region(0).front(); }

  /// Pre-order walk over all ops in the module (excluding the module op).
  void walk(const std::function<void(Operation &)> &fn);
  void walk(const std::function<void(const Operation &)> &fn) const;

  /// Finds the first op with the given name, or nullptr.
  [[nodiscard]] Operation *find_first(std::string_view name);
  /// Collects all ops with the given name.
  [[nodiscard]] std::vector<Operation *> find_all(std::string_view name);

  /// Total number of ops in the module (excluding the module op itself).
  [[nodiscard]] std::size_t op_count() const;

  /// Prints the whole module in generic textual form.
  [[nodiscard]] std::string str() const;

private:
  std::unique_ptr<Operation> op_;
};

/// Deep-copies a module: fresh operations, values, blocks, and regions with
/// identical structure, names, types, and attributes. The clone prints
/// byte-identically to the original (the compile cache relies on this to
/// hand out private copies of cached IR without a print/parse round trip).
[[nodiscard]] std::shared_ptr<Module> clone_module(const Module &module);

}  // namespace everest::ir
