#include "ir/pass.hpp"

namespace everest::ir {

support::Status Pass::run(Module &, Context &) {
  return support::Status::failure("pass '" + name() +
                                  "' is not module-anchored");
}

support::Status Pass::run_on_func(Operation &, Context &) {
  return support::Status::failure("pass '" + name() +
                                  "' is not func-anchored");
}

std::uint64_t pass_fingerprint(std::string_view pass_name,
                               std::string_view func_text) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&h](std::string_view s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
  };
  mix(pass_name);
  mix("\x1f");
  mix(func_text);
  return h;
}

support::Status PassManager::run_func_pass(Pass &pass, Module &module) {
  // Snapshot the top-level ops: cache hits splice replacements in place and
  // the funcs themselves never move relative to each other.
  std::vector<Operation *> funcs;
  funcs.reserve(module.body().size());
  for (Operation &op : module.body()) funcs.push_back(&op);

  // Serial cache phase: fingerprint each func's pre-pass text, splice in
  // cached post-pass clones on hits, and collect the misses.
  std::vector<Operation *> pending;
  std::vector<std::uint64_t> pending_keys;
  if (pass_cache_ != nullptr) {
    for (Operation *func : funcs) {
      std::uint64_t key = pass_fingerprint(pass.name(), func->str());
      if (const Operation *cached = pass_cache_->lookup(key)) {
        ++cache_stats_.hits;
        Block &body = module.body();
        clone_op_into(*cached, body, func);
        body.erase(func);
      } else {
        ++cache_stats_.misses;
        pending.push_back(func);
        pending_keys.push_back(key);
      }
    }
  } else {
    pending = funcs;
  }

  // Parallel phase: run the pass on every miss. Each invocation only touches
  // IR nested under its func; creation goes through the mutex-guarded module
  // arena, and results merge in index order, so the output is byte-identical
  // to the serial run.
  std::vector<support::Status> statuses = support::parallel_indexed(
      pool_, pending.size(), [&](std::size_t i) -> support::Status {
        return pass.run_on_func(*pending[i], ctx_);
      });
  for (const auto &status : statuses) {
    if (!status.is_ok()) return status;
  }

  // Serial store phase: memoize post-pass forms under the pre-pass keys.
  if (pass_cache_ != nullptr) {
    for (std::size_t i = 0; i < pending.size(); ++i)
      pass_cache_->store(pending_keys[i], *pending[i]);
  }
  return support::Status::ok();
}

support::Status PassManager::run(Module &module) {
  timings_.clear();
  cache_stats_ = {};
  obs::TraceRecorder *recorder =
      recorder_ != nullptr ? recorder_ : obs::global_recorder();
  if (verify_each_) {
    if (auto s = ctx_.verify(module); !s.is_ok()) {
      return support::Status::failure("pre-pipeline verification failed: " +
                                      s.message());
    }
  }
  for (auto &pass : passes_) {
    PassTiming timing;
    timing.name = pass->name();
    timing.ops_before = module.op_count();
    double span_start = recorder != nullptr ? recorder->now_us() : 0.0;
    auto start = std::chrono::steady_clock::now();
    auto result = pass->anchor() == PassAnchor::Func
                      ? run_func_pass(*pass, module)
                      : pass->run(module, ctx_);
    auto stop = std::chrono::steady_clock::now();
    timing.milliseconds =
        std::chrono::duration<double, std::milli>(stop - start).count();
    timing.ops_after = module.op_count();
    timings_.push_back(timing);
    if (recorder != nullptr) {
      obs::TraceEvent event;
      event.name = "pass:" + timing.name;
      event.category = "ir.pass";
      event.track = "pass-manager";
      event.start_us = span_start;
      event.duration_us = timing.milliseconds * 1000.0;
      event.args.emplace_back("ops_before", std::to_string(timing.ops_before));
      event.args.emplace_back("ops_after", std::to_string(timing.ops_after));
      recorder->record(std::move(event));
    }
    if (!result.is_ok()) {
      return support::Status::failure("pass '" + pass->name() +
                                      "' failed: " + result.message());
    }
    if (verify_each_) {
      if (auto s = ctx_.verify(module); !s.is_ok()) {
        return support::Status::failure("verification failed after pass '" +
                                        pass->name() + "': " + s.message());
      }
    }
  }
  if (recorder != nullptr) {
    // Storage telemetry next to the ir.rewrite.* counters: how much arena
    // the pipeline left behind and how many use-list slots it allocated.
    Arena::Stats stats = module.arena().stats();
    recorder->gauge("ir.arena.slabs").set(static_cast<double>(stats.slabs));
    recorder->gauge("ir.arena.bytes")
        .set(static_cast<double>(stats.bytes_used));
    recorder->gauge("ir.arena.high_water")
        .set(static_cast<double>(stats.high_water));
    recorder->gauge("ir.uselist.nodes")
        .set(static_cast<double>(stats.use_nodes));
  }
  return support::Status::ok();
}

}  // namespace everest::ir
