#include "ir/pass.hpp"

namespace everest::ir {

support::Status PassManager::run(Module &module) {
  timings_.clear();
  obs::TraceRecorder *recorder =
      recorder_ != nullptr ? recorder_ : obs::global_recorder();
  if (verify_each_) {
    if (auto s = ctx_.verify(module); !s.is_ok()) {
      return support::Status::failure("pre-pipeline verification failed: " +
                                      s.message());
    }
  }
  for (auto &pass : passes_) {
    PassTiming timing;
    timing.name = pass->name();
    timing.ops_before = module.op_count();
    double span_start = recorder != nullptr ? recorder->now_us() : 0.0;
    auto start = std::chrono::steady_clock::now();
    auto result = pass->run(module, ctx_);
    auto stop = std::chrono::steady_clock::now();
    timing.milliseconds =
        std::chrono::duration<double, std::milli>(stop - start).count();
    timing.ops_after = module.op_count();
    timings_.push_back(timing);
    if (recorder != nullptr) {
      obs::TraceEvent event;
      event.name = "pass:" + timing.name;
      event.category = "ir.pass";
      event.track = "pass-manager";
      event.start_us = span_start;
      event.duration_us = timing.milliseconds * 1000.0;
      event.args.emplace_back("ops_before", std::to_string(timing.ops_before));
      event.args.emplace_back("ops_after", std::to_string(timing.ops_after));
      recorder->record(std::move(event));
    }
    if (!result.is_ok()) {
      return support::Status::failure("pass '" + pass->name() +
                                      "' failed: " + result.message());
    }
    if (verify_each_) {
      if (auto s = ctx_.verify(module); !s.is_ok()) {
        return support::Status::failure("verification failed after pass '" +
                                        pass->name() + "': " + s.message());
      }
    }
  }
  return support::Status::ok();
}

}  // namespace everest::ir
