#include "ir/parser.hpp"

#include <cctype>
#include <map>
#include <vector>

#include "support/strings.hpp"

namespace everest::ir {

namespace {

using support::Error;
using support::Expected;

/// Character cursor with the small set of lexical helpers the generic form
/// needs.
class Cursor {
public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  [[nodiscard]] char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    skip_ws();
    if (text_.substr(pos_, word.size()) == word) {
      std::size_t after = pos_ + word.size();
      if (after >= text_.size() ||
          !std::isalnum(static_cast<unsigned char>(text_[after]))) {
        pos_ = after;
        return true;
      }
    }
    return false;
  }

  bool consume_arrow() {
    skip_ws();
    if (text_.substr(pos_, 2) == "->") {
      pos_ += 2;
      return true;
    }
    return false;
  }

  /// Reads an identifier-like token (%name, ^name, or bare ident).
  Expected<std::string> read_name(char sigil) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != sigil)
      return fail(std::string("expected '") + sigil + "'");
    std::size_t start = pos_++;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.')
        ++pos_;
      else
        break;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Expected<std::string> read_quoted() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"')
      return fail("expected quoted string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;
    return out;
  }

  /// Reads balanced text from `open` to matching `close`, excluding the
  /// delimiters. Respects quoted strings.
  Expected<std::string> read_balanced(char open, char close) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != open)
      return fail(std::string("expected '") + open + "'");
    ++pos_;
    std::size_t start = pos_;
    int depth = 1;
    bool in_string = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (in_string) {
        if (c == '\\') ++pos_;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == open) {
        ++depth;
      } else if (c == close) {
        if (--depth == 0) {
          std::string out(text_.substr(start, pos_ - start));
          ++pos_;
          return out;
        }
      }
      ++pos_;
    }
    return fail("unbalanced delimiters");
  }

  /// Reads one type token: either "(...)"-grouped or a single type possibly
  /// containing balanced <>.
  Expected<std::string> read_type_token() {
    skip_ws();
    std::size_t start = pos_;
    int angle = 0;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '<') ++angle;
      else if (c == '>') --angle;
      else if (angle == 0 &&
               (std::isspace(static_cast<unsigned char>(c)) || c == ',' ||
                c == ')' || c == '}'))
        break;
      ++pos_;
    }
    if (pos_ == start) return fail("expected a type");
    return std::string(text_.substr(start, pos_ - start));
  }

  Error fail(const std::string &msg) {
    // Report a short context window around the failure position.
    std::size_t lo = pos_ > 24 ? pos_ - 24 : 0;
    std::string ctx(text_.substr(lo, 48));
    return Error::make("ir parser: " + msg + " near '...'" + ctx + "'");
  }

private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

class ModuleParser {
public:
  explicit ModuleParser(std::string_view text) : cur_(text) {}

  Expected<std::shared_ptr<Module>> run() {
    auto module = std::make_shared<Module>();
    if (!cur_.consume_word("module")) return fail("expected 'module'");
    if (!cur_.consume('{')) return fail("expected '{' after module");
    while (cur_.peek() != '}') {
      if (auto s = parse_op(module->body()); !s) return s.error();
    }
    cur_.consume('}');
    if (!cur_.at_end()) return fail("trailing text after module");
    return module;
  }

private:
  Error fail(const std::string &msg) { return cur_.fail(msg); }

  Expected<bool> parse_op(Block &block) {
    // Optional results: "%0, %1 = ".
    std::vector<std::string> result_names;
    if (cur_.peek() == '%') {
      while (true) {
        auto name = cur_.read_name('%');
        if (!name) return name.error();
        result_names.push_back(*name);
        if (!cur_.consume(',')) break;
      }
      if (!cur_.consume('=')) return fail("expected '=' after results");
    }

    auto op_name = cur_.read_quoted();
    if (!op_name) return op_name.error();

    if (!cur_.consume('(')) return fail("expected '(' for operands");
    std::vector<Value *> operands;
    if (cur_.peek() != ')') {
      while (true) {
        auto name = cur_.read_name('%');
        if (!name) return name.error();
        auto it = values_.find(*name);
        if (it == values_.end())
          return Error::make("ir parser: use of undefined value " + *name);
        operands.push_back(it->second);
        if (!cur_.consume(',')) break;
      }
    }
    if (!cur_.consume(')')) return fail("expected ')' after operands");

    // Create the op now (result types are appended after parsing the
    // signature via add_result); regions are parsed directly into it. The
    // result count is already known from the lhs names, so the inline
    // storage is sized exactly and add_result never spills.
    Operation *op = Operation::create_with_capacity(
        block.arena(), Symbol(*op_name), {}, operands.size(),
        result_names.size(), 0);
    for (Value *v : operands) op->append_operand(v);
    block.attach(op);

    // Optional regions: " ({ ... }, { ... })".
    if (cur_.peek() == '(') {
      // Could also be nothing else: in generic form '(' here always means
      // regions since the signature starts with ':'.
      cur_.consume('(');
      while (true) {
        if (auto s = parse_region(op->add_region()); !s) return s.error();
        if (!cur_.consume(',')) break;
      }
      if (!cur_.consume(')')) return fail("expected ')' after regions");
    }

    // Optional attribute dictionary.
    if (cur_.peek() == '{') {
      auto body = cur_.read_balanced('{', '}');
      if (!body) return body.error();
      if (auto s = parse_attr_dict(*body, *op); !s.is_ok())
        return Error::make(s.message());
    }

    if (!cur_.consume(':')) return fail("expected ':' before signature");
    auto operand_types = cur_.read_balanced('(', ')');
    if (!operand_types) return operand_types.error();
    if (!cur_.consume_arrow()) return fail("expected '->'");

    std::vector<Type> result_types;
    if (cur_.peek() == '(') {
      auto grouped = cur_.read_balanced('(', ')');
      if (!grouped) return grouped.error();
      if (auto s = parse_type_list(*grouped, result_types); !s.is_ok())
        return Error::make(s.message());
    } else {
      auto token = cur_.read_type_token();
      if (!token) return token.error();
      auto t = Type::parse(*token);
      if (!t) return t.error();
      result_types.push_back(std::move(*t));
    }

    if (result_types.size() != result_names.size())
      return fail("result name/type count mismatch for op " + *op_name);

    // Results become known only now; append them in place (arena values are
    // pointer-stable, so no rebuild or region shuffling is needed).
    for (std::size_t i = 0; i < result_types.size(); ++i)
      values_[result_names[i]] = op->add_result(std::move(result_types[i]));
    return true;
  }

  Expected<bool> parse_region(Region &region) {
    if (!cur_.consume('{')) return fail("expected '{' for region");
    while (cur_.peek() != '}') {
      if (cur_.peek() == '^') {
        if (auto s = parse_block_header(region); !s) return s;
      } else {
        if (region.empty()) region.add_block();
        if (auto s = parse_op(region.back()); !s) return s;
      }
    }
    cur_.consume('}');
    return true;
  }

  Expected<bool> parse_block_header(Region &region) {
    auto label = cur_.read_name('^');
    if (!label) return label.error();
    Block &block = region.add_block();
    if (cur_.peek() == '(') {
      cur_.consume('(');
      while (cur_.peek() != ')') {
        auto name = cur_.read_name('%');
        if (!name) return name.error();
        if (!cur_.consume(':')) return fail("expected ':' after block arg");
        auto token = cur_.read_type_token();
        if (!token) return token.error();
        auto t = Type::parse(*token);
        if (!t) return t.error();
        Value &arg = block.add_argument(std::move(*t));
        values_[*name] = &arg;
        cur_.consume(',');
      }
      cur_.consume(')');
    }
    if (!cur_.consume(':')) return fail("expected ':' after block label");
    return true;
  }

  static support::Status parse_type_list(std::string_view body,
                                         std::vector<Type> &out) {
    body = support::trim(body);
    if (body.empty()) return support::Status::ok();
    int angle = 0;
    std::string cur;
    auto flush = [&]() -> support::Status {
      auto t = Type::parse(cur);
      if (!t) return support::Status::failure(t.error().message);
      out.push_back(std::move(*t));
      cur.clear();
      return support::Status::ok();
    };
    for (char c : body) {
      if (c == '<') ++angle;
      if (c == '>') --angle;
      if (c == ',' && angle == 0) {
        if (auto s = flush(); !s.is_ok()) return s;
      } else {
        cur += c;
      }
    }
    if (!support::trim(cur).empty()) return flush();
    return support::Status::ok();
  }

  static support::Status parse_attr_dict(std::string_view body, Operation &op) {
    // Split at top-level commas respecting [], <>, and strings.
    std::vector<std::string> items;
    int depth = 0;
    bool in_string = false;
    std::string cur;
    for (std::size_t i = 0; i < body.size(); ++i) {
      char c = body[i];
      if (in_string) {
        cur += c;
        if (c == '\\' && i + 1 < body.size()) cur += body[++i];
        else if (c == '"') in_string = false;
        continue;
      }
      if (c == '"') {
        in_string = true;
        cur += c;
        continue;
      }
      if (c == '[' || c == '<' || c == '{') ++depth;
      if (c == ']' || c == '>' || c == '}') --depth;
      if (c == ',' && depth == 0) {
        items.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!support::trim(cur).empty()) items.push_back(cur);

    for (const auto &item : items) {
      auto eq = item.find('=');
      if (eq == std::string::npos) {
        // Unit attribute: bare key.
        op.set_attr(std::string(support::trim(item)), Attribute());
        continue;
      }
      std::string key(support::trim(item.substr(0, eq)));
      auto value = Attribute::parse(item.substr(eq + 1));
      if (!value) return support::Status::failure(value.error().message);
      op.set_attr(key, std::move(*value));
    }
    return support::Status::ok();
  }

  Cursor cur_;
  std::map<std::string, Value *> values_;
};

}  // namespace

Expected<std::shared_ptr<Module>> parse_module(std::string_view text) {
  return ModuleParser(text).run();
}

}  // namespace everest::ir
