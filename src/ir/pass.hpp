// everest/ir/pass.hpp
//
// Pass infrastructure: a pipeline of anchored passes composed in a
// PassManager that verifies the module between passes and records per-pass
// timing (the Fig. 5 bench reports these timings per lowering path).
//
// Anchoring (paper §V-B; MLIR-lineage pass managers work the same way):
//  - Module-scoped passes see the whole module and run serially.
//  - Func-scoped passes run once per top-level op of the module body and may
//    only mutate IR nested under that op. The pass manager fans them out on
//    a support::ThreadPool; because each invocation is confined to its own
//    func and ops are created on the (mutex-guarded) module arena, the
//    parallel run is byte-identical to the serial one.
//
// Func-scoped passes can additionally be memoized through a PassCache: the
// pre-pass func text is fingerprinted per pass, and on a hit the cached
// post-pass func is cloned in instead of re-running the pass — so a
// one-kernel edit re-runs only that kernel's passes.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/dialect.hpp"
#include "ir/ir.hpp"
#include "obs/trace.hpp"
#include "support/expected.hpp"
#include "support/thread_pool.hpp"

namespace everest::ir {

/// Where a pass is anchored: the whole module, or each top-level func-like
/// op of the module body.
enum class PassAnchor { Module, Func };

/// A transformation with a name and an anchor. Module-anchored passes
/// override `run`; func-anchored passes override `run_on_func`.
class Pass {
public:
  explicit Pass(std::string name, PassAnchor anchor = PassAnchor::Module)
      : name_(std::move(name)), anchor_(anchor) {}
  virtual ~Pass() = default;

  [[nodiscard]] const std::string &name() const { return name_; }
  [[nodiscard]] PassAnchor anchor() const { return anchor_; }

  /// Module-anchored entry point.
  virtual support::Status run(Module &module, Context &ctx);
  /// Func-anchored entry point. Must only mutate IR nested under `func`
  /// (the pass manager may invoke it from worker threads).
  virtual support::Status run_on_func(Operation &func, Context &ctx);

private:
  std::string name_;
  PassAnchor anchor_;
};

/// Adapts a plain function into a module-anchored Pass.
class LambdaPass final : public Pass {
public:
  using Fn = std::function<support::Status(Module &, Context &)>;
  LambdaPass(std::string name, Fn fn)
      : Pass(std::move(name), PassAnchor::Module), fn_(std::move(fn)) {}
  support::Status run(Module &module, Context &ctx) override {
    return fn_(module, ctx);
  }

private:
  Fn fn_;
};

/// Adapts a plain function into a func-anchored Pass.
class LambdaFuncPass final : public Pass {
public:
  using Fn = std::function<support::Status(Operation &, Context &)>;
  LambdaFuncPass(std::string name, Fn fn)
      : Pass(std::move(name), PassAnchor::Func), fn_(std::move(fn)) {}
  support::Status run_on_func(Operation &func, Context &ctx) override {
    return fn_(func, ctx);
  }

private:
  Fn fn_;
};

/// Timing record for one executed pass.
struct PassTiming {
  std::string name;
  double milliseconds = 0.0;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
};

/// Incremental memo for func-anchored passes, keyed by
/// `pass_fingerprint(pass name, pre-pass func text)`. Implementations must
/// be thread-compatible with the pass manager's serial lookup/store phases
/// and safe to share across pass managers (sdk::CompileCache provides the
/// production implementation; it locks internally). A returned op pointer
/// stays valid until the next `store`/eviction on the same cache.
class PassCache {
public:
  virtual ~PassCache() = default;
  /// The cached post-pass func for `key`, or nullptr on miss.
  virtual const Operation *lookup(std::uint64_t key) = 0;
  /// Memoizes the post-pass func under `key` (the implementation clones).
  virtual void store(std::uint64_t key, const Operation &func) = 0;
};

/// FNV-1a fingerprint binding a pass name to a func's printed form.
[[nodiscard]] std::uint64_t pass_fingerprint(std::string_view pass_name,
                                             std::string_view func_text);

/// Runs a pipeline of anchored passes with inter-pass verification.
class PassManager {
public:
  explicit PassManager(Context &ctx, bool verify_each = true)
      : ctx_(ctx), verify_each_(verify_each) {}

  void add_pass(std::unique_ptr<Pass> pass) {
    passes_.push_back(std::move(pass));
  }
  /// Module-anchored lambda pass.
  void add_pass(std::string name, LambdaPass::Fn fn) {
    passes_.push_back(
        std::make_unique<LambdaPass>(std::move(name), std::move(fn)));
  }
  /// Func-anchored lambda pass.
  void add_func_pass(std::string name, LambdaFuncPass::Fn fn) {
    passes_.push_back(
        std::make_unique<LambdaFuncPass>(std::move(name), std::move(fn)));
  }

  [[nodiscard]] std::size_t size() const { return passes_.size(); }

  /// Mirrors per-pass timings as trace spans (category "ir.pass", track
  /// "pass-manager") on `recorder`. Falls back to the global recorder when
  /// none is attached; spans are skipped when neither exists.
  void attach_recorder(obs::TraceRecorder *recorder) { recorder_ = recorder; }

  /// Fans func-anchored passes out across `pool` (nullptr or a one-worker
  /// pool runs them inline). Output is byte-identical either way.
  void set_thread_pool(support::ThreadPool *pool) { pool_ = pool; }

  /// Attaches the per-pass incremental cache used for func-anchored passes.
  void set_pass_cache(PassCache *cache) { pass_cache_ = cache; }

  /// Runs all passes in order; stops at the first failure. When verification
  /// is enabled, a verifier failure after pass P reports P by name.
  support::Status run(Module &module);

  [[nodiscard]] const std::vector<PassTiming> &timings() const {
    return timings_;
  }

  /// Per-run func-pass cache traffic (both zero when no cache is attached).
  struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
  };
  [[nodiscard]] const CacheStats &cache_stats() const { return cache_stats_; }

private:
  support::Status run_func_pass(Pass &pass, Module &module);

  Context &ctx_;
  bool verify_each_;
  obs::TraceRecorder *recorder_ = nullptr;
  support::ThreadPool *pool_ = nullptr;
  PassCache *pass_cache_ = nullptr;
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<PassTiming> timings_;
  CacheStats cache_stats_;
};

}  // namespace everest::ir
