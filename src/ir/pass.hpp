// everest/ir/pass.hpp
//
// Pass infrastructure: named module passes composed in a PassManager that
// verifies the module between passes and records per-pass timing (the
// Fig. 5 bench reports these timings per lowering path).
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/dialect.hpp"
#include "ir/ir.hpp"
#include "obs/trace.hpp"
#include "support/expected.hpp"

namespace everest::ir {

/// A module-level transformation.
class Pass {
public:
  explicit Pass(std::string name) : name_(std::move(name)) {}
  virtual ~Pass() = default;

  [[nodiscard]] const std::string &name() const { return name_; }
  virtual support::Status run(Module &module, Context &ctx) = 0;

private:
  std::string name_;
};

/// Adapts a plain function into a Pass.
class LambdaPass final : public Pass {
public:
  using Fn = std::function<support::Status(Module &, Context &)>;
  LambdaPass(std::string name, Fn fn) : Pass(std::move(name)), fn_(std::move(fn)) {}
  support::Status run(Module &module, Context &ctx) override {
    return fn_(module, ctx);
  }

private:
  Fn fn_;
};

/// Timing record for one executed pass.
struct PassTiming {
  std::string name;
  double milliseconds = 0.0;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
};

/// Runs a pipeline of passes with inter-pass verification.
class PassManager {
public:
  explicit PassManager(Context &ctx, bool verify_each = true)
      : ctx_(ctx), verify_each_(verify_each) {}

  void add_pass(std::unique_ptr<Pass> pass) {
    passes_.push_back(std::move(pass));
  }
  void add_pass(std::string name, LambdaPass::Fn fn) {
    passes_.push_back(
        std::make_unique<LambdaPass>(std::move(name), std::move(fn)));
  }

  [[nodiscard]] std::size_t size() const { return passes_.size(); }

  /// Mirrors per-pass timings as trace spans (category "ir.pass", track
  /// "pass-manager") on `recorder`. Falls back to the global recorder when
  /// none is attached; spans are skipped when neither exists.
  void attach_recorder(obs::TraceRecorder *recorder) { recorder_ = recorder; }

  /// Runs all passes in order; stops at the first failure. When verification
  /// is enabled, a verifier failure after pass P reports P by name.
  support::Status run(Module &module);

  [[nodiscard]] const std::vector<PassTiming> &timings() const {
    return timings_;
  }

private:
  Context &ctx_;
  bool verify_each_;
  obs::TraceRecorder *recorder_ = nullptr;
  std::vector<std::unique_ptr<Pass>> passes_;
  std::vector<PassTiming> timings_;
};

}  // namespace everest::ir
