#include "ir/types.hpp"

#include <cstdlib>

#include "support/strings.hpp"

namespace everest::ir {

Type Type::none() { return Type(); }

Type Type::integer(int width) {
  Type t;
  t.kind_ = Kind::Integer;
  t.width_ = width;
  return t;
}

Type Type::floating(int width) {
  Type t;
  t.kind_ = Kind::Float;
  t.width_ = width;
  return t;
}

Type Type::index() {
  Type t;
  t.kind_ = Kind::Index;
  return t;
}

Type Type::tensor(std::vector<std::int64_t> dims, Type element) {
  auto payload = std::make_shared<Payload>();
  payload->dims = std::move(dims);
  payload->element = std::make_shared<const Type>(std::move(element));
  Type t;
  t.kind_ = Kind::Tensor;
  t.payload_ = std::move(payload);
  return t;
}

Type Type::custom(std::string dialect, std::string name,
                  std::vector<std::string> params) {
  auto payload = std::make_shared<Payload>();
  payload->dialect = std::move(dialect);
  payload->name = std::move(name);
  payload->params = std::move(params);
  Type t;
  t.kind_ = Kind::Custom;
  t.payload_ = std::move(payload);
  return t;
}

namespace {

/// Statics returned for payload-less kinds so the reference-returning
/// accessors keep their signatures after the COW-payload change.
const std::vector<std::int64_t> &empty_dims() {
  static const std::vector<std::int64_t> empty;
  return empty;
}
const std::string &empty_string() {
  static const std::string empty;
  return empty;
}
const std::vector<std::string> &empty_params() {
  static const std::vector<std::string> empty;
  return empty;
}

}  // namespace

const std::vector<std::int64_t> &Type::dims() const {
  return payload_ ? payload_->dims : empty_dims();
}

const std::string &Type::dialect() const {
  return payload_ ? payload_->dialect : empty_string();
}

const std::string &Type::name() const {
  return payload_ ? payload_->name : empty_string();
}

const std::vector<std::string> &Type::params() const {
  return payload_ ? payload_->params : empty_params();
}

Type Type::element() const {
  return payload_ && payload_->element ? *payload_->element : Type();
}

std::int64_t Type::num_elements() const {
  if (!is_tensor()) return 1;
  std::int64_t n = 1;
  for (auto d : dims()) {
    if (d < 0) return -1;
    n *= d;
  }
  return n;
}

bool Type::operator==(const Type &other) const {
  if (kind_ != other.kind_) return false;
  if (payload_ == other.payload_) return width_ == other.width_;
  switch (kind_) {
    case Kind::None:
    case Kind::Index:
      return true;
    case Kind::Integer:
    case Kind::Float:
      return width_ == other.width_;
    case Kind::Tensor:
      return dims() == other.dims() && element() == other.element();
    case Kind::Custom:
      return dialect() == other.dialect() && name() == other.name() &&
             params() == other.params();
  }
  return false;
}

std::string Type::str() const {
  switch (kind_) {
    case Kind::None:
      return "none";
    case Kind::Integer:
      return "i" + std::to_string(width_);
    case Kind::Float:
      return "f" + std::to_string(width_);
    case Kind::Index:
      return "index";
    case Kind::Tensor: {
      std::string out = "tensor<";
      for (auto d : dims()) {
        out += d < 0 ? std::string("?") : std::to_string(d);
        out += 'x';
      }
      out += element().str();
      out += '>';
      return out;
    }
    case Kind::Custom: {
      std::string out = "!" + dialect() + "." + name();
      if (!params().empty()) {
        out += '<';
        out += support::join(params(), ",");
        out += '>';
      }
      return out;
    }
  }
  return "none";
}

namespace {

/// Splits "<...>" parameter text at top-level commas (angle brackets nest).
std::vector<std::string> split_params(std::string_view body) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : body) {
    if (c == '<') ++depth;
    if (c == '>') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(std::string(support::trim(cur)));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!support::trim(cur).empty() || !out.empty())
    out.push_back(std::string(support::trim(cur)));
  return out;
}

}  // namespace

support::Expected<Type> Type::parse(std::string_view text) {
  text = support::trim(text);
  if (text.empty()) return support::Error::make("type: empty text");
  if (text == "none") return Type::none();
  if (text == "index") return Type::index();

  if (text[0] == 'i' || text[0] == 'f') {
    std::string width_text(text.substr(1));
    if (!width_text.empty()) {
      char *end = nullptr;
      long w = std::strtol(width_text.c_str(), &end, 10);
      if (end && *end == '\0' && w > 0 && w <= 128) {
        return text[0] == 'i' ? Type::integer(static_cast<int>(w))
                              : Type::floating(static_cast<int>(w));
      }
    }
  }

  if (support::starts_with(text, "tensor<") && text.back() == '>') {
    std::string_view body = text.substr(7, text.size() - 8);
    // Dimensions are 'x'-separated; the trailing component is the element
    // type, which may itself contain 'x' only inside tensor<> (not allowed
    // nested here) — find last 'x' that ends a digit/? run.
    std::vector<std::int64_t> dims;
    std::size_t pos = 0;
    while (true) {
      std::size_t x = body.find('x', pos);
      if (x == std::string_view::npos) break;
      std::string_view tok = support::trim(body.substr(pos, x - pos));
      bool numeric = !tok.empty();
      for (char c : tok) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '?')
          numeric = false;
      }
      if (!numeric) break;
      dims.push_back(tok == "?" ? -1 : std::strtoll(std::string(tok).c_str(),
                                                    nullptr, 10));
      pos = x + 1;
    }
    auto elem = Type::parse(body.substr(pos));
    if (!elem) return elem;
    return Type::tensor(std::move(dims), std::move(*elem));
  }

  if (text[0] == '!') {
    std::string_view rest = text.substr(1);
    std::vector<std::string> params;
    std::size_t angle = rest.find('<');
    std::string_view qual = rest;
    if (angle != std::string_view::npos) {
      if (rest.back() != '>')
        return support::Error::make("type: unterminated custom params");
      params = split_params(rest.substr(angle + 1, rest.size() - angle - 2));
      qual = rest.substr(0, angle);
    }
    std::size_t dot = qual.find('.');
    if (dot == std::string_view::npos)
      return support::Error::make("type: custom type needs dialect.name");
    return Type::custom(std::string(qual.substr(0, dot)),
                        std::string(qual.substr(dot + 1)), std::move(params));
  }

  return support::Error::make("type: cannot parse '" + std::string(text) + "'");
}

}  // namespace everest::ir
