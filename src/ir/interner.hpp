// everest/ir/interner.hpp
//
// Identifier interning for the IR mid-end. Operation names, pattern root
// names, and attribute keys occur millions of times per compile but draw
// from a tiny vocabulary ("arith.addf", "value", ...). The interner uniques
// each spelling once, process-wide, so identity checks are pointer compares
// and the dialect/mnemonic split of an op name is computed exactly once.
//
// Entries live for the lifetime of the process (an IR module may outlive
// every Context — the compile cache hands clones across threads — so symbol
// storage cannot be tied to any one context). Context::interner() exposes
// the shared instance; all access is thread-safe.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace everest::ir {

namespace detail {

/// One uniqued identifier. `dialect`/`mnemonic` are the halves around the
/// first '.' (dialect empty and mnemonic == text when there is no dot),
/// precomputed at intern time so Operation::dialect()/mnemonic() never
/// allocate or re-scan.
struct InternEntry {
  std::string text;
  std::string_view dialect;
  std::string_view mnemonic;
};

/// Uniques `text`; returns a pointer that is stable for the process
/// lifetime and equal for equal spellings. Thread-safe.
const InternEntry *intern(std::string_view text);

/// The entry for "" (used by default-constructed Symbols).
const InternEntry *empty_entry();

}  // namespace detail

/// A uniqued identifier: a thin pointer into the interner. Equality is a
/// pointer compare; ordering (for sorted containers / deterministic
/// printing) compares the underlying strings.
class Symbol {
public:
  /// The empty symbol.
  Symbol() : entry_(detail::empty_entry()) {}
  /// Interns `text` (explicit: interning takes a lock on first sight).
  explicit Symbol(std::string_view text) : entry_(detail::intern(text)) {}

  [[nodiscard]] const std::string &str() const { return entry_->text; }
  [[nodiscard]] std::string_view view() const { return entry_->text; }
  /// Prefix before the first '.' (empty when there is none).
  [[nodiscard]] std::string_view dialect() const { return entry_->dialect; }
  /// Suffix after the first '.' (the whole text when there is no '.').
  [[nodiscard]] std::string_view mnemonic() const { return entry_->mnemonic; }
  [[nodiscard]] bool empty() const { return entry_->text.empty(); }

  friend bool operator==(Symbol a, Symbol b) { return a.entry_ == b.entry_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.entry_ != b.entry_; }
  friend bool operator<(Symbol a, Symbol b) {
    return a.entry_ != b.entry_ && a.entry_->text < b.entry_->text;
  }

  /// Stable pointer identity (hash key for pattern dispatch tables).
  [[nodiscard]] const void *id() const { return entry_; }

private:
  const detail::InternEntry *entry_;
};

struct SymbolHash {
  std::size_t operator()(Symbol s) const noexcept {
    return std::hash<const void *>()(s.id());
  }
};

/// The process-wide interner. Exposed as an object (rather than free
/// functions only) so Context can hand it out and tests can observe growth.
class Interner {
public:
  static Interner &global();

  Symbol intern(std::string_view text) { return Symbol(text); }
  /// Number of distinct identifiers interned so far.
  [[nodiscard]] std::size_t size() const;

private:
  Interner() = default;
};

}  // namespace everest::ir
