#include "ir/ir.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

namespace everest::ir {

// -------------------------------------------------------------------- Region

Block &Region::add_block() {
  blocks_.push_back(std::make_unique<Block>(this));
  return *blocks_.back();
}

// --------------------------------------------------------------------- Block

Operation *Block::parent_op() const {
  return parent_ ? parent_->parent_op() : nullptr;
}

Value &Block::add_argument(Type type) {
  arguments_.push_back(
      std::make_unique<Value>(std::move(type), this, arguments_.size()));
  return *arguments_.back();
}

Operation &Block::push_back(std::unique_ptr<Operation> op) {
  op->parent_ = this;
  ops_.push_back(std::move(op));
  return *ops_.back();
}

Operation &Block::insert(OpList::iterator pos, std::unique_ptr<Operation> op) {
  op->parent_ = this;
  auto it = ops_.insert(pos, std::move(op));
  return **it;
}

Block::OpList::iterator Block::iterator_to(Operation *op) {
  return std::find_if(ops_.begin(), ops_.end(),
                      [&](const std::unique_ptr<Operation> &p) {
                        return p.get() == op;
                      });
}

std::unique_ptr<Operation> Block::take(Operation *op) {
  auto it = iterator_to(op);
  if (it == ops_.end())
    throw std::logic_error("block: op not found in take()");
  std::unique_ptr<Operation> owned = std::move(*it);
  ops_.erase(it);
  owned->parent_ = nullptr;
  return owned;
}

void Block::erase(Operation *op) {
  auto owned = take(op);
  owned->drop_all_operands();
  // owned destructor runs here; result values must be unused by now.
}

// ----------------------------------------------------------------- Operation

Operation::Operation(Symbol name, std::vector<Value *> operands,
                     AttrDict attributes)
    : name_(name),
      operands_(std::move(operands)),
      attributes_(std::move(attributes)) {}

std::unique_ptr<Operation> Operation::create(std::string_view name,
                                             std::vector<Value *> operands,
                                             std::vector<Type> result_types,
                                             AttrDict attributes,
                                             std::size_t num_regions) {
  return create(Symbol(name), std::move(operands), std::move(result_types),
                std::move(attributes), num_regions);
}

std::unique_ptr<Operation> Operation::create(Symbol name,
                                             std::vector<Value *> operands,
                                             std::vector<Type> result_types,
                                             AttrDict attributes,
                                             std::size_t num_regions) {
  auto op = std::unique_ptr<Operation>(
      new Operation(name, std::move(operands), std::move(attributes)));
  for (Value *v : op->operands_) {
    assert(v != nullptr && "null operand");
    v->users_.push_back(op.get());
  }
  op->results_.reserve(result_types.size());
  for (std::size_t i = 0; i < result_types.size(); ++i) {
    op->results_.push_back(
        std::make_unique<Value>(std::move(result_types[i]), op.get(), i));
  }
  for (std::size_t i = 0; i < num_regions; ++i) op->add_region();
  return op;
}

Operation::~Operation() = default;

namespace {

void remove_one_use(Value *v, Operation *user) {
  auto &users = const_cast<std::vector<Operation *> &>(v->users());
  auto it = std::find(users.begin(), users.end(), user);
  if (it != users.end()) users.erase(it);
}

}  // namespace

void Operation::set_operand(std::size_t i, Value *v) {
  Value *old = operands_.at(i);
  if (old == v) return;
  remove_one_use(old, this);
  operands_[i] = v;
  const_cast<std::vector<Operation *> &>(v->users()).push_back(this);
}

void Operation::append_operand(Value *v) {
  operands_.push_back(v);
  const_cast<std::vector<Operation *> &>(v->users()).push_back(this);
}

void Operation::drop_all_operands() {
  for (Value *v : operands_) remove_one_use(v, this);
  operands_.clear();
}

std::int64_t Operation::attr_int(std::string_view key,
                                 std::int64_t fallback) const {
  const Attribute *a = attr(key);
  return a && a->is_int() ? a->as_int() : fallback;
}

double Operation::attr_double(std::string_view key, double fallback) const {
  const Attribute *a = attr(key);
  if (!a) return fallback;
  if (a->is_double() || a->is_int()) return a->as_double();
  return fallback;
}

std::string Operation::attr_string(std::string_view key,
                                   std::string fallback) const {
  const Attribute *a = attr(key);
  return a && a->is_string() ? a->as_string() : fallback;
}

Region &Operation::add_region() {
  regions_.push_back(std::make_unique<Region>(this));
  return *regions_.back();
}

Operation *Operation::parent_op() const {
  return parent_ ? parent_->parent_op() : nullptr;
}

void Operation::replace_all_uses_with(const std::vector<Value *> &replacements) {
  if (replacements.size() != results_.size())
    throw std::invalid_argument("replace_all_uses_with: result count mismatch");
  for (std::size_t r = 0; r < results_.size(); ++r) {
    Value *from = results_[r].get();
    Value *to = replacements[r];
    // Snapshot users: set_operand mutates the use list.
    std::vector<Operation *> users = from->users();
    for (Operation *user : users) {
      for (std::size_t i = 0; i < user->num_operands(); ++i) {
        if (user->operand(i) == from) user->set_operand(i, to);
      }
    }
  }
}

void Operation::walk(const std::function<void(Operation &)> &fn) {
  fn(*this);
  for (auto &region : regions_) {
    for (auto &block : region->blocks()) {
      // Snapshot pointers: fn may erase/modify the list it's iterating.
      std::vector<Operation *> ops;
      ops.reserve(block->operations().size());
      for (auto &op : block->operations()) ops.push_back(op.get());
      for (Operation *op : ops) op->walk(fn);
    }
  }
}

void Operation::walk(const std::function<void(const Operation &)> &fn) const {
  fn(*this);
  for (const auto &region : regions_) {
    for (const auto &block : region->blocks()) {
      for (const auto &op : block->operations()) {
        static_cast<const Operation *>(op.get())->walk(fn);
      }
    }
  }
}

// -------------------------------------------------------------------- Module

Module::Module() {
  op_ = Operation::create("builtin.module", {}, {}, {}, 1);
  op_->region(0).add_block();
}

void Module::walk(const std::function<void(Operation &)> &fn) {
  // Walk children only, not the module op itself.
  std::vector<Operation *> ops;
  for (auto &op : body().operations()) ops.push_back(op.get());
  for (Operation *op : ops) op->walk(fn);
}

void Module::walk(const std::function<void(const Operation &)> &fn) const {
  for (const auto &op : body().operations()) {
    static_cast<const Operation *>(op.get())->walk(fn);
  }
}

Operation *Module::find_first(std::string_view name) {
  Operation *found = nullptr;
  walk([&](Operation &op) {
    if (!found && op.name() == name) found = &op;
  });
  return found;
}

std::vector<Operation *> Module::find_all(std::string_view name) {
  std::vector<Operation *> out;
  walk([&](Operation &op) {
    if (op.name() == name) out.push_back(&op);
  });
  return out;
}

std::size_t Module::op_count() const {
  std::size_t n = 0;
  walk([&](const Operation &) { ++n; });
  return n;
}

// --------------------------------------------------------------------- Clone

namespace {

/// Clones every op of `src` into `dst`, extending the value map as results
/// and block arguments are created. Operands must already be mapped — SSA
/// order guarantees this for in-block defs, and enclosing blocks are cloned
/// before their nested regions for cross-region uses.
void clone_block_into(const Block &src, Block &dst,
                      std::map<const Value *, Value *> &map) {
  for (std::size_t i = 0; i < src.num_arguments(); ++i)
    map[&src.argument(i)] = &dst.add_argument(src.argument(i).type());

  for (const auto &op : src.operations()) {
    std::vector<Value *> operands;
    operands.reserve(op->num_operands());
    for (std::size_t i = 0; i < op->num_operands(); ++i)
      operands.push_back(map.at(op->operand(i)));
    std::vector<Type> result_types;
    result_types.reserve(op->num_results());
    for (std::size_t i = 0; i < op->num_results(); ++i)
      result_types.push_back(op->result(i)->type());

    auto cloned = Operation::create(op->name_symbol(), std::move(operands),
                                    std::move(result_types), op->attributes(),
                                    op->num_regions());
    for (std::size_t i = 0; i < op->num_results(); ++i)
      map[op->result(i)] = cloned->result(i);

    Operation &placed = dst.push_back(std::move(cloned));
    for (std::size_t r = 0; r < op->num_regions(); ++r) {
      for (const auto &block : op->region(r).blocks())
        clone_block_into(*block, placed.region(r).add_block(), map);
    }
  }
}

}  // namespace

std::shared_ptr<Module> clone_module(const Module &module) {
  auto copy = std::make_shared<Module>();
  for (const auto &[key, value] : module.op().attributes())
    copy->op().set_attr(key, value);
  std::map<const Value *, Value *> map;
  clone_block_into(module.body(), copy->body(), map);
  return copy;
}

}  // namespace everest::ir
