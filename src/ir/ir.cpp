#include "ir/ir.hpp"

#include <cassert>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>

namespace everest::ir {

namespace {

std::uint32_t grown_cap(std::uint32_t cap, std::uint32_t min_cap) {
  std::uint32_t next = cap == 0 ? 4 : cap * 2;
  while (next < min_cap) next *= 2;
  return next;
}

}  // namespace

// -------------------------------------------------------------------- Region

Block &Region::add_block() {
  Block *block = arena_->create<Block>(*arena_, this);
  if (num_blocks_ == block_cap_) {
    std::uint32_t cap = block_cap_ == 0 ? 1 : block_cap_ * 2;
    Block **fresh = arena_->allocate_array<Block *>(cap);
    if (num_blocks_ != 0)
      std::memcpy(fresh, blocks_, num_blocks_ * sizeof(Block *));
    blocks_ = fresh;
    block_cap_ = cap;
  }
  blocks_[num_blocks_++] = block;
  return *block;
}

// --------------------------------------------------------------------- Block

Operation *Block::parent_op() const {
  return parent_ ? parent_->parent_op() : nullptr;
}

Value &Block::add_argument(Type type) {
  Value *arg = arena_->create<Value>(std::move(type), this,
                                     static_cast<std::size_t>(num_arguments_));
  if (num_arguments_ == argument_cap_) {
    std::uint32_t cap = grown_cap(argument_cap_, num_arguments_ + 1);
    Value **fresh = arena_->allocate_array<Value *>(cap);
    if (num_arguments_ != 0)
      std::memcpy(fresh, arguments_, num_arguments_ * sizeof(Value *));
    arguments_ = fresh;
    argument_cap_ = cap;
  }
  arguments_[num_arguments_++] = arg;
  return *arg;
}

Operation &Block::attach_before(Operation *op, Operation *before) {
  assert(op != nullptr && "attach of null op");
  assert(op->parent_ == nullptr && "op already attached to a block");
  assert(!op->erased_ && "attach of an erased (tombstoned) op");
  op->parent_ = this;
  if (before == nullptr) {
    op->prev_ = last_;
    op->next_ = nullptr;
    if (last_ != nullptr)
      last_->next_ = op;
    else
      first_ = op;
    last_ = op;
  } else {
    assert(before->parent_ == this && "insertion anchor not in this block");
    op->next_ = before;
    op->prev_ = before->prev_;
    if (before->prev_ != nullptr)
      before->prev_->next_ = op;
    else
      first_ = op;
    before->prev_ = op;
  }
  ++size_;
  return *op;
}

void Block::detach(Operation *op) {
  assert(op->parent_ == this && "detach of op not in this block");
  if (op->prev_ != nullptr)
    op->prev_->next_ = op->next_;
  else
    first_ = op->next_;
  if (op->next_ != nullptr)
    op->next_->prev_ = op->prev_;
  else
    last_ = op->prev_;
  op->prev_ = nullptr;
  op->next_ = nullptr;
  op->parent_ = nullptr;
  --size_;
}

void Block::erase(Operation *op) {
  detach(op);
  // Tombstone the whole subtree: drop every operand use (nested ops too, so
  // no use-list entry dangles) and mark the ops erased. The memory stays
  // valid until the arena resets.
  op->walk([](Operation &dead) {
    dead.drop_all_operands();
    dead.erased_ = true;
  });
}

// ----------------------------------------------------------------- Operation

Operation *Operation::create_with_capacity(Arena &arena, Symbol name,
                                           AttrDict attributes,
                                           std::size_t operand_capacity,
                                           std::size_t result_capacity,
                                           std::size_t region_capacity) {
  // Trailing storage starts at sizeof(Operation) and holds the Use array,
  // then the result and region pointer tables. All three element types align
  // to a pointer boundary, which sizeof(Operation) is a multiple of.
  static_assert(alignof(Operation) >= alignof(Use) &&
                    alignof(Operation) >= alignof(Value *) &&
                    alignof(Operation) >= alignof(Region *),
                "trailing arrays must not be over-aligned w.r.t. Operation");
  static_assert(sizeof(Operation) % alignof(Use) == 0 &&
                    sizeof(Use) % alignof(Value *) == 0,
                "trailing arrays must start aligned");
  const std::size_t trailing = operand_capacity * sizeof(Use) +
                               result_capacity * sizeof(Value *) +
                               region_capacity * sizeof(Region *);
  Operation *op = arena.create_with_trailing<Operation>(trailing, arena, name,
                                                        std::move(attributes));
  auto *base = reinterpret_cast<unsigned char *>(op) + sizeof(Operation);
  op->operands_ = reinterpret_cast<Use *>(base);
  op->results_ =
      reinterpret_cast<Value **>(base + operand_capacity * sizeof(Use));
  op->regions_ = reinterpret_cast<Region **>(base +
                                             operand_capacity * sizeof(Use) +
                                             result_capacity * sizeof(Value *));
  op->operand_cap_ = static_cast<std::uint32_t>(operand_capacity);
  op->result_cap_ = static_cast<std::uint32_t>(result_capacity);
  op->region_cap_ = static_cast<std::uint32_t>(region_capacity);
  if (operand_capacity != 0) arena.note_use_nodes(operand_capacity);
  return op;
}

Operation *Operation::create(Arena &arena, Symbol name, ValueRange operands,
                             TypeRange result_types, AttrDict attributes,
                             std::size_t num_regions) {
  Operation *op =
      create_with_capacity(arena, name, std::move(attributes), operands.size(),
                           result_types.size(), num_regions);
  for (std::size_t i = 0; i < operands.size(); ++i) {
    assert(operands[i] != nullptr && "null operand");
    op->init_operand(static_cast<std::uint32_t>(i), operands[i]);
  }
  op->num_operands_ = static_cast<std::uint32_t>(operands.size());
  for (const Type &type : result_types) op->add_result(type);
  for (std::size_t i = 0; i < num_regions; ++i) op->add_region();
  return op;
}

void Operation::init_operand(std::uint32_t i, Value *v) {
  Use *use = new (&operands_[i]) Use();
  use->user_ = this;
  use->index_ = i;
  use->link(v);
}

void Operation::grow_operands(std::uint32_t min_cap) {
  std::uint32_t cap = grown_cap(operand_cap_, min_cap);
  Use *fresh = arena_->allocate_array<Use>(cap);
  // Relink every live use onto a fresh slot. Unlink-then-link (rather than
  // memcpy + pointer fixup) keeps the doubly-linked invariants trivially
  // correct even when several slots of this op sit adjacently on one
  // value's list. The old array is abandoned in the arena.
  for (std::uint32_t i = 0; i < num_operands_; ++i) {
    Value *v = operands_[i].value_;
    operands_[i].unlink();
    Use *use = new (&fresh[i]) Use();
    use->user_ = this;
    use->index_ = i;
    use->link(v);
  }
  operands_ = fresh;
  operand_cap_ = cap;
  arena_->note_use_nodes(cap);
}

void Operation::grow_results(std::uint32_t min_cap) {
  std::uint32_t cap = grown_cap(result_cap_, min_cap);
  Value **fresh = arena_->allocate_array<Value *>(cap);
  if (num_results_ != 0)
    std::memcpy(fresh, results_, num_results_ * sizeof(Value *));
  results_ = fresh;
  result_cap_ = cap;
}

void Operation::grow_regions(std::uint32_t min_cap) {
  std::uint32_t cap = grown_cap(region_cap_, min_cap);
  Region **fresh = arena_->allocate_array<Region *>(cap);
  if (num_regions_ != 0)
    std::memcpy(fresh, regions_, num_regions_ * sizeof(Region *));
  regions_ = fresh;
  region_cap_ = cap;
}

Value *Operation::add_result(Type type) {
  Value *v = arena_->create<Value>(std::move(type), this,
                                   static_cast<std::size_t>(num_results_));
  if (num_results_ == result_cap_) grow_results(num_results_ + 1);
  results_[num_results_++] = v;
  return v;
}

void Operation::set_operand(std::size_t i, Value *v) {
  assert(i < num_operands_ && "operand index out of range");
  assert(v != nullptr && "null operand");
  Use &use = operands_[i];
  if (use.value_ == v) return;
  use.unlink();
  use.link(v);
}

void Operation::append_operand(Value *v) {
  assert(v != nullptr && "null operand");
  if (num_operands_ == operand_cap_) grow_operands(num_operands_ + 1);
  init_operand(num_operands_, v);
  ++num_operands_;
}

void Operation::drop_all_operands() {
  for (std::uint32_t i = 0; i < num_operands_; ++i) operands_[i].unlink();
  num_operands_ = 0;
}

std::int64_t Operation::attr_int(std::string_view key,
                                 std::int64_t fallback) const {
  const Attribute *a = attr(key);
  return a && a->is_int() ? a->as_int() : fallback;
}

double Operation::attr_double(std::string_view key, double fallback) const {
  const Attribute *a = attr(key);
  if (!a) return fallback;
  if (a->is_double() || a->is_int()) return a->as_double();
  return fallback;
}

std::string Operation::attr_string(std::string_view key,
                                   std::string fallback) const {
  const Attribute *a = attr(key);
  return a && a->is_string() ? a->as_string() : fallback;
}

Region &Operation::add_region() {
  Region *region = arena_->create<Region>(*arena_, this);
  if (num_regions_ == region_cap_) grow_regions(num_regions_ + 1);
  regions_[num_regions_++] = region;
  return *region;
}

Operation *Operation::parent_op() const {
  return parent_ ? parent_->parent_op() : nullptr;
}

void Operation::replace_all_uses_with(ValueRange replacements) {
  if (replacements.size() != num_results_)
    throw std::invalid_argument("replace_all_uses_with: result count mismatch");
  // Simultaneous substitution in two phases, no allocation: unlink every use
  // of every result first (parking it on a staged chain with value_ holding
  // the pending target), then relink. Relinking eagerly would cascade when a
  // replacement is itself one of this op's results — a use just retargeted
  // r0 -> r1 would land on r1's list and be replaced again by the r1 pass.
  Use *staged = nullptr;
  for (std::uint32_t r = 0; r < num_results_; ++r) {
    Value *from = results_[r];
    Value *to = replacements[r];
    assert(to != nullptr && "null replacement value");
    while (Use *use = from->first_use_) {
      use->unlink();
      use->value_ = to;  // pending target, not yet on any list
      use->next_ = staged;
      staged = use;
    }
  }
  while (staged != nullptr) {
    Use *use = staged;
    staged = use->next_;
    use->link(use->value_);
  }
}

void Operation::walk(const std::function<void(Operation &)> &fn) {
  fn(*this);
  for (std::uint32_t r = 0; r < num_regions_; ++r) {
    for (Block &block : regions_[r]->blocks()) {
      // Snapshot pointers: fn may erase/modify the list it's iterating.
      std::vector<Operation *> ops;
      ops.reserve(block.size());
      for (Operation &op : block) ops.push_back(&op);
      for (Operation *op : ops) op->walk(fn);
    }
  }
}

void Operation::walk(const std::function<void(const Operation &)> &fn) const {
  fn(*this);
  for (std::uint32_t r = 0; r < num_regions_; ++r) {
    for (const Block &block : regions_[r]->blocks()) {
      for (const Operation &op : block) op.walk(fn);
    }
  }
}

// -------------------------------------------------------------------- Module

Module::Module() : arena_(std::make_unique<Arena>()) {
  static const Symbol kModuleName("builtin.module");
  op_ = Operation::create(*arena_, kModuleName, {}, {}, {}, 1);
  op_->region(0).add_block();
}

void Module::walk(const std::function<void(Operation &)> &fn) {
  // Walk children only, not the module op itself.
  std::vector<Operation *> ops;
  ops.reserve(body().size());
  for (Operation &op : body()) ops.push_back(&op);
  for (Operation *op : ops) op->walk(fn);
}

void Module::walk(const std::function<void(const Operation &)> &fn) const {
  for (const Operation &op : body()) op.walk(fn);
}

Operation *Module::find_first(std::string_view name) {
  Operation *found = nullptr;
  walk([&](Operation &op) {
    if (!found && op.name() == name) found = &op;
  });
  return found;
}

std::vector<Operation *> Module::find_all(std::string_view name) {
  std::vector<Operation *> out;
  walk([&](Operation &op) {
    if (op.name() == name) out.push_back(&op);
  });
  return out;
}

std::size_t Module::op_count() const {
  std::size_t n = 0;
  walk([&](const Operation &) { ++n; });
  return n;
}

// --------------------------------------------------------------------- Clone

namespace {

/// Open-addressed pointer map from source values to their clones. One upfront
/// table allocation (plus rare doublings) replaces the per-node heap traffic
/// of an unordered_map — the difference between O(values) mallocs per clone
/// and ~one.
class CloneMap {
public:
  explicit CloneMap(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    table_ = std::make_unique<Entry[]>(cap);
    mask_ = cap - 1;
  }

  void insert(const Value *key, Value *mapped) {
    if ((count_ + 1) * 4 > (mask_ + 1) * 3) grow();
    Entry *slot = find_slot(table_.get(), mask_, key);
    if (slot->key == nullptr) ++count_;
    slot->key = key;
    slot->mapped = mapped;
  }

  [[nodiscard]] Value *lookup(const Value *key) const {
    const Entry *slot = find_slot(table_.get(), mask_, key);
    return slot->key == key ? slot->mapped : nullptr;
  }

private:
  struct Entry {
    const Value *key = nullptr;
    Value *mapped = nullptr;
  };

  static std::size_t hash(const Value *p) {
    auto x = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }

  static Entry *find_slot(Entry *table, std::size_t mask, const Value *key) {
    std::size_t i = hash(key) & mask;
    while (table[i].key != nullptr && table[i].key != key) i = (i + 1) & mask;
    return &table[i];
  }

  void grow() {
    std::size_t cap = (mask_ + 1) * 2;
    auto fresh = std::make_unique<Entry[]>(cap);
    for (std::size_t i = 0; i <= mask_; ++i) {
      if (table_[i].key == nullptr) continue;
      *find_slot(fresh.get(), cap - 1, table_[i].key) = table_[i];
    }
    table_ = std::move(fresh);
    mask_ = cap - 1;
  }

  std::unique_ptr<Entry[]> table_;
  std::size_t mask_ = 0;
  std::size_t count_ = 0;
};

/// Clones every op of `src` into `dst`, extending the value map as results
/// and block arguments are created. Operands must already be mapped — SSA
/// order guarantees this for in-block defs, and enclosing blocks are cloned
/// before their nested regions for cross-region uses.
///
/// Fast path: each clone is created with exact inline capacity and filled in
/// place — operand pointers map through CloneMap into the Use array, result
/// types and the attribute dictionary are COW handle copies — so nothing per
/// op touches the global heap.
void clone_block_into(const Block &src, Block &dst, CloneMap &map) {
  for (std::size_t i = 0; i < src.num_arguments(); ++i)
    map.insert(&src.argument(i), &dst.add_argument(src.argument(i).type()));

  for (const Operation &op : src) {
    Operation *cloned = Operation::create_with_capacity(
        dst.arena(), op.name_symbol(), op.attributes(), op.num_operands(),
        op.num_results(), op.num_regions());
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      Value *mapped = map.lookup(op.operand(i));
      assert(mapped != nullptr && "clone: operand not mapped");
      cloned->append_operand(mapped);
    }
    for (std::size_t i = 0; i < op.num_results(); ++i)
      map.insert(op.result(i), cloned->add_result(op.result(i)->type()));

    dst.attach(cloned);
    for (std::size_t r = 0; r < op.num_regions(); ++r) {
      Region &region = cloned->add_region();
      for (const Block &block : op.region(r).blocks())
        clone_block_into(block, region.add_block(), map);
    }
  }
}

/// Number of values (results + block arguments) defined under `op`, used to
/// size the clone map exactly instead of guessing from allocation counts.
std::size_t count_values(const Operation &op) {
  std::size_t n = 0;
  op.walk([&n](const Operation &nested) {
    n += nested.num_results();
    for (std::size_t r = 0; r < nested.num_regions(); ++r) {
      for (const Block &block : nested.region(r).blocks())
        n += block.num_arguments();
    }
  });
  return n;
}

}  // namespace

Module clone_module(const Module &module) {
  Module copy;
  copy.op().set_attributes(module.op().attributes());
  CloneMap map(count_values(module.op()));
  clone_block_into(module.body(), copy.body(), map);
  return copy;
}

Operation *clone_op_into(const Operation &src, Block &dst, Operation *before) {
  // Operands must be subtree-internal; top-level func-like ops have none.
  assert(src.num_operands() == 0 &&
         "clone_op_into: source op must be self-contained");
  CloneMap map(count_values(src));
  Operation *cloned = Operation::create_with_capacity(
      dst.arena(), src.name_symbol(), src.attributes(), 0, src.num_results(),
      src.num_regions());
  for (std::size_t i = 0; i < src.num_results(); ++i)
    map.insert(src.result(i), cloned->add_result(src.result(i)->type()));
  dst.attach_before(cloned, before);
  for (std::size_t r = 0; r < src.num_regions(); ++r) {
    Region &region = cloned->add_region();
    for (const Block &block : src.region(r).blocks())
      clone_block_into(block, region.add_block(), map);
  }
  return cloned;
}

}  // namespace everest::ir
