#include "ir/ir.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace everest::ir {

// -------------------------------------------------------------------- Region

Block &Region::add_block() {
  Block *block = arena_->create<Block>(*arena_, this);
  blocks_.push_back(block);
  return *block;
}

// --------------------------------------------------------------------- Block

Operation *Block::parent_op() const {
  return parent_ ? parent_->parent_op() : nullptr;
}

Value &Block::add_argument(Type type) {
  Value *arg =
      arena_->create<Value>(std::move(type), this, arguments_.size());
  arguments_.push_back(arg);
  return *arg;
}

Operation &Block::attach_before(Operation *op, Operation *before) {
  assert(op != nullptr && "attach of null op");
  assert(op->parent_ == nullptr && "op already attached to a block");
  assert(!op->erased_ && "attach of an erased (tombstoned) op");
  op->parent_ = this;
  if (before == nullptr) {
    op->prev_ = last_;
    op->next_ = nullptr;
    if (last_ != nullptr)
      last_->next_ = op;
    else
      first_ = op;
    last_ = op;
  } else {
    assert(before->parent_ == this && "insertion anchor not in this block");
    op->next_ = before;
    op->prev_ = before->prev_;
    if (before->prev_ != nullptr)
      before->prev_->next_ = op;
    else
      first_ = op;
    before->prev_ = op;
  }
  ++size_;
  return *op;
}

void Block::detach(Operation *op) {
  assert(op->parent_ == this && "detach of op not in this block");
  if (op->prev_ != nullptr)
    op->prev_->next_ = op->next_;
  else
    first_ = op->next_;
  if (op->next_ != nullptr)
    op->next_->prev_ = op->prev_;
  else
    last_ = op->prev_;
  op->prev_ = nullptr;
  op->next_ = nullptr;
  op->parent_ = nullptr;
  --size_;
}

void Block::erase(Operation *op) {
  detach(op);
  // Tombstone the whole subtree: drop every operand use (nested ops too, so
  // no use-list entry dangles) and mark the ops erased. The memory stays
  // valid until the arena resets.
  op->walk([](Operation &dead) {
    dead.drop_all_operands();
    dead.erased_ = true;
  });
}

// ----------------------------------------------------------------- Operation

Operation::Operation(Arena &arena, Symbol name, std::vector<Value *> operands,
                     AttrDict attributes)
    : name_(name),
      operands_(std::move(operands)),
      attributes_(std::move(attributes)),
      arena_(&arena) {}

Operation *Operation::create(Arena &arena, Symbol name,
                             std::vector<Value *> operands,
                             std::vector<Type> result_types,
                             AttrDict attributes, std::size_t num_regions) {
  Operation *op = arena.create<Operation>(arena, name, std::move(operands),
                                          std::move(attributes));
  for (Value *v : op->operands_) {
    assert(v != nullptr && "null operand");
    v->users_.push_back(op);
  }
  op->results_.reserve(result_types.size());
  for (auto &type : result_types) op->add_result(std::move(type));
  for (std::size_t i = 0; i < num_regions; ++i) op->add_region();
  return op;
}

Value *Operation::add_result(Type type) {
  Value *v = arena_->create<Value>(std::move(type), this, results_.size());
  results_.push_back(v);
  return v;
}

namespace {

void remove_one_use(Value *v, Operation *user) {
  auto &users = const_cast<std::vector<Operation *> &>(v->users());
  auto it = std::find(users.begin(), users.end(), user);
  if (it != users.end()) users.erase(it);
}

}  // namespace

void Operation::set_operand(std::size_t i, Value *v) {
  Value *old = operands_.at(i);
  if (old == v) return;
  remove_one_use(old, this);
  operands_[i] = v;
  const_cast<std::vector<Operation *> &>(v->users()).push_back(this);
}

void Operation::append_operand(Value *v) {
  operands_.push_back(v);
  const_cast<std::vector<Operation *> &>(v->users()).push_back(this);
}

void Operation::drop_all_operands() {
  for (Value *v : operands_) remove_one_use(v, this);
  operands_.clear();
}

std::int64_t Operation::attr_int(std::string_view key,
                                 std::int64_t fallback) const {
  const Attribute *a = attr(key);
  return a && a->is_int() ? a->as_int() : fallback;
}

double Operation::attr_double(std::string_view key, double fallback) const {
  const Attribute *a = attr(key);
  if (!a) return fallback;
  if (a->is_double() || a->is_int()) return a->as_double();
  return fallback;
}

std::string Operation::attr_string(std::string_view key,
                                   std::string fallback) const {
  const Attribute *a = attr(key);
  return a && a->is_string() ? a->as_string() : fallback;
}

Region &Operation::add_region() {
  Region *region = arena_->create<Region>(*arena_, this);
  regions_.push_back(region);
  return *region;
}

Operation *Operation::parent_op() const {
  return parent_ ? parent_->parent_op() : nullptr;
}

void Operation::replace_all_uses_with(const std::vector<Value *> &replacements) {
  if (replacements.size() != results_.size())
    throw std::invalid_argument("replace_all_uses_with: result count mismatch");
  for (std::size_t r = 0; r < results_.size(); ++r) {
    Value *from = results_[r];
    Value *to = replacements[r];
    // Snapshot users: set_operand mutates the use list.
    std::vector<Operation *> users = from->users();
    for (Operation *user : users) {
      for (std::size_t i = 0; i < user->num_operands(); ++i) {
        if (user->operand(i) == from) user->set_operand(i, to);
      }
    }
  }
}

void Operation::walk(const std::function<void(Operation &)> &fn) {
  fn(*this);
  for (Region *region : regions_) {
    for (Block &block : region->blocks()) {
      // Snapshot pointers: fn may erase/modify the list it's iterating.
      std::vector<Operation *> ops;
      ops.reserve(block.size());
      for (Operation &op : block) ops.push_back(&op);
      for (Operation *op : ops) op->walk(fn);
    }
  }
}

void Operation::walk(const std::function<void(const Operation &)> &fn) const {
  fn(*this);
  for (const Region *region : regions_) {
    for (const Block &block : region->blocks()) {
      for (const Operation &op : block) op.walk(fn);
    }
  }
}

// -------------------------------------------------------------------- Module

Module::Module() : arena_(std::make_unique<Arena>()) {
  static const Symbol kModuleName("builtin.module");
  op_ = Operation::create(*arena_, kModuleName, {}, {}, {}, 1);
  op_->region(0).add_block();
}

void Module::walk(const std::function<void(Operation &)> &fn) {
  // Walk children only, not the module op itself.
  std::vector<Operation *> ops;
  ops.reserve(body().size());
  for (Operation &op : body()) ops.push_back(&op);
  for (Operation *op : ops) op->walk(fn);
}

void Module::walk(const std::function<void(const Operation &)> &fn) const {
  for (const Operation &op : body()) op.walk(fn);
}

Operation *Module::find_first(std::string_view name) {
  Operation *found = nullptr;
  walk([&](Operation &op) {
    if (!found && op.name() == name) found = &op;
  });
  return found;
}

std::vector<Operation *> Module::find_all(std::string_view name) {
  std::vector<Operation *> out;
  walk([&](Operation &op) {
    if (op.name() == name) out.push_back(&op);
  });
  return out;
}

std::size_t Module::op_count() const {
  std::size_t n = 0;
  walk([&](const Operation &) { ++n; });
  return n;
}

// --------------------------------------------------------------------- Clone

namespace {

/// Clones every op of `src` into `dst`, extending the value map as results
/// and block arguments are created. Operands must already be mapped — SSA
/// order guarantees this for in-block defs, and enclosing blocks are cloned
/// before their nested regions for cross-region uses.
void clone_block_into(const Block &src, Block &dst,
                      std::unordered_map<const Value *, Value *> &map) {
  for (std::size_t i = 0; i < src.num_arguments(); ++i)
    map[&src.argument(i)] = &dst.add_argument(src.argument(i).type());

  for (const Operation &op : src) {
    std::vector<Value *> operands;
    operands.reserve(op.num_operands());
    for (std::size_t i = 0; i < op.num_operands(); ++i)
      operands.push_back(map.at(op.operand(i)));
    std::vector<Type> result_types;
    result_types.reserve(op.num_results());
    for (std::size_t i = 0; i < op.num_results(); ++i)
      result_types.push_back(op.result(i)->type());

    Operation *cloned = Operation::create(
        dst.arena(), op.name_symbol(), std::move(operands),
        std::move(result_types), op.attributes(), op.num_regions());
    for (std::size_t i = 0; i < op.num_results(); ++i)
      map[op.result(i)] = cloned->result(i);

    dst.attach(cloned);
    for (std::size_t r = 0; r < op.num_regions(); ++r) {
      for (const Block &block : op.region(r).blocks())
        clone_block_into(block, cloned->region(r).add_block(), map);
    }
  }
}

}  // namespace

Module clone_module(const Module &module) {
  Module copy;
  for (const auto &[key, value] : module.op().attributes())
    copy.op().set_attr(key, value);
  std::unordered_map<const Value *, Value *> map;
  // The source arena's allocation count bounds the number of values the map
  // will hold; reserving once avoids ~a dozen rehashes on large modules.
  map.reserve(module.arena().stats().allocations);
  clone_block_into(module.body(), copy.body(), map);
  return copy;
}

Operation *clone_op_into(const Operation &src, Block &dst, Operation *before) {
  std::unordered_map<const Value *, Value *> map;
  std::vector<Type> result_types;
  result_types.reserve(src.num_results());
  for (std::size_t i = 0; i < src.num_results(); ++i)
    result_types.push_back(src.result(i)->type());
  // Operands must be subtree-internal; top-level func-like ops have none.
  assert(src.num_operands() == 0 &&
         "clone_op_into: source op must be self-contained");
  Operation *cloned =
      Operation::create(dst.arena(), src.name_symbol(), {},
                        std::move(result_types), src.attributes(),
                        src.num_regions());
  for (std::size_t i = 0; i < src.num_results(); ++i)
    map[src.result(i)] = cloned->result(i);
  dst.attach_before(cloned, before);
  for (std::size_t r = 0; r < src.num_regions(); ++r) {
    for (const Block &block : src.region(r).blocks())
      clone_block_into(block, cloned->region(r).add_block(), map);
  }
  return cloned;
}

}  // namespace everest::ir
