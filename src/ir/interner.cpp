#include "ir/interner.hpp"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace everest::ir {

namespace detail {

namespace {

/// Storage plus the lookup table. A deque keeps entry addresses stable as
/// the table grows; the map keys are views into the stored text so each
/// spelling is kept exactly once.
struct InternTable {
  std::mutex mu;
  std::deque<InternEntry> entries;
  std::unordered_map<std::string_view, const InternEntry *> index;

  const InternEntry *get(std::string_view text) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = index.find(text);
    if (it != index.end()) return it->second;
    InternEntry &entry = entries.emplace_back();
    entry.text = std::string(text);
    std::string_view stored = entry.text;
    auto dot = stored.find('.');
    if (dot == std::string_view::npos) {
      entry.dialect = stored.substr(0, 0);
      entry.mnemonic = stored;
    } else {
      entry.dialect = stored.substr(0, dot);
      entry.mnemonic = stored.substr(dot + 1);
    }
    index.emplace(stored, &entry);
    return &entry;
  }

  std::size_t size() {
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
  }
};

InternTable &table() {
  static InternTable t;
  return t;
}

}  // namespace

const InternEntry *intern(std::string_view text) { return table().get(text); }

const InternEntry *empty_entry() {
  static const InternEntry *e = intern("");
  return e;
}

}  // namespace detail

Interner &Interner::global() {
  static Interner interner;
  return interner;
}

std::size_t Interner::size() const { return detail::table().size(); }

}  // namespace everest::ir
