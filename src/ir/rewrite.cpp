#include "ir/rewrite.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "obs/trace.hpp"

namespace everest::ir {

namespace {

using PatternRef = std::pair<RewritePattern *, std::size_t>;  // pattern, index

/// Patterns sorted by descending benefit (stable on registration order) with
/// a per-root dispatch index. The index maps an interned op name to the
/// benefit-ordered merge of patterns anchored on that name and the generic
/// ("" root) patterns, so per-op dispatch touches only candidate patterns
/// and root comparison is a pointer compare.
class PatternSet {
public:
  explicit PatternSet(
      const std::vector<std::shared_ptr<RewritePattern>> &patterns) {
    sorted_ = patterns;
    std::stable_sort(sorted_.begin(), sorted_.end(),
                     [](const auto &a, const auto &b) {
                       return a->benefit() > b->benefit();
                     });
    fire_counts_.assign(sorted_.size(), 0);
    for (std::size_t i = 0; i < sorted_.size(); ++i) {
      if (sorted_[i]->root_symbol().empty())
        generic_.emplace_back(sorted_[i].get(), i);
      else
        has_specific_ = true;
    }
  }

  /// Candidate patterns for an op named `root`, in application order.
  const std::vector<PatternRef> &candidates(Symbol root) {
    if (!has_specific_) return generic_;
    auto it = merged_.find(root.id());
    if (it != merged_.end()) return it->second;
    std::vector<PatternRef> list;
    for (std::size_t i = 0; i < sorted_.size(); ++i) {
      Symbol r = sorted_[i]->root_symbol();
      if (r.empty() || r == root) list.emplace_back(sorted_[i].get(), i);
    }
    return merged_.emplace(root.id(), std::move(list)).first->second;
  }

  void count_fire(std::size_t index) { ++fire_counts_[index]; }

  /// Flushes per-pattern fire counts to `ir.rewrite.fires.<root|any>`.
  void report_fires(obs::TraceRecorder &rec) const {
    for (std::size_t i = 0; i < sorted_.size(); ++i) {
      if (fire_counts_[i] == 0) continue;
      const std::string &root = sorted_[i]->root_name();
      rec.counter("ir.rewrite.fires." + (root.empty() ? "any" : root))
          .add(static_cast<std::int64_t>(fire_counts_[i]));
    }
  }

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

private:
  std::vector<std::shared_ptr<RewritePattern>> sorted_;
  std::vector<std::size_t> fire_counts_;
  std::vector<PatternRef> generic_;
  std::unordered_map<const void *, std::vector<PatternRef>> merged_;
  bool has_specific_ = false;
};

/// Visits every op in rewrite scope. The module form walks the module body;
/// the op-rooted form walks the ops nested under the root (excluding it).
using ScopeWalk = std::function<void(const std::function<void(Operation &)> &)>;

void report_common(const RewriteStats &stats) {
  if (auto *rec = obs::global_recorder()) {
    rec->counter("ir.rewrite.ops_visited")
        .add(static_cast<std::int64_t>(stats.ops_visited));
    if (stats.worklist_pushes > 0)
      rec->counter("ir.rewrite.worklist_pushes")
          .add(static_cast<std::int64_t>(stats.worklist_pushes));
    if (!stats.converged) rec->counter("ir.rewrite.nonconverged").add(1);
  }
}

// ------------------------------------------------------------- legacy sweep

/// Sweep-mode rewriter: erasures are deferred to the end of the sweep; no
/// re-enqueue bookkeeping.
class SweepRewriter final : public PatternRewriter {
public:
  std::vector<Operation *> pending;

private:
  void on_created(Operation *) override {}
  void on_replace(Operation *, const std::vector<Value *> &) override {}
  void on_erase(Operation *op) override { pending.push_back(op); }
};

RewriteStats apply_legacy_sweep(const ScopeWalk &walk, PatternSet &patterns,
                                std::size_t max_iterations) {
  RewriteStats stats;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++stats.iterations;
    SweepRewriter rewriter;
    std::size_t fired = 0;

    // Snapshot ops first: rewrites may append new ops (visited next sweep).
    std::vector<Operation *> ops;
    walk([&](Operation &op) { ops.push_back(&op); });

    std::unordered_set<Operation *> pending_marked;
    for (Operation *op : ops) {
      if (pending_marked.count(op)) continue;
      ++stats.ops_visited;
      for (const auto &[pattern, index] : patterns.candidates(op->name_symbol())) {
        if (pattern->match_and_rewrite(*op, rewriter)) {
          ++fired;
          patterns.count_fire(index);
          // Mark pending ops (and anything nested in them) so the rest of
          // the sweep skips soon-to-be-erased ops.
          for (Operation *e : rewriter.pending) {
            if (!pending_marked.count(e))
              e->walk([&](Operation &nested) { pending_marked.insert(&nested); });
          }
          break;  // one pattern per op per sweep
        }
      }
    }

    // Erase in reverse discovery order so nested ops go before parents
    // (Block::erase tombstones the subtree, so the second visit is a no-op).
    for (auto it = rewriter.pending.rbegin(); it != rewriter.pending.rend();
         ++it) {
      Operation *op = *it;
      if (!op->erased() && op->parent_block() != nullptr)
        op->parent_block()->erase(op);
    }

    stats.rewrites += fired;
    if (fired == 0) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

// ----------------------------------------------------------------- worklist

/// Worklist-mode rewriter/driver state. Invariant: no op is visited after
/// its erasure — Block::erase tombstones the op (and everything nested in
/// it) in place, and the arena guarantees the tombstoned memory stays
/// readable and its address is never reused until the module tears down, so
/// stale worklist entries are detected with a plain flag check.
class WorklistDriver final : public PatternRewriter {
public:
  RewriteStats run(const ScopeWalk &walk, PatternSet &patterns,
                   std::size_t max_iterations) {
    walk([&](Operation &op) { push(&op); });

    for (;;) {
      if (current_.empty()) {
        stats_.converged = true;
        break;
      }
      if (stats_.iterations == max_iterations) break;  // work remains
      ++stats_.iterations;
      fired_this_round_.clear();

      while (!current_.empty()) {
        Operation *op = current_.front();
        current_.pop_front();
        scheduled_.erase(op);
        if (op->erased()) continue;
        ++stats_.ops_visited;

        for (const auto &[pattern, index] :
             patterns.candidates(op->name_symbol())) {
          Operation *parent = op->parent_op();
          if (!pattern->match_and_rewrite(*op, *this)) continue;
          ++stats_.rewrites;
          patterns.count_fire(index);
          fired_this_round_.insert(op);
          flush_erasures();
          // Re-enqueue the affected neighbourhood: the parent op and — when
          // the rewrite was in place — the op itself (it fired this round,
          // so it lands in the next round, bounding re-fires).
          if (parent != nullptr && parent->parent_block() != nullptr)
            push(parent);
          if (!op->erased()) push(op);
          break;  // one pattern per visit
        }
      }
      std::swap(current_, next_);
    }
    return stats_;
  }

private:
  void on_created(Operation *op) override {
    // Arena allocation never reuses addresses before a reset, so a created
    // op (and its nested subtree) is guaranteed fresh: just enqueue it.
    op->walk([&](Operation &nested) { push(&nested); });
  }

  void on_replace(Operation *op,
                  const std::vector<Value *> &) override {
    // Called before uses are rewritten: everything using the old results
    // sees new operands after the replacement, so revisit those users.
    for (std::size_t r = 0; r < op->num_results(); ++r) {
      for (Operation *user : op->result(r)->users()) push(user);
    }
  }

  void on_erase(Operation *op) override { pending_erasure_.push_back(op); }

  /// Performs erasures deferred during one pattern fire. Operand definers
  /// are re-enqueued first (losing a use may make them dead), then the op
  /// and its nested subtree are tombstoned and detached by Block::erase.
  void flush_erasures() {
    for (auto it = pending_erasure_.rbegin(); it != pending_erasure_.rend();
         ++it) {
      Operation *dead = *it;
      if (dead->erased()) continue;
      for (Value *v : dead->operands()) {
        Operation *def = v->defining_op();
        if (def != nullptr && def != dead) push(def);
      }
      if (dead->parent_block() != nullptr) dead->parent_block()->erase(dead);
    }
    pending_erasure_.clear();
  }

  /// Enqueues an op unless already queued or erased. Ops that fired this
  /// round go to the next round; everything else joins the current round so
  /// cascades (e.g. a dead chain unwinding) resolve without extra rounds.
  void push(Operation *op) {
    if (op->parent_block() == nullptr) return;  // module op / detached
    if (op->erased() || scheduled_.count(op)) return;
    scheduled_.insert(op);
    ++stats_.worklist_pushes;
    if (fired_this_round_.count(op))
      next_.push_back(op);
    else
      current_.push_back(op);
  }

  RewriteStats stats_;
  std::deque<Operation *> current_;
  std::deque<Operation *> next_;
  std::unordered_set<Operation *> scheduled_;
  std::unordered_set<Operation *> fired_this_round_;
  std::vector<Operation *> pending_erasure_;
};

RewriteStats apply_with_driver(const ScopeWalk &walk, PatternSet &set,
                               std::size_t max_iterations,
                               RewriteDriver driver) {
  RewriteStats stats;
  if (driver == RewriteDriver::LegacySweep) {
    stats = apply_legacy_sweep(walk, set, max_iterations);
  } else {
    WorklistDriver worklist;
    stats = worklist.run(walk, set, max_iterations);
  }
  if (auto *rec = obs::global_recorder()) set.report_fires(*rec);
  report_common(stats);
  return stats;
}

}  // namespace

RewriteStats apply_patterns_greedily(
    Module &module,
    const std::vector<std::shared_ptr<RewritePattern>> &patterns,
    std::size_t max_iterations, RewriteDriver driver) {
  PatternSet set(patterns);
  return apply_with_driver(
      [&](const std::function<void(Operation &)> &fn) { module.walk(fn); },
      set, max_iterations, driver);
}

RewriteStats apply_patterns_greedily(
    Operation &root,
    const std::vector<std::shared_ptr<RewritePattern>> &patterns,
    std::size_t max_iterations, RewriteDriver driver) {
  PatternSet set(patterns);
  auto walk_children = [&](const std::function<void(Operation &)> &fn) {
    for (std::size_t r = 0; r < root.num_regions(); ++r) {
      for (Block &block : root.region(r).blocks()) {
        std::vector<Operation *> ops;
        ops.reserve(block.size());
        for (Operation &op : block) ops.push_back(&op);
        for (Operation *op : ops) op->walk(fn);
      }
    }
  };
  return apply_with_driver(walk_children, set, max_iterations, driver);
}

}  // namespace everest::ir
