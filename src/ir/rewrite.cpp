#include "ir/rewrite.hpp"

#include <algorithm>
#include <set>

namespace everest::ir {

RewriteStats apply_patterns_greedily(
    Module &module,
    const std::vector<std::shared_ptr<RewritePattern>> &patterns,
    std::size_t max_iterations) {
  // Sort by descending benefit; stable to keep registration order for ties.
  std::vector<std::shared_ptr<RewritePattern>> sorted = patterns;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto &a, const auto &b) {
                     return a->benefit() > b->benefit();
                   });

  RewriteStats stats;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++stats.iterations;
    std::vector<Operation *> pending_erasure;
    PatternRewriter rewriter(pending_erasure);
    std::size_t fired = 0;

    // Snapshot ops first: rewrites may append new ops (visited next sweep).
    std::vector<Operation *> ops;
    module.walk([&](Operation &op) { ops.push_back(&op); });

    std::set<Operation *> erased;
    for (Operation *op : ops) {
      if (erased.count(op)) continue;
      for (const auto &pattern : sorted) {
        if (!pattern->root_name().empty() && pattern->root_name() != op->name())
          continue;
        if (pattern->match_and_rewrite(*op, rewriter)) {
          ++fired;
          for (Operation *e : pending_erasure) erased.insert(e);
          break;  // one pattern per op per sweep
        }
      }
    }

    // Erase in reverse discovery order so nested ops go before parents.
    for (auto it = pending_erasure.rbegin(); it != pending_erasure.rend(); ++it) {
      Operation *op = *it;
      if (op->parent_block() != nullptr) op->parent_block()->erase(op);
    }

    stats.rewrites += fired;
    if (fired == 0) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

}  // namespace everest::ir
