// Textual printer for the generic operation form:
//
//   %0 = "arith.constant"() {value = 3.0} : () -> f64
//   %1 = "scf.for"(%lo, %hi) ({
//   ^bb0(%a0: index):
//     ...
//   }) : (index, index) -> f64
//
// Value names are assigned in program order; block arguments print as %aN.

#include <string>
#include <unordered_map>

#include "ir/ir.hpp"

namespace everest::ir {

namespace {

/// Rough per-op output size used to preallocate the print buffer. One
/// reservation up front replaces the O(log n) doublings of the grow-as-you-go
/// path; the compile cache fingerprints modules by printing them, so this is
/// on the hot path of every cached compile.
constexpr std::size_t kBytesPerOpEstimate = 96;

class Printer {
public:
  std::string print_module(const Operation &module_op) {
    std::size_t ops = 0;
    module_op.walk([&](const Operation &) { ++ops; });
    out_.reserve(ops * kBytesPerOpEstimate + 16);
    names_.reserve(ops);
    out_ += "module {\n";
    for (const Operation &op : module_op.region(0).front().operations())
      print_op(op, 1);
    out_ += "}\n";
    return std::move(out_);
  }

  std::string print_single(const Operation &op) {
    std::size_t ops = 0;
    op.walk([&](const Operation &) { ++ops; });
    out_.reserve(ops * kBytesPerOpEstimate);
    print_op(op, 0);
    return std::move(out_);
  }

private:
  void indent(int depth) { out_.append(static_cast<std::size_t>(depth) * 2, ' '); }

  const std::string &name_of(const Value *v) {
    auto it = names_.find(v);
    if (it != names_.end()) return it->second;
    std::string name = v->is_block_argument()
                           ? "%a" + std::to_string(next_arg_++)
                           : "%" + std::to_string(next_result_++);
    return names_.emplace(v, std::move(name)).first->second;
  }

  void print_op(const Operation &op, int depth) {
    indent(depth);
    if (op.num_results() > 0) {
      for (std::size_t i = 0; i < op.num_results(); ++i) {
        if (i != 0) out_ += ", ";
        out_ += name_of(op.result(i));
      }
      out_ += " = ";
    }
    out_ += '"';
    out_ += op.name();
    out_ += "\"(";
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      if (i != 0) out_ += ", ";
      out_ += name_of(op.operand(i));
    }
    out_ += ')';

    if (op.num_regions() > 0) {
      out_ += " (";
      for (std::size_t r = 0; r < op.num_regions(); ++r) {
        if (r != 0) out_ += ", ";
        out_ += "{\n";
        for (const Block &block : op.region(r).blocks())
          print_block(block, depth + 1);
        indent(depth);
        out_ += '}';
      }
      out_ += ')';
    }

    if (!op.attributes().empty()) {
      out_ += " {";
      bool first = true;
      for (const auto &[key, value] : op.attributes()) {
        if (!first) out_ += ", ";
        first = false;
        out_ += key.str();
        out_ += " = ";
        out_ += value.str();
      }
      out_ += '}';
    }

    out_ += " : (";
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      if (i != 0) out_ += ", ";
      out_ += op.operand(i)->type().str();
    }
    out_ += ") -> ";
    if (op.num_results() == 1) {
      out_ += op.result(0)->type().str();
    } else {
      out_ += '(';
      for (std::size_t i = 0; i < op.num_results(); ++i) {
        if (i != 0) out_ += ", ";
        out_ += op.result(i)->type().str();
      }
      out_ += ')';
    }
    out_ += '\n';
  }

  void print_block(const Block &block, int depth) {
    indent(depth - 1);
    out_ += "^bb" + std::to_string(next_block_++);
    if (block.num_arguments() > 0) {
      out_ += '(';
      for (std::size_t i = 0; i < block.num_arguments(); ++i) {
        if (i != 0) out_ += ", ";
        out_ += name_of(&block.argument(i));
        out_ += ": ";
        out_ += block.argument(i).type().str();
      }
      out_ += ')';
    }
    out_ += ":\n";
    for (const Operation &op : block.operations()) print_op(op, depth);
  }

  std::string out_;
  std::unordered_map<const Value *, std::string> names_;
  int next_result_ = 0;
  int next_arg_ = 0;
  int next_block_ = 0;
};

}  // namespace

std::string Operation::str() const {
  static const Symbol kModuleName("builtin.module");
  if (name_ == kModuleName) return Printer().print_module(*this);
  return Printer().print_single(*this);
}

std::string Module::str() const { return op_->str(); }

}  // namespace everest::ir
