// everest/ir/rewrite.hpp
//
// Pattern-rewrite infrastructure: patterns match a root op name and rewrite
// in place; a driver applies them to fixpoint (bounded).
//
// Two drivers share the RewriteStats contract:
//  - Worklist (default): seeds a FIFO worklist with every op, dispatches
//    patterns through an index keyed on interned root names, and after each
//    fired rewrite re-enqueues only the affected ops (created ops, users of
//    replaced results, the parent op, and operand definers of erased ops).
//    Cost scales with the amount of change, not module size.
//  - LegacySweep: the original full-module sweep, kept for differential
//    testing — both drivers must produce byte-identical modules on
//    confluent pattern sets.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/builder.hpp"
#include "ir/interner.hpp"
#include "ir/ir.hpp"

namespace everest::ir {

/// Mutation helper passed to patterns: erase/replace with correct use-list
/// bookkeeping, plus creation helpers that keep the driver informed. All IR
/// mutation inside a pattern must go through this interface (or be reported
/// with notify_created) — the worklist driver relies on the notifications to
/// know which ops to revisit.
class PatternRewriter {
public:
  virtual ~PatternRewriter() = default;

  /// Replaces all uses of op's results and schedules it for erasure.
  void replace_op(Operation *op, const std::vector<Value *> &replacements) {
    on_replace(op, replacements);
    op->replace_all_uses_with(replacements);
    on_erase(op);
  }

  /// Schedules op for erasure (its results must be unused by then).
  void erase_op(Operation *op) { on_erase(op); }

  /// Reports an op the pattern created through its own builder so the driver
  /// can enqueue it. The create_* helpers below call this automatically.
  void notify_created(Operation *op) { on_created(op); }

  /// Creates an op immediately before `anchor` and notifies the driver.
  Operation &create_before(Operation *anchor, std::string_view name,
                           std::vector<Value *> operands,
                           std::vector<Type> result_types,
                           AttrDict attributes = {}) {
    OpBuilder b(anchor->parent_block());
    b.set_insertion_point(anchor);
    Operation &op = b.create(name, std::move(operands),
                             std::move(result_types), std::move(attributes));
    on_created(&op);
    return op;
  }

  /// Single-result convenience over create_before.
  Value *create_value_before(Operation *anchor, std::string_view name,
                             std::vector<Value *> operands, Type result_type,
                             AttrDict attributes = {}) {
    return create_before(anchor, name, std::move(operands),
                         {std::move(result_type)}, std::move(attributes))
        .result(0);
  }

protected:
  /// Driver hooks. `on_replace` runs before uses are rewritten so the driver
  /// can snapshot the users that need revisiting; `on_erase` must defer the
  /// actual Block::erase until the pattern returns.
  virtual void on_created(Operation *op) = 0;
  virtual void on_replace(Operation *op,
                          const std::vector<Value *> &replacements) = 0;
  virtual void on_erase(Operation *op) = 0;
};

/// A rewrite pattern anchored on ops named `root_name` ("" matches any op).
class RewritePattern {
public:
  explicit RewritePattern(std::string_view root_name, int benefit = 1)
      : root_(root_name), benefit_(benefit) {}
  virtual ~RewritePattern() = default;

  [[nodiscard]] const std::string &root_name() const { return root_.str(); }
  /// Interned root: the worklist driver dispatches on pointer equality.
  [[nodiscard]] Symbol root_symbol() const { return root_; }
  [[nodiscard]] int benefit() const { return benefit_; }

  /// Attempts the rewrite; returns true if the IR changed.
  virtual bool match_and_rewrite(Operation &op, PatternRewriter &rewriter) = 0;

private:
  Symbol root_;
  int benefit_;
};

/// Pattern from a lambda.
class LambdaPattern final : public RewritePattern {
public:
  using Fn = std::function<bool(Operation &, PatternRewriter &)>;
  LambdaPattern(std::string_view root_name, Fn fn, int benefit = 1)
      : RewritePattern(root_name, benefit), fn_(std::move(fn)) {}
  bool match_and_rewrite(Operation &op, PatternRewriter &rewriter) override {
    return fn_(op, rewriter);
  }

private:
  Fn fn_;
};

/// Which greedy driver to run.
enum class RewriteDriver {
  Worklist,     ///< Re-enqueue only affected ops after each fire.
  LegacySweep,  ///< Re-walk the whole module every iteration.
};

/// Result of a greedy rewrite run. `iterations` counts full sweeps for the
/// legacy driver and worklist rounds for the worklist driver; `ops_visited`
/// counts pattern-dispatch attempts (the work metric the worklist driver
/// minimizes); `worklist_pushes` is zero for the legacy driver.
struct RewriteStats {
  std::size_t iterations = 0;
  std::size_t rewrites = 0;
  std::size_t ops_visited = 0;
  std::size_t worklist_pushes = 0;
  bool converged = false;
};

/// Applies patterns greedily until no pattern fires or `max_iterations`
/// rounds elapse. Non-convergence bumps the `ir.rewrite.nonconverged` obs
/// counter when a global recorder is installed.
RewriteStats apply_patterns_greedily(
    Module &module, const std::vector<std::shared_ptr<RewritePattern>> &patterns,
    std::size_t max_iterations = 32,
    RewriteDriver driver = RewriteDriver::Worklist);

/// Same, scoped to the ops nested under `root` (the root itself is not
/// matched, mirroring how the module form excludes the module op). This is
/// the form func-scoped passes use: multiple roots of one module can be
/// rewritten concurrently as long as the rewrites stay inside their root.
RewriteStats apply_patterns_greedily(
    Operation &root,
    const std::vector<std::shared_ptr<RewritePattern>> &patterns,
    std::size_t max_iterations = 32,
    RewriteDriver driver = RewriteDriver::Worklist);

}  // namespace everest::ir
