// everest/ir/rewrite.hpp
//
// Pattern-rewrite infrastructure: patterns match a root op name and rewrite
// in place; the greedy driver applies them to fixpoint (bounded).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "ir/ir.hpp"

namespace everest::ir {

/// Mutation helper passed to patterns: erase/replace with correct use-list
/// bookkeeping. Erasures are deferred to the end of the driver sweep.
class PatternRewriter {
public:
  explicit PatternRewriter(std::vector<Operation *> &pending_erasure)
      : pending_erasure_(pending_erasure) {}

  /// Replaces all uses of op's results and schedules it for erasure.
  void replace_op(Operation *op, const std::vector<Value *> &replacements) {
    op->replace_all_uses_with(replacements);
    erase_op(op);
  }

  /// Schedules op for erasure (its results must be unused).
  void erase_op(Operation *op) { pending_erasure_.push_back(op); }

private:
  std::vector<Operation *> &pending_erasure_;
};

/// A rewrite pattern anchored on ops named `root_name` ("" matches any op).
class RewritePattern {
public:
  explicit RewritePattern(std::string root_name, int benefit = 1)
      : root_name_(std::move(root_name)), benefit_(benefit) {}
  virtual ~RewritePattern() = default;

  [[nodiscard]] const std::string &root_name() const { return root_name_; }
  [[nodiscard]] int benefit() const { return benefit_; }

  /// Attempts the rewrite; returns true if the IR changed.
  virtual bool match_and_rewrite(Operation &op, PatternRewriter &rewriter) = 0;

private:
  std::string root_name_;
  int benefit_;
};

/// Pattern from a lambda.
class LambdaPattern final : public RewritePattern {
public:
  using Fn = std::function<bool(Operation &, PatternRewriter &)>;
  LambdaPattern(std::string root_name, Fn fn, int benefit = 1)
      : RewritePattern(std::move(root_name), benefit), fn_(std::move(fn)) {}
  bool match_and_rewrite(Operation &op, PatternRewriter &rewriter) override {
    return fn_(op, rewriter);
  }

private:
  Fn fn_;
};

/// Result of a greedy rewrite run.
struct RewriteStats {
  std::size_t iterations = 0;
  std::size_t rewrites = 0;
  bool converged = false;
};

/// Applies patterns greedily over the module until no pattern fires or
/// `max_iterations` full sweeps elapse.
RewriteStats apply_patterns_greedily(
    Module &module, const std::vector<std::shared_ptr<RewritePattern>> &patterns,
    std::size_t max_iterations = 32);

}  // namespace everest::ir
