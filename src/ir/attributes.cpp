#include "ir/attributes.hpp"

#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/strings.hpp"

namespace everest::ir {

const AttrDict::Items &AttrDict::empty_items() {
  static const Items empty;
  return empty;
}

AttrDict::Items &AttrDict::mutable_items() {
  if (!items_)
    items_ = std::make_shared<Items>();
  else if (items_.use_count() > 1)
    items_ = std::make_shared<Items>(*items_);
  return *items_;
}

void AttrDict::set(Symbol key, Attribute value) {
  Items &items = mutable_items();
  auto it = items.begin();
  for (; it != items.end(); ++it) {
    if (it->first == key) {
      it->second = std::move(value);
      return;
    }
    if (key < it->first) break;
  }
  items.insert(it, NamedAttribute(key, std::move(value)));
}

std::vector<std::int64_t> Attribute::as_int_vector() const {
  std::vector<std::int64_t> out;
  for (const auto &a : as_array()) out.push_back(a.as_int());
  return out;
}

std::vector<std::string> Attribute::as_string_vector() const {
  std::vector<std::string> out;
  for (const auto &a : as_array()) out.push_back(a.as_string());
  return out;
}

namespace {

std::string quote(const std::string &s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string format_double_attr(double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1.0e15) {
    // Keep a decimal point so the parser can distinguish from integers.
    std::array<char, 48> buf{};
    std::snprintf(buf.data(), buf.size(), "%.1f", d);
    return buf.data();
  }
  std::array<char, 48> buf{};
  std::snprintf(buf.data(), buf.size(), "%.17g", d);
  return buf.data();
}

}  // namespace

std::string Attribute::str() const {
  if (is_unit()) return "unit";
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) return format_double_attr(std::get<double>(value_));
  if (is_string()) return quote(as_string());
  if (is_type()) return as_type().str();
  std::string out = "[";
  const auto &items = as_array();
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    out += items[i].str();
  }
  out += ']';
  return out;
}

namespace {

/// Splits the body of an array attribute at top-level commas, respecting
/// nested brackets, angle brackets, and quoted strings.
support::Expected<std::vector<std::string>> split_array(std::string_view body) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_string = false;
  std::string cur;
  for (std::size_t i = 0; i < body.size(); ++i) {
    char c = body[i];
    if (in_string) {
      cur += c;
      if (c == '\\' && i + 1 < body.size()) {
        cur += body[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
      cur += c;
      continue;
    }
    if (c == '[' || c == '<') ++depth;
    if (c == ']' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_string || depth != 0)
    return support::Error::make("attribute: unbalanced array body");
  if (!support::trim(cur).empty() || !out.empty()) out.push_back(cur);
  return out;
}

}  // namespace

support::Expected<Attribute> Attribute::parse(std::string_view text) {
  text = support::trim(text);
  if (text.empty()) return support::Error::make("attribute: empty text");

  if (text == "unit") return Attribute();
  if (text == "true") return Attribute(true);
  if (text == "false") return Attribute(false);

  if (text.front() == '"') {
    if (text.size() < 2 || text.back() != '"')
      return support::Error::make("attribute: unterminated string");
    std::string out;
    for (std::size_t i = 1; i + 1 < text.size(); ++i) {
      char c = text[i];
      if (c == '\\' && i + 2 < text.size()) {
        char e = text[++i];
        out += (e == 'n') ? '\n' : e;
      } else {
        out += c;
      }
    }
    return Attribute(std::move(out));
  }

  if (text.front() == '[') {
    if (text.back() != ']')
      return support::Error::make("attribute: unterminated array");
    auto parts = split_array(text.substr(1, text.size() - 2));
    if (!parts) return parts.error();
    std::vector<Attribute> items;
    for (const auto &p : *parts) {
      auto a = Attribute::parse(p);
      if (!a) return a;
      items.push_back(std::move(*a));
    }
    return Attribute(std::move(items));
  }

  if (text.front() == '!' || support::starts_with(text, "tensor<") ||
      text == "index" || text == "none") {
    auto t = Type::parse(text);
    if (!t) return t.error();
    return Attribute(std::move(*t));
  }

  // Number: double if it contains '.', 'e', or 'E'; else integer. A bare
  // "iN"/"fN" is a type.
  bool looks_number = text[0] == '-' || text[0] == '+' ||
                      std::isdigit(static_cast<unsigned char>(text[0]));
  if (looks_number) {
    std::string token(text);
    bool is_float = token.find('.') != std::string::npos ||
                    token.find('e') != std::string::npos ||
                    token.find('E') != std::string::npos;
    char *end = nullptr;
    if (is_float) {
      double d = std::strtod(token.c_str(), &end);
      if (end && *end == '\0') return Attribute(d);
    } else {
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (end && *end == '\0') return Attribute(static_cast<std::int64_t>(v));
    }
    return support::Error::make("attribute: malformed number '" + token + "'");
  }

  if ((text[0] == 'i' || text[0] == 'f') && text.size() > 1) {
    auto t = Type::parse(text);
    if (t) return Attribute(std::move(*t));
  }

  return support::Error::make("attribute: cannot parse '" + std::string(text) +
                              "'");
}

}  // namespace everest::ir
