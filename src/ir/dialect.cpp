#include "ir/dialect.hpp"

#include <set>

namespace everest::ir {

Dialect &Context::register_dialect(std::unique_ptr<Dialect> dialect) {
  const std::string name = dialect->name();
  auto &slot = dialects_[name];
  slot = std::move(dialect);
  return *slot;
}

Dialect &Context::make_dialect(const std::string &name) {
  return register_dialect(std::make_unique<Dialect>(name));
}

Dialect *Context::find_dialect(std::string_view name) const {
  auto it = dialects_.find(name);
  return it == dialects_.end() ? nullptr : it->second.get();
}

const OpDef *Context::find_op(std::string_view full_name) const {
  auto dot = full_name.find('.');
  if (dot == std::string_view::npos) return nullptr;
  const Dialect *d = find_dialect(full_name.substr(0, dot));
  return d ? d->find_op(full_name.substr(dot + 1)) : nullptr;
}

std::vector<std::string> Context::dialect_names() const {
  std::vector<std::string> out;
  out.reserve(dialects_.size());
  for (const auto &[name, _] : dialects_) out.push_back(name);
  return out;
}

namespace {

support::Status verify_op_rec(const Context &ctx, const Operation &op,
                              std::set<const Value *> &visible);

support::Status verify_block(const Context &ctx, const Block &block,
                             std::set<const Value *> visible) {
  for (std::size_t i = 0; i < block.num_arguments(); ++i)
    visible.insert(&block.argument(i));
  for (const Operation &op : block.operations()) {
    // All operands must already be visible (SSA order; values from enclosing
    // regions were inserted by the caller).
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      if (!visible.count(op.operand(i))) {
        return support::Status::failure("verify: op '" + op.name() +
                                        "' uses a value before its definition");
      }
    }
    if (auto s = verify_op_rec(ctx, op, visible); !s.is_ok()) return s;
    for (std::size_t r = 0; r < op.num_results(); ++r)
      visible.insert(op.result(r));
  }
  return support::Status::ok();
}

support::Status verify_op_rec(const Context &ctx, const Operation &op,
                              std::set<const Value *> &visible) {
  if (op.dialect().empty()) {
    return support::Status::failure("verify: op '" + op.name() +
                                    "' has no dialect prefix");
  }
  const Dialect *dialect = ctx.find_dialect(op.dialect());
  const OpDef *def = dialect ? dialect->find_op(op.mnemonic()) : nullptr;
  if (dialect && !def && ctx.strict() && op.name() != "builtin.module") {
    return support::Status::failure("verify: unknown op '" + op.name() +
                                    "' in registered dialect");
  }
  if (def) {
    auto mismatch = [&](const char *what, int want, std::size_t have) {
      return support::Status::failure(
          "verify: op '" + op.name() + "' expects " + std::to_string(want) +
          " " + what + ", has " + std::to_string(have));
    };
    if (def->num_operands >= 0 &&
        op.num_operands() != static_cast<std::size_t>(def->num_operands))
      return mismatch("operands", def->num_operands, op.num_operands());
    if (def->num_results >= 0 &&
        op.num_results() != static_cast<std::size_t>(def->num_results))
      return mismatch("results", def->num_results, op.num_results());
    if (def->num_regions >= 0 &&
        op.num_regions() != static_cast<std::size_t>(def->num_regions))
      return mismatch("regions", def->num_regions, op.num_regions());
    for (const auto &key : def->required_attrs) {
      if (!op.has_attr(key)) {
        return support::Status::failure("verify: op '" + op.name() +
                                        "' missing required attribute '" +
                                        key + "'");
      }
    }
    if (def->verifier) {
      if (auto s = def->verifier(op); !s.is_ok()) return s;
    }
  }
  for (std::size_t r = 0; r < op.num_regions(); ++r) {
    for (const Block &block : op.region(r).blocks()) {
      if (auto s = verify_block(ctx, block, visible); !s.is_ok()) return s;
    }
  }
  return support::Status::ok();
}

}  // namespace

support::Status Context::verify(const Operation &op) const {
  std::set<const Value *> visible;
  return verify_op_rec(*this, op, visible);
}

support::Status Context::verify(const Module &module) const {
  std::set<const Value *> visible;
  return verify_block(*this, module.body(), visible);
}

}  // namespace everest::ir
