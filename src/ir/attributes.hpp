// everest/ir/attributes.hpp
//
// Attributes: compile-time constant data attached to operations. A compact
// analogue of MLIR attributes: unit, bool, integer, float, string, type,
// and arrays thereof.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "ir/interner.hpp"
#include "ir/types.hpp"

namespace everest::ir {

/// A constant attribute value with structural equality and a canonical
/// textual form.
class Attribute {
public:
  /// Unit attribute (presence-only flag).
  Attribute() : value_(std::monostate{}) {}
  Attribute(bool b) : value_(b) {}
  Attribute(std::int64_t i) : value_(i) {}
  Attribute(int i) : value_(static_cast<std::int64_t>(i)) {}
  Attribute(double d) : value_(d) {}
  Attribute(const char *s) : value_(std::string(s)) {}
  Attribute(std::string s) : value_(std::move(s)) {}
  Attribute(Type t) : value_(std::move(t)) {}
  Attribute(std::vector<Attribute> items) : value_(std::move(items)) {}

  /// Builds an array attribute from a vector of integers.
  static Attribute int_array(const std::vector<std::int64_t> &xs) {
    std::vector<Attribute> items;
    items.reserve(xs.size());
    for (auto x : xs) items.emplace_back(x);
    return Attribute(std::move(items));
  }

  /// Builds an array attribute from a vector of strings.
  static Attribute string_array(const std::vector<std::string> &xs) {
    std::vector<Attribute> items;
    items.reserve(xs.size());
    for (const auto &x : xs) items.emplace_back(x);
    return Attribute(std::move(items));
  }

  [[nodiscard]] bool is_unit() const {
    return std::holds_alternative<std::monostate>(value_);
  }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(value_); }
  [[nodiscard]] bool is_int() const {
    return std::holds_alternative<std::int64_t>(value_);
  }
  [[nodiscard]] bool is_double() const {
    return std::holds_alternative<double>(value_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_type() const { return std::holds_alternative<Type>(value_); }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::vector<Attribute>>(value_);
  }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(value_); }
  [[nodiscard]] double as_double() const {
    if (is_int()) return static_cast<double>(as_int());
    return std::get<double>(value_);
  }
  [[nodiscard]] const std::string &as_string() const {
    return std::get<std::string>(value_);
  }
  [[nodiscard]] const Type &as_type() const { return std::get<Type>(value_); }
  [[nodiscard]] const std::vector<Attribute> &as_array() const {
    return std::get<std::vector<Attribute>>(value_);
  }

  /// Convenience: array-of-int attribute back to a plain vector.
  [[nodiscard]] std::vector<std::int64_t> as_int_vector() const;
  /// Convenience: array-of-string attribute back to a plain vector.
  [[nodiscard]] std::vector<std::string> as_string_vector() const;

  bool operator==(const Attribute &other) const { return value_ == other.value_; }
  bool operator!=(const Attribute &other) const { return !(*this == other); }

  /// Canonical textual form: `unit`, `true`, `42`, `3.5 : f64`, `"s"`,
  /// `[a, b]`, or a type.
  [[nodiscard]] std::string str() const;

  /// Parses the canonical textual form.
  static support::Expected<Attribute> parse(std::string_view text);

private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Type,
               std::vector<Attribute>>
      value_;
};

/// One attribute-dictionary entry: interned key + value.
using NamedAttribute = std::pair<Symbol, Attribute>;

/// An operation's attribute dictionary: a flat vector kept sorted by key
/// text. Dictionaries are tiny (1–4 entries), so lookups are linear scans
/// over contiguous storage — no per-node heap traffic like std::map — and
/// iteration order stays lexicographic, which the printer relies on for
/// canonical output.
///
/// Storage is copy-on-write: copying a dictionary (every op clone does)
/// shares the entry vector behind a refcount; the first set() on a shared
/// dictionary takes a private copy. An empty dictionary holds no storage.
class AttrDict {
public:
  AttrDict() = default;
  AttrDict(std::initializer_list<std::pair<std::string_view, Attribute>> items) {
    for (auto &item : items) set(Symbol(item.first), item.second);
  }

  /// Inserts or overwrites, keeping the vector sorted by key text.
  void set(Symbol key, Attribute value);
  void set(std::string_view key, Attribute value) {
    set(Symbol(key), std::move(value));
  }

  /// Returns the value or nullptr. The Symbol overload is a pure pointer
  /// scan; the string overload compares spellings without interning.
  [[nodiscard]] const Attribute *find(Symbol key) const {
    for (const auto &item : items()) {
      if (item.first == key) return &item.second;
    }
    return nullptr;
  }
  [[nodiscard]] const Attribute *find(std::string_view key) const {
    for (const auto &item : items()) {
      if (item.first.view() == key) return &item.second;
    }
    return nullptr;
  }
  [[nodiscard]] bool contains(std::string_view key) const {
    return find(key) != nullptr;
  }

  [[nodiscard]] bool empty() const { return items().empty(); }
  [[nodiscard]] std::size_t size() const { return items().size(); }
  [[nodiscard]] std::vector<NamedAttribute>::const_iterator begin() const {
    return items().begin();
  }
  [[nodiscard]] std::vector<NamedAttribute>::const_iterator end() const {
    return items().end();
  }

private:
  using Items = std::vector<NamedAttribute>;

  [[nodiscard]] const Items &items() const {
    return items_ ? *items_ : empty_items();
  }
  static const Items &empty_items();
  /// Storage writable by this handle alone: allocates when null, clones when
  /// shared with another dictionary.
  Items &mutable_items();

  std::shared_ptr<Items> items_;
};

}  // namespace everest::ir
