// everest/ir/arena.hpp
//
// Bump allocator backing one Module's IR objects (operations, values,
// regions, blocks). All allocations share a slab list owned by the arena;
// individual objects are never freed — erased ops are tombstoned in place —
// and the whole module tears down in one sweep when the arena is destroyed
// or reset. Objects with non-trivial destructors register a destructor
// record (itself arena-allocated) so reset() can run them in reverse
// construction order before recycling the slabs.
//
// Allocation is mutex-guarded: func-scoped passes run in parallel on the
// pass manager's thread pool and create ops on the shared module arena. The
// lock is uncontended in serial compiles and cheap relative to the per-op
// malloc/free traffic it replaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace everest::ir {

class Arena {
public:
  struct Stats {
    std::size_t bytes_used = 0;      ///< Bytes handed out since last reset.
    std::size_t bytes_reserved = 0;  ///< Total slab capacity held.
    std::size_t allocations = 0;     ///< allocate() calls since last reset.
    std::size_t slabs = 0;           ///< Live slab count.
    std::size_t resets = 0;          ///< Lifetime reset() count.
    std::size_t high_water = 0;      ///< Lifetime peak of bytes_used.
    std::size_t use_nodes = 0;       ///< Use-list slots allocated since reset.
  };

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes < kMinSlabBytes ? kMinSlabBytes : slab_bytes) {}

  ~Arena() { destroy_objects(); }

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Raw aligned allocation. The memory stays valid until reset()/destruction.
  void *allocate(std::size_t size, std::size_t align) {
    std::lock_guard<std::mutex> lock(mu_);
    return allocate_locked(size, align);
  }

  /// Constructs a T in the arena. Non-trivially-destructible types get a
  /// destructor record so reset() can tear them down in reverse order.
  template <typename T, typename... Args>
  T *create(Args &&...args) {
    void *mem = nullptr;
    DtorRecord *record = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      mem = allocate_locked(sizeof(T), alignof(T));
      if constexpr (!std::is_trivially_destructible_v<T>) {
        record = static_cast<DtorRecord *>(
            allocate_locked(sizeof(DtorRecord), alignof(DtorRecord)));
      }
    }
    T *obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      record->object = obj;
      record->dtor = [](void *p) { static_cast<T *>(p)->~T(); };
      std::lock_guard<std::mutex> lock(mu_);
      record->prev = dtors_;
      dtors_ = record;
    }
    return obj;
  }

  /// Constructs a T with `trailing_bytes` of uninitialized storage appended
  /// in the same bump allocation, starting at `(char *)obj + sizeof(T)`.
  /// Operation uses this for its inline operand/result/region arrays: one
  /// allocation, one cache-friendly span, no per-array bookkeeping. Callers
  /// must guarantee the trailing element types need no more alignment than
  /// T itself (static_asserted at the call sites).
  template <typename T, typename... Args>
  T *create_with_trailing(std::size_t trailing_bytes, Args &&...args) {
    void *mem = nullptr;
    DtorRecord *record = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      mem = allocate_locked(sizeof(T) + trailing_bytes, alignof(T));
      if constexpr (!std::is_trivially_destructible_v<T>) {
        record = static_cast<DtorRecord *>(
            allocate_locked(sizeof(DtorRecord), alignof(DtorRecord)));
      }
    }
    T *obj = new (mem) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      record->object = obj;
      record->dtor = [](void *p) { static_cast<T *>(p)->~T(); };
      std::lock_guard<std::mutex> lock(mu_);
      record->prev = dtors_;
      dtors_ = record;
    }
    return obj;
  }

  /// Uninitialized array of a trivially-destructible element type (operand
  /// spill arrays, result/region pointer tables). The array is never freed
  /// individually — growth abandons the old array in place.
  template <typename T>
  T *allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena arrays never run element destructors");
    return static_cast<T *>(allocate(count * sizeof(T), alignof(T)));
  }

  /// Accounts `count` freshly allocated use-list slots (Stats::use_nodes).
  void note_use_nodes(std::size_t count) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.use_nodes += count;
  }

  /// Destroys every object (reverse construction order) and recycles the
  /// slabs. Every pointer previously handed out — including tombstoned
  /// ops — is invalid afterwards.
  void reset() {
    destroy_objects();
    std::lock_guard<std::mutex> lock(mu_);
    if (slabs_.size() > 1) slabs_.resize(1);
    if (!slabs_.empty()) slabs_.front().used = 0;
    stats_.bytes_used = 0;
    stats_.allocations = 0;
    stats_.use_nodes = 0;
    stats_.slabs = slabs_.size();
    stats_.bytes_reserved = slabs_.empty() ? 0 : slabs_.front().cap;
    ++stats_.resets;
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

private:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;
  static constexpr std::size_t kMinSlabBytes = 4 * 1024;

  struct Slab {
    std::unique_ptr<unsigned char[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  struct DtorRecord {
    void (*dtor)(void *) = nullptr;
    void *object = nullptr;
    DtorRecord *prev = nullptr;
  };

  void *allocate_locked(std::size_t size, std::size_t align) {
    if (size == 0) size = 1;
    if (!slabs_.empty()) {
      Slab &top = slabs_.back();
      std::size_t at = aligned_offset(top, align);
      if (at + size <= top.cap) {
        top.used = at + size;
        stats_.bytes_used += size;
        if (stats_.bytes_used > stats_.high_water)
          stats_.high_water = stats_.bytes_used;
        ++stats_.allocations;
        return top.data.get() + at;
      }
    }
    std::size_t cap = slab_bytes_;
    if (size + align > cap) cap = size + align;
    Slab slab;
    slab.data = std::make_unique<unsigned char[]>(cap);
    slab.cap = cap;
    slabs_.push_back(std::move(slab));
    stats_.bytes_reserved += cap;
    stats_.slabs = slabs_.size();
    Slab &top = slabs_.back();
    std::size_t at = aligned_offset(top, align);
    top.used = at + size;
    stats_.bytes_used += size;
    if (stats_.bytes_used > stats_.high_water)
      stats_.high_water = stats_.bytes_used;
    ++stats_.allocations;
    return top.data.get() + at;
  }

  void destroy_objects() {
    DtorRecord *record = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      record = dtors_;
      dtors_ = nullptr;
    }
    while (record != nullptr) {
      record->dtor(record->object);
      record = record->prev;
    }
  }

  static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  /// Offset into `slab` at which the next allocation is `align`-aligned in
  /// actual address terms. Aligning the offset alone is not enough: operator
  /// new[] only guarantees __STDCPP_DEFAULT_NEW_ALIGNMENT__ for the slab
  /// base, so over-aligned types must account for the base address too.
  static std::size_t aligned_offset(const Slab &slab, std::size_t align) {
    auto base = reinterpret_cast<std::uintptr_t>(slab.data.get());
    return align_up(base + slab.used, align) - base;
  }

  mutable std::mutex mu_;
  std::vector<Slab> slabs_;
  DtorRecord *dtors_ = nullptr;
  Stats stats_;
  std::size_t slab_bytes_;
};

}  // namespace everest::ir
