// everest/ir/dialect.hpp
//
// Dialect registry: each dialect declares its operations (operand/result
// arities, region counts, a verifier, and a one-line summary). The Context
// owns all dialects and drives module verification against them.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ir/interner.hpp"
#include "ir/ir.hpp"
#include "support/expected.hpp"

namespace everest::ir {

/// Static description of one operation kind within a dialect.
struct OpDef {
  /// Exact operand count, or -1 for variadic.
  int num_operands = -1;
  /// Exact result count, or -1 for variadic.
  int num_results = -1;
  /// Exact region count, or -1 for any.
  int num_regions = 0;
  /// One-line human documentation.
  std::string summary;
  /// Attribute keys that must be present.
  std::vector<std::string> required_attrs;
  /// Extra semantic checks beyond arity/attribute presence.
  std::function<support::Status(const Operation &)> verifier;
};

/// A dialect: a namespace of operation definitions.
class Dialect {
public:
  explicit Dialect(std::string name) : name_(std::move(name)) {}
  virtual ~Dialect() = default;

  [[nodiscard]] const std::string &name() const { return name_; }

  /// Registers an op under this dialect ("contract" -> "ekl.contract").
  void add_op(const std::string &mnemonic, OpDef def) {
    ops_[mnemonic] = std::move(def);
  }

  [[nodiscard]] const OpDef *find_op(std::string_view mnemonic) const {
    auto it = ops_.find(mnemonic);
    return it == ops_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, OpDef, std::less<>> &ops() const {
    return ops_;
  }

private:
  std::string name_;
  std::map<std::string, OpDef, std::less<>> ops_;
};

/// Owns dialects and provides module-level verification. The EVEREST SDK
/// registers the Fig. 5 dialect stack here (see dialects/registry.hpp).
class Context {
public:
  Context() = default;
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  /// Registers a dialect; returns a stable reference to it.
  Dialect &register_dialect(std::unique_ptr<Dialect> dialect);
  /// Creates and registers an empty dialect with the given name.
  Dialect &make_dialect(const std::string &name);

  [[nodiscard]] Dialect *find_dialect(std::string_view name) const;
  [[nodiscard]] const OpDef *find_op(std::string_view full_name) const;
  [[nodiscard]] std::vector<std::string> dialect_names() const;

  /// The identifier interner used by ops created under this context. Symbol
  /// storage is process-wide (modules may outlive any single context — the
  /// compile cache shares clones across threads), so every context hands out
  /// the same instance.
  [[nodiscard]] Interner &interner() const { return Interner::global(); }

  /// When true (default), verification fails on ops whose dialect is
  /// registered but whose mnemonic is not.
  void set_strict(bool strict) { strict_ = strict; }
  [[nodiscard]] bool strict() const { return strict_; }

  /// Verifies the whole module: SSA order within blocks, arity constraints,
  /// required attributes, and per-op semantic verifiers.
  [[nodiscard]] support::Status verify(const Module &module) const;
  /// Verifies a single operation subtree.
  [[nodiscard]] support::Status verify(const Operation &op) const;

private:
  std::map<std::string, std::unique_ptr<Dialect>, std::less<>> dialects_;
  bool strict_ = true;
};

}  // namespace everest::ir
