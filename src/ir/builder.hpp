// everest/ir/builder.hpp
//
// OpBuilder: the construction API used by the frontends and lowering passes.
// Maintains an insertion point (block + iterator) and creates operations.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/ir.hpp"

namespace everest::ir {

/// Creates operations at a movable insertion point.
class OpBuilder {
public:
  explicit OpBuilder(Block *block)
      : block_(block), insert_(block->operations().end()) {}

  /// Positions the builder at the end of `block`.
  void set_insertion_point_to_end(Block *block) {
    block_ = block;
    insert_ = block->operations().end();
  }

  /// Positions the builder directly before `op`.
  void set_insertion_point(Operation *op) {
    block_ = op->parent_block();
    insert_ = block_->iterator_to(op);
  }

  [[nodiscard]] Block *insertion_block() const { return block_; }

  /// Creates an op at the insertion point and returns it.
  Operation &create(std::string_view name, std::vector<Value *> operands,
                    std::vector<Type> result_types, AttrDict attributes = {},
                    std::size_t num_regions = 0) {
    auto op = Operation::create(name, std::move(operands),
                                std::move(result_types), std::move(attributes),
                                num_regions);
    return block_->insert(insert_, std::move(op));
  }

  /// Creates a single-result op and returns the result value.
  Value *create_value(std::string_view name, std::vector<Value *> operands,
                      Type result_type, AttrDict attributes = {}) {
    return create(name, std::move(operands), {std::move(result_type)},
                  std::move(attributes))
        .result(0);
  }

  /// Emits `arith.constant` with a float value.
  Value *constant_f64(double v) {
    return create_value("arith.constant", {}, Type::floating(64),
                        {{"value", Attribute(v)}});
  }
  /// Emits `arith.constant` with an integer value.
  Value *constant_index(std::int64_t v) {
    return create_value("arith.constant", {}, Type::index(),
                        {{"value", Attribute(v)}});
  }

private:
  Block *block_;
  Block::OpList::iterator insert_;
};

}  // namespace everest::ir
