// everest/ir/builder.hpp
//
// OpBuilder: the construction API used by the frontends and lowering passes.
// Maintains an insertion point (block + anchor op) and creates arena-backed
// operations. This is also where string-based op names enter the IR: the
// builder interns them eagerly, so `Operation::create` itself only ever sees
// interned Symbols.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ir/ir.hpp"

namespace everest::ir {

/// Creates operations at a movable insertion point. New ops are allocated
/// from the insertion block's arena and spliced in before the anchor op
/// (nullptr anchor = end of block).
class OpBuilder {
public:
  explicit OpBuilder(Block *block) : block_(block) {}

  /// Positions the builder at the end of `block`.
  void set_insertion_point_to_end(Block *block) {
    block_ = block;
    before_ = nullptr;
  }

  /// Positions the builder directly before `op`.
  void set_insertion_point(Operation *op) {
    block_ = op->parent_block();
    before_ = op;
  }

  [[nodiscard]] Block *insertion_block() const { return block_; }
  [[nodiscard]] Arena &arena() const { return block_->arena(); }

  /// Creates an op at the insertion point and returns it. Operands and
  /// result types are lightweight views (braced lists and vectors convert
  /// implicitly); the pointers/types are copied straight into the op's
  /// inline arena storage without any intermediate heap buffer.
  Operation &create(Symbol name, ValueRange operands, TypeRange result_types,
                    AttrDict attributes = {}, std::size_t num_regions = 0) {
    Operation *op =
        Operation::create(block_->arena(), name, operands, result_types,
                          std::move(attributes), num_regions);
    return block_->attach_before(op, before_);
  }

  /// String-name convenience: interns eagerly and forwards to the Symbol
  /// overload (the one-line sugar that replaced the legacy
  /// `Operation::create(std::string_view, ...)`).
  Operation &create(std::string_view name, ValueRange operands,
                    TypeRange result_types, AttrDict attributes = {},
                    std::size_t num_regions = 0) {
    return create(Symbol(name), operands, result_types, std::move(attributes),
                  num_regions);
  }

  /// Creates a single-result op and returns the result value.
  Value *create_value(std::string_view name, ValueRange operands,
                      Type result_type, AttrDict attributes = {}) {
    return create(name, operands, TypeRange(&result_type, 1),
                  std::move(attributes))
        .result(0);
  }

  /// Emits `arith.constant` with a float value.
  Value *constant_f64(double v) {
    return create_value("arith.constant", {}, Type::floating(64),
                        {{"value", Attribute(v)}});
  }
  /// Emits `arith.constant` with an integer value.
  Value *constant_index(std::int64_t v) {
    return create_value("arith.constant", {}, Type::index(),
                        {{"value", Attribute(v)}});
  }

private:
  Block *block_;
  Operation *before_ = nullptr;
};

}  // namespace everest::ir
