// everest/ir/parser.hpp
//
// Parser for the generic textual form emitted by the printer, enabling full
// round-tripping of modules (tested property: parse(print(m)) == print(m)).
#pragma once

#include <memory>
#include <string_view>

#include "ir/ir.hpp"
#include "support/expected.hpp"

namespace everest::ir {

/// Parses a module in generic form ("module { ... }").
support::Expected<std::shared_ptr<Module>> parse_module(std::string_view text);

}  // namespace everest::ir
