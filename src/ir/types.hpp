// everest/ir/types.hpp
//
// The type system of the EVEREST IR: a compact analogue of MLIR's builtin
// types plus dialect-defined custom types (printed `!dialect.name<params>`).
// Types are immutable values with structural equality.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/expected.hpp"

namespace everest::ir {

/// An immutable type. Value-semantic: copies share the payload.
class Type {
public:
  enum class Kind {
    None,     // absence of a value
    Integer,  // iN (i1, i8, i16, i32, i64)
    Float,    // fN (f16, f32, f64)
    Index,    // platform-sized index type
    Tensor,   // tensor<d0xd1x...xelem>, dim -1 prints '?'
    Custom,   // !dialect.name<p0,p1,...>
  };

  /// Default-constructed type is None.
  Type() = default;

  static Type none();
  static Type integer(int width);
  static Type floating(int width);
  static Type index();
  static Type tensor(std::vector<std::int64_t> dims, Type element);
  static Type custom(std::string dialect, std::string name,
                     std::vector<std::string> params = {});

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_none() const { return kind_ == Kind::None; }
  [[nodiscard]] bool is_integer() const { return kind_ == Kind::Integer; }
  [[nodiscard]] bool is_float() const { return kind_ == Kind::Float; }
  [[nodiscard]] bool is_index() const { return kind_ == Kind::Index; }
  [[nodiscard]] bool is_tensor() const { return kind_ == Kind::Tensor; }
  [[nodiscard]] bool is_custom() const { return kind_ == Kind::Custom; }

  /// Width of an integer/float type; 0 otherwise.
  [[nodiscard]] int width() const { return width_; }

  /// Tensor shape (empty for non-tensors). Dim value -1 means dynamic.
  [[nodiscard]] const std::vector<std::int64_t> &dims() const;

  /// Tensor element type; None for non-tensors.
  [[nodiscard]] Type element() const;

  /// Custom type coordinates.
  [[nodiscard]] const std::string &dialect() const;
  [[nodiscard]] const std::string &name() const;
  [[nodiscard]] const std::vector<std::string> &params() const;

  /// True if this is a scalar numeric type (integer/float/index).
  [[nodiscard]] bool is_scalar_numeric() const {
    return is_integer() || is_float() || is_index();
  }

  /// Total static element count of a tensor (1 for scalars); -1 if dynamic.
  [[nodiscard]] std::int64_t num_elements() const;

  bool operator==(const Type &other) const;
  bool operator!=(const Type &other) const { return !(*this == other); }

  /// Renders the canonical textual form ("f64", "tensor<4x?xf32>",
  /// "!base2.fixed<16,8>").
  [[nodiscard]] std::string str() const;

  /// Parses a type from its textual form.
  static support::Expected<Type> parse(std::string_view text);

private:
  /// Heap-bearing pieces (tensor shape, custom-type coordinates) live behind
  /// one shared immutable payload: copying a Type — which the IR build and
  /// clone paths do constantly — is a refcount bump, never an allocation.
  /// Scalar kinds carry no payload at all.
  struct Payload {
    std::vector<std::int64_t> dims;
    std::shared_ptr<const Type> element;
    std::string dialect;
    std::string name;
    std::vector<std::string> params;
  };

  Kind kind_ = Kind::None;
  int width_ = 0;
  std::shared_ptr<const Payload> payload_;
};

}  // namespace everest::ir
