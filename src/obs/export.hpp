// everest/obs/export.hpp
//
// Exporters over a TraceRecorder:
//  - Chrome trace_event JSON ("X" complete events + thread-name metadata),
//    loadable in chrome://tracing or https://ui.perfetto.dev;
//  - a plain-text summary (support::Table) aggregating spans by category and
//    name plus all counters/gauges/histograms, for CLI and bench output.
// Both are deterministic: events are sorted by (track, start, name) and all
// object keys serialize in sorted order.
#pragma once

#include <string>

#include "support/expected.hpp"
#include "support/json.hpp"

namespace everest::obs {

class TraceRecorder;

/// Builds the Chrome trace_event JSON document for all recorded events.
/// Timestamps are exported in microseconds (the trace_event unit). Metric
/// snapshots ride along under the "otherData" key, which trace viewers show
/// as trace metadata.
[[nodiscard]] support::Json chrome_trace_json(const TraceRecorder &recorder);

/// Serializes chrome_trace_json() to `path`.
support::Status write_chrome_trace(const TraceRecorder &recorder,
                                   const std::string &path);

/// Renders the aggregated text summary: one row per (category, name) span
/// group with count/total/mean/min/max milliseconds, then metric tables.
[[nodiscard]] std::string summary_table(const TraceRecorder &recorder);

}  // namespace everest::obs
