// everest/obs/trace.hpp
//
// The tracing substrate shared by the whole SDK: a thread-safe TraceRecorder
// collecting named, categorized spans on wall-clock or simulated timelines,
// plus the typed metrics of metrics.hpp under one registry. Every layer of
// the Fig. 2 flow writes here — basecamp pipeline stages, resource-manager
// task placements, dfg executor workers, and device DMA/kernel activity —
// so one recorder yields an end-to-end Chrome trace (see export.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace everest::obs {

/// One completed span. `track` names the logical timeline the event sits on
/// (pipeline, cluster node, worker thread, device); the Chrome exporter maps
/// each track to a named thread row. Timestamps are microseconds — since
/// recorder construction for wall-clock spans, or simulation time for events
/// recorded with explicit timestamps.
struct TraceEvent {
  std::string name;
  std::string category;
  std::string track = "main";
  double start_us = 0.0;
  double duration_us = 0.0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Thread-safe recorder for spans and metrics.
class TraceRecorder {
public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  /// RAII scope over a wall-clock span. Move-only; records the event on
  /// destruction (or on an explicit end(), which returns the duration).
  class Span {
  public:
    Span(Span &&other) noexcept { *this = std::move(other); }
    Span &operator=(Span &&other) noexcept {
      recorder_ = other.recorder_;
      event_ = std::move(other.event_);
      other.recorder_ = nullptr;
      return *this;
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    ~Span() { end(); }

    /// Attaches a key=value argument shown in the trace viewer.
    void arg(std::string key, std::string value) {
      event_.args.emplace_back(std::move(key), std::move(value));
    }

    /// Closes the span and records it; idempotent. Returns the measured
    /// duration in microseconds (0 when already closed).
    double end();

  private:
    friend class TraceRecorder;
    Span(TraceRecorder *recorder, TraceEvent event)
        : recorder_(recorder), event_(std::move(event)) {}

    TraceRecorder *recorder_ = nullptr;
    TraceEvent event_;
  };

  /// Opens a wall-clock span on the monotonic clock.
  [[nodiscard]] Span span(std::string name, std::string category,
                          std::string track = "main");

  /// Records an event with explicit timestamps (simulated timelines: the
  /// resource-manager schedule, the device clock).
  void record(TraceEvent event);

  /// Microseconds of monotonic wall time since recorder construction.
  [[nodiscard]] double now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Metrics registry: created on first use, shared by name thereafter.
  Counter &counter(const std::string &name);
  Gauge &gauge(const std::string &name);
  Histogram &histogram(const std::string &name);

  /// Snapshot of all recorded events (copy under lock).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;

  /// Metric snapshots for the exporters, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>> counters()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;
  [[nodiscard]] std::vector<std::pair<std::string, Histogram::Summary>>
  histograms() const;

  /// Drops all events and metrics.
  void clear();

private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Process-wide optional recorder. Layers that are not handed a recorder
/// explicitly may fall back to this one; it is null unless installed.
[[nodiscard]] TraceRecorder *global_recorder();
/// Installs (non-owning) or clears (nullptr) the global recorder.
void set_global_recorder(TraceRecorder *recorder);

/// Installs a global recorder for the current scope, restoring the previous
/// one on destruction.
class ScopedGlobalRecorder {
public:
  explicit ScopedGlobalRecorder(TraceRecorder *recorder)
      : previous_(global_recorder()) {
    set_global_recorder(recorder);
  }
  ~ScopedGlobalRecorder() { set_global_recorder(previous_); }
  ScopedGlobalRecorder(const ScopedGlobalRecorder &) = delete;
  ScopedGlobalRecorder &operator=(const ScopedGlobalRecorder &) = delete;

private:
  TraceRecorder *previous_;
};

}  // namespace everest::obs
