#include "obs/trace.hpp"

#include <atomic>

namespace everest::obs {

double TraceRecorder::Span::end() {
  if (!recorder_) return 0.0;
  TraceRecorder *recorder = recorder_;
  recorder_ = nullptr;
  event_.duration_us = recorder->now_us() - event_.start_us;
  double duration = event_.duration_us;
  recorder->record(std::move(event_));
  return duration;
}

TraceRecorder::Span TraceRecorder::span(std::string name, std::string category,
                                        std::string track) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.track = std::move(track);
  event.start_us = now_us();
  return Span(this, std::move(event));
}

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

Counter &TraceRecorder::counter(const std::string &name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto &slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge &TraceRecorder::gauge(const std::string &name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto &slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram &TraceRecorder::histogram(const std::string &name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto &slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<std::pair<std::string, std::int64_t>> TraceRecorder::counters()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto &[name, counter] : counters_)
    out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, double>> TraceRecorder::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto &[name, gauge] : gauges_) out.emplace_back(name, gauge->value());
  return out;
}

std::vector<std::pair<std::string, Histogram::Summary>>
TraceRecorder::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Summary>> out;
  out.reserve(histograms_.size());
  for (const auto &[name, histogram] : histograms_)
    out.emplace_back(name, histogram->summarize());
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

namespace {
std::atomic<TraceRecorder *> g_recorder{nullptr};
}  // namespace

TraceRecorder *global_recorder() {
  return g_recorder.load(std::memory_order_acquire);
}

void set_global_recorder(TraceRecorder *recorder) {
  g_recorder.store(recorder, std::memory_order_release);
}

}  // namespace everest::obs
