#include "obs/export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "obs/trace.hpp"
#include "support/table.hpp"

namespace everest::obs {

namespace {

std::string format_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::vector<TraceEvent> sorted_events(const TraceRecorder &recorder) {
  std::vector<TraceEvent> events = recorder.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent &a, const TraceEvent &b) {
                     if (a.track != b.track) return a.track < b.track;
                     if (a.start_us != b.start_us) return a.start_us < b.start_us;
                     return a.name < b.name;
                   });
  return events;
}

}  // namespace

support::Json chrome_trace_json(const TraceRecorder &recorder) {
  std::vector<TraceEvent> events = sorted_events(recorder);

  // One Chrome "thread" row per track, numbered in sorted first-seen order.
  std::map<std::string, int> track_tid;
  for (const TraceEvent &event : events)
    track_tid.emplace(event.track, static_cast<int>(track_tid.size()) + 1);

  support::Json trace_events = support::Json::array();
  for (const auto &[track, tid] : track_tid) {
    support::Json meta = support::Json::object();
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", tid);
    meta.set("name", "thread_name");
    support::Json args = support::Json::object();
    args.set("name", track);
    meta.set("args", std::move(args));
    trace_events.push_back(std::move(meta));
  }
  for (const TraceEvent &event : events) {
    support::Json e = support::Json::object();
    e.set("ph", "X");
    e.set("pid", 1);
    e.set("tid", track_tid.at(event.track));
    e.set("name", event.name);
    e.set("cat", event.category);
    e.set("ts", event.start_us);
    e.set("dur", event.duration_us);
    if (!event.args.empty()) {
      support::Json args = support::Json::object();
      for (const auto &[key, value] : event.args) args.set(key, value);
      e.set("args", std::move(args));
    }
    trace_events.push_back(std::move(e));
  }

  support::Json doc = support::Json::object();
  doc.set("displayTimeUnit", "ms");
  doc.set("traceEvents", std::move(trace_events));

  support::Json other = support::Json::object();
  for (const auto &[name, value] : recorder.counters()) other.set(name, value);
  for (const auto &[name, value] : recorder.gauges()) other.set(name, value);
  for (const auto &[name, summary] : recorder.histograms()) {
    support::Json h = support::Json::object();
    h.set("count", summary.count);
    h.set("mean", summary.mean);
    h.set("p95", summary.p95);
    h.set("p99", summary.p99);
    other.set(name, std::move(h));
  }
  if (other.size() > 0) doc.set("otherData", std::move(other));
  return doc;
}

support::Status write_chrome_trace(const TraceRecorder &recorder,
                                   const std::string &path) {
  std::ofstream out(path);
  if (!out)
    return support::Status::failure("obs: cannot open trace file '" + path + "'",
                                    support::ErrorCode::NotFound);
  out << chrome_trace_json(recorder).dump(2) << "\n";
  if (!out)
    return support::Status::failure("obs: failed writing trace file '" + path +
                                        "'",
                                    support::ErrorCode::Internal);
  return support::Status::ok();
}

std::string summary_table(const TraceRecorder &recorder) {
  struct Group {
    std::size_t count = 0;
    double total_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::pair<std::string, std::string>, Group> groups;
  for (const TraceEvent &event : recorder.events()) {
    Group &g = groups[{event.category, event.name}];
    if (g.count == 0) {
      g.min_us = event.duration_us;
      g.max_us = event.duration_us;
    }
    g.min_us = std::min(g.min_us, event.duration_us);
    g.max_us = std::max(g.max_us, event.duration_us);
    g.total_us += event.duration_us;
    ++g.count;
  }

  std::string out;
  if (!groups.empty()) {
    support::Table spans({"category", "span", "count", "total [ms]",
                          "mean [ms]", "min [ms]", "max [ms]"});
    for (const auto &[key, g] : groups) {
      spans.add_row({key.first, key.second, std::to_string(g.count),
                     format_ms(g.total_us / 1000.0),
                     format_ms(g.total_us / 1000.0 /
                               static_cast<double>(g.count)),
                     format_ms(g.min_us / 1000.0), format_ms(g.max_us / 1000.0)});
    }
    out += spans.render();
  }

  auto counters = recorder.counters();
  auto gauges = recorder.gauges();
  if (!counters.empty() || !gauges.empty()) {
    if (!out.empty()) out += "\n";
    support::Table metrics({"metric", "kind", "value"});
    for (const auto &[name, value] : counters)
      metrics.add_row({name, "counter", std::to_string(value)});
    for (const auto &[name, value] : gauges)
      metrics.add_row({name, "gauge", format_value(value)});
    out += metrics.render();
  }

  auto histograms = recorder.histograms();
  if (!histograms.empty()) {
    if (!out.empty()) out += "\n";
    support::Table table(
        {"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto &[name, s] : histograms) {
      table.add_row({name, std::to_string(s.count), format_value(s.mean),
                     format_value(s.p50), format_value(s.p95),
                     format_value(s.p99), format_value(s.max)});
    }
    out += table.render();
  }
  return out;
}

}  // namespace everest::obs
