// everest/obs/metrics.hpp
//
// Typed metrics for the observability layer (paper §VI-A: the runtime
// "monitors the cluster"; §IV: per-stage reporting of the basecamp flow).
// Counters and gauges are lock-free; histograms keep their samples so the
// summary exporter can report exact quantiles for the deterministic
// simulation runs the experiments use.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace everest::obs {

/// Monotonically increasing event count (e.g. dfg node invocations).
class Counter {
public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. allocated device bytes).
class Gauge {
public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

private:
  std::atomic<double> value_{0.0};
};

/// Distribution of observed samples with exact summary statistics.
class Histogram {
public:
  void record(double sample);

  struct Summary {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  /// Exact over all recorded samples (sorts a copy; fine at tracing volumes).
  [[nodiscard]] Summary summarize() const;

private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

}  // namespace everest::obs
