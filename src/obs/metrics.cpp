#include "obs/metrics.hpp"

#include <algorithm>

namespace everest::obs {

void Histogram::record(double sample) {
  std::lock_guard<std::mutex> lock(mu_);
  samples_.push_back(sample);
}

Histogram::Summary Histogram::summarize() const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = samples_;
  }
  Summary s;
  s.count = sorted.size();
  if (sorted.empty()) return s;
  std::sort(sorted.begin(), sorted.end());
  for (double v : sorted) s.sum += v;
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = s.sum / static_cast<double>(s.count);
  auto quantile = [&](double q) {
    auto idx = static_cast<std::size_t>(q * static_cast<double>(s.count - 1));
    return sorted[idx];
  };
  s.p50 = quantile(0.5);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

}  // namespace everest::obs
