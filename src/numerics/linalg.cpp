#include "numerics/linalg.hpp"

#include <cmath>
#include <stdexcept>

namespace everest::numerics {

namespace {

void require_matrix(const Tensor &t, const char *what) {
  if (t.rank() != 2) throw std::invalid_argument(std::string(what) + ": expected rank-2 tensor");
}

}  // namespace

Tensor matmul(const Tensor &a, const Tensor &b) {
  require_matrix(a, "matmul lhs");
  require_matrix(b, "matmul rhs");
  std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (b.dim(0) != k) throw std::invalid_argument("matmul: inner dims differ");
  Tensor c(Shape{m, n});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) {
      double aip = a(i, p);
      if (aip == 0.0) continue;
      for (std::int64_t j = 0; j < n; ++j) c(i, j) += aip * b(p, j);
    }
  }
  return c;
}

Tensor matvec(const Tensor &a, const Tensor &x) {
  require_matrix(a, "matvec lhs");
  if (x.rank() != 1) throw std::invalid_argument("matvec: rhs must be rank-1");
  std::int64_t m = a.dim(0), k = a.dim(1);
  if (x.dim(0) != k) throw std::invalid_argument("matvec: dims differ");
  Tensor y(Shape{m});
  for (std::int64_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (std::int64_t p = 0; p < k; ++p) s += a(i, p) * x(p);
    y(i) = s;
  }
  return y;
}

Tensor transpose(const Tensor &a) {
  require_matrix(a, "transpose");
  Tensor t(Shape{a.dim(1), a.dim(0)});
  for (std::int64_t i = 0; i < a.dim(0); ++i)
    for (std::int64_t j = 0; j < a.dim(1); ++j) t(j, i) = a(i, j);
  return t;
}

support::Expected<Tensor> cholesky(const Tensor &a) {
  require_matrix(a, "cholesky");
  std::int64_t n = a.dim(0);
  if (a.dim(1) != n)
    return support::Error::make("cholesky: matrix must be square");
  Tensor l(Shape{n, n});
  for (std::int64_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::int64_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0)
      return support::Error::make("cholesky: matrix is not positive definite");
    double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (std::int64_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::int64_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return l;
}

Tensor forward_substitute(const Tensor &l, const Tensor &b) {
  std::int64_t n = l.dim(0);
  Tensor y(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    double s = b(i);
    for (std::int64_t k = 0; k < i; ++k) s -= l(i, k) * y(k);
    y(i) = s / l(i, i);
  }
  return y;
}

Tensor backward_substitute_transposed(const Tensor &l, const Tensor &y) {
  std::int64_t n = l.dim(0);
  Tensor x(Shape{n});
  for (std::int64_t i = n - 1; i >= 0; --i) {
    double s = y(i);
    for (std::int64_t k = i + 1; k < n; ++k) s -= l(k, i) * x(k);
    x(i) = s / l(i, i);
  }
  return x;
}

support::Expected<Tensor> cholesky_solve(const Tensor &a, const Tensor &b) {
  auto l = cholesky(a);
  if (!l) return l.error();
  Tensor y = forward_substitute(*l, b);
  return backward_substitute_transposed(*l, y);
}

Tensor identity(std::int64_t n) {
  Tensor i(Shape{n, n});
  for (std::int64_t k = 0; k < n; ++k) i(k, k) = 1.0;
  return i;
}

double log_det_from_cholesky(const Tensor &l) {
  double s = 0.0;
  for (std::int64_t i = 0; i < l.dim(0); ++i) s += std::log(l(i, i));
  return 2.0 * s;
}

}  // namespace everest::numerics
