#include "numerics/formats.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace everest::numerics {

// ---------------------------------------------------------------- FixedPoint

FixedPointFormat::FixedPointFormat(int total_bits, int frac_bits,
                                   bool is_signed)
    : total_bits_(total_bits), frac_bits_(frac_bits), is_signed_(is_signed) {
  if (total_bits < 2 || total_bits > 62)
    throw std::invalid_argument("fixed: total_bits must be in [2, 62]");
  if (frac_bits < 0 || frac_bits >= total_bits + 32)
    throw std::invalid_argument("fixed: bad frac_bits");
  scale_ = std::ldexp(1.0, frac_bits_);
  scale_inv_ = std::ldexp(1.0, -frac_bits_);
  if (is_signed_) {
    max_code_ = (std::int64_t{1} << (total_bits_ - 1)) - 1;
    min_code_ = -(std::int64_t{1} << (total_bits_ - 1));
  } else {
    max_code_ = (std::int64_t{1} << total_bits_) - 1;
    min_code_ = 0;
  }
}

std::int64_t FixedPointFormat::encode(double x) const {
  if (std::isnan(x)) return 0;
  double scaled = x * scale_;
  if (scaled >= static_cast<double>(max_code_)) return max_code_;
  if (scaled <= static_cast<double>(min_code_)) return min_code_;
  return static_cast<std::int64_t>(std::nearbyint(scaled));
}

double FixedPointFormat::decode(std::int64_t code) const {
  return static_cast<double>(code) * scale_inv_;
}

double FixedPointFormat::quantize(double x) const { return decode(encode(x)); }

double FixedPointFormat::max_value() const { return decode(max_code_); }
double FixedPointFormat::min_value() const { return decode(min_code_); }

std::string FixedPointFormat::name() const {
  return std::string(is_signed_ ? "fixed<" : "ufixed<") +
         std::to_string(total_bits_) + "," + std::to_string(frac_bits_) + ">";
}

// ----------------------------------------------------------------- MiniFloat

MiniFloatFormat::MiniFloatFormat(int exp_bits, int mant_bits)
    : exp_bits_(exp_bits), mant_bits_(mant_bits) {
  if (exp_bits < 2 || exp_bits > 11)
    throw std::invalid_argument("minifloat: exp_bits must be in [2, 11]");
  if (mant_bits < 1 || mant_bits > 52)
    throw std::invalid_argument("minifloat: mant_bits must be in [1, 52]");
  bias_ = (1 << (exp_bits_ - 1)) - 1;
  // Max exponent field (all ones) encodes inf/nan, so emax == bias.
  max_finite_ =
      (2.0 - std::ldexp(1.0, -mant_bits_)) * std::ldexp(1.0, bias_);
  min_normal_ = std::ldexp(1.0, 1 - bias_);
}

double MiniFloatFormat::quantize(double x) const {
  if (std::isnan(x) || x == 0.0 || std::isinf(x)) return x;
  bool neg = std::signbit(x);
  double a = std::fabs(x);
  int emin = 1 - bias_;
  int p = std::ilogb(a);
  if (p < emin) p = emin;  // subnormal range has a fixed quantum
  double quantum = std::ldexp(1.0, p - mant_bits_);
  double v = std::nearbyint(a / quantum) * quantum;
  if (v > max_finite_)
    return neg ? -std::numeric_limits<double>::infinity()
               : std::numeric_limits<double>::infinity();
  return neg ? -v : v;
}

std::string MiniFloatFormat::name() const {
  return "float<" + std::to_string(exp_bits_) + "," +
         std::to_string(mant_bits_) + ">";
}

// --------------------------------------------------------------------- Posit

PositFormat::PositFormat(int nbits, int es) : nbits_(nbits), es_(es) {
  if (nbits < 3 || nbits > 63)
    throw std::invalid_argument("posit: nbits must be in [3, 63]");
  if (es < 0 || es > 4) throw std::invalid_argument("posit: es must be in [0, 4]");
  mask_ = (std::uint64_t{1} << nbits_) - 1;
}

std::uint64_t PositFormat::encode(double x) const {
  if (x == 0.0) return 0;
  std::uint64_t nar = std::uint64_t{1} << (nbits_ - 1);
  if (!std::isfinite(x)) return nar;  // NaR

  bool neg = x < 0.0;
  double a = std::fabs(x);
  int p = std::ilogb(a);
  double m = std::ldexp(a, -p);  // significand in [1, 2)
  if (m >= 2.0) {
    m *= 0.5;
    ++p;
  }
  int k = p >> es_;  // floor division (C++20 defines >> for negatives)
  int e = p - (k << es_);

  // Assemble the unrounded bit pattern after the sign bit, MSB first:
  // regime | es exponent bits | fraction bits.
  std::vector<int> bits;
  if (k >= 0) {
    bits.insert(bits.end(), static_cast<std::size_t>(k) + 1, 1);
    bits.push_back(0);
  } else {
    bits.insert(bits.end(), static_cast<std::size_t>(-k), 0);
    bits.push_back(1);
  }
  for (int i = es_ - 1; i >= 0; --i) bits.push_back((e >> i) & 1);
  double frac = m - 1.0;
  for (int i = 0; i < 64; ++i) {
    frac *= 2.0;
    int b = frac >= 1.0 ? 1 : 0;
    bits.push_back(b);
    frac -= b;
  }

  // Posit rounding is round-to-nearest-even in pattern space: round the
  // (nbits-1)-bit unsigned integer formed by the pattern prefix.
  int avail = nbits_ - 1;
  std::uint64_t val = 0;
  for (int i = 0; i < avail; ++i)
    val = (val << 1) |
          static_cast<std::uint64_t>(i < static_cast<int>(bits.size()) ? bits[static_cast<std::size_t>(i)] : 0);
  int guard = avail < static_cast<int>(bits.size()) ? bits[static_cast<std::size_t>(avail)] : 0;
  bool sticky = false;
  for (std::size_t i = static_cast<std::size_t>(avail) + 1; i < bits.size(); ++i) {
    if (bits[i]) {
      sticky = true;
      break;
    }
  }
  if (guard && (sticky || (val & 1))) ++val;

  std::uint64_t maxpos = (std::uint64_t{1} << avail) - 1;
  if (val == 0) val = 1;        // underflow rounds to minpos, never to zero
  if (val > maxpos) val = maxpos;  // overflow saturates at maxpos

  std::uint64_t code = val;
  if (neg) code = (~code + 1) & mask_;
  return code;
}

double PositFormat::decode(std::uint64_t code) const {
  code &= mask_;
  if (code == 0) return 0.0;
  std::uint64_t nar = std::uint64_t{1} << (nbits_ - 1);
  if (code == nar) return std::numeric_limits<double>::quiet_NaN();

  bool neg = (code & nar) != 0;
  if (neg) code = (~code + 1) & mask_;

  int avail = nbits_ - 1;
  auto bit = [&](int i) -> int {
    return static_cast<int>((code >> (avail - 1 - i)) & 1);
  };

  int r0 = bit(0);
  int i = 1;
  while (i < avail && bit(i) == r0) ++i;
  int run = i;
  int k = r0 ? run - 1 : -run;
  int pos = run + (i < avail ? 1 : 0);  // skip the regime terminator

  int e = 0;
  for (int j = 0; j < es_; ++j) {
    e <<= 1;
    if (pos < avail) {
      e |= bit(pos);
      ++pos;
    }
  }

  double frac = 1.0;
  double w = 0.5;
  for (; pos < avail; ++pos) {
    if (bit(pos)) frac += w;
    w *= 0.5;
  }

  double val = std::ldexp(frac, (k << es_) + e);
  return neg ? -val : val;
}

double PositFormat::quantize(double x) const { return decode(encode(x)); }

std::string PositFormat::name() const {
  return "posit<" + std::to_string(nbits_) + "," + std::to_string(es_) + ">";
}

// ----------------------------------------------------------------- utilities

double quantize_span(const NumberFormat &fmt, std::span<double> xs) {
  double max_err = 0.0;
  for (double &x : xs) {
    double q = fmt.quantize(x);
    double err = std::fabs(q - x);
    if (err > max_err) max_err = err;
    x = q;
  }
  return max_err;
}

}  // namespace everest::numerics
