#include "numerics/tensor.hpp"

#include "support/strings.hpp"

namespace everest::numerics {

std::string Tensor::to_string(std::size_t max_elems) const {
  std::string out = "tensor<";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i != 0) out += 'x';
    out += std::to_string(shape_[i]);
  }
  out += ">[";
  std::size_t n = std::min(max_elems, data_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out += ", ";
    out += support::format_double(data_[i]);
  }
  if (n < data_.size()) out += ", ...";
  out += ']';
  return out;
}

}  // namespace everest::numerics
