// everest/numerics/formats.hpp
//
// Custom binary numeral types backing the EVEREST `base2`/`bit` dialects
// (paper §V-B, refs [7][12][24]): parametric fixed-point, minifloat, and
// posit formats with exact encode/decode semantics. The HLS engine consumes
// the bit widths for area modeling; the quantization pipeline (experiment E4)
// uses them to measure accuracy/resource tradeoffs on real kernels.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace everest::numerics {

/// Common interface: a format quantizes a double to the nearest representable
/// value and reports its storage width.
class NumberFormat {
public:
  virtual ~NumberFormat() = default;
  /// Rounds `x` to the nearest representable value (saturating).
  [[nodiscard]] virtual double quantize(double x) const = 0;
  /// Storage width in bits.
  [[nodiscard]] virtual int bit_width() const = 0;
  /// Human-readable name, e.g. "fixed<16,8>", "posit<16,1>".
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Two's-complement fixed point with `total_bits` total and `frac_bits`
/// fractional bits. Round-to-nearest-even, saturating at the range limits.
class FixedPointFormat final : public NumberFormat {
public:
  FixedPointFormat(int total_bits, int frac_bits, bool is_signed = true);

  [[nodiscard]] double quantize(double x) const override;
  [[nodiscard]] int bit_width() const override { return total_bits_; }
  [[nodiscard]] std::string name() const override;

  /// Raw encode/decode to the underlying integer code (for bit-true tests).
  [[nodiscard]] std::int64_t encode(double x) const;
  [[nodiscard]] double decode(std::int64_t code) const;

  [[nodiscard]] double resolution() const { return scale_inv_; }
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double min_value() const;

private:
  int total_bits_;
  int frac_bits_;
  bool is_signed_;
  double scale_;      // 2^frac_bits
  double scale_inv_;  // 2^-frac_bits
  std::int64_t max_code_;
  std::int64_t min_code_;
};

/// IEEE-style minifloat with parametric exponent/mantissa widths, one sign
/// bit, subnormals, and round-to-nearest-even. exp_bits in [2,11],
/// mant_bits in [1,52].
class MiniFloatFormat final : public NumberFormat {
public:
  MiniFloatFormat(int exp_bits, int mant_bits);

  [[nodiscard]] double quantize(double x) const override;
  [[nodiscard]] int bit_width() const override { return 1 + exp_bits_ + mant_bits_; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double max_finite() const { return max_finite_; }

private:
  int exp_bits_;
  int mant_bits_;
  int bias_;
  double max_finite_;
  double min_normal_;
};

/// Posit<nbits, es> per the posit standard: sign, regime (run-length encoded),
/// es exponent bits, fraction. No subnormals/overflow — tapered precision.
class PositFormat final : public NumberFormat {
public:
  PositFormat(int nbits, int es);

  [[nodiscard]] double quantize(double x) const override;
  [[nodiscard]] int bit_width() const override { return nbits_; }
  [[nodiscard]] std::string name() const override;

  /// Bit-level encode/decode (codes are nbits-wide two's complement values).
  [[nodiscard]] std::uint64_t encode(double x) const;
  [[nodiscard]] double decode(std::uint64_t code) const;

private:
  int nbits_;
  int es_;
  std::uint64_t mask_;  // low nbits set
};

/// Quantizes every element of `xs` in place with `fmt`; returns the max
/// absolute quantization error introduced.
double quantize_span(const NumberFormat &fmt, std::span<double> xs);

}  // namespace everest::numerics
