// everest/numerics/linalg.hpp
//
// Dense linear algebra on rank-2 tensors: enough for the use-case kernels
// (Kernel Ridge regression solve, GMM covariance handling, CNN layers).
#pragma once

#include "numerics/tensor.hpp"
#include "support/expected.hpp"

namespace everest::numerics {

/// C = A * B for rank-2 tensors with inner dimensions matching.
Tensor matmul(const Tensor &a, const Tensor &b);

/// y = A * x for rank-2 A and rank-1 x.
Tensor matvec(const Tensor &a, const Tensor &x);

/// Transpose of a rank-2 tensor.
Tensor transpose(const Tensor &a);

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular L with A = L L^T, or an error if A is not SPD.
support::Expected<Tensor> cholesky(const Tensor &a);

/// Solves A x = b via Cholesky for SPD A (used by Kernel Ridge with the
/// ridge term guaranteeing positive definiteness).
support::Expected<Tensor> cholesky_solve(const Tensor &a, const Tensor &b);

/// Solves L y = b (forward) and L^T x = y (backward) given lower L.
Tensor forward_substitute(const Tensor &l, const Tensor &b);
Tensor backward_substitute_transposed(const Tensor &l, const Tensor &y);

/// Identity matrix of size n.
Tensor identity(std::int64_t n);

/// Log-determinant of SPD matrix from its Cholesky factor.
double log_det_from_cholesky(const Tensor &l);

}  // namespace everest::numerics
