// everest/numerics/tensor.hpp
//
// Dense dynamic-rank tensor of doubles: the runtime data structure behind the
// EKL / TeIL / ESN interpreters and the use-case kernels. Row-major layout.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace everest::numerics {

/// Shape of a tensor; empty shape denotes a scalar.
using Shape = std::vector<std::int64_t>;

/// Number of elements in a shape (1 for scalars).
inline std::int64_t num_elements(const Shape &shape) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

/// Row-major strides for a shape.
inline std::vector<std::int64_t> row_major_strides(const Shape &shape) {
  std::vector<std::int64_t> strides(shape.size(), 1);
  for (std::size_t i = shape.size(); i > 1; --i)
    strides[i - 2] = strides[i - 1] * shape[i - 1];
  return strides;
}

/// Dense row-major tensor of doubles with value semantics.
class Tensor {
public:
  Tensor() = default;

  explicit Tensor(Shape shape, double fill = 0.0)
      : shape_(validated(std::move(shape))),
        strides_(row_major_strides(shape_)),
        data_(static_cast<std::size_t>(num_elements(shape_)), fill) {}

  Tensor(Shape shape, std::vector<double> data)
      : shape_(validated(std::move(shape))),
        strides_(row_major_strides(shape_)),
        data_(std::move(data)) {
    if (static_cast<std::int64_t>(data_.size()) != num_elements(shape_))
      throw std::invalid_argument("tensor: data size does not match shape");
  }

  static Tensor scalar(double v) { return Tensor(Shape{}, {v}); }

  [[nodiscard]] const Shape &shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(data_.size());
  }
  [[nodiscard]] std::int64_t dim(std::size_t i) const { return shape_.at(i); }

  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }

  /// Flat element access.
  double &flat(std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  double flat(std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Multi-index access; index count must equal rank.
  double &at(std::span<const std::int64_t> idx) {
    return data_[static_cast<std::size_t>(offset(idx))];
  }
  double at(std::span<const std::int64_t> idx) const {
    return data_[static_cast<std::size_t>(offset(idx))];
  }

  /// Variadic convenience accessors.
  template <typename... I>
  double &operator()(I... is) {
    std::int64_t idx[] = {static_cast<std::int64_t>(is)...};
    return at(std::span<const std::int64_t>(idx, sizeof...(is)));
  }
  template <typename... I>
  double operator()(I... is) const {
    std::int64_t idx[] = {static_cast<std::int64_t>(is)...};
    return at(std::span<const std::int64_t>(idx, sizeof...(is)));
  }

  /// Returns a copy with the same data and a new compatible shape.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const {
    if (num_elements(new_shape) != size())
      throw std::invalid_argument("tensor: reshape changes element count");
    return Tensor(std::move(new_shape), data_);
  }

  /// Elementwise in-place operations.
  Tensor &operator+=(const Tensor &rhs) { return zip(rhs, [](double &a, double b) { a += b; }); }
  Tensor &operator-=(const Tensor &rhs) { return zip(rhs, [](double &a, double b) { a -= b; }); }
  Tensor &operator*=(const Tensor &rhs) { return zip(rhs, [](double &a, double b) { a *= b; }); }
  Tensor &operator*=(double s) {
    for (double &x : data_) x *= s;
    return *this;
  }

  bool same_shape(const Tensor &other) const { return shape_ == other.shape_; }

  /// Sum of all elements.
  [[nodiscard]] double sum() const {
    return std::accumulate(data_.begin(), data_.end(), 0.0);
  }

  /// Short debug rendering: "tensor<2x3>[...first elems...]".
  [[nodiscard]] std::string to_string(std::size_t max_elems = 8) const;

private:
  static Shape validated(Shape shape) {
    for (auto d : shape) {
      if (d < 0) throw std::invalid_argument("tensor: negative dimension");
    }
    return shape;
  }

  template <typename F>
  Tensor &zip(const Tensor &rhs, F f) {
    if (!same_shape(rhs))
      throw std::invalid_argument("tensor: shape mismatch in elementwise op");
    for (std::size_t i = 0; i < data_.size(); ++i) f(data_[i], rhs.data_[i]);
    return *this;
  }

  [[nodiscard]] std::int64_t offset(std::span<const std::int64_t> idx) const {
    assert(idx.size() == shape_.size());
    std::int64_t off = 0;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      assert(idx[i] >= 0 && idx[i] < shape_[i]);
      off += idx[i] * strides_[i];
    }
    return off;
  }

  Shape shape_;
  std::vector<std::int64_t> strides_;
  std::vector<double> data_;
};

}  // namespace everest::numerics
