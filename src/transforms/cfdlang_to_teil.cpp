#include "transforms/cfdlang_to_teil.hpp"

#include <map>
#include <string>
#include <vector>

#include "ir/builder.hpp"

namespace everest::transforms {

namespace {

using ir::Attribute;
using ir::Operation;
using ir::Type;
using ir::Value;
using support::Error;
using support::Expected;

/// Letters assigned to tensor dims for teil.contract subscripts.
char letter(std::size_t i) { return static_cast<char>('a' + i); }

}  // namespace

Expected<std::shared_ptr<ir::Module>> lower_cfdlang_to_teil(
    const ir::Module &module) {
  const Operation *program = nullptr;
  for (const Operation &op : module.body().operations()) {
    if (op.name() == "cfdlang.program") {
      program = &op;
      break;
    }
  }
  if (!program) return Error::make("cfdlang->teil: no cfdlang.program");

  auto out = std::make_shared<ir::Module>();
  Operation *func = Operation::create(
      out->arena(), ir::Symbol("teil.func"), {}, {},
      {{"sym_name", Attribute(program->attr_string("sym_name"))}}, 1);
  ir::Block &body = func->region(0).add_block();
  out->body().attach(func);
  ir::OpBuilder b(&body);

  std::map<const Value *, Value *> mapped;

  for (const Operation &op : program->region(0).front().operations()) {
    const std::string &name = op.name();

    if (name == "cfdlang.input") {
      mapped[op.result(0)] =
          b.create_value("teil.input", {}, op.result(0)->type(),
                         {{"name", Attribute(op.attr_string("name"))}});
    } else if (name == "cfdlang.add") {
      mapped[op.result(0)] = b.create_value(
          "teil.map", {mapped.at(op.operand(0)), mapped.at(op.operand(1))},
          op.result(0)->type(), {{"fn", Attribute("add")}});
    } else if (name == "cfdlang.outer") {
      // outer(a, b): einsum "ab..,cd..->ab..cd.." with disjoint letters.
      std::size_t ra = op.operand(0)->type().is_tensor()
                           ? op.operand(0)->type().dims().size()
                           : 0;
      std::size_t rb = op.operand(1)->type().is_tensor()
                           ? op.operand(1)->type().dims().size()
                           : 0;
      std::string ls, rs, os;
      for (std::size_t i = 0; i < ra; ++i) ls += letter(i);
      for (std::size_t i = 0; i < rb; ++i) rs += letter(ra + i);
      os = ls + rs;
      mapped[op.result(0)] = b.create_value(
          "teil.contract", {mapped.at(op.operand(0)), mapped.at(op.operand(1))},
          op.result(0)->type(),
          {{"lhs", Attribute(ls)}, {"rhs", Attribute(rs)}, {"out", Attribute(os)}});
    } else if (name == "cfdlang.contract") {
      // Self-contraction: repeated letters on the paired dims, summed out.
      auto pairs = op.attr("pairs")->as_int_vector();
      std::size_t rank = op.operand(0)->type().dims().size();
      std::vector<char> subs(rank, 0);
      for (std::size_t d = 0; d < rank; ++d) subs[d] = letter(d);
      for (std::size_t k = 0; k < pairs.size(); k += 2) {
        subs[static_cast<std::size_t>(pairs[k + 1])] =
            subs[static_cast<std::size_t>(pairs[k])];
      }
      std::vector<bool> dropped(rank, false);
      for (std::size_t k = 0; k < pairs.size(); k += 2) {
        dropped[static_cast<std::size_t>(pairs[k])] = true;
        dropped[static_cast<std::size_t>(pairs[k + 1])] = true;
      }
      std::string ls(subs.begin(), subs.end());
      std::string os;
      for (std::size_t d = 0; d < rank; ++d) {
        if (!dropped[d]) os += subs[d];
      }
      Value *one = b.create_value("teil.constant", {}, Type::floating(64),
                                  {{"value", Attribute(1.0)}});
      mapped[op.result(0)] = b.create_value(
          "teil.contract", {mapped.at(op.operand(0)), one},
          op.result(0)->type(),
          {{"lhs", Attribute(ls)}, {"rhs", Attribute("")}, {"out", Attribute(os)}});
    } else if (name == "cfdlang.transpose") {
      mapped[op.result(0)] = b.create_value(
          "teil.transpose", {mapped.at(op.operand(0))}, op.result(0)->type(),
          {{"perm", *op.attr("perm")}});
    } else if (name == "cfdlang.output") {
      b.create("teil.output", {mapped.at(op.operand(0))}, {},
               {{"name", Attribute(op.attr_string("name"))}});
    } else {
      return Error::make("cfdlang->teil: unsupported op '" + name + "'");
    }
  }
  return out;
}

}  // namespace everest::transforms
