#include "transforms/teil_to_loops.hpp"

#include <map>
#include <vector>

#include "ir/builder.hpp"

namespace everest::transforms {

namespace {

using ir::Attribute;
using ir::Operation;
using ir::Type;
using ir::Value;
using support::Error;
using support::Expected;

constexpr std::int64_t kElementBytes = 8;  // f64 datapath by default

/// Builds one scf.for nest over `shape`. Returns a builder positioned inside
/// the innermost body (before its scf.yield) plus the induction variables.
struct LoopNest {
  ir::OpBuilder body;
  std::vector<Value *> ivs;
};

LoopNest emit_loop_nest(ir::OpBuilder b, const std::vector<std::int64_t> &shape) {
  std::vector<Value *> ivs;
  for (std::int64_t extent : shape) {
    Value *lo = b.constant_index(0);
    Value *hi = b.constant_index(extent);
    Value *step = b.constant_index(1);
    Operation &loop = b.create("scf.for", {lo, hi, step}, {},
                               {{"trip_count", Attribute(extent)}}, 1);
    ir::Block &body = loop.region(0).add_block();
    Value &iv = body.add_argument(Type::index());
    ivs.push_back(&iv);
    ir::OpBuilder inner(&body);
    Operation &yield = inner.create("scf.yield", {}, {});
    inner.set_insertion_point(&yield);
    b = inner;
  }
  return LoopNest{b, std::move(ivs)};
}

class LoopLowering {
public:
  explicit LoopLowering(const Operation &func) : func_(func) {}

  Expected<std::shared_ptr<ir::Module>> run() {
    auto out = std::make_shared<ir::Module>();
    Operation *fn = Operation::create(
        out->arena(), ir::Symbol("func.func"), {}, {},
        {{"sym_name", Attribute(func_.attr_string("sym_name"))}}, 1);
    ir::Block &body = fn->region(0).add_block();
    out->body().attach(fn);
    ir::OpBuilder b(&body);

    for (const Operation &op : func_.region(0).front().operations()) {
      if (auto s = lower(b, op); !s.is_ok())
        return Error::make(s.message());
    }
    return out;
  }

private:
  static std::vector<std::int64_t> shape_of(const Type &t) {
    return t.is_tensor() ? t.dims() : std::vector<std::int64_t>{};
  }

  Value *alloc_buffer(ir::OpBuilder &b, const Type &t,
                      ir::AttrDict extra = {}) {
    std::int64_t elems = t.is_tensor() ? t.num_elements() : 1;
    extra.set("bytes", Attribute(elems * kElementBytes));
    return b.create_value("memref.alloc", {}, t, std::move(extra));
  }

  Value *load(ir::OpBuilder &b, Value *buffer, std::vector<Value *> idx) {
    std::vector<Value *> operands{buffer};
    operands.insert(operands.end(), idx.begin(), idx.end());
    Type elem = buffer->type().is_tensor() ? buffer->type().element()
                                           : buffer->type();
    return b.create_value("memref.load", operands, elem);
  }

  void store(ir::OpBuilder &b, Value *value, Value *buffer,
             std::vector<Value *> idx) {
    std::vector<Value *> operands{value, buffer};
    operands.insert(operands.end(), idx.begin(), idx.end());
    b.create("memref.store", operands, {});
  }

  support::Status lower(ir::OpBuilder &b, const Operation &op) {
    const std::string &name = op.name();
    Type f64 = Type::floating(64);

    if (name == "teil.output") {
      Value *out = alloc_buffer(b, op.operand(0)->type(),
                                {{"name", Attribute(op.attr_string("name"))},
                                 {"kind", Attribute("output")}});
      b.create("memref.copy", {buffers_.at(op.operand(0)), out}, {});
      return support::Status::ok();
    }

    const Type &rt = op.result(0)->type();
    auto out_shape = shape_of(rt);

    if (name == "teil.input") {
      buffers_[op.result(0)] =
          alloc_buffer(b, rt,
                       {{"name", Attribute(op.attr_string("name"))},
                        {"kind", Attribute("input")}});
      return support::Status::ok();
    }

    Value *result = alloc_buffer(b, rt);
    buffers_[op.result(0)] = result;

    if (name == "teil.constant") {
      auto nest = emit_loop_nest(b, out_shape);
      Value *c = nest.body.constant_f64(op.attr_double("value"));
      store(nest.body, c, result, nest.ivs);
    } else if (name == "teil.iota") {
      auto nest = emit_loop_nest(b, out_shape);
      Value *as_f64 =
          nest.body.create_value("arith.sitofp", {nest.ivs[0]}, f64);
      store(nest.body, as_f64, result, nest.ivs);
    } else if (name == "teil.map") {
      auto nest = emit_loop_nest(b, out_shape);
      std::vector<Value *> args;
      for (std::size_t i = 0; i < op.num_operands(); ++i)
        args.push_back(load(nest.body, buffers_.at(op.operand(i)), nest.ivs));
      Value *v = emit_scalar_fn(nest.body, op.attr_string("fn"), args);
      if (!v) return support::Status::failure("teil->loops: unknown fn '" +
                                              op.attr_string("fn") + "'");
      store(nest.body, v, result, nest.ivs);
    } else if (name == "teil.broadcast") {
      auto map = op.attr("map")->as_int_vector();
      auto nest = emit_loop_nest(b, out_shape);
      std::size_t src_rank = shape_of(op.operand(0)->type()).size();
      std::vector<Value *> src_idx(src_rank, nullptr);
      for (std::size_t d = 0; d < map.size(); ++d) {
        if (map[d] >= 0)
          src_idx[static_cast<std::size_t>(map[d])] = nest.ivs[d];
      }
      Value *v = load(nest.body, buffers_.at(op.operand(0)), src_idx);
      store(nest.body, v, result, nest.ivs);
    } else if (name == "teil.reduce") {
      // Zero-init, then accumulate over the full source space.
      {
        auto init = emit_loop_nest(b, out_shape);
        Value *zero = init.body.constant_f64(0.0);
        store(init.body, zero, result, init.ivs);
      }
      auto src_shape = shape_of(op.operand(0)->type());
      auto axes = op.attr("axes")->as_int_vector();
      std::vector<bool> reduced(src_shape.size(), false);
      for (auto a : axes) reduced[static_cast<std::size_t>(a)] = true;
      // Reduced dims iterate outer, kept dims inner, so the accumulator
      // address changes every innermost iteration (no pipeline recurrence
      // when any output dim exists).
      std::vector<std::size_t> order;
      for (std::size_t d = 0; d < src_shape.size(); ++d)
        if (reduced[d]) order.push_back(d);
      for (std::size_t d = 0; d < src_shape.size(); ++d)
        if (!reduced[d]) order.push_back(d);
      std::vector<std::int64_t> nest_shape;
      for (std::size_t d : order) nest_shape.push_back(src_shape[d]);
      auto nest = emit_loop_nest(b, nest_shape);
      std::vector<Value *> src_idx(src_shape.size(), nullptr);
      for (std::size_t k = 0; k < order.size(); ++k)
        src_idx[order[k]] = nest.ivs[k];
      std::vector<Value *> out_idx;
      for (std::size_t d = 0; d < src_shape.size(); ++d) {
        if (!reduced[d]) out_idx.push_back(src_idx[d]);
      }
      Value *acc = load(nest.body, result, out_idx);
      Value *v = load(nest.body, buffers_.at(op.operand(0)), src_idx);
      Value *sum = nest.body.create_value("arith.addf", {acc, v}, f64);
      store(nest.body, sum, result, out_idx);
    } else if (name == "teil.gather") {
      auto nest = emit_loop_nest(b, out_shape);
      std::size_t r = shape_of(op.operand(0)->type()).size();
      std::vector<Value *> src_idx;
      for (std::size_t d = 0; d < r; ++d) {
        Value *fidx =
            load(nest.body, buffers_.at(op.operand(d + 1)), nest.ivs);
        Value *iidx = nest.body.create_value("arith.fptosi", {fidx},
                                             Type::index());
        src_idx.push_back(iidx);
      }
      Value *v = load(nest.body, buffers_.at(op.operand(0)), src_idx);
      store(nest.body, v, result, nest.ivs);
    } else if (name == "teil.stack") {
      std::vector<std::int64_t> part_shape(out_shape.begin(),
                                           out_shape.end() - 1);
      for (std::size_t p = 0; p < op.num_operands(); ++p) {
        auto nest = emit_loop_nest(b, part_shape);
        Value *v = load(nest.body, buffers_.at(op.operand(p)), nest.ivs);
        std::vector<Value *> out_idx = nest.ivs;
        out_idx.push_back(nest.body.constant_index(static_cast<std::int64_t>(p)));
        store(nest.body, v, result, out_idx);
      }
    } else if (name == "teil.transpose") {
      auto perm = op.attr("perm")->as_int_vector();
      auto src_shape = shape_of(op.operand(0)->type());
      auto nest = emit_loop_nest(b, src_shape);
      Value *v = load(nest.body, buffers_.at(op.operand(0)), nest.ivs);
      std::vector<Value *> out_idx(perm.size());
      for (std::size_t d = 0; d < perm.size(); ++d)
        out_idx[d] = nest.ivs[static_cast<std::size_t>(perm[d])];
      store(nest.body, v, result, out_idx);
    } else if (name == "teil.contract") {
      std::string ls = op.attr_string("lhs");
      std::string rs = op.attr_string("rhs");
      std::string os = op.attr_string("out");
      auto lhs_shape = shape_of(op.operand(0)->type());
      auto rhs_shape = shape_of(op.operand(1)->type());
      std::map<char, std::int64_t> ext;
      for (std::size_t d = 0; d < ls.size(); ++d) ext[ls[d]] = lhs_shape[d];
      for (std::size_t d = 0; d < rs.size(); ++d) ext[rs[d]] = rhs_shape[d];
      // Contracted letters iterate OUTER, output letters INNER: the store
      // address then varies with the innermost loop, so the accumulation is
      // not a pipeline recurrence (the loop order HLS tools pick for
      // II=1 reductions when an output dim exists).
      std::string all;
      for (auto &[c, e] : ext) {
        if (os.find(c) == std::string::npos) all += c;
      }
      all += os;
      {
        auto init = emit_loop_nest(b, out_shape);
        Value *zero = init.body.constant_f64(0.0);
        store(init.body, zero, result, init.ivs);
      }
      std::vector<std::int64_t> space;
      for (char c : all) space.push_back(ext[c]);
      auto nest = emit_loop_nest(b, space);
      auto pick = [&](const std::string &subs) {
        std::vector<Value *> idx;
        for (char c : subs) idx.push_back(nest.ivs[all.find(c)]);
        return idx;
      };
      Value *l = load(nest.body, buffers_.at(op.operand(0)), pick(ls));
      Value *r2 = load(nest.body, buffers_.at(op.operand(1)), pick(rs));
      Value *prod = nest.body.create_value("arith.mulf", {l, r2}, f64);
      Value *acc = load(nest.body, result, pick(os));
      Value *sum = nest.body.create_value("arith.addf", {acc, prod}, f64);
      store(nest.body, sum, result, pick(os));
    } else {
      return support::Status::failure("teil->loops: unsupported op '" + name +
                                      "'");
    }
    return support::Status::ok();
  }

  Value *emit_scalar_fn(ir::OpBuilder &b, const std::string &fn,
                        const std::vector<Value *> &a) {
    Type f64 = Type::floating(64);
    Type i1 = Type::integer(1);
    auto cmp = [&](const char *pred) {
      Value *c = b.create_value("arith.cmpf", {a[0], a[1]}, i1,
                                {{"predicate", Attribute(pred)}});
      Value *one = b.constant_f64(1.0);
      Value *zero = b.constant_f64(0.0);
      return b.create_value("arith.select", {c, one, zero}, f64);
    };
    if (fn == "add") return b.create_value("arith.addf", {a[0], a[1]}, f64);
    if (fn == "sub") return b.create_value("arith.subf", {a[0], a[1]}, f64);
    if (fn == "mul") return b.create_value("arith.mulf", {a[0], a[1]}, f64);
    if (fn == "div") return b.create_value("arith.divf", {a[0], a[1]}, f64);
    if (fn == "min") return b.create_value("arith.minf", {a[0], a[1]}, f64);
    if (fn == "max") return b.create_value("arith.maxf", {a[0], a[1]}, f64);
    if (fn == "neg") return b.create_value("arith.negf", {a[0]}, f64);
    if (fn == "exp") return b.create_value("arith.exp", {a[0]}, f64);
    if (fn == "sqrt") return b.create_value("arith.sqrt", {a[0]}, f64);
    if (fn == "cmp_le") return cmp("ole");
    if (fn == "cmp_lt") return cmp("olt");
    if (fn == "cmp_ge") return cmp("oge");
    if (fn == "cmp_gt") return cmp("ogt");
    if (fn == "cmp_eq") return cmp("oeq");
    if (fn == "cmp_ne") return cmp("one");
    if (fn == "select" && a.size() == 3) {
      Value *zero = b.constant_f64(0.0);
      Value *c = b.create_value("arith.cmpf", {a[0], zero}, Type::integer(1),
                                {{"predicate", Attribute("one")}});
      return b.create_value("arith.select", {c, a[1], a[2]}, f64);
    }
    return nullptr;
  }

  const Operation &func_;
  std::map<const Value *, Value *> buffers_;
};

}  // namespace

Expected<std::shared_ptr<ir::Module>> lower_teil_to_loops(
    const ir::Module &module) {
  const Operation *func = nullptr;
  for (const Operation &op : module.body().operations()) {
    if (op.name() == "teil.func") {
      func = &op;
      break;
    }
  }
  if (!func) return Error::make("teil->loops: no teil.func in module");
  return LoopLowering(*func).run();
}

}  // namespace everest::transforms
