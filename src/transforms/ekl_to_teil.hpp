// everest/transforms/ekl_to_teil.hpp
//
// Lowers an ekl.kernel (named-index tensor expressions, dynamic shapes) into
// a teil.func (positional static-shape tensor ops) by binding index extents.
// This is the first hop of the Fig. 5 path  ekl -> teil -> loops -> HLS.
#pragma once

#include <memory>

#include "ir/ir.hpp"
#include "support/expected.hpp"
#include "transforms/ekl_eval.hpp"

namespace everest::transforms {

/// Lowers the first ekl.kernel in `module` into a new module holding a
/// teil.func with the same name. Extents come from `bindings` exactly as in
/// evaluation (inputs provide most; explicit extents cover the rest).
support::Expected<std::shared_ptr<ir::Module>> lower_ekl_to_teil(
    const ir::Module &module, const EklBindings &bindings);

}  // namespace everest::transforms
