#include "transforms/dfg_partition.hpp"

#include <algorithm>

namespace everest::transforms {

namespace {

using ir::Operation;
using ir::Value;
using support::Error;
using support::Expected;

struct GraphNode {
  Operation *op;
  std::string name;    // callee
  std::string pinned;  // "", "cpu", or "fpga"
};

}  // namespace

double predict_latency(
    const std::vector<std::string> &order,
    const std::map<std::string, NodeCost> &costs,
    const std::map<std::string, std::string> &placement,
    const std::map<std::string, std::vector<std::string>> &consumers,
    const PlacementBudget &budget) {
  // Pipeline model: stages execute in sequence per batch; a cpu<->fpga
  // boundary edge adds a PCIe transfer of the producer's output bytes.
  double total = 0.0;
  for (const auto &name : order) {
    const NodeCost &c = costs.at(name);
    const std::string &where = placement.at(name);
    total += where == "fpga" ? c.fpga_ms : c.cpu_ms;
    auto it = consumers.find(name);
    if (it == consumers.end()) continue;
    for (const auto &consumer : it->second) {
      if (placement.at(consumer) != where) {
        double ms = budget.transfer_overhead_ms +
                    (c.bytes / (budget.pcie_gbps * 1e6));  // bytes / (GB/s) in ms
        total += ms;
      }
    }
  }
  return total;
}

Expected<PlacementResult> partition_dfg(
    ir::Module &module, const std::map<std::string, NodeCost> &costs,
    const PlacementBudget &budget) {
  Operation *graph = module.find_first("dfg.graph");
  if (!graph) return Error::make("dfg partition: no dfg.graph in module");

  std::vector<GraphNode> nodes;
  std::map<std::string, std::vector<std::string>> consumers;
  std::map<const Value *, std::string> producer_of;

  for (Operation &op : graph->region(0).front().operations()) {
    if (op.name() != "dfg.node" && op.name() != "dfg.fold") continue;
    GraphNode n;
    n.op = &op;
    n.name = op.attr_string("callee");
    n.pinned = op.attr_string("placement", "");
    if (!costs.count(n.name))
      return Error::make("dfg partition: no cost model for '" + n.name + "'");
    // Folds are stateful and ordered; they stay on CPU unless pinned.
    if (op.name() == "dfg.fold" && n.pinned.empty()) n.pinned = "cpu";
    for (std::size_t r = 0; r < op.num_results(); ++r)
      producer_of[op.result(r)] = n.name;
    nodes.push_back(n);
  }
  if (nodes.empty()) return Error::make("dfg partition: graph has no nodes");
  if (nodes.size() > 20)
    return Error::make("dfg partition: exhaustive search capped at 20 nodes");

  for (const auto &n : nodes) {
    for (std::size_t i = 0; i < n.op->num_operands(); ++i) {
      auto it = producer_of.find(n.op->operand(i));
      if (it != producer_of.end()) consumers[it->second].push_back(n.name);
    }
  }
  // Streams ultimately return to the host: dfg.output consumers are the host
  // itself, so a producer placed on the FPGA pays the egress transfer.
  for (Operation &op : graph->region(0).front().operations()) {
    if (op.name() != "dfg.output") continue;
    auto it = producer_of.find(op.operand(0));
    if (it != producer_of.end()) consumers[it->second].push_back("__host");
  }

  std::vector<std::string> order;
  for (const auto &n : nodes) order.push_back(n.name);

  // Free nodes to explore.
  std::vector<std::size_t> free_nodes;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].pinned.empty()) free_nodes.push_back(i);
  }

  PlacementResult best;
  bool found = false;
  const std::size_t combos = std::size_t{1} << free_nodes.size();
  for (std::size_t mask = 0; mask < combos; ++mask) {
    std::map<std::string, std::string> placement;
    placement["__host"] = "cpu";
    std::int64_t luts = 0;
    for (const auto &n : nodes) {
      if (!n.pinned.empty()) placement[n.name] = n.pinned;
    }
    for (std::size_t k = 0; k < free_nodes.size(); ++k) {
      const GraphNode &n = nodes[free_nodes[k]];
      placement[n.name] = (mask >> k) & 1 ? "fpga" : "cpu";
    }
    for (const auto &n : nodes) {
      if (placement[n.name] == "fpga") luts += costs.at(n.name).luts;
    }
    if (luts > budget.available_luts) continue;

    double ms = predict_latency(order, costs, placement, consumers, budget);
    ++best.explored;
    if (!found || ms < best.predicted_ms) {
      best.placement = placement;
      best.predicted_ms = ms;
      best.luts_used = luts;
      found = true;
    }
  }
  if (!found)
    return Error::make("dfg partition: no feasible placement under budget");

  for (auto &n : nodes)
    n.op->set_attr("placement", ir::Attribute(best.placement.at(n.name)));
  return best;
}

}  // namespace everest::transforms
