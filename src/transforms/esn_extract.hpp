// everest/transforms/esn_extract.hpp
//
// The esn (Einstein notation) hop of Fig. 5: raises teil reduce-of-multiply
// trees into n-ary esn.einsum ops, plans a pairwise contraction order
// (naive left-to-right vs greedy size-minimizing — the paper's compiler-level
// optimization decoupling, §VIII), and lowers back to binary teil.contract
// chains.
#pragma once

#include <cstddef>
#include <vector>

#include "ir/ir.hpp"
#include "support/expected.hpp"

namespace everest::transforms {

/// Replaces teil.reduce(mul-tree) patterns with esn.einsum ops. Returns the
/// number of einsums raised. Dead mul/broadcast chains are left for
/// eliminate_dead_code.
std::size_t extract_einsums(ir::Module &module);

/// Estimated scalar flops of executing an esn.einsum with the given pairwise
/// order policy.
struct EinsumPlan {
  /// Sequence of operand-list positions contracted pairwise; after each step
  /// the intermediate takes the smaller position.
  std::vector<std::pair<std::size_t, std::size_t>> steps;
  double estimated_flops = 0.0;
};

/// Plans the contraction order of one esn.einsum. `optimize` selects the
/// greedy minimum-intermediate-size policy; otherwise left-to-right.
EinsumPlan plan_einsum(const ir::Operation &einsum, bool optimize);

/// Lowers every esn.einsum back into binary teil.contract chains using the
/// chosen policy. Returns total estimated flops of the lowered contractions.
support::Expected<double> lower_esn(ir::Module &module, bool optimize_order);

/// Removes pure ops whose results are all unused; returns ops removed.
std::size_t eliminate_dead_code(ir::Module &module);

}  // namespace everest::transforms
