#include "transforms/base2_legalize.hpp"

#include <cstdio>

#include "support/strings.hpp"

namespace everest::transforms {

namespace {

using support::Error;
using support::Expected;

/// Parses "name<a,b>" into name, a, b.
bool parse_two_params(const std::string &spec, const std::string &prefix,
                      int &a, int &b) {
  if (!support::starts_with(spec, prefix + "<") || spec.back() != '>')
    return false;
  auto body = spec.substr(prefix.size() + 1, spec.size() - prefix.size() - 2);
  auto parts = support::split(body, ',');
  if (parts.size() != 2) return false;
  a = std::atoi(std::string(support::trim(parts[0])).c_str());
  b = std::atoi(std::string(support::trim(parts[1])).c_str());
  return true;
}

}  // namespace

Expected<std::unique_ptr<numerics::NumberFormat>> make_format(
    const std::string &spec) {
  try {
    if (spec == "f64")
      return std::unique_ptr<numerics::NumberFormat>(
          new numerics::MiniFloatFormat(11, 52));
    if (spec == "f32")
      return std::unique_ptr<numerics::NumberFormat>(
          new numerics::MiniFloatFormat(8, 23));
    int a = 0, b = 0;
    if (parse_two_params(spec, "fixed", a, b))
      return std::unique_ptr<numerics::NumberFormat>(
          new numerics::FixedPointFormat(a, b, true));
    if (parse_two_params(spec, "ufixed", a, b))
      return std::unique_ptr<numerics::NumberFormat>(
          new numerics::FixedPointFormat(a, b, false));
    if (parse_two_params(spec, "float", a, b))
      return std::unique_ptr<numerics::NumberFormat>(
          new numerics::MiniFloatFormat(a, b));
    if (parse_two_params(spec, "posit", a, b))
      return std::unique_ptr<numerics::NumberFormat>(
          new numerics::PositFormat(a, b));
  } catch (const std::invalid_argument &e) {
    return Error::make("base2: invalid format '" + spec + "': " + e.what());
  }
  return Error::make("base2: unknown format spec '" + spec + "'");
}

Expected<int> annotate_base2(ir::Module &module, const std::string &spec) {
  auto fmt = make_format(spec);
  if (!fmt) return fmt.error();

  ir::Operation *func = module.find_first("teil.func");
  if (!func) return Error::make("base2: no teil.func in module");

  // The base2 element type mirrors the spec: !base2.<name><p0,p1>.
  ir::Type elem = ir::Type::floating(64);
  {
    auto lt = spec.find('<');
    if (lt != std::string::npos && spec.back() == '>') {
      auto params = support::split(
          spec.substr(lt + 1, spec.size() - lt - 2), ',');
      std::vector<std::string> trimmed;
      for (auto &p : params) trimmed.emplace_back(support::trim(p));
      elem = ir::Type::custom("base2", spec.substr(0, lt), trimmed);
    }
  }

  for (ir::Operation &op : func->region(0).front().operations()) {
    if (op.num_results() == 0) continue;
    op.set_attr("base2.format", ir::Attribute(spec));
    const ir::Type &t = op.result(0)->type();
    if (t.is_tensor() && elem.is_custom()) {
      op.result(0)->set_type(ir::Type::tensor(t.dims(), elem));
    } else if (t.is_float() && elem.is_custom()) {
      op.result(0)->set_type(elem);
    }
  }
  return (*fmt)->bit_width();
}

}  // namespace everest::transforms
