// everest/transforms/ekl_eval.hpp
//
// Reference interpreter for the EKL dialect. Used to (a) validate frontend
// programs against hand-written reference kernels (Fig. 3 / RRTMG) and
// (b) cross-check the ekl->teil lowering (property: same results).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "ir/ir.hpp"
#include "numerics/tensor.hpp"
#include "support/expected.hpp"

namespace everest::transforms {

/// Evaluation inputs: named tensors (dims aligned with the input's declared
/// index names) plus explicit extents for iteration indices that appear in
/// no input (e.g. the stacked index pairs of Fig. 3).
struct EklBindings {
  std::map<std::string, numerics::Tensor> inputs;
  std::map<std::string, std::int64_t> extents;
};

/// Evaluates the first ekl.kernel in `module`; returns the output tensors
/// keyed by output name. Dims of each output follow its index order.
support::Expected<std::map<std::string, numerics::Tensor>> evaluate_ekl(
    const ir::Module &module, const EklBindings &bindings);

/// Resolves the extent of every index appearing in the kernel (from inputs
/// and explicit extents); fails on conflicts or unknowns.
support::Expected<std::map<std::string, std::int64_t>> resolve_ekl_extents(
    const ir::Operation &kernel, const EklBindings &bindings);

}  // namespace everest::transforms
