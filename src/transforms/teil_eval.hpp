// everest/transforms/teil_eval.hpp
//
// Reference interpreter for teil.func programs (static-shape positional
// tensor ops). Cross-checks the ekl->teil and cfdlang->teil lowerings.
#pragma once

#include <map>
#include <string>

#include "ir/ir.hpp"
#include "numerics/formats.hpp"
#include "numerics/tensor.hpp"
#include "support/expected.hpp"

namespace everest::transforms {

/// Evaluates the first teil.func in `module` with the given named inputs;
/// returns output tensors keyed by output name. When `format` is non-null,
/// every input element and every op result is rounded to that custom number
/// format — this models running the kernel on base2-typed hardware
/// (experiment E4: accuracy vs custom data formats).
support::Expected<std::map<std::string, numerics::Tensor>> evaluate_teil(
    const ir::Module &module,
    const std::map<std::string, numerics::Tensor> &inputs,
    const numerics::NumberFormat *format = nullptr);

/// Counts scalar floating-point operations executed by one evaluation
/// (used by the HLS work model and code-size/efficiency reports).
std::size_t teil_flop_count(const ir::Module &module);

}  // namespace everest::transforms
