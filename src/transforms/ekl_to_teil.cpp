#include "transforms/ekl_to_teil.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "dialects/ekl.hpp"
#include "ir/builder.hpp"

namespace everest::transforms {

namespace {

using dialects::ekl::result_indices;
using ir::Attribute;
using ir::Operation;
using ir::Type;
using ir::Value;
using support::Error;
using support::Expected;

using ExtentMap = std::map<std::string, std::int64_t>;

Type teil_type(const std::vector<std::string> &indices,
               const ExtentMap &extents) {
  if (indices.empty()) return Type::floating(64);
  std::vector<std::int64_t> dims;
  dims.reserve(indices.size());
  for (const auto &i : indices) dims.push_back(extents.at(i));
  return Type::tensor(std::move(dims), Type::floating(64));
}

/// Emits teil.broadcast aligning `src` (indexed by src_idx) to out_idx.
/// The "map" attribute lists, per output dim, the source dim or -1.
Value *broadcast_to(ir::OpBuilder &b, Value *src,
                    const std::vector<std::string> &src_idx,
                    const std::vector<std::string> &out_idx,
                    const ExtentMap &extents) {
  if (src_idx == out_idx) return src;
  std::vector<std::int64_t> map;
  map.reserve(out_idx.size());
  for (const auto &o : out_idx) {
    auto it = std::find(src_idx.begin(), src_idx.end(), o);
    map.push_back(it == src_idx.end()
                      ? -1
                      : static_cast<std::int64_t>(it - src_idx.begin()));
  }
  return b.create_value("teil.broadcast", {src}, teil_type(out_idx, extents),
                        {{"map", Attribute::int_array(map)}});
}

class Lowering {
public:
  Lowering(const Operation &kernel, ExtentMap extents)
      : kernel_(kernel), extents_(std::move(extents)) {}

  Expected<std::shared_ptr<ir::Module>> run() {
    auto out = std::make_shared<ir::Module>();
    Operation *func = Operation::create(
        out->arena(), ir::Symbol("teil.func"), {}, {},
        {{"sym_name", Attribute(kernel_.attr_string("sym_name"))}}, 1);
    ir::Block &body = func->region(0).add_block();
    out->body().attach(func);
    ir::OpBuilder b(&body);

    for (const Operation &op : kernel_.region(0).front().operations()) {
      if (auto s = lower_op(b, op); !s.is_ok())
        return Error::make(s.message());
    }
    return out;
  }

private:
  support::Status lower_op(ir::OpBuilder &b, const Operation &op) {
    const std::string &name = op.name();

    if (name == "ekl.output") {
      b.create("teil.output", {mapped(op.operand(0))}, {},
               {{"name", Attribute(op.attr_string("name"))}});
      return support::Status::ok();
    }

    std::vector<std::string> out_idx = result_indices(*op.result(0));
    Type out_type = teil_type(out_idx, extents_);
    Value *result = nullptr;

    if (name == "ekl.input") {
      result = b.create_value("teil.input", {}, out_type,
                              {{"name", Attribute(op.attr_string("name"))}});
    } else if (name == "ekl.literal") {
      result = b.create_value("teil.constant", {}, out_type,
                              {{"value", Attribute(op.attr_double("value"))}});
    } else if (name == "ekl.index") {
      result = b.create_value("teil.iota", {}, out_type);
    } else if (name == "ekl.binary" || name == "ekl.compare" ||
               name == "ekl.select") {
      std::string fn;
      if (name == "ekl.binary") fn = op.attr_string("fn");
      else if (name == "ekl.compare") fn = "cmp_" + op.attr_string("predicate");
      else fn = "select";
      std::vector<Value *> aligned;
      for (std::size_t i = 0; i < op.num_operands(); ++i) {
        aligned.push_back(broadcast_to(b, mapped(op.operand(i)),
                                       result_indices(*op.operand(i)), out_idx,
                                       extents_));
      }
      result = b.create_value("teil.map", aligned, out_type,
                              {{"fn", Attribute(fn)}});
    } else if (name == "ekl.sum") {
      auto src_idx = result_indices(*op.operand(0));
      auto reduce = op.attr("reduce")->as_string_vector();
      std::vector<std::int64_t> axes;
      for (std::size_t d = 0; d < src_idx.size(); ++d) {
        if (std::find(reduce.begin(), reduce.end(), src_idx[d]) != reduce.end())
          axes.push_back(static_cast<std::int64_t>(d));
      }
      result = b.create_value("teil.reduce", {mapped(op.operand(0))}, out_type,
                              {{"axes", Attribute::int_array(axes)}});
    } else if (name == "ekl.gather") {
      Value *src = mapped(op.operand(0));
      auto src_idx = result_indices(*op.operand(0));
      std::size_t n_bound = op.num_operands() - 1;
      std::vector<Value *> operands{src};
      for (std::size_t d = 0; d < src_idx.size(); ++d) {
        Value *idx_tensor = nullptr;
        if (d < n_bound) {
          idx_tensor = broadcast_to(b, mapped(op.operand(d + 1)),
                                    result_indices(*op.operand(d + 1)), out_idx,
                                    extents_);
        } else {
          // Retained dim: identity over its index name.
          const std::string &idx_name = src_idx[d];
          Value *iota = b.create_value("teil.iota", {},
                                       teil_type({idx_name}, extents_));
          idx_tensor = broadcast_to(b, iota, {idx_name}, out_idx, extents_);
        }
        operands.push_back(idx_tensor);
      }
      result = b.create_value("teil.gather", operands, out_type);
    } else if (name == "ekl.stack") {
      // Parts are broadcast to out_idx minus the trailing new index.
      std::vector<std::string> part_idx(out_idx.begin(), out_idx.end() - 1);
      std::vector<Value *> parts;
      for (std::size_t i = 0; i < op.num_operands(); ++i) {
        parts.push_back(broadcast_to(b, mapped(op.operand(i)),
                                     result_indices(*op.operand(i)), part_idx,
                                     extents_));
      }
      result = b.create_value("teil.stack", parts, out_type);
    } else {
      return support::Status::failure("ekl->teil: unsupported op '" + name +
                                      "'");
    }

    value_map_[op.result(0)] = result;
    return support::Status::ok();
  }

  Value *mapped(const Value *ekl_value) const {
    return value_map_.at(ekl_value);
  }

  const Operation &kernel_;
  ExtentMap extents_;
  std::map<const Value *, Value *> value_map_;
};

}  // namespace

Expected<std::shared_ptr<ir::Module>> lower_ekl_to_teil(
    const ir::Module &module, const EklBindings &bindings) {
  const Operation *kernel = nullptr;
  for (const Operation &op : module.body().operations()) {
    if (op.name() == "ekl.kernel") {
      kernel = &op;
      break;
    }
  }
  if (!kernel) return Error::make("ekl->teil: no ekl.kernel in module");

  auto extents = resolve_ekl_extents(*kernel, bindings);
  if (!extents) return extents.error();
  return Lowering(*kernel, std::move(*extents)).run();
}

}  // namespace everest::transforms
