#include "transforms/loop_eval.hpp"

#include <algorithm>
#include <cmath>

namespace everest::transforms {

namespace {

using numerics::Shape;
using numerics::Tensor;
using support::Error;
using support::Expected;

class LoopInterpreter {
public:
  explicit LoopInterpreter(const std::map<std::string, Tensor> &inputs)
      : inputs_(inputs) {}

  Expected<std::map<std::string, Tensor>> run(const ir::Operation &func) {
    if (auto s = execute_block(func.region(0).front()); !s.is_ok())
      return Error::make(s.message());
    std::map<std::string, Tensor> outputs;
    for (const auto &[value, name] : output_names_)
      outputs.emplace(name, buffers_.at(value));
    return outputs;
  }

private:
  support::Status execute_block(const ir::Block &block) {
    for (const ir::Operation &op : block.operations()) {
      if (auto s = execute_op(op); !s.is_ok()) return s;
    }
    return support::Status::ok();
  }

  double scalar(const ir::Value *v) const { return scalars_.at(v); }

  std::int64_t index_of(const ir::Operation &op, std::size_t first,
                        const Tensor &buffer) const {
    // Row-major flat index from the trailing index operands.
    const auto &dims = buffer.shape();
    std::int64_t flat = 0;
    std::size_t n_idx = op.num_operands() - first;
    for (std::size_t d = 0; d < n_idx; ++d) {
      auto i = static_cast<std::int64_t>(
          std::llround(scalar(op.operand(first + d))));
      i = std::clamp<std::int64_t>(i, 0, dims[d] - 1);
      flat = flat * dims[d] + i;
    }
    return flat;
  }

  support::Status execute_op(const ir::Operation &op) {
    const std::string &name = op.name();

    if (name == "memref.alloc") {
      const ir::Type &t = op.result(0)->type();
      Shape shape = t.is_tensor() ? Shape(t.dims().begin(), t.dims().end())
                                  : Shape{};
      Tensor buffer(shape);
      std::string kind = op.attr_string("kind", "");
      if (kind == "input") {
        auto it = inputs_.find(op.attr_string("name"));
        if (it == inputs_.end())
          return support::Status::failure("loop eval: missing input '" +
                                          op.attr_string("name") + "'");
        if (it->second.size() != buffer.size())
          return support::Status::failure("loop eval: input size mismatch '" +
                                          op.attr_string("name") + "'");
        std::copy(it->second.data().begin(), it->second.data().end(),
                  buffer.data().begin());
      } else if (kind == "output") {
        output_names_[op.result(0)] = op.attr_string("name");
      }
      buffers_.emplace(op.result(0), std::move(buffer));
      return support::Status::ok();
    }

    if (name == "arith.constant") {
      scalars_[op.result(0)] = op.attr_double("value");
      return support::Status::ok();
    }

    if (name == "scf.for") {
      auto lo = static_cast<std::int64_t>(std::llround(scalar(op.operand(0))));
      auto hi = static_cast<std::int64_t>(std::llround(scalar(op.operand(1))));
      auto step =
          static_cast<std::int64_t>(std::llround(scalar(op.operand(2))));
      if (step <= 0)
        return support::Status::failure("loop eval: non-positive step");
      const ir::Block &body = op.region(0).front();
      const ir::Value *iv = &body.argument(0);
      for (std::int64_t i = lo; i < hi; i += step) {
        scalars_[iv] = static_cast<double>(i);
        if (auto s = execute_block(body); !s.is_ok()) return s;
      }
      return support::Status::ok();
    }

    if (name == "scf.yield") return support::Status::ok();

    if (name == "memref.load") {
      const Tensor &buffer = buffers_.at(op.operand(0));
      std::int64_t flat =
          buffer.rank() == 0 ? 0 : index_of(op, 1, buffer);
      scalars_[op.result(0)] = buffer.flat(flat);
      return support::Status::ok();
    }

    if (name == "memref.store") {
      Tensor &buffer = buffers_.at(op.operand(1));
      std::int64_t flat =
          buffer.rank() == 0 ? 0 : index_of(op, 2, buffer);
      buffer.flat(flat) = scalar(op.operand(0));
      return support::Status::ok();
    }

    if (name == "memref.copy") {
      const Tensor &src = buffers_.at(op.operand(0));
      Tensor &dst = buffers_.at(op.operand(1));
      if (src.size() != dst.size())
        return support::Status::failure("loop eval: copy size mismatch");
      std::copy(src.data().begin(), src.data().end(), dst.data().begin());
      return support::Status::ok();
    }

    // Scalar arithmetic.
    auto a = [&](std::size_t i) { return scalar(op.operand(i)); };
    double v = 0.0;
    if (name == "arith.addf" || name == "arith.addi") v = a(0) + a(1);
    else if (name == "arith.subf" || name == "arith.subi") v = a(0) - a(1);
    else if (name == "arith.mulf" || name == "arith.muli") v = a(0) * a(1);
    else if (name == "arith.divf") v = a(0) / a(1);
    else if (name == "arith.minf") v = std::min(a(0), a(1));
    else if (name == "arith.maxf") v = std::max(a(0), a(1));
    else if (name == "arith.negf") v = -a(0);
    else if (name == "arith.exp") v = std::exp(a(0));
    else if (name == "arith.log") v = std::log(a(0));
    else if (name == "arith.sqrt") v = std::sqrt(a(0));
    else if (name == "arith.floor") v = std::floor(a(0));
    else if (name == "arith.sitofp" || name == "arith.fptosi" ||
             name == "arith.index_cast") {
      v = name == "arith.fptosi" ? std::trunc(a(0)) : a(0);
    } else if (name == "arith.cmpf" || name == "arith.cmpi") {
      std::string pred = op.attr_string("predicate");
      bool r = false;
      if (pred == "ole" || pred == "le") r = a(0) <= a(1);
      else if (pred == "olt" || pred == "lt") r = a(0) < a(1);
      else if (pred == "oge" || pred == "ge") r = a(0) >= a(1);
      else if (pred == "ogt" || pred == "gt") r = a(0) > a(1);
      else if (pred == "oeq" || pred == "eq") r = a(0) == a(1);
      else if (pred == "one" || pred == "ne") r = a(0) != a(1);
      else return support::Status::failure("loop eval: unknown predicate '" +
                                           pred + "'");
      v = r ? 1.0 : 0.0;
    } else if (name == "arith.select") {
      v = a(0) != 0.0 ? a(1) : a(2);
    } else {
      return support::Status::failure("loop eval: unsupported op '" + name +
                                      "'");
    }
    scalars_[op.result(0)] = v;
    return support::Status::ok();
  }

  const std::map<std::string, Tensor> &inputs_;
  std::map<const ir::Value *, double> scalars_;
  std::map<const ir::Value *, Tensor> buffers_;
  std::map<const ir::Value *, std::string> output_names_;
};

}  // namespace

Expected<std::map<std::string, Tensor>> evaluate_loops(
    const ir::Module &module, const std::map<std::string, Tensor> &inputs) {
  const ir::Operation *func = nullptr;
  for (const ir::Operation &op : module.body().operations()) {
    if (op.name() == "func.func") {
      func = &op;
      break;
    }
  }
  if (!func) return Error::make("loop eval: no func.func in module");
  return LoopInterpreter(inputs).run(*func);
}

}  // namespace everest::transforms
