// everest/transforms/canonicalize.hpp
//
// Canonicalization for the EVEREST IR: greedy constant folding of arith
// expressions, block-local common-subexpression elimination over pure ops,
// broadcast-chain folding in teil, and a driver that iterates them together
// with dead-code elimination to a fixpoint. basecamp runs this between the
// frontend and the backend (visible as the "canonicalize" stage timing).
#pragma once

#include <cstddef>

#include "ir/rewrite.hpp"
#include "support/expected.hpp"

namespace everest::transforms {

/// Patterns folding arith ops with constant operands (addf/subf/mulf/divf/
/// minf/maxf/negf, cmpf, select-with-constant-condition).
std::vector<std::shared_ptr<ir::RewritePattern>> constant_fold_patterns();

/// The full canonicalization pattern set: constant folds plus teil-level
/// folds (teil.map over all-constant splats, teil.broadcast of a constant)
/// and a low-benefit dead-op elimination pattern. When `dce_fired` is
/// non-null it accumulates the number of DCE-pattern fires so callers can
/// attribute them separately from folds.
std::vector<std::shared_ptr<ir::RewritePattern>> canonicalize_patterns(
    std::size_t *dce_fired = nullptr);

/// Block-local CSE over pure single-result ops (arith, teil, esn). Returns
/// the number of ops replaced.
std::size_t common_subexpression_elimination(ir::Module &module);

/// Func-scoped CSE: same elimination, confined to the blocks nested under
/// `root` (the op itself is untouched). Safe to run concurrently on sibling
/// funcs of one module.
std::size_t common_subexpression_elimination(ir::Operation &root);

/// Folds teil.broadcast(teil.broadcast(x)) into one composed broadcast.
/// Returns the number of chains folded.
std::size_t fold_broadcast_chains(ir::Module &module);

/// Func-scoped broadcast-chain folding under `root`.
std::size_t fold_broadcast_chains(ir::Operation &root);

/// Summary of one canonicalization run.
struct CanonicalizeStats {
  std::size_t folded_constants = 0;
  std::size_t cse_replaced = 0;
  std::size_t broadcasts_folded = 0;
  std::size_t dce_removed = 0;
  std::size_t iterations = 0;
  /// False when the run was cut off by `max_iterations` (or the inner
  /// rewrite driver hit its own bound) while changes were still landing.
  bool converged = false;
};

/// Runs fold + CSE + broadcast folding + DCE to fixpoint (bounded).
CanonicalizeStats canonicalize(
    ir::Module &module, std::size_t max_iterations = 8,
    ir::RewriteDriver driver = ir::RewriteDriver::Worklist);

/// Func-scoped canonicalization: the same fold + CSE + broadcast folding +
/// DCE fixpoint, confined to the IR nested under `func` (the func op itself
/// is never matched or mutated). This is the body of the func-anchored
/// "canonicalize" pass: the PassManager may run it concurrently on the
/// top-level funcs of one module, and the per-pass cache keys its result by
/// the func's printed text.
CanonicalizeStats canonicalize_func(
    ir::Operation &func, std::size_t max_iterations = 8,
    ir::RewriteDriver driver = ir::RewriteDriver::Worklist);

/// Like canonicalize_func(), surfacing non-convergence as a failed Status.
support::Status canonicalize_func_checked(
    ir::Operation &func, CanonicalizeStats *out = nullptr,
    std::size_t max_iterations = 8,
    ir::RewriteDriver driver = ir::RewriteDriver::Worklist);

/// Like canonicalize(), but surfaces non-convergence as a failed Status
/// (ErrorCode::Internal) instead of silently returning partial results.
/// `out` receives the stats when non-null.
support::Status canonicalize_checked(
    ir::Module &module, CanonicalizeStats *out = nullptr,
    std::size_t max_iterations = 8,
    ir::RewriteDriver driver = ir::RewriteDriver::Worklist);

}  // namespace everest::transforms
