#include "transforms/teil_eval.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace everest::transforms {

namespace {

using numerics::Shape;
using numerics::Tensor;
using support::Error;
using support::Expected;

Shape shape_from_type(const ir::Type &t) {
  if (!t.is_tensor()) return {};
  return Shape(t.dims().begin(), t.dims().end());
}

const ir::Operation *find_func(const ir::Module &module) {
  for (const ir::Operation &op : module.body().operations()) {
    if (op.name() == "teil.func") return &op;
  }
  return nullptr;
}

/// Walks the multi-index `idx` over `shape` like an odometer; returns false
/// after the last index.
bool advance(std::vector<std::int64_t> &idx, const Shape &shape) {
  for (std::size_t d = idx.size(); d-- > 0;) {
    if (++idx[d] < shape[d]) return true;
    idx[d] = 0;
  }
  return false;
}

}  // namespace

Expected<std::map<std::string, Tensor>> evaluate_teil(
    const ir::Module &module, const std::map<std::string, Tensor> &inputs,
    const numerics::NumberFormat *format) {
  const ir::Operation *func = find_func(module);
  if (!func) return Error::make("teil eval: no teil.func in module");

  std::map<const ir::Value *, Tensor> values;
  std::map<std::string, Tensor> outputs;
  std::set<const ir::Value *> counter_values;

  auto val = [&](const ir::Operation &op, std::size_t i) -> const Tensor & {
    return values.at(op.operand(i));
  };

  for (const ir::Operation &op : func->region(0).front().operations()) {
    const std::string &name = op.name();

    if (name == "teil.output") {
      outputs.emplace(op.attr_string("name"), val(op, 0));
      continue;
    }

    Shape out_shape = shape_from_type(op.result(0)->type());
    Tensor result(out_shape);

    if (name == "teil.input") {
      auto it = inputs.find(op.attr_string("name"));
      if (it == inputs.end())
        return Error::make("teil eval: missing input '" +
                           op.attr_string("name") + "'");
      if (it->second.shape() != out_shape)
        return Error::make("teil eval: shape mismatch for input '" +
                           op.attr_string("name") + "'");
      result = it->second;
    } else if (name == "teil.constant") {
      result = Tensor(out_shape, op.attr_double("value"));
    } else if (name == "teil.iota") {
      for (std::int64_t i = 0; i < result.size(); ++i)
        result.flat(i) = static_cast<double>(i);
    } else if (name == "teil.broadcast") {
      const Tensor &src = val(op, 0);
      auto map = op.attr("map")->as_int_vector();
      std::vector<std::int64_t> idx(out_shape.size(), 0);
      if (result.size() > 0) {
        do {
          // Route each mapped output index to its source dimension.
          std::vector<std::int64_t> ordered(src.rank(), 0);
          for (std::size_t d = 0; d < map.size(); ++d) {
            if (map[d] >= 0)
              ordered[static_cast<std::size_t>(map[d])] = idx[d];
          }
          result.at(idx) = src.rank() == 0 ? src.flat(0) : src.at(ordered);
        } while (advance(idx, out_shape));
      }
    } else if (name == "teil.map") {
      std::string fn = op.attr_string("fn");
      std::size_t n = op.num_operands();
      for (std::int64_t i = 0; i < result.size(); ++i) {
        double v = 0.0;
        auto a = [&](std::size_t k) { return val(op, k).flat(i); };
        if (fn == "add") v = a(0) + a(1);
        else if (fn == "sub") v = a(0) - a(1);
        else if (fn == "mul") v = a(0) * a(1);
        else if (fn == "div") v = a(0) / a(1);
        else if (fn == "min") v = std::min(a(0), a(1));
        else if (fn == "max") v = std::max(a(0), a(1));
        else if (fn == "cmp_le") v = a(0) <= a(1) ? 1.0 : 0.0;
        else if (fn == "cmp_lt") v = a(0) < a(1) ? 1.0 : 0.0;
        else if (fn == "cmp_ge") v = a(0) >= a(1) ? 1.0 : 0.0;
        else if (fn == "cmp_gt") v = a(0) > a(1) ? 1.0 : 0.0;
        else if (fn == "cmp_eq") v = a(0) == a(1) ? 1.0 : 0.0;
        else if (fn == "cmp_ne") v = a(0) != a(1) ? 1.0 : 0.0;
        else if (fn == "select" && n == 3) v = a(0) != 0.0 ? a(1) : a(2);
        else if (fn == "neg") v = -a(0);
        else if (fn == "exp") v = std::exp(a(0));
        else if (fn == "sqrt") v = std::sqrt(a(0));
        else return Error::make("teil eval: unknown map fn '" + fn + "'");
        result.flat(i) = v;
      }
    } else if (name == "teil.reduce") {
      const Tensor &src = val(op, 0);
      auto axes = op.attr("axes")->as_int_vector();
      std::vector<bool> reduced(src.rank(), false);
      for (auto a : axes) reduced[static_cast<std::size_t>(a)] = true;
      std::vector<std::int64_t> idx(src.rank(), 0);
      if (src.size() > 0) {
        do {
          std::vector<std::int64_t> out_idx;
          for (std::size_t d = 0; d < src.rank(); ++d) {
            if (!reduced[d]) out_idx.push_back(idx[d]);
          }
          result.at(out_idx) += src.at(idx);
        } while (advance(idx, src.shape()));
      }
    } else if (name == "teil.gather") {
      const Tensor &src = val(op, 0);
      std::size_t r = src.rank();
      if (op.num_operands() != r + 1)
        return Error::make("teil eval: gather needs one index tensor per dim");
      for (std::int64_t i = 0; i < result.size(); ++i) {
        std::vector<std::int64_t> src_idx(r);
        for (std::size_t d = 0; d < r; ++d) {
          auto v = static_cast<std::int64_t>(
              std::llround(val(op, d + 1).flat(i)));
          src_idx[d] = std::clamp<std::int64_t>(v, 0, src.dim(d) - 1);
        }
        result.flat(i) = src.at(src_idx);
      }
    } else if (name == "teil.stack") {
      std::size_t k = op.num_operands();
      std::int64_t inner = result.size() / static_cast<std::int64_t>(k);
      for (std::int64_t i = 0; i < inner; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
          result.flat(i * static_cast<std::int64_t>(k) +
                      static_cast<std::int64_t>(p)) = val(op, p).flat(i);
        }
      }
    } else if (name == "teil.transpose") {
      const Tensor &src = val(op, 0);
      auto perm = op.attr("perm")->as_int_vector();
      std::vector<std::int64_t> idx(src.rank(), 0);
      if (src.size() > 0) {
        do {
          std::vector<std::int64_t> out_idx(perm.size());
          for (std::size_t d = 0; d < perm.size(); ++d)
            out_idx[d] = idx[static_cast<std::size_t>(perm[d])];
          result.at(out_idx) = src.at(idx);
        } while (advance(idx, src.shape()));
      }
    } else if (name == "teil.contract") {
      // General binary einsum: subscripts as strings, one char per dim.
      const Tensor &lhs = val(op, 0);
      const Tensor &rhs = val(op, 1);
      std::string ls = op.attr_string("lhs");
      std::string rs = op.attr_string("rhs");
      std::string os = op.attr_string("out");
      std::map<char, std::int64_t> extents;
      for (std::size_t d = 0; d < ls.size(); ++d) extents[ls[d]] = lhs.dim(d);
      for (std::size_t d = 0; d < rs.size(); ++d) extents[rs[d]] = rhs.dim(d);
      std::string all;
      for (char c : os) all += c;
      for (auto &[c, _] : extents) {
        if (os.find(c) == std::string::npos) all += c;
      }
      Shape all_shape;
      for (char c : all) all_shape.push_back(extents[c]);
      std::vector<std::int64_t> idx(all.size(), 0);
      auto pick = [&](const std::string &subs) {
        std::vector<std::int64_t> v;
        for (char c : subs) v.push_back(idx[all.find(c)]);
        return v;
      };
      if (!all.empty()) {
        do {
          std::vector<std::int64_t> oi = pick(os);
          double l = lhs.rank() == 0 ? lhs.flat(0) : lhs.at(pick(ls));
          double r2 = rhs.rank() == 0 ? rhs.flat(0) : rhs.at(pick(rs));
          result.at(oi) += l * r2;
        } while (advance(idx, all_shape));
      } else {
        result.flat(0) = lhs.flat(0) * rhs.flat(0);
      }
    } else {
      return Error::make("teil eval: unsupported op '" + name + "'");
    }

    // Custom-format mode: every materialized value is rounded to the format,
    // mirroring hardware that stores intermediates in base2 types. Index
    // generators (iota, and broadcasts thereof) are exempt: hardware
    // synthesizes loop counters as integers, never as datapath values.
    bool is_counter = name == "teil.iota" ||
                      (name == "teil.broadcast" &&
                       counter_values.count(op.operand(0)) > 0);
    if (is_counter) counter_values.insert(op.result(0));
    if (format != nullptr && !is_counter)
      numerics::quantize_span(*format, result.data());

    values.emplace(op.result(0), std::move(result));
  }
  return outputs;
}

std::size_t teil_flop_count(const ir::Module &module) {
  const ir::Operation *func = find_func(module);
  if (!func) return 0;
  std::size_t flops = 0;
  for (const ir::Operation &op : func->region(0).front().operations()) {
    const std::string &name = op.name();
    if (op.num_results() == 0) continue;
    const ir::Type &t = op.result(0)->type();
    auto elems = static_cast<std::size_t>(std::max<std::int64_t>(
        t.num_elements(), 1));
    if (name == "teil.map") {
      flops += elems;
    } else if (name == "teil.reduce") {
      const ir::Type &src = op.operand(0)->type();
      flops += static_cast<std::size_t>(
          std::max<std::int64_t>(src.num_elements(), 1));
    } else if (name == "teil.contract") {
      // ~2 flops per accumulated product over the full iteration space.
      const ir::Type &l = op.operand(0)->type();
      const ir::Type &r = op.operand(1)->type();
      std::string ls = op.attr_string("lhs"), rs = op.attr_string("rhs");
      std::map<char, std::int64_t> ext;
      for (std::size_t d = 0; d < ls.size(); ++d) ext[ls[d]] = l.dims()[d];
      for (std::size_t d = 0; d < rs.size(); ++d) ext[rs[d]] = r.dims()[d];
      std::int64_t space = 1;
      for (auto &[c, e] : ext) space *= e;
      flops += static_cast<std::size_t>(2 * space);
    }
  }
  return flops;
}

}  // namespace everest::transforms
