// everest/transforms/base2_legalize.hpp
//
// The base2 type-legalization step (paper §V-B, ref [7]): chooses a custom
// binary numeral format for a teil.func, annotates every value-producing op
// with it, and reports the datapath width the HLS engine should assume.
// Numeric behaviour of the legalized kernel is modeled by evaluate_teil's
// quantizing mode with the same format.
#pragma once

#include <memory>
#include <string>

#include "ir/ir.hpp"
#include "numerics/formats.hpp"
#include "support/expected.hpp"

namespace everest::transforms {

/// Parses a format spec: "f64", "f32", "fixed<T,F>", "ufixed<T,F>",
/// "float<E,M>", or "posit<N,ES>". "f64"/"f32" return the equivalent
/// minifloat (11,52)/(8,23).
support::Expected<std::unique_ptr<numerics::NumberFormat>> make_format(
    const std::string &spec);

/// Annotates every value-producing op of the first teil.func with
/// {base2.format = spec} and retypes tensor elements to the base2 type.
/// Returns the storage bit width of the format.
support::Expected<int> annotate_base2(ir::Module &module,
                                      const std::string &spec);

}  // namespace everest::transforms
