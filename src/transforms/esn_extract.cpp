#include "transforms/esn_extract.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "ir/builder.hpp"

namespace everest::transforms {

namespace {

using ir::Attribute;
using ir::Operation;
using ir::Type;
using ir::Value;
using support::Error;
using support::Expected;

char letter(std::size_t i) { return static_cast<char>('a' + i); }

/// Recursively peels mul-trees and broadcasts, collecting leaf factors with
/// their subscript strings. Returns false if an unfoldable shape is hit.
bool collect_factors(Value *v, const std::string &subs,
                     std::vector<std::pair<Value *, std::string>> &out) {
  Operation *def = v->defining_op();
  if (def && def->name() == "teil.map" && def->attr_string("fn") == "mul" &&
      def->num_operands() == 2) {
    return collect_factors(def->operand(0), subs, out) &&
           collect_factors(def->operand(1), subs, out);
  }
  if (def && def->name() == "teil.broadcast") {
    auto map = def->attr("map")->as_int_vector();
    const Type &src_t = def->operand(0)->type();
    std::size_t src_rank = src_t.is_tensor() ? src_t.dims().size() : 0;
    std::string src_subs(src_rank, '?');
    for (std::size_t d = 0; d < map.size(); ++d) {
      if (map[d] >= 0) src_subs[static_cast<std::size_t>(map[d])] = subs[d];
    }
    if (src_subs.find('?') != std::string::npos) return false;
    return collect_factors(def->operand(0), src_subs, out);
  }
  // Leaf: subscripts are the current letters (scalar leaves use "").
  const Type &t = v->type();
  std::size_t rank = t.is_tensor() ? t.dims().size() : 0;
  if (rank != subs.size()) return false;
  out.emplace_back(v, subs);
  return true;
}

std::map<char, std::int64_t> letter_extents(const Operation &einsum) {
  std::map<char, std::int64_t> extents;
  auto subs = einsum.attr("subscripts")->as_string_vector();
  for (std::size_t i = 0; i < einsum.num_operands(); ++i) {
    const Type &t = einsum.operand(i)->type();
    for (std::size_t d = 0; d < subs[i].size(); ++d)
      extents[subs[i][d]] = t.is_tensor() ? t.dims()[d] : 1;
  }
  return extents;
}

double space_size(const std::set<char> &letters,
                  const std::map<char, std::int64_t> &extents) {
  double s = 1.0;
  for (char c : letters) s *= static_cast<double>(extents.at(c));
  return s;
}

/// Letters the pairwise contraction of a+b must keep: anything still needed
/// by the output or by unmerged operands.
std::string result_subs(const std::string &sa, const std::string &sb,
                        const std::set<char> &needed_elsewhere) {
  std::set<char> mine(sa.begin(), sa.end());
  mine.insert(sb.begin(), sb.end());
  std::string out;
  for (char c : mine) {
    if (needed_elsewhere.count(c)) out += c;
  }
  return out;
}

}  // namespace

std::size_t extract_einsums(ir::Module &module) {
  std::size_t raised = 0;
  std::vector<Operation *> reduces = module.find_all("teil.reduce");
  for (Operation *reduce : reduces) {
    Value *src = reduce->operand(0);
    const Type &src_t = src->type();
    if (!src_t.is_tensor()) continue;
    std::size_t rank = src_t.dims().size();

    std::string subs;
    for (std::size_t d = 0; d < rank; ++d) subs += letter(d);

    std::vector<std::pair<Value *, std::string>> factors;
    if (!collect_factors(src, subs, factors) || factors.size() < 2) continue;

    auto axes = reduce->attr("axes")->as_int_vector();
    std::set<std::int64_t> reduced(axes.begin(), axes.end());
    std::string out_subs;
    for (std::size_t d = 0; d < rank; ++d) {
      if (!reduced.count(static_cast<std::int64_t>(d))) out_subs += letter(d);
    }

    std::vector<Value *> operands;
    std::vector<std::string> operand_subs;
    for (auto &[v, s] : factors) {
      operands.push_back(v);
      operand_subs.push_back(s);
    }

    ir::OpBuilder b(reduce->parent_block());
    b.set_insertion_point(reduce);
    Value *einsum = b.create_value(
        "esn.einsum", operands, reduce->result(0)->type(),
        {{"subscripts", Attribute::string_array(operand_subs)},
         {"out", Attribute(out_subs)}});
    reduce->replace_all_uses_with({einsum});
    reduce->parent_block()->erase(reduce);
    ++raised;
  }
  return raised;
}

EinsumPlan plan_einsum(const Operation &einsum, bool optimize) {
  auto subs = einsum.attr("subscripts")->as_string_vector();
  std::string out = einsum.attr_string("out");
  auto extents = letter_extents(einsum);

  // Working set: (position, subscripts); merged intermediates keep the lower
  // position index.
  struct Item {
    std::size_t pos;
    std::string subs;
    bool alive = true;
  };
  std::vector<Item> items;
  for (std::size_t i = 0; i < subs.size(); ++i) items.push_back({i, subs[i]});

  EinsumPlan plan;
  std::size_t alive = items.size();
  while (alive > 1) {
    // Letters needed outside any chosen pair: from out + other alive items.
    auto needed_without = [&](std::size_t a, std::size_t b) {
      std::set<char> needed(out.begin(), out.end());
      for (std::size_t k = 0; k < items.size(); ++k) {
        if (!items[k].alive || k == a || k == b) continue;
        needed.insert(items[k].subs.begin(), items[k].subs.end());
      }
      return needed;
    };

    std::size_t best_a = items.size(), best_b = items.size();
    double best_size = 0.0;
    if (optimize) {
      for (std::size_t a = 0; a < items.size(); ++a) {
        if (!items[a].alive) continue;
        for (std::size_t b = a + 1; b < items.size(); ++b) {
          if (!items[b].alive) continue;
          auto needed = needed_without(a, b);
          std::string rs = result_subs(items[a].subs, items[b].subs, needed);
          double size =
              space_size(std::set<char>(rs.begin(), rs.end()), extents);
          if (best_a == items.size() || size < best_size) {
            best_a = a;
            best_b = b;
            best_size = size;
          }
        }
      }
    } else {
      // Left-to-right: first two alive items.
      for (std::size_t k = 0; k < items.size() && best_b == items.size(); ++k) {
        if (!items[k].alive) continue;
        if (best_a == items.size()) best_a = k;
        else best_b = k;
      }
    }

    auto needed = needed_without(best_a, best_b);
    std::string rs = result_subs(items[best_a].subs, items[best_b].subs, needed);
    std::set<char> space(items[best_a].subs.begin(), items[best_a].subs.end());
    space.insert(items[best_b].subs.begin(), items[best_b].subs.end());
    plan.estimated_flops += 2.0 * space_size(space, extents);
    plan.steps.emplace_back(items[best_a].pos, items[best_b].pos);

    items[best_a].subs = rs;
    items[best_b].alive = false;
    --alive;
  }
  return plan;
}

Expected<double> lower_esn(ir::Module &module, bool optimize_order) {
  double total_flops = 0.0;
  for (Operation *einsum : module.find_all("esn.einsum")) {
    auto subs = einsum->attr("subscripts")->as_string_vector();
    std::string out = einsum->attr_string("out");
    auto extents = letter_extents(*einsum);
    EinsumPlan plan = plan_einsum(*einsum, optimize_order);
    total_flops += plan.estimated_flops;

    struct Item {
      Value *value;
      std::string subs;
      bool alive = true;
    };
    std::vector<Item> items;
    for (std::size_t i = 0; i < einsum->num_operands(); ++i)
      items.push_back({einsum->operand(i), subs[i]});

    ir::OpBuilder b(einsum->parent_block());
    b.set_insertion_point(einsum);

    for (auto [pa, pb] : plan.steps) {
      std::set<char> needed(out.begin(), out.end());
      for (std::size_t k = 0; k < items.size(); ++k) {
        if (!items[k].alive || k == pa || k == pb) continue;
        needed.insert(items[k].subs.begin(), items[k].subs.end());
      }
      std::string rs = result_subs(items[pa].subs, items[pb].subs, needed);
      std::vector<std::int64_t> dims;
      for (char c : rs) dims.push_back(extents.at(c));
      Type rt = dims.empty() ? Type::floating(64)
                             : Type::tensor(dims, Type::floating(64));
      Value *contracted = b.create_value(
          "teil.contract", {items[pa].value, items[pb].value}, rt,
          {{"lhs", Attribute(items[pa].subs)},
           {"rhs", Attribute(items[pb].subs)},
           {"out", Attribute(rs)}});
      items[pa] = {contracted, rs, true};
      items[pb].alive = false;
    }

    Value *final_value = nullptr;
    for (auto &item : items) {
      if (item.alive) {
        final_value = item.value;
        // The final intermediate's subscripts may be a permutation of `out`.
        if (item.subs != out) {
          std::vector<std::int64_t> perm;
          for (char c : out)
            perm.push_back(static_cast<std::int64_t>(item.subs.find(c)));
          final_value = b.create_value("teil.transpose", {final_value},
                                       einsum->result(0)->type(),
                                       {{"perm", Attribute::int_array(perm)}});
        }
        break;
      }
    }
    if (!final_value) return Error::make("esn lower: empty einsum");
    einsum->replace_all_uses_with({final_value});
    einsum->parent_block()->erase(einsum);
  }
  return total_flops;
}

std::size_t eliminate_dead_code(ir::Module &module) {
  std::size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Operation *> dead;
    module.walk([&](Operation &op) {
      if (op.num_results() == 0) return;  // outputs & other side effects
      if (op.num_regions() > 0) return;
      for (std::size_t r = 0; r < op.num_results(); ++r) {
        if (op.result(r)->has_uses()) return;
      }
      dead.push_back(&op);
    });
    for (Operation *op : dead) {
      op->parent_block()->erase(op);
      ++removed;
      changed = true;
    }
  }
  return removed;
}

}  // namespace everest::transforms
