#include "transforms/canonicalize.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "ir/builder.hpp"
#include "support/strings.hpp"
#include "transforms/esn_extract.hpp"  // eliminate_dead_code

namespace everest::transforms {

namespace {

using ir::Attribute;
using ir::Operation;
using ir::PatternRewriter;
using ir::Value;

/// A value's compile-time constant, if its defining op is arith.constant.
bool constant_of(const Value *v, double &out) {
  const Operation *def = v->defining_op();
  if (!def || def->name() != "arith.constant") return false;
  out = def->attr_double("value");
  return true;
}

/// Materializes a constant before `anchor` with the same result type.
Value *make_constant(Operation &anchor, double value) {
  ir::OpBuilder b(anchor.parent_block());
  b.set_insertion_point(&anchor);
  return b.create_value("arith.constant", {}, anchor.result(0)->type(),
                        {{"value", Attribute(value)}});
}

}  // namespace

std::vector<std::shared_ptr<ir::RewritePattern>> constant_fold_patterns() {
  std::vector<std::shared_ptr<ir::RewritePattern>> patterns;

  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "", [](Operation &op, PatternRewriter &rw) {
        static const std::map<std::string, double (*)(double, double)> kBinary{
            {"arith.addf", [](double a, double b) { return a + b; }},
            {"arith.subf", [](double a, double b) { return a - b; }},
            {"arith.mulf", [](double a, double b) { return a * b; }},
            {"arith.divf", [](double a, double b) { return a / b; }},
            {"arith.minf", [](double a, double b) { return std::min(a, b); }},
            {"arith.maxf", [](double a, double b) { return std::max(a, b); }},
        };
        auto it = kBinary.find(op.name());
        if (it == kBinary.end()) return false;
        double lhs = 0, rhs = 0;
        if (!constant_of(op.operand(0), lhs) ||
            !constant_of(op.operand(1), rhs))
          return false;
        Value *c = make_constant(op, it->second(lhs, rhs));
        rw.replace_op(&op, {c});
        return true;
      }));

  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "", [](Operation &op, PatternRewriter &rw) {
        static const std::map<std::string, double (*)(double)> kUnary{
            {"arith.negf", [](double a) { return -a; }},
            {"arith.exp", [](double a) { return std::exp(a); }},
            {"arith.sqrt", [](double a) { return std::sqrt(a); }},
            {"arith.floor", [](double a) { return std::floor(a); }},
        };
        auto it = kUnary.find(op.name());
        if (it == kUnary.end()) return false;
        double x = 0;
        if (!constant_of(op.operand(0), x)) return false;
        Value *c = make_constant(op, it->second(x));
        rw.replace_op(&op, {c});
        return true;
      }));

  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "arith.select", [](Operation &op, PatternRewriter &rw) {
        double cond = 0;
        if (!constant_of(op.operand(0), cond)) return false;
        rw.replace_op(&op, {cond != 0.0 ? op.operand(1) : op.operand(2)});
        return true;
      }));

  // Algebraic identities: x*1 = x, x+0 = x, x*0 = 0.
  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "", [](Operation &op, PatternRewriter &rw) {
        bool is_mul = op.name() == "arith.mulf";
        bool is_add = op.name() == "arith.addf";
        if (!is_mul && !is_add) return false;
        for (int side = 0; side < 2; ++side) {
          double c = 0;
          if (!constant_of(op.operand(static_cast<std::size_t>(side)), c))
            continue;
          Value *other = op.operand(static_cast<std::size_t>(1 - side));
          if (is_mul && c == 1.0) {
            rw.replace_op(&op, {other});
            return true;
          }
          if (is_add && c == 0.0) {
            rw.replace_op(&op, {other});
            return true;
          }
          if (is_mul && c == 0.0) {
            Value *zero = make_constant(op, 0.0);
            rw.replace_op(&op, {zero});
            return true;
          }
        }
        return false;
      }));

  return patterns;
}

namespace {

bool cse_eligible(const Operation &op) {
  if (op.num_results() != 1 || op.num_regions() != 0) return false;
  std::string d = op.dialect();
  if (d == "arith" || d == "esn") return true;
  if (d == "teil") return op.name() != "teil.output";
  return false;
}

std::string signature(const Operation &op) {
  std::string sig = op.name();
  // Result types are part of the identity: the same inputs can produce
  // different shapes (e.g. teil.iota of different extents).
  sig += ':';
  sig += op.result(0)->type().str();
  for (const auto &[key, value] : op.attributes()) {
    sig += '|';
    sig += key;
    sig += '=';
    sig += value.str();
  }
  for (std::size_t i = 0; i < op.num_operands(); ++i) {
    sig += '#';
    sig += std::to_string(reinterpret_cast<std::uintptr_t>(op.operand(i)));
  }
  return sig;
}

std::size_t cse_block(ir::Block &block) {
  std::size_t replaced = 0;
  std::map<std::string, Value *> seen;
  std::vector<Operation *> to_erase;
  for (auto &op_ptr : block.operations()) {
    Operation &op = *op_ptr;
    // Recurse into nested regions first (their values cannot escape).
    for (std::size_t r = 0; r < op.num_regions(); ++r) {
      for (auto &nested : op.region(r).blocks()) replaced += cse_block(*nested);
    }
    if (!cse_eligible(op)) continue;
    std::string sig = signature(op);
    auto [it, inserted] = seen.emplace(sig, op.result(0));
    if (!inserted) {
      op.replace_all_uses_with({it->second});
      to_erase.push_back(&op);
      ++replaced;
    }
  }
  for (Operation *op : to_erase) block.erase(op);
  return replaced;
}

}  // namespace

std::size_t common_subexpression_elimination(ir::Module &module) {
  std::size_t replaced = 0;
  for (auto &op : module.body().operations()) {
    for (std::size_t r = 0; r < op->num_regions(); ++r) {
      for (auto &block : op->region(r).blocks()) replaced += cse_block(*block);
    }
  }
  replaced += cse_block(module.body());
  return replaced;
}

std::size_t fold_broadcast_chains(ir::Module &module) {
  std::size_t folded = 0;
  for (Operation *outer : module.find_all("teil.broadcast")) {
    Operation *inner = outer->operand(0)->defining_op();
    if (!inner || inner->name() != "teil.broadcast") continue;
    // outer.map[d] selects inner dims; compose to reach inner's source.
    auto outer_map = outer->attr("map")->as_int_vector();
    auto inner_map = inner->attr("map")->as_int_vector();
    std::vector<std::int64_t> composed(outer_map.size(), -1);
    for (std::size_t d = 0; d < outer_map.size(); ++d) {
      if (outer_map[d] >= 0)
        composed[d] = inner_map[static_cast<std::size_t>(outer_map[d])];
    }
    outer->set_operand(0, inner->operand(0));
    outer->set_attr("map", Attribute::int_array(composed));
    ++folded;
  }
  return folded;
}

CanonicalizeStats canonicalize(ir::Module &module, std::size_t max_iterations) {
  CanonicalizeStats stats;
  auto patterns = constant_fold_patterns();
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++stats.iterations;
    auto rewrite = ir::apply_patterns_greedily(module, patterns);
    std::size_t cse = common_subexpression_elimination(module);
    std::size_t bcast = fold_broadcast_chains(module);
    std::size_t dce = eliminate_dead_code(module);
    stats.folded_constants += rewrite.rewrites;
    stats.cse_replaced += cse;
    stats.broadcasts_folded += bcast;
    stats.dce_removed += dce;
    if (rewrite.rewrites == 0 && cse == 0 && bcast == 0 && dce == 0) break;
  }
  return stats;
}

}  // namespace everest::transforms
