#include "transforms/canonicalize.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "ir/builder.hpp"
#include "support/strings.hpp"
#include "transforms/esn_extract.hpp"  // eliminate_dead_code

namespace everest::transforms {

namespace {

using ir::Attribute;
using ir::Operation;
using ir::PatternRewriter;
using ir::Value;

/// A value's compile-time constant, if its defining op is arith.constant.
bool constant_of(const Value *v, double &out) {
  const Operation *def = v->defining_op();
  if (!def || def->name() != "arith.constant") return false;
  out = def->attr_double("value");
  return true;
}

/// Materializes a constant before `anchor` with the same result type. Goes
/// through the rewriter so the driver learns about the new op.
Value *make_constant(PatternRewriter &rw, Operation &anchor, double value) {
  return rw.create_value_before(&anchor, "arith.constant", {},
                                anchor.result(0)->type(),
                                {{"value", Attribute(value)}});
}

}  // namespace

std::vector<std::shared_ptr<ir::RewritePattern>> constant_fold_patterns() {
  std::vector<std::shared_ptr<ir::RewritePattern>> patterns;

  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "", [](Operation &op, PatternRewriter &rw) {
        static const std::map<std::string, double (*)(double, double)> kBinary{
            {"arith.addf", [](double a, double b) { return a + b; }},
            {"arith.subf", [](double a, double b) { return a - b; }},
            {"arith.mulf", [](double a, double b) { return a * b; }},
            {"arith.divf", [](double a, double b) { return a / b; }},
            {"arith.minf", [](double a, double b) { return std::min(a, b); }},
            {"arith.maxf", [](double a, double b) { return std::max(a, b); }},
        };
        auto it = kBinary.find(op.name());
        if (it == kBinary.end()) return false;
        double lhs = 0, rhs = 0;
        if (!constant_of(op.operand(0), lhs) ||
            !constant_of(op.operand(1), rhs))
          return false;
        Value *c = make_constant(rw, op, it->second(lhs, rhs));
        rw.replace_op(&op, {c});
        return true;
      }));

  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "", [](Operation &op, PatternRewriter &rw) {
        static const std::map<std::string, double (*)(double)> kUnary{
            {"arith.negf", [](double a) { return -a; }},
            {"arith.exp", [](double a) { return std::exp(a); }},
            {"arith.sqrt", [](double a) { return std::sqrt(a); }},
            {"arith.floor", [](double a) { return std::floor(a); }},
        };
        auto it = kUnary.find(op.name());
        if (it == kUnary.end()) return false;
        double x = 0;
        if (!constant_of(op.operand(0), x)) return false;
        Value *c = make_constant(rw, op, it->second(x));
        rw.replace_op(&op, {c});
        return true;
      }));

  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "arith.select", [](Operation &op, PatternRewriter &rw) {
        double cond = 0;
        if (!constant_of(op.operand(0), cond)) return false;
        rw.replace_op(&op, {cond != 0.0 ? op.operand(1) : op.operand(2)});
        return true;
      }));

  // Algebraic identities: x*1 = x, x+0 = x, x*0 = 0.
  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "", [](Operation &op, PatternRewriter &rw) {
        bool is_mul = op.name() == "arith.mulf";
        bool is_add = op.name() == "arith.addf";
        if (!is_mul && !is_add) return false;
        for (int side = 0; side < 2; ++side) {
          double c = 0;
          if (!constant_of(op.operand(static_cast<std::size_t>(side)), c))
            continue;
          Value *other = op.operand(static_cast<std::size_t>(1 - side));
          if (is_mul && c == 1.0) {
            rw.replace_op(&op, {other});
            return true;
          }
          if (is_add && c == 0.0) {
            rw.replace_op(&op, {other});
            return true;
          }
          if (is_mul && c == 0.0) {
            Value *zero = make_constant(rw, op, 0.0);
            rw.replace_op(&op, {zero});
            return true;
          }
        }
        return false;
      }));

  return patterns;
}

namespace {

/// A value's compile-time splat constant, if defined by teil.constant.
bool teil_constant_of(const Value *v, double &out) {
  const Operation *def = v->defining_op();
  if (!def || def->name() != "teil.constant") return false;
  out = def->attr_double("value");
  return true;
}

}  // namespace

std::vector<std::shared_ptr<ir::RewritePattern>> canonicalize_patterns(
    std::size_t *dce_fired) {
  auto patterns = constant_fold_patterns();

  // teil.map over all-constant splats folds to one splat constant (splat
  // semantics make the elementwise fn a scalar computation).
  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "teil.map", [](Operation &op, PatternRewriter &rw) {
        static const std::map<std::string, double (*)(double, double)> kBinary{
            {"add", [](double a, double b) { return a + b; }},
            {"sub", [](double a, double b) { return a - b; }},
            {"mul", [](double a, double b) { return a * b; }},
            {"div", [](double a, double b) { return a / b; }},
            {"min", [](double a, double b) { return std::min(a, b); }},
            {"max", [](double a, double b) { return std::max(a, b); }},
        };
        const std::string fn = op.attr_string("fn");
        double folded = 0;
        if (fn == "neg") {
          if (op.num_operands() != 1 || !teil_constant_of(op.operand(0), folded))
            return false;
          folded = -folded;
        } else {
          auto it = kBinary.find(fn);
          if (it == kBinary.end() || op.num_operands() != 2) return false;
          double lhs = 0, rhs = 0;
          if (!teil_constant_of(op.operand(0), lhs) ||
              !teil_constant_of(op.operand(1), rhs))
            return false;
          folded = it->second(lhs, rhs);
        }
        Value *c = rw.create_value_before(&op, "teil.constant", {},
                                          op.result(0)->type(),
                                          {{"value", Attribute(folded)}});
        rw.replace_op(&op, {c});
        return true;
      }));

  // Broadcasting a splat constant is the same splat at the bigger shape.
  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "teil.broadcast", [](Operation &op, PatternRewriter &rw) {
        double value = 0;
        if (!teil_constant_of(op.operand(0), value)) return false;
        Value *c = rw.create_value_before(&op, "teil.constant", {},
                                          op.result(0)->type(),
                                          {{"value", Attribute(value)}});
        rw.replace_op(&op, {c});
        return true;
      }));

  // Dead-op elimination as a pattern (same eligibility as
  // eliminate_dead_code): benefit 0 so folds run first on each op.
  patterns.push_back(std::make_shared<ir::LambdaPattern>(
      "",
      [dce_fired](Operation &op, PatternRewriter &rw) {
        if (op.num_results() == 0 || op.num_regions() > 0) return false;
        for (std::size_t r = 0; r < op.num_results(); ++r) {
          if (op.result(r)->has_uses()) return false;
        }
        rw.erase_op(&op);
        if (dce_fired != nullptr) ++*dce_fired;
        return true;
      },
      /*benefit=*/0));

  return patterns;
}

namespace {

bool cse_eligible(const Operation &op) {
  if (op.num_results() != 1 || op.num_regions() != 0) return false;
  std::string_view d = op.dialect();
  if (d == "arith" || d == "esn") return true;
  if (d == "teil") return op.name() != "teil.output";
  return false;
}

std::string signature(const Operation &op) {
  std::string sig = op.name();
  // Result types are part of the identity: the same inputs can produce
  // different shapes (e.g. teil.iota of different extents).
  sig += ':';
  sig += op.result(0)->type().str();
  for (const auto &[key, value] : op.attributes()) {
    sig += '|';
    sig += key.str();
    sig += '=';
    sig += value.str();
  }
  for (std::size_t i = 0; i < op.num_operands(); ++i) {
    sig += '#';
    sig += std::to_string(reinterpret_cast<std::uintptr_t>(op.operand(i)));
  }
  return sig;
}

std::size_t cse_block(ir::Block &block) {
  std::size_t replaced = 0;
  std::map<std::string, Value *> seen;
  std::vector<Operation *> to_erase;
  for (Operation &op : block.operations()) {
    // Recurse into nested regions first (their values cannot escape).
    for (std::size_t r = 0; r < op.num_regions(); ++r) {
      for (ir::Block &nested : op.region(r).blocks()) replaced += cse_block(nested);
    }
    if (!cse_eligible(op)) continue;
    std::string sig = signature(op);
    auto [it, inserted] = seen.emplace(sig, op.result(0));
    if (!inserted) {
      op.replace_all_uses_with({it->second});
      to_erase.push_back(&op);
      ++replaced;
    }
  }
  for (Operation *op : to_erase) block.erase(op);
  return replaced;
}

}  // namespace

std::size_t common_subexpression_elimination(ir::Module &module) {
  std::size_t replaced = 0;
  for (Operation &op : module.body().operations()) {
    for (std::size_t r = 0; r < op.num_regions(); ++r) {
      for (ir::Block &block : op.region(r).blocks()) replaced += cse_block(block);
    }
  }
  replaced += cse_block(module.body());
  return replaced;
}

std::size_t common_subexpression_elimination(ir::Operation &root) {
  std::size_t replaced = 0;
  for (std::size_t r = 0; r < root.num_regions(); ++r) {
    for (ir::Block &block : root.region(r).blocks())
      replaced += cse_block(block);
  }
  return replaced;
}

namespace {

std::size_t fold_broadcast_list(const std::vector<Operation *> &broadcasts) {
  std::size_t folded = 0;
  for (Operation *outer : broadcasts) {
    Operation *inner = outer->operand(0)->defining_op();
    if (!inner || inner->name() != "teil.broadcast") continue;
    // outer.map[d] selects inner dims; compose to reach inner's source.
    auto outer_map = outer->attr("map")->as_int_vector();
    auto inner_map = inner->attr("map")->as_int_vector();
    std::vector<std::int64_t> composed(outer_map.size(), -1);
    for (std::size_t d = 0; d < outer_map.size(); ++d) {
      if (outer_map[d] >= 0)
        composed[d] = inner_map[static_cast<std::size_t>(outer_map[d])];
    }
    outer->set_operand(0, inner->operand(0));
    outer->set_attr("map", Attribute::int_array(composed));
    ++folded;
  }
  return folded;
}

}  // namespace

std::size_t fold_broadcast_chains(ir::Module &module) {
  return fold_broadcast_list(module.find_all("teil.broadcast"));
}

std::size_t fold_broadcast_chains(ir::Operation &root) {
  std::vector<Operation *> broadcasts;
  for (std::size_t r = 0; r < root.num_regions(); ++r) {
    for (ir::Block &block : root.region(r).blocks()) {
      for (Operation &op : block.operations()) {
        op.walk([&](Operation &nested) {
          if (nested.name() == "teil.broadcast") broadcasts.push_back(&nested);
        });
      }
    }
  }
  return fold_broadcast_list(broadcasts);
}

CanonicalizeStats canonicalize(ir::Module &module, std::size_t max_iterations,
                               ir::RewriteDriver driver) {
  CanonicalizeStats stats;
  std::size_t dce_fired = 0;
  auto patterns = canonicalize_patterns(&dce_fired);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++stats.iterations;
    std::size_t dce_before = dce_fired;
    auto rewrite = ir::apply_patterns_greedily(module, patterns,
                                               /*max_iterations=*/32, driver);
    std::size_t cse = common_subexpression_elimination(module);
    std::size_t bcast = fold_broadcast_chains(module);
    std::size_t dce = eliminate_dead_code(module);
    std::size_t pattern_dce = dce_fired - dce_before;
    stats.folded_constants += rewrite.rewrites - pattern_dce;
    stats.cse_replaced += cse;
    stats.broadcasts_folded += bcast;
    stats.dce_removed += dce + pattern_dce;
    if (!rewrite.converged) break;  // inner driver hit its bound
    if (rewrite.rewrites == 0 && cse == 0 && bcast == 0 && dce == 0) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

namespace {

/// Dead-op elimination confined to the IR nested under `root` (same
/// eligibility as eliminate_dead_code; `root` itself is never removed).
std::size_t dce_under(ir::Operation &root) {
  std::size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Operation *> dead;
    auto consider = [&](Operation &op) {
      if (&op == &root) return;
      if (op.num_results() == 0 || op.num_regions() > 0) return;
      for (std::size_t r = 0; r < op.num_results(); ++r) {
        if (op.result(r)->has_uses()) return;
      }
      dead.push_back(&op);
    };
    root.walk(consider);
    for (Operation *op : dead) {
      op->parent_block()->erase(op);
      ++removed;
      changed = true;
    }
  }
  return removed;
}

}  // namespace

CanonicalizeStats canonicalize_func(ir::Operation &func,
                                    std::size_t max_iterations,
                                    ir::RewriteDriver driver) {
  CanonicalizeStats stats;
  std::size_t dce_fired = 0;
  auto patterns = canonicalize_patterns(&dce_fired);
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    ++stats.iterations;
    std::size_t dce_before = dce_fired;
    auto rewrite = ir::apply_patterns_greedily(func, patterns,
                                               /*max_iterations=*/32, driver);
    std::size_t cse = common_subexpression_elimination(func);
    std::size_t bcast = fold_broadcast_chains(func);
    std::size_t dce = dce_under(func);
    std::size_t pattern_dce = dce_fired - dce_before;
    stats.folded_constants += rewrite.rewrites - pattern_dce;
    stats.cse_replaced += cse;
    stats.broadcasts_folded += bcast;
    stats.dce_removed += dce + pattern_dce;
    if (!rewrite.converged) break;  // inner driver hit its bound
    if (rewrite.rewrites == 0 && cse == 0 && bcast == 0 && dce == 0) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

support::Status canonicalize_func_checked(ir::Operation &func,
                                          CanonicalizeStats *out,
                                          std::size_t max_iterations,
                                          ir::RewriteDriver driver) {
  CanonicalizeStats stats = canonicalize_func(func, max_iterations, driver);
  if (out != nullptr) *out = stats;
  if (!stats.converged) {
    return support::Status::failure(
        "canonicalize: no fixpoint within " + std::to_string(max_iterations) +
            " iterations (" + std::to_string(stats.folded_constants) +
            " folds, " + std::to_string(stats.dce_removed) + " dce so far)",
        support::ErrorCode::Internal);
  }
  return support::Status::ok();
}

support::Status canonicalize_checked(ir::Module &module, CanonicalizeStats *out,
                                     std::size_t max_iterations,
                                     ir::RewriteDriver driver) {
  CanonicalizeStats stats = canonicalize(module, max_iterations, driver);
  if (out != nullptr) *out = stats;
  if (!stats.converged) {
    return support::Status::failure(
        "canonicalize: no fixpoint within " + std::to_string(max_iterations) +
            " iterations (" + std::to_string(stats.folded_constants) +
            " folds, " + std::to_string(stats.dce_removed) + " dce so far)",
        support::ErrorCode::Internal);
  }
  return support::Status::ok();
}

}  // namespace everest::transforms
