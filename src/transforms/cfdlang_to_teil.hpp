// everest/transforms/cfdlang_to_teil.hpp
//
// Lowers cfdlang.program ops to teil.func (the legacy-DSL hop of Fig. 5).
// outer/contract map onto teil.contract einsum subscripts; self-contraction
// uses repeated subscript letters (diagonal + sum).
#pragma once

#include <memory>

#include "ir/ir.hpp"
#include "support/expected.hpp"

namespace everest::transforms {

support::Expected<std::shared_ptr<ir::Module>> lower_cfdlang_to_teil(
    const ir::Module &module);

}  // namespace everest::transforms
