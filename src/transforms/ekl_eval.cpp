#include "transforms/ekl_eval.hpp"

#include <algorithm>
#include <cmath>

#include "dialects/ekl.hpp"

namespace everest::transforms {

namespace {

using dialects::ekl::result_indices;
using numerics::Shape;
using numerics::Tensor;
using support::Error;
using support::Expected;

using ExtentMap = std::map<std::string, std::int64_t>;
using PointMap = std::map<std::string, std::int64_t>;

/// Reads the element of `t` (indexed by names `names`) at `point`.
double fetch(const Tensor &t, const std::vector<std::string> &names,
             const PointMap &point) {
  if (names.empty()) return t.flat(0);
  std::vector<std::int64_t> idx(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) idx[i] = point.at(names[i]);
  return t.at(idx);
}

/// Iterates over the index space given by `names`/extents, calling fn(point).
template <typename F>
void for_each_point(const std::vector<std::string> &names,
                    const ExtentMap &extents, PointMap &point, std::size_t dim,
                    F &&fn) {
  if (dim == names.size()) {
    fn();
    return;
  }
  std::int64_t n = extents.at(names[dim]);
  for (std::int64_t v = 0; v < n; ++v) {
    point[names[dim]] = v;
    for_each_point(names, extents, point, dim + 1, fn);
  }
}

Shape shape_of(const std::vector<std::string> &names, const ExtentMap &extents) {
  Shape s;
  s.reserve(names.size());
  for (const auto &n : names) s.push_back(extents.at(n));
  return s;
}

const ir::Operation *find_kernel(const ir::Module &module) {
  for (const ir::Operation &op : module.body().operations()) {
    if (op.name() == "ekl.kernel") return &op;
  }
  return nullptr;
}

support::Status merge_extent(ExtentMap &extents, const std::string &name,
                             std::int64_t value) {
  auto [it, inserted] = extents.emplace(name, value);
  if (!inserted && it->second != value) {
    return support::Status::failure(
        "ekl eval: conflicting extents for index '" + name + "': " +
        std::to_string(it->second) + " vs " + std::to_string(value));
  }
  return support::Status::ok();
}

}  // namespace

Expected<ExtentMap> resolve_ekl_extents(const ir::Operation &kernel,
                                        const EklBindings &bindings) {
  ExtentMap extents = bindings.extents;

  // Extents from inputs.
  for (const ir::Operation &op : kernel.region(0).front().operations()) {
    if (op.name() == "ekl.input") {
      std::string name = op.attr_string("name");
      auto it = bindings.inputs.find(name);
      if (it == bindings.inputs.end())
        return Error::make("ekl eval: missing input tensor '" + name + "'");
      auto idx = op.attr("indices")->as_string_vector();
      if (it->second.rank() != idx.size())
        return Error::make("ekl eval: input '" + name + "' rank mismatch");
      for (std::size_t d = 0; d < idx.size(); ++d) {
        if (auto s = merge_extent(extents, idx[d], it->second.dim(d));
            !s.is_ok())
          return Error::make(s.message());
      }
    } else if (op.name() == "ekl.stack") {
      std::string new_index = op.attr_string("new_index");
      if (auto s = merge_extent(extents, new_index,
                                static_cast<std::int64_t>(op.num_operands()));
          !s.is_ok())
        return Error::make(s.message());
    }
  }

  // Every index referenced anywhere must now have an extent.
  for (const ir::Operation &op : kernel.region(0).front().operations()) {
    const ir::Attribute *idx = op.attr("indices");
    if (!idx || !idx->is_array()) continue;
    for (const auto &name : idx->as_string_vector()) {
      if (!extents.count(name))
        return Error::make("ekl eval: unknown extent for index '" + name +
                           "' (supply it via EklBindings::extents)");
    }
    const ir::Attribute *reduce = op.attr("reduce");
    if (reduce && reduce->is_array()) {
      for (const auto &name : reduce->as_string_vector()) {
        if (!extents.count(name))
          return Error::make("ekl eval: unknown extent for reduced index '" +
                             name + "'");
      }
    }
  }
  return extents;
}

Expected<std::map<std::string, Tensor>> evaluate_ekl(
    const ir::Module &module, const EklBindings &bindings) {
  const ir::Operation *kernel = find_kernel(module);
  if (!kernel) return Error::make("ekl eval: no ekl.kernel in module");

  auto extents_or = resolve_ekl_extents(*kernel, bindings);
  if (!extents_or) return extents_or.error();
  const ExtentMap &extents = *extents_or;

  std::map<const ir::Value *, Tensor> values;
  std::map<std::string, Tensor> outputs;

  auto operand_tensor = [&](const ir::Operation &op, std::size_t i)
      -> const Tensor & { return values.at(op.operand(i)); };

  for (const ir::Operation &op : kernel->region(0).front().operations()) {
    const std::string &name = op.name();

    if (name == "ekl.output") {
      outputs.emplace(op.attr_string("name"), operand_tensor(op, 0));
      continue;
    }

    std::vector<std::string> out_idx =
        op.num_results() > 0 ? result_indices(*op.result(0))
                             : std::vector<std::string>{};
    Tensor result(shape_of(out_idx, extents));

    if (name == "ekl.input") {
      result = bindings.inputs.at(op.attr_string("name"));
    } else if (name == "ekl.literal") {
      result = Tensor::scalar(op.attr_double("value"));
    } else if (name == "ekl.index") {
      std::int64_t n = extents.at(op.attr_string("name"));
      for (std::int64_t v = 0; v < n; ++v) result.flat(v) = static_cast<double>(v);
    } else if (name == "ekl.binary" || name == "ekl.compare") {
      const Tensor &lhs = operand_tensor(op, 0);
      const Tensor &rhs = operand_tensor(op, 1);
      auto lidx = result_indices(*op.operand(0));
      auto ridx = result_indices(*op.operand(1));
      std::string fn = name == "ekl.binary" ? op.attr_string("fn")
                                            : op.attr_string("predicate");
      PointMap point;
      std::int64_t flat = 0;
      for_each_point(out_idx, extents, point, 0, [&] {
        double a = fetch(lhs, lidx, point);
        double b = fetch(rhs, ridx, point);
        double v = 0.0;
        if (fn == "add") v = a + b;
        else if (fn == "sub") v = a - b;
        else if (fn == "mul") v = a * b;
        else if (fn == "div") v = a / b;
        else if (fn == "min") v = std::min(a, b);
        else if (fn == "max") v = std::max(a, b);
        else if (fn == "le") v = a <= b ? 1.0 : 0.0;
        else if (fn == "lt") v = a < b ? 1.0 : 0.0;
        else if (fn == "ge") v = a >= b ? 1.0 : 0.0;
        else if (fn == "gt") v = a > b ? 1.0 : 0.0;
        else if (fn == "eq") v = a == b ? 1.0 : 0.0;
        else if (fn == "ne") v = a != b ? 1.0 : 0.0;
        result.flat(flat++) = v;
      });
    } else if (name == "ekl.select") {
      const Tensor &cond = operand_tensor(op, 0);
      const Tensor &then_t = operand_tensor(op, 1);
      const Tensor &else_t = operand_tensor(op, 2);
      auto cidx = result_indices(*op.operand(0));
      auto tidx = result_indices(*op.operand(1));
      auto eidx = result_indices(*op.operand(2));
      PointMap point;
      std::int64_t flat = 0;
      for_each_point(out_idx, extents, point, 0, [&] {
        result.flat(flat++) = fetch(cond, cidx, point) != 0.0
                                  ? fetch(then_t, tidx, point)
                                  : fetch(else_t, eidx, point);
      });
    } else if (name == "ekl.sum") {
      const Tensor &src = operand_tensor(op, 0);
      auto sidx = result_indices(*op.operand(0));
      auto reduce = op.attr("reduce")->as_string_vector();
      PointMap point;
      std::int64_t flat = 0;
      for_each_point(out_idx, extents, point, 0, [&] {
        double acc = 0.0;
        PointMap inner = point;
        for_each_point(reduce, extents, inner, 0,
                       [&] { acc += fetch(src, sidx, inner); });
        result.flat(flat++) = acc;
      });
    } else if (name == "ekl.gather") {
      const Tensor &src = operand_tensor(op, 0);
      auto sidx = result_indices(*op.operand(0));
      std::size_t n_bound = op.num_operands() - 1;
      PointMap point;
      std::int64_t flat = 0;
      for_each_point(out_idx, extents, point, 0, [&] {
        std::vector<std::int64_t> src_point(sidx.size());
        for (std::size_t d = 0; d < sidx.size(); ++d) {
          std::int64_t v;
          if (d < n_bound) {
            const Tensor &sub = operand_tensor(op, d + 1);
            auto sub_idx = result_indices(*op.operand(d + 1));
            v = static_cast<std::int64_t>(
                std::llround(fetch(sub, sub_idx, point)));
          } else {
            v = point.at(sidx[d]);  // retained trailing index
          }
          v = std::clamp<std::int64_t>(v, 0, src.dim(d) - 1);
          src_point[d] = v;
        }
        result.flat(flat++) = src.at(src_point);
      });
    } else if (name == "ekl.stack") {
      std::string new_index = op.attr_string("new_index");
      PointMap point;
      std::int64_t flat = 0;
      for_each_point(out_idx, extents, point, 0, [&] {
        auto part = static_cast<std::size_t>(point.at(new_index));
        const Tensor &src = operand_tensor(op, part);
        auto pidx = result_indices(*op.operand(part));
        result.flat(flat++) = fetch(src, pidx, point);
      });
    } else {
      return Error::make("ekl eval: unsupported op '" + name + "'");
    }

    if (op.num_results() > 0) values.emplace(op.result(0), std::move(result));
  }

  return outputs;
}

}  // namespace everest::transforms
