// everest/transforms/loop_eval.hpp
//
// Interpreter for the loop-level IR (func.func over scf.for / memref /
// arith) produced by lower_teil_to_loops. This closes the verification
// chain: EKL eval == TeIL eval == loop eval, so the exact IR the HLS engine
// schedules is known to compute the right values.
#pragma once

#include <map>
#include <string>

#include "ir/ir.hpp"
#include "numerics/tensor.hpp"
#include "support/expected.hpp"

namespace everest::transforms {

/// Executes the first func.func in `module`. Buffers tagged kind="input"
/// are initialized from `inputs` (by their "name" attribute); buffers tagged
/// kind="output" are returned by name after execution.
support::Expected<std::map<std::string, numerics::Tensor>> evaluate_loops(
    const ir::Module &module,
    const std::map<std::string, numerics::Tensor> &inputs);

}  // namespace everest::transforms
