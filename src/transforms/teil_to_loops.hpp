// everest/transforms/teil_to_loops.hpp
//
// Lowers teil.func tensor programs into loop-level IR (func.func containing
// scf.for nests over memref buffers with scalar arith ops) — the form the
// HLS engine schedules. Every scf.for carries a "trip_count" attribute and
// buffers carry "bytes"; allocs for program inputs/outputs are tagged with
// kind = "input"/"output" so Olympus can plan host transfers.
#pragma once

#include <memory>

#include "ir/ir.hpp"
#include "support/expected.hpp"

namespace everest::transforms {

support::Expected<std::shared_ptr<ir::Module>> lower_teil_to_loops(
    const ir::Module &module);

}  // namespace everest::transforms
