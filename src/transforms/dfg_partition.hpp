// everest/transforms/dfg_partition.hpp
//
// Compile-time CPU/FPGA placement of dfg.graph nodes (paper §VIII: "an
// exploration using the EVEREST SDK ... to transparently decide at compile
// time where to allocate the kernels (FPGA or CPU)"). Exhaustive search over
// assignments (coordination graphs are small) minimizing predicted makespan
// under the platform's resource budget, honoring user-pinned placements.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/ir.hpp"
#include "support/expected.hpp"

namespace everest::transforms {

/// Per-operator cost model (measured or HLS-estimated).
struct NodeCost {
  double cpu_ms = 1.0;       // per-batch latency on CPU
  double fpga_ms = 1.0;      // per-batch latency on the accelerator
  std::int64_t luts = 0;     // FPGA resources if placed on fabric
  double bytes = 0.0;        // data crossing the node boundary per batch
};

/// Platform constraints for the placement decision.
struct PlacementBudget {
  std::int64_t available_luts = 1'200'000;  // Alveo u55c-class fabric
  double pcie_gbps = 12.0;                  // effective host<->card bandwidth
  double transfer_overhead_ms = 0.05;       // per crossing (DMA setup)
};

/// Result of the exploration.
struct PlacementResult {
  std::map<std::string, std::string> placement;  // node name -> "cpu"/"fpga"
  double predicted_ms = 0.0;
  std::int64_t luts_used = 0;
  std::size_t explored = 0;  // assignments evaluated
};

/// Explores placements for the first dfg.graph. `costs` maps callee names to
/// their cost model; nodes with a pinned "placement" attribute are honored.
/// On success the chosen placement is written back onto the node attributes.
support::Expected<PlacementResult> partition_dfg(
    ir::Module &module, const std::map<std::string, NodeCost> &costs,
    const PlacementBudget &budget = {});

/// Predicts end-to-end latency of a specific assignment (exposed for tests
/// and for the E8 Pareto sweep).
double predict_latency(const std::vector<std::string> &order,
                       const std::map<std::string, NodeCost> &costs,
                       const std::map<std::string, std::string> &placement,
                       const std::map<std::string, std::vector<std::string>>
                           &consumers,
                       const PlacementBudget &budget);

}  // namespace everest::transforms
