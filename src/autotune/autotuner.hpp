// everest/autotune/autotuner.hpp
//
// The EVEREST dynamic autotuner, modeled on mARGOt (paper §VI-C, ref [8]):
// an application-level library working on *knobs* (variables the library
// controls: parameters, code variants) and *metrics* (observed properties).
// Application knowledge is a list of operating points mapping knob settings
// to expected metric values; constraints (with priorities) filter the
// points, a rank objective orders them, and runtime monitors feed back
// measured metrics that continuously correct the expectations — so the best
// configuration tracks the actual execution environment (available
// resources, data characteristics).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/expected.hpp"
#include "support/thread_pool.hpp"

namespace everest::autotune {

/// Knob settings and expected metrics of one configuration.
struct OperatingPoint {
  std::map<std::string, double> knobs;
  std::map<std::string, double> metrics;
};

/// A constraint on a (corrected) metric. Higher priority = relaxed last.
struct Constraint {
  std::string metric;
  enum class Kind { LessEqual, GreaterEqual } kind = Kind::LessEqual;
  double bound = 0.0;
  int priority = 1;
};

/// Rank objective over a metric.
struct Rank {
  std::string metric;
  bool maximize = false;
};

/// Sliding-window runtime monitor (mARGOt's monitors).
class SlidingMonitor {
public:
  explicit SlidingMonitor(std::size_t window = 16) : window_(window) {}
  void push(double value);
  [[nodiscard]] double mean() const;
  [[nodiscard]] double last() const { return values_.empty() ? 0.0 : values_.back(); }
  [[nodiscard]] std::size_t count() const { return values_.size(); }
  void clear() { values_.clear(); }

private:
  std::size_t window_;
  std::deque<double> values_;
};

/// Evaluates one knob configuration at design time (typically a Basecamp
/// compile of that variant) and returns its metrics.
using VariantEval = std::function<support::Expected<std::map<std::string, double>>(
    const std::map<std::string, double> &knobs)>;

/// The autotuner.
class Autotuner {
public:
  /// Adds one operating point to the application knowledge.
  void add_knowledge(OperatingPoint point);
  [[nodiscard]] std::size_t knowledge_size() const { return knowledge_.size(); }

  /// Design-space exploration: evaluates every candidate with `eval` —
  /// across `pool` when one is given — and appends the resulting operating
  /// points to the knowledge base *in candidate order*, so the knowledge
  /// (and every subsequent select()) is identical for any worker count. On
  /// failure nothing is added and the lowest-index error is returned;
  /// otherwise returns the number of points added.
  support::Expected<std::size_t> evaluate_candidates(
      const std::vector<std::map<std::string, double>> &candidates,
      const VariantEval &eval, support::ThreadPool *pool = nullptr);

  void add_constraint(Constraint constraint);
  void set_rank(Rank rank) { rank_ = std::move(rank); }

  /// Selects the best operating point: satisfy constraints (relaxing the
  /// lowest-priority ones when infeasible), then optimize the rank metric.
  /// The selection becomes the "current" point for observation feedback.
  support::Expected<OperatingPoint> select();

  /// Feeds a measured metric for the current point. The ratio measured /
  /// expected updates a global correction factor (EMA) applied to every
  /// point's expectation of that metric — mARGOt's runtime adaptation.
  void observe(const std::string &metric, double measured);

  /// Current correction factor for a metric (1.0 when unobserved).
  [[nodiscard]] double correction(const std::string &metric) const;

  /// Expected value of `metric` for `point` after correction; nullopt when
  /// the point never measured that metric. select() treats an absent
  /// constrained metric as infeasible and an absent rank metric as
  /// ranking behind every measured point.
  [[nodiscard]] std::optional<double> corrected(
      const OperatingPoint &point, const std::string &metric) const;

  /// Number of constraint-relaxation levels used by the last select().
  [[nodiscard]] int last_relaxations() const { return last_relaxations_; }

private:
  std::vector<OperatingPoint> knowledge_;
  std::vector<Constraint> constraints_;
  Rank rank_;
  std::map<std::string, double> corrections_;
  const OperatingPoint *current_ = nullptr;
  int last_relaxations_ = 0;
  double ema_alpha_ = 0.4;
};

}  // namespace everest::autotune
