#include "autotune/autotuner.hpp"

#include <algorithm>
#include <set>

namespace everest::autotune {

using support::Error;
using support::Expected;

void SlidingMonitor::push(double value) {
  values_.push_back(value);
  while (values_.size() > window_) values_.pop_front();
}

double SlidingMonitor::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

void Autotuner::add_knowledge(OperatingPoint point) {
  knowledge_.push_back(std::move(point));
  current_ = nullptr;  // pointers into knowledge_ may be invalidated
}

Expected<std::size_t> Autotuner::evaluate_candidates(
    const std::vector<std::map<std::string, double>> &candidates,
    const VariantEval &eval, support::ThreadPool *pool) {
  auto results = support::parallel_indexed(
      pool, candidates.size(),
      [&](std::size_t i) { return eval(candidates[i]); });
  // Deterministic merge: commit nothing until every evaluation is in, then
  // append in candidate order — knowledge is independent of worker count.
  for (const auto &result : results)
    if (!result) return result.error().with_context("autotuner");
  for (std::size_t i = 0; i < candidates.size(); ++i)
    add_knowledge({candidates[i], *results[i]});
  return candidates.size();
}

void Autotuner::add_constraint(Constraint constraint) {
  constraints_.push_back(std::move(constraint));
}

double Autotuner::correction(const std::string &metric) const {
  auto it = corrections_.find(metric);
  return it == corrections_.end() ? 1.0 : it->second;
}

std::optional<double> Autotuner::corrected(const OperatingPoint &point,
                                           const std::string &metric) const {
  auto it = point.metrics.find(metric);
  if (it == point.metrics.end()) return std::nullopt;
  return it->second * correction(metric);
}

Expected<OperatingPoint> Autotuner::select() {
  if (knowledge_.empty())
    return Error::make("autotuner: no application knowledge");

  // Constraint priorities sorted ascending: relax from the lowest.
  std::set<int> priorities;
  for (const auto &c : constraints_) priorities.insert(c.priority);
  std::vector<int> relax_order(priorities.begin(), priorities.end());

  last_relaxations_ = 0;
  // Level 0: all constraints. Level k: drop the k lowest priorities.
  for (std::size_t level = 0; level <= relax_order.size(); ++level) {
    std::vector<const OperatingPoint *> feasible;
    for (const auto &point : knowledge_) {
      bool ok = true;
      for (const auto &c : constraints_) {
        // Dropped if its priority is among the `level` lowest.
        bool dropped = false;
        for (std::size_t k = 0; k < level; ++k) {
          if (c.priority == relax_order[k]) dropped = true;
        }
        if (dropped) continue;
        auto value = corrected(point, c.metric);
        // A point that never measured a constrained metric is infeasible
        // under that constraint — an absent value must not read as 0.0 and
        // sail under a LessEqual bound.
        if (!value.has_value()) ok = false;
        else if (c.kind == Constraint::Kind::LessEqual && *value > c.bound)
          ok = false;
        else if (c.kind == Constraint::Kind::GreaterEqual && *value < c.bound)
          ok = false;
      }
      if (ok) feasible.push_back(&point);
    }
    if (feasible.empty()) continue;

    last_relaxations_ = static_cast<int>(level);
    // Points that never measured the rank metric rank behind every point
    // that did (previously an absent value read as 0.0 and won any
    // minimization outright).
    auto beats = [&](const OperatingPoint &p, const OperatingPoint &b) {
      auto pv = corrected(p, rank_.metric);
      auto bv = corrected(b, rank_.metric);
      if (!pv.has_value()) return false;
      if (!bv.has_value()) return true;
      return rank_.maximize ? *pv > *bv : *pv < *bv;
    };
    const OperatingPoint *best = feasible.front();
    for (const OperatingPoint *p : feasible)
      if (beats(*p, *best)) best = p;
    current_ = best;
    return *best;
  }
  return Error::make("autotuner: no feasible operating point even after "
                     "relaxing all constraints");
}

void Autotuner::observe(const std::string &metric, double measured) {
  if (!current_) return;
  auto it = current_->metrics.find(metric);
  if (it == current_->metrics.end() || it->second == 0.0) return;
  double ratio = measured / it->second;
  double &corr = corrections_.try_emplace(metric, 1.0).first->second;
  corr = (1.0 - ema_alpha_) * corr + ema_alpha_ * ratio;
}

}  // namespace everest::autotune
