#include "usecases/speednet.hpp"

#include <stdexcept>

#include "support/rng.hpp"
#include "support/strings.hpp"

namespace everest::usecases::speednet {

using numerics::Shape;
using numerics::Tensor;
using support::Error;
using support::Expected;

namespace {

/// Emits {"name": ..., "shape": [...], "data": [...]} for one weight tensor
/// filled with scaled Gaussian values.
void append_initializer(std::string &out, const char *name,
                        const std::vector<std::int64_t> &shape, double scale,
                        support::Pcg32 &rng, bool last = false) {
  out += "    {\"name\": \"";
  out += name;
  out += "\", \"shape\": [";
  std::int64_t elems = 1;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(shape[i]);
    elems *= shape[i];
  }
  out += "], \"data\": [";
  for (std::int64_t i = 0; i < elems; ++i) {
    if (i != 0) out += ",";
    out += support::format_double(rng.normal(0.0, scale));
  }
  out += "]}";
  out += last ? "\n" : ",\n";
}

}  // namespace

std::string model_json(std::uint64_t seed) {
  support::Pcg32 rng(seed);
  std::string j;
  j += "{\n  \"name\": \"speednet\",\n";
  j += "  \"inputs\": [{\"name\": \"x\", \"shape\": [3, 96]}],\n";
  j += "  \"initializers\": [\n";
  append_initializer(j, "w1", {8, 3, 5}, 0.25, rng);
  append_initializer(j, "b1", {8}, 0.05, rng);
  append_initializer(j, "w2", {8, 8, 3}, 0.2, rng);
  append_initializer(j, "b2", {8}, 0.05, rng);
  append_initializer(j, "w3", {4, 192}, 0.08, rng);
  append_initializer(j, "b3", {4}, 0.05, rng, /*last=*/true);
  j += "  ],\n";
  j += R"(  "nodes": [
    {"op": "Conv1D", "name": "conv1", "inputs": ["x", "w1", "b1"], "output": "c1"},
    {"op": "Relu", "name": "relu1", "inputs": ["c1"], "output": "r1"},
    {"op": "MaxPool1D", "name": "pool1", "inputs": ["r1"], "output": "p1", "attrs": {"window": 2}},
    {"op": "Conv1D", "name": "conv2", "inputs": ["p1", "w2", "b2"], "output": "c2"},
    {"op": "Relu", "name": "relu2", "inputs": ["c2"], "output": "r2"},
    {"op": "MaxPool1D", "name": "pool2", "inputs": ["r2"], "output": "p2", "attrs": {"window": 2}},
    {"op": "Flatten", "name": "flat", "inputs": ["p2"], "output": "f"},
    {"op": "Gemm", "name": "head", "inputs": ["f", "w3", "b3"], "output": "speeds"}
  ],
  "outputs": ["speeds"]
}
)";
  return j;
}

Expected<frontend::OnnxModel> load_model(std::uint64_t seed) {
  return frontend::import_onnx_json(model_json(seed));
}

Tensor make_input(const std::vector<double> &speed_profile_96,
                  const std::vector<double> &temperature_96,
                  const std::vector<double> &precipitation_96) {
  if (speed_profile_96.size() != 96 || temperature_96.size() != 96 ||
      precipitation_96.size() != 96)
    throw std::invalid_argument("speednet: inputs must have 96 intervals");
  Tensor x(Shape{3, 96});
  for (std::int64_t q = 0; q < 96; ++q) {
    x(0, q) = speed_profile_96[static_cast<std::size_t>(q)] / 100.0;
    x(1, q) = temperature_96[static_cast<std::size_t>(q)] / 30.0;
    x(2, q) = precipitation_96[static_cast<std::size_t>(q)];
  }
  return x;
}

Expected<std::vector<double>> predict(const frontend::OnnxModel &model,
                                      const Tensor &input) {
  std::map<std::string, Tensor> inputs;
  inputs.emplace("x", input);
  auto out = frontend::run_onnx(model, inputs);
  if (!out) return out.error();
  const Tensor &speeds = out->at("speeds");
  std::vector<double> result;
  result.reserve(static_cast<std::size_t>(speeds.size()));
  for (std::int64_t i = 0; i < speeds.size(); ++i)
    result.push_back(speeds.flat(i) * 100.0);
  return result;
}

}  // namespace everest::usecases::speednet
