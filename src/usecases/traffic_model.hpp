// everest/usecases/traffic_model.hpp
//
// The traffic-ecosystem model computation (paper §II-D): from origin-
// destination-matrix (ODM) mobility data and the road network, compute "the
// traffic model, which is represented by (a) macroscopic parameters for each
// road segment (speed, flow, intensity) for each 15-minute interval over a
// weekday and (b) coefficients of the prediction model for each road
// segment". The ecosystem "regularly updates its model with new daily
// incoming data" — modeled as an exponential moving average over day builds.
#pragma once

#include <cstdint>
#include <vector>

#include "support/expected.hpp"
#include "usecases/traffic.hpp"

namespace everest::usecases::traffic {

constexpr int kIntervals = 96;  // 15-minute intervals per day

/// Origin-destination demand between grid intersections ("city grid" zones),
/// in vehicles per day, plus the diurnal departure profile.
struct OdMatrix {
  int zones = 0;                        // (grid_n+1)^2 intersections
  std::vector<double> trips;            // [zones * zones] daily vehicles
  std::vector<double> diurnal;          // [96] departure fractions, sums to 1

  [[nodiscard]] double demand(int from, int to, int interval) const {
    return trips[static_cast<std::size_t>(from * zones + to)] *
           diurnal[static_cast<std::size_t>(interval)];
  }
};

/// Synthetic ODM: gravity-style demand between zones with a two-peak
/// commuter diurnal profile.
OdMatrix make_odm(const RoadNetwork &net, double daily_trips_per_zone,
                  std::uint64_t seed);

/// Macroscopic state of one segment, per 15-minute interval.
struct SegmentState {
  std::vector<double> flow;       // [96] vehicles per interval
  std::vector<double> speed_kmh;  // [96] BPR-congested speed
  std::vector<double> intensity;  // [96] density proxy: flow / speed
};

/// Per-segment harmonic prediction coefficients (the paper's "coefficients
/// of the prediction model for each road segment"): speed(q) ~ c0 +
/// c1 sin(wq) + c2 cos(wq) + c3 sin(2wq) + c4 cos(2wq), w = 2*pi/96.
struct PredictionCoefficients {
  double c[5] = {0, 0, 0, 0, 0};

  [[nodiscard]] double predict(int interval) const;
};

/// The daily traffic model.
struct TrafficModel {
  std::vector<SegmentState> segments;           // per segment id
  std::vector<PredictionCoefficients> coeffs;   // per segment id
  int days_integrated = 0;
};

/// Routes all ODM demand over Manhattan (L-shaped) paths and computes the
/// macroscopic parameters with a BPR congestion curve.
support::Expected<TrafficModel> build_model(const RoadNetwork &net,
                                            const OdMatrix &odm,
                                            std::uint64_t seed);

/// Daily update: folds a new day's model into the running one with EMA
/// weight `alpha` on the new data, then refits the prediction coefficients.
support::Status update_model(TrafficModel &model, const TrafficModel &new_day,
                             double alpha = 0.3);

/// BPR (Bureau of Public Roads) congested speed.
double bpr_speed(double free_flow_kmh, double flow, double capacity,
                 double alpha = 0.15, double beta = 4.0);

/// Fits the harmonic coefficients to a 96-interval speed profile (least
/// squares; closed form via orthogonality of the Fourier basis).
PredictionCoefficients fit_prediction(const std::vector<double> &speed_96);

}  // namespace everest::usecases::traffic
