// everest/usecases/rrtmg.hpp
//
// The WRF RRTMG major-absorber optical-depth kernel from paper Fig. 3 — the
// kernel the EVEREST project studied to design the EKL (it consumes ~30% of
// WRF compute cycles). Provides:
//   - a synthetic-but-structurally-faithful data generator (lookup tables,
//     per-cell interpolation indices, mixing fractions),
//   - a reference C++ implementation (the role of the ~200-line Fortran),
//   - the EKL source for the same computation,
//   - bindings connecting the data to the EKL/TeIL evaluators.
//
// tau[x, bnd, g] = sum_{t,p,e}  r_mix[flav(x,bnd), x, e]
//                             * f_major[flav(x,bnd), x, t, p, e]
//                             * k_major[jT(x)+t, jp(x)+strato(x)+p,
//                                       jeta(flav,x)+e, g]
#pragma once

#include <cstdint>
#include <string>

#include "numerics/tensor.hpp"
#include "transforms/ekl_eval.hpp"

namespace everest::usecases::rrtmg {

/// Problem dimensions. Defaults are small enough for unit tests; the bench
/// scales ncells/ng up.
struct Config {
  std::int64_t ncells = 16;  // atmosphere cells (column x layer), index x
  std::int64_t nbnd = 3;     // spectral bands, index bnd
  std::int64_t ng = 8;       // g-points per band, index g
  std::int64_t nflav = 4;    // gas flavors, index f
  std::int64_t ntemp = 6;    // temperature table entries, index T
  std::int64_t npress = 7;   // pressure table entries, index P
  std::int64_t neta = 5;     // eta table entries, index H
  std::uint64_t seed = 42;
};

/// Generated kernel inputs (tensors named as in the EKL program).
struct Data {
  Config config;
  numerics::Tensor pres;         // [ncells]
  numerics::Tensor strato;       // scalar: tropopause pressure threshold
  numerics::Tensor bnd_to_flav;  // [2, nbnd]   flavor per (troposphere?, band)
  numerics::Tensor j_T;          // [ncells]    base temperature index
  numerics::Tensor j_p;          // [ncells]    base pressure index
  numerics::Tensor j_eta;        // [nflav, ncells] base eta index
  numerics::Tensor r_mix;        // [nflav, ncells, 2] mixing fractions
  numerics::Tensor f_major;      // [nflav, ncells, 2, 2, 2] interp weights
  numerics::Tensor k_major;      // [ntemp, npress, neta, ng] absorption table
};

/// Deterministically generates structurally valid inputs.
Data make_data(const Config &config);

/// Reference implementation with explicit loops; returns tau[ncells,nbnd,ng].
numerics::Tensor reference_tau(const Data &data);

/// The kernel in EVEREST Kernel Language (paper Fig. 3 syntax).
std::string ekl_source();

/// Number of source lines the reference loop implementation occupies (a
/// stand-in for the paper's "200 lines of Fortran"); measured from this
/// translation unit's reference kernel.
std::size_t reference_line_count();

/// Bindings wiring `data` into the EKL evaluator / lowering.
transforms::EklBindings bindings(const Data &data);

}  // namespace everest::usecases::rrtmg
