#include "usecases/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace everest::usecases::traffic {

using support::Error;
using support::Expected;

// ------------------------------------------------------------------ network

double Segment::length_km() const {
  return std::hypot(x2 - x1, y2 - y1);
}

double Segment::distance_km(double px, double py) const {
  double dx = x2 - x1, dy = y2 - y1;
  double len2 = dx * dx + dy * dy;
  double t = len2 > 0 ? ((px - x1) * dx + (py - y1) * dy) / len2 : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  return std::hypot(px - (x1 + t * dx), py - (y1 + t * dy));
}

RoadNetwork make_grid_network(int n, double cell_km, std::uint64_t seed) {
  support::Pcg32 rng(seed);
  RoadNetwork net;
  net.grid_n = n;
  net.cell_km = cell_km;
  int id = 0;
  auto add = [&](double x1, double y1, double x2, double y2) {
    Segment s;
    s.id = id++;
    s.x1 = x1;
    s.y1 = y1;
    s.x2 = x2;
    s.y2 = y2;
    s.speed_limit_kmh = 30.0 + 10.0 * rng.bounded(5);  // 30..70
    net.segments.push_back(s);
  };
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j <= n; ++j) {
      double x = i * cell_km, y = j * cell_km;
      if (i < n) add(x, y, x + cell_km, y);
      if (j < n) add(x, y, x, y + cell_km);
    }
  }
  return net;
}

FcdTrace make_trace(const RoadNetwork &net, int num_points, double noise_km,
                    std::uint64_t seed) {
  support::Pcg32 rng(seed);
  FcdTrace trace;

  // Random walk over grid intersections; each step traverses one segment.
  int n = net.grid_n;
  int ix = static_cast<int>(rng.bounded(static_cast<std::uint32_t>(n + 1)));
  int iy = static_cast<int>(rng.bounded(static_cast<std::uint32_t>(n + 1)));

  // Index segments by their endpoints for lookup.
  std::map<std::tuple<double, double, double, double>, int> by_coords;
  for (const auto &s : net.segments)
    by_coords[{s.x1, s.y1, s.x2, s.y2}] = s.id;
  auto find_segment = [&](double x1, double y1, double x2, double y2) {
    auto it = by_coords.find({x1, y1, x2, y2});
    if (it != by_coords.end()) return it->second;
    it = by_coords.find({x2, y2, x1, y1});
    return it != by_coords.end() ? it->second : -1;
  };

  double t = 0.0;
  for (int p = 0; p < num_points; ++p) {
    // Pick a feasible direction.
    for (int attempt = 0; attempt < 16; ++attempt) {
      int dir = static_cast<int>(rng.bounded(4));
      int nx = ix + (dir == 0) - (dir == 1);
      int ny = iy + (dir == 2) - (dir == 3);
      if (nx < 0 || nx > n || ny < 0 || ny > n) continue;
      double x1 = ix * net.cell_km, y1 = iy * net.cell_km;
      double x2 = nx * net.cell_km, y2 = ny * net.cell_km;
      int seg = find_segment(x1, y1, x2, y2);
      if (seg < 0) continue;

      // Sample a GPS point midway along the segment with noise.
      double frac = rng.uniform(0.3, 0.7);
      GpsPoint gp;
      gp.x = x1 + frac * (x2 - x1) + rng.normal(0.0, noise_km);
      gp.y = y1 + frac * (y2 - y1) + rng.normal(0.0, noise_km);
      t += rng.uniform(20.0, 60.0);
      gp.t = t;
      trace.points.push_back(gp);
      trace.true_segments.push_back(seg);
      ix = nx;
      iy = ny;
      break;
    }
  }
  return trace;
}

// ------------------------------------------------------------- map matching

namespace {

struct Candidate {
  int segment = -1;
  double distance_km = 0.0;
};

std::vector<Candidate> find_candidates(const RoadNetwork &net,
                                       const GpsPoint &p, int max_candidates) {
  std::vector<Candidate> all;
  all.reserve(net.segments.size());
  for (const auto &s : net.segments)
    all.push_back({s.id, s.distance_km(p.x, p.y)});
  std::partial_sort(
      all.begin(),
      all.begin() + std::min<std::ptrdiff_t>(max_candidates,
                                             static_cast<std::ptrdiff_t>(all.size())),
      all.end(),
      [](const Candidate &a, const Candidate &b) {
        return a.distance_km < b.distance_km;
      });
  all.resize(std::min<std::size_t>(static_cast<std::size_t>(max_candidates),
                                   all.size()));
  return all;
}

double emission_logp(double distance_km, double sigma) {
  double z = distance_km / sigma;
  return -0.5 * z * z;
}

/// Transition log-probability between segments: exponential in the distance
/// between segment midpoints (proxy for route deviation).
double transition_logp(const Segment &a, const Segment &b, double beta) {
  double ax = 0.5 * (a.x1 + a.x2), ay = 0.5 * (a.y1 + a.y2);
  double bx = 0.5 * (b.x1 + b.x2), by = 0.5 * (b.y1 + b.y2);
  double d = std::hypot(ax - bx, ay - by);
  return -d / beta;
}

}  // namespace

Expected<std::vector<int>> map_match(const RoadNetwork &net,
                                     const std::vector<GpsPoint> &points,
                                     const MapMatchConfig &config) {
  if (points.empty()) return Error::make("map_match: empty trace");
  if (config.max_candidates < 1)
    return Error::make("map_match: need at least one candidate");

  std::vector<std::vector<Candidate>> cands(points.size());
  std::vector<std::vector<double>> logp(points.size());
  std::vector<std::vector<int>> backptr(points.size());

  for (std::size_t i = 0; i < points.size(); ++i) {
    cands[i] = find_candidates(net, points[i], config.max_candidates);
    logp[i].assign(cands[i].size(), -std::numeric_limits<double>::infinity());
    backptr[i].assign(cands[i].size(), -1);
  }

  for (std::size_t c = 0; c < cands[0].size(); ++c)
    logp[0][c] = emission_logp(cands[0][c].distance_km, config.sigma_gps_km);

  for (std::size_t i = 1; i < points.size(); ++i) {
    for (std::size_t c = 0; c < cands[i].size(); ++c) {
      double emit = emission_logp(cands[i][c].distance_km, config.sigma_gps_km);
      for (std::size_t p = 0; p < cands[i - 1].size(); ++p) {
        double trans = transition_logp(
            net.segments[static_cast<std::size_t>(cands[i - 1][p].segment)],
            net.segments[static_cast<std::size_t>(cands[i][c].segment)],
            config.beta_transition);
        double score = logp[i - 1][p] + trans + emit;
        if (score > logp[i][c]) {
          logp[i][c] = score;
          backptr[i][c] = static_cast<int>(p);
        }
      }
    }
  }

  // Backtrack.
  std::vector<int> result(points.size(), -1);
  std::size_t last = points.size() - 1;
  std::size_t best = 0;
  for (std::size_t c = 1; c < logp[last].size(); ++c) {
    if (logp[last][c] > logp[last][best]) best = c;
  }
  for (std::size_t i = points.size(); i-- > 0;) {
    result[i] = cands[i][best].segment;
    if (i > 0) best = static_cast<std::size_t>(backptr[i][best]);
  }
  return result;
}

double matching_accuracy(const std::vector<int> &matched,
                         const std::vector<int> &truth) {
  std::size_t n = std::min(matched.size(), truth.size());
  if (n == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) hits += matched[i] == truth[i];
  return static_cast<double>(hits) / static_cast<double>(n);
}

// -------------------------------------------------- dfg operator registration

std::string mapmatch_condrust_source() {
  return R"(
// Paper Fig. 4: map matching a single element, in ConDRust.
fn map_match(points: Stream<Point>) -> Stream<Seg> {
    #[fpga]
    let cands = candidates(points);
    let scored = emission_score(cands, points);
    let best = greedy_pick(scored);
    let state = fold viterbi_step(scored);
    let quality = decode(state);
    return best;
}
)";
}

runtime::Stream trace_to_stream(const FcdTrace &trace) {
  runtime::Stream s;
  s.reserve(trace.points.size());
  for (const auto &p : trace.points) s.push_back({p.x, p.y, p.t});
  return s;
}

void register_mapmatch_operators(runtime::NodeRegistry &registry,
                                 const RoadNetwork &net,
                                 const MapMatchConfig &config) {
  const int k = config.max_candidates;
  const double sigma = config.sigma_gps_km;
  const double beta = config.beta_transition;
  // Copy the network into the closures (streams outlive this call).
  const RoadNetwork net_copy = net;

  registry.register_node("candidates", [net_copy, k](const auto &in) {
    GpsPoint p{(*in[0])[0], (*in[0])[1], (*in[0])[2]};
    auto cands = find_candidates(net_copy, p, k);
    runtime::Record rec(static_cast<std::size_t>(k) * 2, -1.0);
    for (std::size_t c = 0; c < cands.size(); ++c) {
      rec[c * 2] = cands[c].segment;
      rec[c * 2 + 1] = cands[c].distance_km;
    }
    return rec;
  });

  registry.register_node("emission_score", [k, sigma](const auto &in) {
    const runtime::Record &cands = *in[0];
    runtime::Record rec(static_cast<std::size_t>(k) * 2, -1.0);
    for (int c = 0; c < k; ++c) {
      auto seg = cands[static_cast<std::size_t>(c) * 2];
      if (seg < 0) break;
      rec[static_cast<std::size_t>(c) * 2] = seg;
      rec[static_cast<std::size_t>(c) * 2 + 1] =
          emission_logp(cands[static_cast<std::size_t>(c) * 2 + 1], sigma);
    }
    return rec;
  });

  registry.register_node("greedy_pick", [k](const auto &in) {
    const runtime::Record &scored = *in[0];
    double best_seg = -1, best_logp = -1e300;
    for (int c = 0; c < k; ++c) {
      double seg = scored[static_cast<std::size_t>(c) * 2];
      if (seg < 0) break;
      double lp = scored[static_cast<std::size_t>(c) * 2 + 1];
      if (lp > best_logp) {
        best_logp = lp;
        best_seg = seg;
      }
    }
    return runtime::Record{best_seg};
  });

  // Online Viterbi DP over candidate slots: state = [seg, logp] * k.
  runtime::Record initial(static_cast<std::size_t>(k) * 2, -1.0);
  registry.register_fold(
      "viterbi_step", initial,
      [net_copy, k, beta](const runtime::Record &state, const auto &in) {
        const runtime::Record &scored = *in[0];
        runtime::Record next(static_cast<std::size_t>(k) * 2, -1.0);
        bool first = state[0] < 0;
        for (int c = 0; c < k; ++c) {
          double seg = scored[static_cast<std::size_t>(c) * 2];
          if (seg < 0) break;
          double emit = scored[static_cast<std::size_t>(c) * 2 + 1];
          double best = -1e300;
          if (first) {
            best = emit;
          } else {
            for (int p = 0; p < k; ++p) {
              double pseg = state[static_cast<std::size_t>(p) * 2];
              if (pseg < 0) break;
              double plogp = state[static_cast<std::size_t>(p) * 2 + 1];
              double trans = transition_logp(
                  net_copy.segments[static_cast<std::size_t>(pseg)],
                  net_copy.segments[static_cast<std::size_t>(seg)], beta);
              best = std::max(best, plogp + trans + emit);
            }
          }
          next[static_cast<std::size_t>(c) * 2] = seg;
          next[static_cast<std::size_t>(c) * 2 + 1] = best;
        }
        return next;
      });

  registry.register_node("decode", [k](const auto &in) {
    const runtime::Record &state = *in[0];
    double best_seg = -1, best_logp = -1e300;
    for (int c = 0; c < k; ++c) {
      double seg = state[static_cast<std::size_t>(c) * 2];
      if (seg < 0) break;
      double lp = state[static_cast<std::size_t>(c) * 2 + 1];
      if (lp > best_logp) {
        best_logp = lp;
        best_seg = seg;
      }
    }
    return runtime::Record{best_seg};
  });
}

// ---------------------------------------------------------------------- GMM

double Gmm::pdf(double x) const {
  double p = 0.0;
  for (std::size_t c = 0; c < weight.size(); ++c) {
    double var = std::max(variance[c], 1e-9);
    double z = (x - mean[c]) * (x - mean[c]) / (2.0 * var);
    p += weight[c] * std::exp(-z) / std::sqrt(2.0 * M_PI * var);
  }
  return p;
}

double Gmm::log_likelihood(const std::vector<double> &xs) const {
  double ll = 0.0;
  for (double x : xs) ll += std::log(std::max(pdf(x), 1e-300));
  return ll;
}

double Gmm::mixture_mean() const {
  double m = 0.0;
  for (std::size_t c = 0; c < weight.size(); ++c) m += weight[c] * mean[c];
  return m;
}

Expected<Gmm> fit_gmm(const std::vector<double> &xs, int k, int iterations) {
  if (k < 1) return Error::make("gmm: k must be >= 1");
  if (static_cast<int>(xs.size()) < 2 * k)
    return Error::make("gmm: not enough data for " + std::to_string(k) +
                       " components");

  // Deterministic init at quantiles.
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  Gmm g;
  g.weight.assign(static_cast<std::size_t>(k), 1.0 / k);
  for (int c = 0; c < k; ++c) {
    double q = (c + 0.5) / k;
    g.mean.push_back(sorted[static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1))]);
  }
  double span = std::max(sorted.back() - sorted.front(), 1e-3);
  g.variance.assign(static_cast<std::size_t>(k), span * span / (4.0 * k * k));

  std::vector<std::vector<double>> resp(
      xs.size(), std::vector<double>(static_cast<std::size_t>(k)));
  for (int iter = 0; iter < iterations; ++iter) {
    // E step.
    for (std::size_t i = 0; i < xs.size(); ++i) {
      double total = 0.0;
      for (int c = 0; c < k; ++c) {
        double var = std::max(g.variance[static_cast<std::size_t>(c)], 1e-9);
        double z = (xs[i] - g.mean[static_cast<std::size_t>(c)]);
        double p = g.weight[static_cast<std::size_t>(c)] *
                   std::exp(-z * z / (2.0 * var)) / std::sqrt(var);
        resp[i][static_cast<std::size_t>(c)] = p;
        total += p;
      }
      if (total <= 1e-300) total = 1e-300;
      for (int c = 0; c < k; ++c) resp[i][static_cast<std::size_t>(c)] /= total;
    }
    // M step.
    for (int c = 0; c < k; ++c) {
      double nc = 0.0, mu = 0.0;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        nc += resp[i][static_cast<std::size_t>(c)];
        mu += resp[i][static_cast<std::size_t>(c)] * xs[i];
      }
      nc = std::max(nc, 1e-9);
      mu /= nc;
      double var = 0.0;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        var += resp[i][static_cast<std::size_t>(c)] * (xs[i] - mu) * (xs[i] - mu);
      }
      g.weight[static_cast<std::size_t>(c)] = nc / static_cast<double>(xs.size());
      g.mean[static_cast<std::size_t>(c)] = mu;
      g.variance[static_cast<std::size_t>(c)] = std::max(var / nc, 1e-6);
    }
  }
  return g;
}

std::vector<double> make_speed_observations(double speed_limit_kmh,
                                            std::size_t days,
                                            double missing_fraction,
                                            std::uint64_t seed) {
  support::Pcg32 rng(seed);
  std::vector<double> obs;
  obs.reserve(days * 96);
  for (std::size_t d = 0; d < days; ++d) {
    for (int q = 0; q < 96; ++q) {
      double hour = q / 4.0;
      // Two rush-hour dips at ~8h and ~17h30.
      double dip = 0.45 * std::exp(-std::pow(hour - 8.0, 2) / 2.0) +
                   0.55 * std::exp(-std::pow(hour - 17.5, 2) / 2.5);
      double speed = speed_limit_kmh * (1.0 - dip) + rng.normal(0.0, 2.0);
      if (rng.uniform() < missing_fraction) {
        obs.push_back(std::numeric_limits<double>::quiet_NaN());
      } else {
        obs.push_back(std::max(speed, 3.0));
      }
    }
  }
  return obs;
}

Expected<double> predict_speed_gmm(const std::vector<double> &obs,
                                   int components) {
  std::vector<double> present;
  present.reserve(obs.size());
  for (double x : obs) {
    if (!std::isnan(x)) present.push_back(x);
  }
  if (present.empty()) return Error::make("gmm predict: all data missing");
  auto g = fit_gmm(present, components);
  if (!g) return g.error();
  return g->mixture_mean();
}

}  // namespace everest::usecases::traffic
