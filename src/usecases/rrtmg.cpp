#include "usecases/rrtmg.hpp"

#include <algorithm>

#include "support/rng.hpp"

namespace everest::usecases::rrtmg {

using numerics::Shape;
using numerics::Tensor;

Data make_data(const Config &config) {
  support::Pcg32 rng(config.seed);
  Data d;
  d.config = config;

  d.pres = Tensor(Shape{config.ncells});
  for (auto &v : d.pres.data()) v = rng.uniform();
  d.strato = Tensor::scalar(0.5);

  d.bnd_to_flav = Tensor(Shape{2, config.nbnd});
  for (auto &v : d.bnd_to_flav.data())
    v = static_cast<double>(rng.bounded(static_cast<std::uint32_t>(config.nflav)));

  d.j_T = Tensor(Shape{config.ncells});
  for (auto &v : d.j_T.data())
    v = static_cast<double>(
        rng.bounded(static_cast<std::uint32_t>(config.ntemp - 1)));

  // j_p + i_strato + 1 must stay below npress.
  d.j_p = Tensor(Shape{config.ncells});
  for (auto &v : d.j_p.data())
    v = static_cast<double>(
        rng.bounded(static_cast<std::uint32_t>(config.npress - 2)));

  d.j_eta = Tensor(Shape{config.nflav, config.ncells});
  for (auto &v : d.j_eta.data())
    v = static_cast<double>(
        rng.bounded(static_cast<std::uint32_t>(config.neta - 1)));

  d.r_mix = Tensor(Shape{config.nflav, config.ncells, 2});
  for (auto &v : d.r_mix.data()) v = rng.uniform(0.1, 1.0);

  d.f_major = Tensor(Shape{config.nflav, config.ncells, 2, 2, 2});
  for (auto &v : d.f_major.data()) v = rng.uniform();

  d.k_major = Tensor(Shape{config.ntemp, config.npress, config.neta, config.ng});
  for (auto &v : d.k_major.data()) v = rng.lognormal(-2.0, 0.8);

  return d;
}

namespace {
constexpr int kReferenceBegin = __LINE__;
}

numerics::Tensor reference_tau(const Data &d) {
  const Config &c = d.config;
  Tensor tau(Shape{c.ncells, c.nbnd, c.ng});
  for (std::int64_t x = 0; x < c.ncells; ++x) {
    const std::int64_t istrato = d.pres(x) <= d.strato.flat(0) ? 1 : 0;
    const auto jt = static_cast<std::int64_t>(d.j_T(x));
    const auto jp = static_cast<std::int64_t>(d.j_p(x)) + istrato;
    for (std::int64_t bnd = 0; bnd < c.nbnd; ++bnd) {
      const auto flav = static_cast<std::int64_t>(d.bnd_to_flav(istrato, bnd));
      const auto jeta = static_cast<std::int64_t>(d.j_eta(flav, x));
      for (std::int64_t g = 0; g < c.ng; ++g) {
        double acc = 0.0;
        for (std::int64_t t = 0; t < 2; ++t) {
          for (std::int64_t p = 0; p < 2; ++p) {
            for (std::int64_t e = 0; e < 2; ++e) {
              acc += d.r_mix(flav, x, e) * d.f_major(flav, x, t, p, e) *
                     d.k_major(jt + t, jp + p, jeta + e, g);
            }
          }
        }
        tau(x, bnd, g) = acc;
      }
    }
  }
  return tau;
}

namespace {
constexpr int kReferenceEnd = __LINE__;
}

std::size_t reference_line_count() {
  // Lines of the compiled reference kernel above. The paper reports ~200
  // lines for the full Fortran RRTMG implementation; our reference covers
  // the major-absorber term only, so the EKL ratio is computed against this
  // honest, smaller count.
  return static_cast<std::size_t>(kReferenceEnd - kReferenceBegin - 4);
}

std::string ekl_source() {
  return R"(# RRTMG major-absorber optical depth (paper Fig. 3)
kernel rrtmg_major
index x, g, bnd, t, p, e
input pres[x]
input strato
input bnd_to_flav[s, bnd]
input j_T[x]
input j_p[x]
input j_eta[f, x]
input r_mix[f, x, e]
input f_major[f, x, t, p, e]
input k_major[T, P, H, g]
i_strato = select(pres[x] <= strato, 1, 0)
i_flav = bnd_to_flav[i_strato, bnd]
i_T = [j_T, j_T + 1]
i_eta = [j_eta[i_flav, x], j_eta[i_flav, x] + 1]
i_p = [j_p + i_strato, j_p + i_strato + 1]
tau_abs = r_mix[i_flav, x, e] * f_major[i_flav, x, t, p, e] * k_major[i_T[x, t], i_p[x, p], i_eta[x, bnd, e], g]
tau = sum(t, p, e) tau_abs
output tau
)";
}

transforms::EklBindings bindings(const Data &d) {
  transforms::EklBindings b;
  b.inputs.emplace("pres", d.pres);
  b.inputs.emplace("strato", d.strato);
  b.inputs.emplace("bnd_to_flav", d.bnd_to_flav);
  b.inputs.emplace("j_T", d.j_T);
  b.inputs.emplace("j_p", d.j_p);
  b.inputs.emplace("j_eta", d.j_eta);
  b.inputs.emplace("r_mix", d.r_mix);
  b.inputs.emplace("f_major", d.f_major);
  b.inputs.emplace("k_major", d.k_major);
  // t, p, e iterate over the two interpolation endpoints each.
  b.extents["t"] = 2;
  b.extents["p"] = 2;
  b.extents["e"] = 2;
  return b;
}

}  // namespace everest::usecases::rrtmg
