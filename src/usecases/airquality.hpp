// everest/usecases/airquality.hpp
//
// The air-quality monitoring use case (paper §II-C): forecast the impact of
// an industrial site's atmospheric releases over a 2-3 day window, combining
// an ensemble of WRF-like weather forecasts with an ADMS-like dispersion
// model, correcting the forecast with on-site observations of the three
// parameters the paper names (air temperature at 10 m, wind direction, wind
// speed), and deciding when to activate costly emission-reduction processes
// (tens of thousands of euros per day) to respect pollution limits.
#pragma once

#include <cstdint>
#include <vector>

#include "support/expected.hpp"

namespace everest::usecases::airquality {

/// One hour of site weather: the three observed parameters.
struct Weather {
  double temp_c = 15.0;
  double wind_dir_deg = 180.0;
  double wind_speed_ms = 4.0;
};

/// Hourly series of site weather.
using WeatherSeries = std::vector<Weather>;

/// Synthetic "true" site weather.
WeatherSeries simulate_weather(std::size_t hours, std::uint64_t seed);

/// One ensemble member: perturbed forecast of the truth (different global
/// forcing / physics / initial perturbation, per §VIII).
WeatherSeries perturb_forecast(const WeatherSeries &truth, double scale,
                               std::uint64_t seed);

/// Bias-corrects an ensemble with recent station observations: per-parameter
/// affine correction fitted on the trailing `window` hours, then averaged
/// across members (the paper's "forced by local weather observations").
WeatherSeries correct_ensemble(const std::vector<WeatherSeries> &members,
                               const WeatherSeries &observations,
                               std::size_t window);

/// ADMS-like steady-state dispersion index at the sensitive receptor:
/// concentration ~ emission / (wind_speed * sigma(stability)) when the wind
/// blows toward the receptor sector.
double dispersion_index(const Weather &w, double emission_rate,
                        double receptor_dir_deg = 90.0);

/// Decision-quality evaluation over the horizon.
struct DecisionReport {
  double forecast_rmse_speed = 0.0;  // corrected-forecast wind-speed RMSE
  int reduction_days = 0;            // days emission reduction was activated
  int missed_peaks = 0;              // days with violation and no reduction
  int false_alarms = 0;              // reductions that weren't needed
  double cost_keur = 0.0;            // reductions + penalty for misses
};

/// Simulation options.
struct Config {
  std::size_t hours = 72;        // the paper's 2-3 day window
  int ensemble_size = 5;
  double emission_rate = 100.0;  // site emission in arbitrary units
  double limit = 60.0;           // acceptable pollution level
  double reduction_keur_per_day = 30.0;  // "tens of thousands of euros"
  double miss_penalty_keur = 120.0;
  std::size_t correction_window = 24;
  std::uint64_t seed = 42;
};

/// Runs the whole pipeline: truth, ensemble, correction, dispersion
/// forecast, morning decisions, and scoring against the true dispersion.
support::Expected<DecisionReport> run_scenario(const Config &config);

}  // namespace everest::usecases::airquality
