#include "usecases/airquality.hpp"

#include <algorithm>
#include <cmath>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace everest::usecases::airquality {

using support::Error;
using support::Expected;

WeatherSeries simulate_weather(std::size_t hours, std::uint64_t seed) {
  support::Pcg32 rng(seed);
  WeatherSeries series(hours);
  double dir = rng.uniform(0.0, 360.0);
  double speed_ar = 0.0;
  for (std::size_t h = 0; h < hours; ++h) {
    double hour = static_cast<double>(h % 24);
    Weather w;
    w.temp_c = 12.0 + 7.0 * std::sin(2.0 * M_PI * (hour - 9.0) / 24.0) +
               rng.normal(0.0, 0.6);
    dir += rng.normal(0.0, 12.0);
    w.wind_dir_deg = std::fmod(std::fmod(dir, 360.0) + 360.0, 360.0);
    speed_ar = 0.9 * speed_ar + rng.normal(0.0, 0.5);
    w.wind_speed_ms = std::max(0.5, 4.0 + 1.5 * std::sin(2.0 * M_PI * hour / 24.0) +
                                        speed_ar);
    series[h] = w;
  }
  return series;
}

WeatherSeries perturb_forecast(const WeatherSeries &truth, double scale,
                               std::uint64_t seed) {
  support::Pcg32 rng(seed);
  WeatherSeries fc = truth;
  double temp_bias = rng.normal(0.0, 0.8 * scale);
  double speed_bias = rng.normal(0.0, 0.5 * scale);
  double dir_bias = rng.normal(0.0, 15.0 * scale);
  double err_t = 0.0, err_s = 0.0, err_d = 0.0;
  for (std::size_t h = 0; h < fc.size(); ++h) {
    err_t = 0.85 * err_t + rng.normal(0.0, 0.4 * scale);
    err_s = 0.85 * err_s + rng.normal(0.0, 0.35 * scale);
    err_d = 0.85 * err_d + rng.normal(0.0, 8.0 * scale);
    fc[h].temp_c += temp_bias + err_t;
    fc[h].wind_speed_ms = std::max(0.3, fc[h].wind_speed_ms + speed_bias + err_s);
    fc[h].wind_dir_deg = std::fmod(
        std::fmod(fc[h].wind_dir_deg + dir_bias + err_d, 360.0) + 360.0, 360.0);
  }
  return fc;
}

namespace {

/// Fits y ~ a*x + b on the trailing window (least squares); returns {a, b}.
std::pair<double, double> affine_fit(const std::vector<double> &x,
                                     const std::vector<double> &y) {
  std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return {1.0, 0.0};
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  double a = den > 1e-9 ? num / den : 1.0;
  // Guard against degenerate fits on short windows.
  if (a < 0.2 || a > 5.0) a = 1.0;
  return {a, my - a * mx};
}

}  // namespace

WeatherSeries correct_ensemble(const std::vector<WeatherSeries> &members,
                               const WeatherSeries &observations,
                               std::size_t window) {
  if (members.empty()) return {};
  std::size_t hours = members.front().size();
  std::size_t obs_hours = std::min(window, observations.size());

  // Ensemble mean first.
  WeatherSeries mean(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    double t = 0, s = 0, dx = 0, dy = 0;
    for (const auto &m : members) {
      t += m[h].temp_c;
      s += m[h].wind_speed_ms;
      dx += std::cos(m[h].wind_dir_deg * M_PI / 180.0);
      dy += std::sin(m[h].wind_dir_deg * M_PI / 180.0);
    }
    auto k = static_cast<double>(members.size());
    mean[h].temp_c = t / k;
    mean[h].wind_speed_ms = s / k;
    mean[h].wind_dir_deg =
        std::fmod(std::atan2(dy / k, dx / k) * 180.0 / M_PI + 360.0, 360.0);
  }

  // Affine correction per scalar parameter from the overlap window.
  std::vector<double> fx, fy, sx, sy;
  for (std::size_t h = 0; h < obs_hours && h < hours; ++h) {
    fx.push_back(mean[h].temp_c);
    fy.push_back(observations[h].temp_c);
    sx.push_back(mean[h].wind_speed_ms);
    sy.push_back(observations[h].wind_speed_ms);
  }
  auto [ta, tb] = affine_fit(fx, fy);
  auto [sa, sb] = affine_fit(sx, sy);
  double dir_bias = 0.0;
  for (std::size_t h = 0; h < obs_hours && h < hours; ++h) {
    double diff = observations[h].wind_dir_deg - mean[h].wind_dir_deg;
    while (diff > 180.0) diff -= 360.0;
    while (diff < -180.0) diff += 360.0;
    dir_bias += diff;
  }
  if (obs_hours > 0) dir_bias /= static_cast<double>(obs_hours);

  for (auto &w : mean) {
    w.temp_c = ta * w.temp_c + tb;
    w.wind_speed_ms = std::max(0.3, sa * w.wind_speed_ms + sb);
    w.wind_dir_deg =
        std::fmod(std::fmod(w.wind_dir_deg + dir_bias, 360.0) + 360.0, 360.0);
  }
  return mean;
}

double dispersion_index(const Weather &w, double emission_rate,
                        double receptor_dir_deg) {
  // Wind blowing toward the receptor concentrates the plume there.
  double diff = std::fabs(w.wind_dir_deg - receptor_dir_deg);
  if (diff > 180.0) diff = 360.0 - diff;
  double sector = std::exp(-diff * diff / (2.0 * 45.0 * 45.0));
  // Stable (cold) conditions trap pollutants.
  double stability = 1.0 + std::max(0.0, (12.0 - w.temp_c) * 0.04);
  return emission_rate * sector * stability / std::max(w.wind_speed_ms, 0.5);
}

Expected<DecisionReport> run_scenario(const Config &config) {
  if (config.hours < 48) return Error::make("airquality: need >= 48 hours");
  if (config.ensemble_size < 1)
    return Error::make("airquality: ensemble_size must be >= 1");

  // Truth extends backwards so observations exist for the correction window.
  std::size_t total = config.hours + config.correction_window;
  auto truth = simulate_weather(total, config.seed);

  WeatherSeries obs(truth.begin(),
                    truth.begin() + static_cast<std::ptrdiff_t>(
                                        config.correction_window));

  std::vector<WeatherSeries> members;
  for (int e = 0; e < config.ensemble_size; ++e) {
    members.push_back(perturb_forecast(
        truth, 1.0, config.seed + 31 + static_cast<std::uint64_t>(e)));
  }
  auto corrected = correct_ensemble(members, obs, config.correction_window);

  DecisionReport report;
  // Forecast skill on the decision horizon.
  std::vector<double> pred_speed, true_speed;
  for (std::size_t h = config.correction_window; h < total; ++h) {
    pred_speed.push_back(corrected[h].wind_speed_ms);
    true_speed.push_back(truth[h].wind_speed_ms);
  }
  report.forecast_rmse_speed = support::rmse(pred_speed, true_speed);

  // Morning decisions: for each horizon day, activate reduction if any
  // forecast hour exceeds the limit; score against the true index.
  std::size_t days = config.hours / 24;
  for (std::size_t d = 0; d < days; ++d) {
    double forecast_peak = 0.0, true_peak = 0.0;
    for (std::size_t k = 0; k < 24; ++k) {
      std::size_t h = config.correction_window + d * 24 + k;
      if (h >= total) break;
      forecast_peak = std::max(
          forecast_peak, dispersion_index(corrected[h], config.emission_rate));
      true_peak = std::max(true_peak,
                           dispersion_index(truth[h], config.emission_rate));
    }
    bool reduce = forecast_peak > config.limit;
    bool violates = true_peak > config.limit;
    if (reduce) {
      ++report.reduction_days;
      report.cost_keur += config.reduction_keur_per_day;
      if (!violates) ++report.false_alarms;
    } else if (violates) {
      ++report.missed_peaks;
      report.cost_keur += config.miss_penalty_keur;
    }
  }
  return report;
}

}  // namespace everest::usecases::airquality
