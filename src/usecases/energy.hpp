// everest/usecases/energy.hpp
//
// The renewable-energy prediction use case (paper §II-B): forecast wind-farm
// power for short-term markets. A synthetic "true" wind process stands in
// for the measured site weather; WRF runs are modeled as forecasts with
// horizon-dependent correlated errors; the ML model is Kernel Ridge
// regression (the algorithm the paper names) over wind-related features;
// backtesting compares against persistence and raw-forecast baselines, and
// an ensemble of WRF runs reduces forecast error (the §VIII claim that more,
// fresher WRF runs are "a crucial advantage").
#pragma once

#include <cstdint>
#include <vector>

#include "numerics/tensor.hpp"
#include "support/expected.hpp"

namespace everest::usecases::energy {

/// Synthetic hourly wind-speed process (m/s): seasonal + diurnal + AR noise.
std::vector<double> simulate_wind(std::size_t hours, std::uint64_t seed);

/// A WRF-like forecast of the true series: correlated error growing with
/// lead time within each (daily) run.
std::vector<double> wrf_forecast(const std::vector<double> &truth,
                                 double error_scale, std::uint64_t seed);

/// Mean of several independently-errored WRF runs.
std::vector<double> ensemble_mean(const std::vector<std::vector<double>> &runs);

/// Turbine power curve (MW for one turbine): cut-in 3 m/s, rated 12 m/s,
/// cut-out 25 m/s.
double power_curve_mw(double wind_ms, double rated_mw = 3.0);

/// Kernel Ridge regression with an RBF kernel (the use case's algorithm).
class KernelRidge {
public:
  KernelRidge(double lambda = 1e-2, double gamma = 0.5)
      : lambda_(lambda), gamma_(gamma) {}

  /// Fits on rows X (n x d) and targets y (n).
  support::Status fit(const numerics::Tensor &x, const numerics::Tensor &y);
  /// Predicts a single row.
  [[nodiscard]] double predict(std::span<const double> row) const;
  /// Predicts all rows of X.
  [[nodiscard]] numerics::Tensor predict(const numerics::Tensor &x) const;

private:
  double kernel(std::span<const double> a, std::span<const double> b) const;
  double lambda_, gamma_;
  numerics::Tensor train_x_;
  numerics::Tensor alpha_;
  bool fitted_ = false;
};

/// Backtest outcome over the evaluation window (MW-scale MAE).
struct BacktestResult {
  double mae_model = 0.0;        // Kernel Ridge on forecast features
  double mae_forecast = 0.0;     // raw forecast through the power curve
  double mae_persistence = 0.0;  // yesterday-same-hour baseline
  std::size_t train_hours = 0;
  std::size_t test_hours = 0;
};

/// Full pipeline: simulate one year + test window, train on history, test on
/// the tail. `ensemble_size` WRF runs are averaged before feature building.
support::Expected<BacktestResult> backtest(std::size_t hours,
                                           int ensemble_size,
                                           std::uint64_t seed,
                                           int turbines = 12);

}  // namespace everest::usecases::energy
