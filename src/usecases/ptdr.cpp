#include "usecases/ptdr.hpp"

#include <algorithm>
#include <cmath>

#include "ir/builder.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace everest::usecases::ptdr {

using support::Error;
using support::Expected;

Model make_model(const traffic::RoadNetwork &net, std::uint64_t seed) {
  support::Pcg32 rng(seed);
  Model model;
  model.segments.reserve(net.segments.size());
  for (const auto &seg : net.segments) {
    SegmentSpeedModel m;
    m.length_km = seg.length_km();
    m.mu.resize(kIntervalsPerDay);
    m.sigma.resize(kIntervalsPerDay);
    double base = seg.speed_limit_kmh * rng.uniform(0.8, 0.95);
    double noisiness = rng.uniform(0.08, 0.25);
    for (int q = 0; q < kIntervalsPerDay; ++q) {
      double hour = q / 4.0;
      double dip = 0.35 * std::exp(-std::pow(hour - 8.0, 2) / 2.0) +
                   0.45 * std::exp(-std::pow(hour - 17.5, 2) / 2.5);
      double speed = std::max(base * (1.0 - dip), 5.0);
      m.mu[static_cast<std::size_t>(q)] = std::log(speed);
      m.sigma[static_cast<std::size_t>(q)] = noisiness;
    }
    model.segments.push_back(std::move(m));
  }
  return model;
}

Route make_route(const traffic::RoadNetwork &net, int length,
                 std::uint64_t seed) {
  support::Pcg32 rng(seed);
  Route route;
  for (int i = 0; i < length; ++i) {
    route.segments.push_back(static_cast<int>(
        rng.bounded(static_cast<std::uint32_t>(net.segments.size()))));
  }
  return route;
}

Expected<TravelTimeDist> monte_carlo(const Model &model, const Route &route,
                                     int depart_interval, std::size_t samples,
                                     std::uint64_t seed) {
  if (samples == 0) return Error::make("ptdr: samples must be > 0");
  if (route.segments.empty()) return Error::make("ptdr: empty route");
  for (int seg : route.segments) {
    if (seg < 0 || static_cast<std::size_t>(seg) >= model.segments.size())
      return Error::make("ptdr: route references unknown segment");
  }

  support::Pcg32 rng(seed);
  std::vector<double> times;
  times.reserve(samples);
  for (std::size_t s = 0; s < samples; ++s) {
    double minutes = 0.0;
    for (int seg : route.segments) {
      const auto &m = model.segments[static_cast<std::size_t>(seg)];
      // Time-dependence: the interval advances with accumulated travel time.
      int interval = (depart_interval + static_cast<int>(minutes / 15.0)) %
                     kIntervalsPerDay;
      double speed = rng.lognormal(m.mu[static_cast<std::size_t>(interval)],
                                   m.sigma[static_cast<std::size_t>(interval)]);
      speed = std::max(speed, 2.0);
      minutes += m.length_km / speed * 60.0;
    }
    times.push_back(minutes);
  }

  TravelTimeDist dist;
  dist.samples = samples;
  dist.mean_min = support::mean(times);
  dist.p50_min = support::quantile(times, 0.50);
  dist.p95_min = support::quantile(times, 0.95);
  return dist;
}

Expected<RouteChoice> choose_route(const Model &model,
                                   const std::vector<Route> &alternatives,
                                   int depart_interval, std::size_t samples,
                                   std::uint64_t seed,
                                   RoutingCriterion criterion) {
  if (alternatives.empty())
    return Error::make("ptdr routing: no alternative routes");
  RouteChoice best;
  bool first = true;
  for (std::size_t i = 0; i < alternatives.size(); ++i) {
    auto dist = monte_carlo(model, alternatives[i], depart_interval, samples,
                            seed + i);
    if (!dist) return dist.error();
    double score = criterion == RoutingCriterion::MeanTime ? dist->mean_min
                                                           : dist->p95_min;
    double best_score = criterion == RoutingCriterion::MeanTime
                            ? best.distribution.mean_min
                            : best.distribution.p95_min;
    if (first || score < best_score) {
      best.route_index = i;
      best.distribution = *dist;
      first = false;
    }
  }
  return best;
}

std::shared_ptr<ir::Module> sampling_kernel_ir(std::size_t samples,
                                               std::size_t route_length) {
  // func.func { alloc model tables; for s in samples { for seg in route {
  //   load mu/sigma; ~lognormal sample (exp + mul chain); accumulate } ;
  //   store } }
  using ir::Attribute;
  using ir::Type;
  using ir::Value;

  auto module = std::make_shared<ir::Module>();
  ir::Operation *fn = ir::Operation::create(
      module->arena(), ir::Symbol("func.func"), {}, {},
      {{"sym_name", Attribute("ptdr_sample")}}, 1);
  ir::Block &body = fn->region(0).add_block();
  module->body().attach(fn);
  ir::OpBuilder b(&body);
  Type f64 = Type::floating(64);

  auto tensor1 = [&](std::int64_t n) {
    return Type::tensor({n}, Type::floating(64));
  };
  auto route_len = static_cast<std::int64_t>(route_length);
  auto n_samples = static_cast<std::int64_t>(samples);

  // Input tables: per-route-position mu/sigma/length, plus RNG stream.
  auto alloc = [&](const char *name, std::int64_t elems, const char *kind) {
    return b.create_value("memref.alloc", {}, tensor1(elems),
                          {{"name", Attribute(name)},
                           {"kind", Attribute(kind)},
                           {"bytes", Attribute(elems * 8)}});
  };
  Value *mu = alloc("mu", route_len, "input");
  Value *sigma = alloc("sigma", route_len, "input");
  Value *len = alloc("length", route_len, "input");
  // On-fabric RNG: a small pre-seeded normal table cycled per (sample,
  // segment) pair — the hardware uses an xoshiro/ziggurat core, so the host
  // does not stream per-sample noise.
  Value *noise = alloc("noise_table", 4096, "input");
  Value *out = alloc("travel_time", n_samples, "output");

  // Loop order follows the FPGA design: segments OUTER, samples INNER, so
  // the pipelined innermost loop touches a different accumulator every
  // cycle (II = 1); the per-sample recurrence is carried across outer
  // iterations where it costs nothing.
  Value *lo = b.constant_index(0);
  Value *hi = b.constant_index(route_len);
  Value *step = b.constant_index(1);
  ir::Operation &outer = b.create("scf.for", {lo, hi, step}, {},
                                  {{"trip_count", Attribute(route_len)}}, 1);
  ir::Block &outer_body = outer.region(0).add_block();
  Value &g_iv = outer_body.add_argument(Type::index());
  ir::OpBuilder ob(&outer_body);
  ir::Operation &outer_yield = ob.create("scf.yield", {}, {});
  ob.set_insertion_point(&outer_yield);

  // Inner loop over Monte-Carlo samples.
  Value *ilo = ob.constant_index(0);
  Value *ihi = ob.constant_index(n_samples);
  Value *istep = ob.constant_index(1);
  ir::Operation &inner = ob.create("scf.for", {ilo, ihi, istep}, {},
                                   {{"trip_count", Attribute(n_samples)}}, 1);
  ir::Block &inner_body = inner.region(0).add_block();
  Value &s_iv = inner_body.add_argument(Type::index());
  ir::OpBuilder ib(&inner_body);
  ir::Operation &inner_yield = ib.create("scf.yield", {}, {});
  ib.set_insertion_point(&inner_yield);

  // speed = exp(mu[g] + sigma[g] * noise[s*L+g]); time += len[g] / speed.
  Value *mu_v = ib.create_value("memref.load", {mu, &g_iv}, f64);
  Value *sg_v = ib.create_value("memref.load", {sigma, &g_iv}, f64);
  Value *nz_v = ib.create_value("memref.load", {noise, &s_iv}, f64);
  Value *scaled = ib.create_value("arith.mulf", {sg_v, nz_v}, f64);
  Value *logspeed = ib.create_value("arith.addf", {mu_v, scaled}, f64);
  Value *speed = ib.create_value("arith.exp", {logspeed}, f64);
  Value *len_v = ib.create_value("memref.load", {len, &g_iv}, f64);
  Value *dt = ib.create_value("arith.divf", {len_v, speed}, f64);
  Value *acc = ib.create_value("memref.load", {out, &s_iv}, f64);
  Value *sum = ib.create_value("arith.addf", {acc, dt}, f64);
  ib.create("memref.store", {sum, out, &s_iv}, {});

  return module;
}

}  // namespace everest::usecases::ptdr
