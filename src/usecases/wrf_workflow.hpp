// everest/usecases/wrf_workflow.hpp
//
// The "Accelerated WRF" prototype (paper §VIII): WRF ensemble forecasting as
// an EVEREST workflow. Each ensemble member is a chain of timesteps; every
// timestep splits into dynamics (CPU-bound) and the RRTMG radiation step
// (the paper's ~30% of compute cycles, offloadable to FPGA); WRFDA data
// assimilation feeds the members and an ensemble aggregation closes the DAG.
// The workflow runs on the resource manager, so FPGA nodes, transfers, and
// scheduling all follow §VI-A.
#pragma once

#include <cstdint>

#include "runtime/resource_manager.hpp"
#include "support/expected.hpp"

namespace everest::usecases::wrf {

struct WorkflowConfig {
  int ensemble_members = 8;
  int timesteps = 12;
  double dynamics_ms = 70.0;       // per timestep, CPU
  double radiation_ms = 30.0;      // per timestep, CPU (the ~30% share)
  double radiation_speedup = 8.0;  // FPGA speedup of the RRTMG kernel
  double assimilation_ms = 40.0;   // WRFDA, once per member
  std::int64_t state_bytes = 64'000'000;  // model state passed along chains
  int nodes = 8;
  int fpga_nodes = 2;  // subset of nodes carrying Alveo cards
};

struct WorkflowReport {
  double makespan_ms = 0.0;
  double cpu_only_makespan_ms = 0.0;  // same DAG, FPGA variants disabled
  double speedup = 1.0;
  int radiation_tasks_on_fpga = 0;
  double avg_core_utilization = 0.0;
};

/// Builds the ensemble DAG on a cluster with `fpga_nodes` accelerator nodes,
/// schedules it twice (with and without the FPGA radiation variant), and
/// reports the end-to-end benefit of the accelerated WRF.
support::Expected<WorkflowReport> run_ensemble(const WorkflowConfig &config);

}  // namespace everest::usecases::wrf
