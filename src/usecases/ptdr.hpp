// everest/usecases/ptdr.hpp
//
// Probabilistic Time-Dependent Routing (paper §II-D / §VIII: "We also
// implemented the PTDR kernel on a compute cluster with Alveo u55c FPGAs").
// Travel time along a route is a random variable: each segment carries a
// per-15-minute-interval log-normal speed distribution; Monte-Carlo sampling
// propagates departure time through the route to produce the arrival-time
// distribution and its percentiles. The kernel is embarrassingly parallel
// over samples — exactly what the paper offloads to the u55c — so we also
// emit the loop-level IR of the sampling kernel for the HLS engine.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/ir.hpp"
#include "support/expected.hpp"
#include "usecases/traffic.hpp"

namespace everest::usecases::ptdr {

constexpr int kIntervalsPerDay = 96;  // 15-minute intervals

/// Per-segment speed model: log-normal parameters per interval.
struct SegmentSpeedModel {
  double length_km = 1.0;
  std::vector<double> mu;     // [96] log-space mean
  std::vector<double> sigma;  // [96] log-space std
};

/// The PTDR model over a road network.
struct Model {
  std::vector<SegmentSpeedModel> segments;
};

/// Builds a model from a network: free-flow at night, rush-hour slowdowns,
/// segment-specific noise.
Model make_model(const traffic::RoadNetwork &net, std::uint64_t seed);

/// A route through the network.
struct Route {
  std::vector<int> segments;
};

/// Random route of `length` segments (ids drawn from the network).
Route make_route(const traffic::RoadNetwork &net, int length,
                 std::uint64_t seed);

/// Travel-time distribution summary (minutes).
struct TravelTimeDist {
  double mean_min = 0.0;
  double p50_min = 0.0;
  double p95_min = 0.0;
  std::size_t samples = 0;
};

/// Monte-Carlo PTDR: samples travel times for departures at
/// `depart_interval`, advancing the interval as simulated time passes.
support::Expected<TravelTimeDist> monte_carlo(const Model &model,
                                              const Route &route,
                                              int depart_interval,
                                              std::size_t samples,
                                              std::uint64_t seed);

/// Builds the loop-level IR of the sampling kernel (samples x route-length
/// nest with the per-segment arithmetic), ready for hls::schedule_kernel —
/// the offload path of experiment E9.
std::shared_ptr<ir::Module> sampling_kernel_ir(std::size_t samples,
                                               std::size_t route_length);

/// Intelligent routing (paper §II-D: "Probabilistic Time Dependent Routing
/// to infer correct arrival times"): chooses among alternative routes by a
/// risk-aware criterion on the Monte-Carlo travel-time distribution.
struct RouteChoice {
  std::size_t route_index = 0;
  TravelTimeDist distribution;
};

enum class RoutingCriterion {
  MeanTime,      // expected travel time
  P95,           // arrive-on-time guarantee (risk-averse)
};

support::Expected<RouteChoice> choose_route(
    const Model &model, const std::vector<Route> &alternatives,
    int depart_interval, std::size_t samples, std::uint64_t seed,
    RoutingCriterion criterion = RoutingCriterion::P95);

}  // namespace everest::usecases::ptdr
