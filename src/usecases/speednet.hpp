// everest/usecases/speednet.hpp
//
// The traffic use case's convolutional network for road-speed prediction
// (paper §II-D: "a convolutional neural network for training the road speed
// prediction model"). The model ships as an ONNX-style JSON document so it
// enters the SDK through the standard ML frontend (§V-A), and inference runs
// on the frontend's reference executor.
//
// Architecture (per road segment):
//   input [3, 96]: yesterday's speed profile, temperature, precipitation
//   Conv1D(3 -> 8, k=5) + ReLU + MaxPool(2)
//   Conv1D(8 -> 8, k=3) + ReLU + MaxPool(2)
//   Flatten -> Gemm(192 -> 4)          -- next hour in 15-minute steps
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/onnx_import.hpp"
#include "support/expected.hpp"

namespace everest::usecases::speednet {

/// Generates the model JSON with deterministic weights drawn from `seed`.
std::string model_json(std::uint64_t seed = 42);

/// Loads the generated model through the ONNX frontend.
support::Expected<frontend::OnnxModel> load_model(std::uint64_t seed = 42);

/// Builds the [3, 96] input tensor from a day of observations.
numerics::Tensor make_input(const std::vector<double> &speed_profile_96,
                            const std::vector<double> &temperature_96,
                            const std::vector<double> &precipitation_96);

/// Runs inference; returns the 4 quarter-hour speed predictions.
support::Expected<std::vector<double>> predict(
    const frontend::OnnxModel &model, const numerics::Tensor &input);

}  // namespace everest::usecases::speednet
