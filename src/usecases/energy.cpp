#include "usecases/energy.hpp"

#include <algorithm>
#include <cmath>

#include "numerics/linalg.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace everest::usecases::energy {

using numerics::Shape;
using numerics::Tensor;
using support::Error;
using support::Expected;

std::vector<double> simulate_wind(std::size_t hours, std::uint64_t seed) {
  support::Pcg32 rng(seed);
  std::vector<double> wind(hours);
  double ar = 0.0;
  for (std::size_t h = 0; h < hours; ++h) {
    double day = static_cast<double>(h) / 24.0;
    double seasonal = 2.0 * std::sin(2.0 * M_PI * day / 365.0);
    double diurnal = 1.2 * std::sin(2.0 * M_PI * (static_cast<double>(h % 24) - 14.0) / 24.0);
    ar = 0.92 * ar + rng.normal(0.0, 0.8);
    wind[h] = std::max(0.0, 7.5 + seasonal + diurnal + ar);
  }
  return wind;
}

std::vector<double> wrf_forecast(const std::vector<double> &truth,
                                 double error_scale, std::uint64_t seed) {
  support::Pcg32 rng(seed);
  std::vector<double> fc(truth.size());
  double bias = rng.normal(0.0, 0.3 * error_scale);
  double err = 0.0;
  for (std::size_t h = 0; h < truth.size(); ++h) {
    // New run every 24h: error resets, then grows with lead time.
    std::size_t lead = h % 24;
    if (lead == 0) err = rng.normal(0.0, 0.2 * error_scale);
    err = 0.85 * err + rng.normal(0.0, 0.25 * error_scale);
    double lead_growth = 1.0 + 0.04 * static_cast<double>(lead);
    fc[h] = std::max(0.0, truth[h] + bias + err * lead_growth);
  }
  return fc;
}

std::vector<double> ensemble_mean(const std::vector<std::vector<double>> &runs) {
  if (runs.empty()) return {};
  std::vector<double> mean(runs.front().size(), 0.0);
  for (const auto &run : runs) {
    for (std::size_t h = 0; h < mean.size(); ++h) mean[h] += run[h];
  }
  for (double &v : mean) v /= static_cast<double>(runs.size());
  return mean;
}

double power_curve_mw(double wind_ms, double rated_mw) {
  constexpr double cut_in = 3.0, rated = 12.0, cut_out = 25.0;
  if (wind_ms < cut_in || wind_ms >= cut_out) return 0.0;
  if (wind_ms >= rated) return rated_mw;
  double x = (wind_ms - cut_in) / (rated - cut_in);
  return rated_mw * x * x * x;  // cubic ramp
}

// ----------------------------------------------------------- Kernel Ridge

double KernelRidge::kernel(std::span<const double> a,
                           std::span<const double> b) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    double d = a[i] - b[i];
    d2 += d * d;
  }
  return std::exp(-gamma_ * d2);
}

support::Status KernelRidge::fit(const Tensor &x, const Tensor &y) {
  if (x.rank() != 2 || y.rank() != 1 || x.dim(0) != y.dim(0))
    return support::Status::failure("kernel ridge: bad training shapes");
  std::int64_t n = x.dim(0), d = x.dim(1);
  Tensor k(Shape{n, n});
  for (std::int64_t i = 0; i < n; ++i) {
    auto row_i = x.data().subspan(static_cast<std::size_t>(i * d),
                                  static_cast<std::size_t>(d));
    for (std::int64_t j = i; j < n; ++j) {
      auto row_j = x.data().subspan(static_cast<std::size_t>(j * d),
                                    static_cast<std::size_t>(d));
      double v = kernel(row_i, row_j);
      k(i, j) = v;
      k(j, i) = v;
    }
    k(i, i) += lambda_;  // ridge term guarantees SPD
  }
  auto alpha = numerics::cholesky_solve(k, y);
  if (!alpha) return support::Status::failure(alpha.error().message);
  train_x_ = x;
  alpha_ = std::move(*alpha);
  fitted_ = true;
  return support::Status::ok();
}

double KernelRidge::predict(std::span<const double> row) const {
  if (!fitted_) return 0.0;
  std::int64_t n = train_x_.dim(0), d = train_x_.dim(1);
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    auto train_row = train_x_.data().subspan(static_cast<std::size_t>(i * d),
                                             static_cast<std::size_t>(d));
    acc += alpha_(i) * kernel(row, train_row);
  }
  return acc;
}

Tensor KernelRidge::predict(const Tensor &x) const {
  std::int64_t n = x.dim(0), d = x.dim(1);
  Tensor out(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    out(i) = predict(x.data().subspan(static_cast<std::size_t>(i * d),
                                      static_cast<std::size_t>(d)));
  }
  return out;
}

// ---------------------------------------------------------------- backtest

Expected<BacktestResult> backtest(std::size_t hours, int ensemble_size,
                                  std::uint64_t seed, int turbines) {
  if (hours < 24 * 40) return Error::make("backtest: need at least 40 days");
  if (ensemble_size < 1) return Error::make("backtest: ensemble_size >= 1");

  support::Pcg32 rng(seed);
  auto truth = simulate_wind(hours, seed);

  // True power: per-turbine availability jitter around the curve.
  std::vector<double> power(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    double availability = 0.94 + 0.05 * std::sin(static_cast<double>(h) / 500.0);
    power[h] = power_curve_mw(truth[h]) * turbines * availability +
               rng.normal(0.0, 0.3);
    power[h] = std::max(power[h], 0.0);
  }

  // Ensemble of WRF runs.
  std::vector<std::vector<double>> runs;
  for (int e = 0; e < ensemble_size; ++e)
    runs.push_back(wrf_forecast(truth, 1.0, seed + 1000 + static_cast<std::uint64_t>(e)));
  auto forecast = ensemble_mean(runs);

  // Features per hour: forecast speed, forecast speed^3 (power proxy),
  // hour-of-day sin/cos, previous-day measured power.
  const std::int64_t d = 5;
  auto build_features = [&](std::size_t h, std::vector<double> &row) {
    double hour = static_cast<double>(h % 24);
    row = {forecast[h] / 10.0,
           std::pow(forecast[h] / 10.0, 3.0),
           std::sin(2.0 * M_PI * hour / 24.0),
           std::cos(2.0 * M_PI * hour / 24.0),
           h >= 24 ? power[h - 24] / (3.0 * turbines) : 0.0};
  };

  // Train on a subsample of history (kernel solve is O(n^3)); test = last 20 days.
  std::size_t test_hours = 24 * 20;
  std::size_t train_end = hours - test_hours;
  std::vector<std::size_t> train_idx;
  for (std::size_t h = 24; h < train_end; h += 3) train_idx.push_back(h);
  if (train_idx.size() > 600) {
    std::size_t stride = train_idx.size() / 600 + 1;
    std::vector<std::size_t> thin;
    for (std::size_t i = 0; i < train_idx.size(); i += stride)
      thin.push_back(train_idx[i]);
    train_idx = thin;
  }

  auto n = static_cast<std::int64_t>(train_idx.size());
  Tensor x(Shape{n, d});
  Tensor y(Shape{n});
  std::vector<double> row;
  for (std::int64_t i = 0; i < n; ++i) {
    build_features(train_idx[static_cast<std::size_t>(i)], row);
    for (std::int64_t j = 0; j < d; ++j) x(i, j) = row[static_cast<std::size_t>(j)];
    y(i) = power[train_idx[static_cast<std::size_t>(i)]];
  }

  KernelRidge model(1e-2, 0.6);
  if (auto s = model.fit(x, y); !s.is_ok()) return Error::make(s.message());

  std::vector<double> pred_model, pred_forecast, pred_persist, actual;
  for (std::size_t h = train_end; h < hours; ++h) {
    build_features(h, row);
    pred_model.push_back(std::max(model.predict(row), 0.0));
    pred_forecast.push_back(power_curve_mw(forecast[h]) * turbines);
    pred_persist.push_back(power[h - 24]);
    actual.push_back(power[h]);
  }

  BacktestResult result;
  result.mae_model = support::mae(pred_model, actual);
  result.mae_forecast = support::mae(pred_forecast, actual);
  result.mae_persistence = support::mae(pred_persist, actual);
  result.train_hours = train_idx.size();
  result.test_hours = test_hours;
  return result;
}

}  // namespace everest::usecases::energy
