#include "usecases/traffic_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/rng.hpp"

namespace everest::usecases::traffic {

using support::Error;
using support::Expected;

OdMatrix make_odm(const RoadNetwork &net, double daily_trips_per_zone,
                  std::uint64_t seed) {
  support::Pcg32 rng(seed);
  int side = net.grid_n + 1;
  OdMatrix odm;
  odm.zones = side * side;

  // Gravity model: attraction weights per zone, demand ~ w_i * w_j / (1+d).
  std::vector<double> weight(static_cast<std::size_t>(odm.zones));
  for (auto &w : weight) w = rng.lognormal(0.0, 0.6);

  odm.trips.assign(static_cast<std::size_t>(odm.zones) *
                       static_cast<std::size_t>(odm.zones),
                   0.0);
  double total = 0.0;
  for (int i = 0; i < odm.zones; ++i) {
    for (int j = 0; j < odm.zones; ++j) {
      if (i == j) continue;
      double dx = std::abs(i / side - j / side);
      double dy = std::abs(i % side - j % side);
      double demand = weight[static_cast<std::size_t>(i)] *
                      weight[static_cast<std::size_t>(j)] /
                      (1.0 + 0.3 * (dx + dy));
      odm.trips[static_cast<std::size_t>(i * odm.zones + j)] = demand;
      total += demand;
    }
  }
  double scale = daily_trips_per_zone * odm.zones / std::max(total, 1e-9);
  for (auto &t : odm.trips) t *= scale;

  // Two-peak commuter profile.
  odm.diurnal.assign(kIntervals, 0.0);
  double sum = 0.0;
  for (int q = 0; q < kIntervals; ++q) {
    double hour = q / 4.0;
    double base = 0.15 + std::exp(-std::pow(hour - 8.0, 2) / 2.2) +
                  0.9 * std::exp(-std::pow(hour - 17.5, 2) / 2.8);
    if (hour < 5.0) base *= 0.15;
    odm.diurnal[static_cast<std::size_t>(q)] = base;
    sum += base;
  }
  for (auto &d : odm.diurnal) d /= sum;
  return odm;
}

double bpr_speed(double free_flow_kmh, double flow, double capacity,
                 double alpha, double beta) {
  double ratio = capacity > 0 ? flow / capacity : 0.0;
  return free_flow_kmh / (1.0 + alpha * std::pow(ratio, beta));
}

double PredictionCoefficients::predict(int interval) const {
  double w = 2.0 * M_PI / kIntervals;
  double q = static_cast<double>(interval);
  return c[0] + c[1] * std::sin(w * q) + c[2] * std::cos(w * q) +
         c[3] * std::sin(2.0 * w * q) + c[4] * std::cos(2.0 * w * q);
}

PredictionCoefficients fit_prediction(const std::vector<double> &speed_96) {
  PredictionCoefficients fit;
  if (speed_96.size() != kIntervals) return fit;
  double w = 2.0 * M_PI / kIntervals;
  double n = static_cast<double>(kIntervals);
  // Fourier basis is orthogonal over the full period: closed-form fit.
  for (int q = 0; q < kIntervals; ++q) {
    double x = speed_96[static_cast<std::size_t>(q)];
    fit.c[0] += x / n;
    fit.c[1] += 2.0 / n * x * std::sin(w * q);
    fit.c[2] += 2.0 / n * x * std::cos(w * q);
    fit.c[3] += 2.0 / n * x * std::sin(2.0 * w * q);
    fit.c[4] += 2.0 / n * x * std::cos(2.0 * w * q);
  }
  return fit;
}

namespace {

/// Segment lookup by directed endpoints for Manhattan routing.
class SegmentIndex {
public:
  explicit SegmentIndex(const RoadNetwork &net) {
    for (const auto &s : net.segments)
      by_coords_[{s.x1, s.y1, s.x2, s.y2}] = s.id;
  }

  int find(double x1, double y1, double x2, double y2) const {
    auto it = by_coords_.find({x1, y1, x2, y2});
    if (it != by_coords_.end()) return it->second;
    it = by_coords_.find({x2, y2, x1, y1});
    return it != by_coords_.end() ? it->second : -1;
  }

private:
  std::map<std::tuple<double, double, double, double>, int> by_coords_;
};

}  // namespace

Expected<TrafficModel> build_model(const RoadNetwork &net, const OdMatrix &odm,
                                   std::uint64_t seed) {
  int side = net.grid_n + 1;
  if (odm.zones != side * side)
    return Error::make("traffic model: ODM zone count mismatch");
  support::Pcg32 rng(seed);

  TrafficModel model;
  model.segments.assign(net.segments.size(), SegmentState{});
  for (auto &s : model.segments) {
    s.flow.assign(kIntervals, 0.0);
    s.speed_kmh.assign(kIntervals, 0.0);
    s.intensity.assign(kIntervals, 0.0);
  }

  SegmentIndex index(net);

  // Route every OD pair along its Manhattan path (x first, then y) and add
  // its per-interval demand to every traversed segment.
  for (int from = 0; from < odm.zones; ++from) {
    int fx = from / side, fy = from % side;
    for (int to = 0; to < odm.zones; ++to) {
      if (from == to) continue;
      double daily =
          odm.trips[static_cast<std::size_t>(from * odm.zones + to)];
      if (daily <= 1e-9) continue;
      int tx = to / side, ty = to % side;

      std::vector<int> path;
      int x = fx, y = fy;
      while (x != tx) {
        int nx = x + (tx > x ? 1 : -1);
        int seg = index.find(x * net.cell_km, y * net.cell_km,
                             nx * net.cell_km, y * net.cell_km);
        if (seg >= 0) path.push_back(seg);
        x = nx;
      }
      while (y != ty) {
        int ny = y + (ty > y ? 1 : -1);
        int seg = index.find(x * net.cell_km, y * net.cell_km,
                             x * net.cell_km, ny * net.cell_km);
        if (seg >= 0) path.push_back(seg);
        y = ny;
      }
      for (int q = 0; q < kIntervals; ++q) {
        double d = daily * odm.diurnal[static_cast<std::size_t>(q)];
        for (int seg : path)
          model.segments[static_cast<std::size_t>(seg)]
              .flow[static_cast<std::size_t>(q)] += d;
      }
    }
  }

  // Congested speed via BPR; capacity scales with the speed limit; FCD-like
  // measurement noise on top.
  for (std::size_t s = 0; s < net.segments.size(); ++s) {
    const Segment &seg = net.segments[s];
    double capacity = 12.0 * seg.speed_limit_kmh;  // veh per 15 min
    for (int q = 0; q < kIntervals; ++q) {
      auto &state = model.segments[s];
      double speed = bpr_speed(seg.speed_limit_kmh,
                               state.flow[static_cast<std::size_t>(q)],
                               capacity);
      speed = std::max(3.0, speed + rng.normal(0.0, 0.5));
      state.speed_kmh[static_cast<std::size_t>(q)] = speed;
      state.intensity[static_cast<std::size_t>(q)] =
          state.flow[static_cast<std::size_t>(q)] / speed;
    }
  }

  model.coeffs.resize(net.segments.size());
  for (std::size_t s = 0; s < net.segments.size(); ++s)
    model.coeffs[s] = fit_prediction(model.segments[s].speed_kmh);
  model.days_integrated = 1;
  return model;
}

support::Status update_model(TrafficModel &model, const TrafficModel &new_day,
                             double alpha) {
  if (model.segments.size() != new_day.segments.size())
    return support::Status::failure("traffic model: segment count mismatch");
  if (alpha <= 0.0 || alpha > 1.0)
    return support::Status::failure("traffic model: alpha must be in (0, 1]");
  for (std::size_t s = 0; s < model.segments.size(); ++s) {
    auto &dst = model.segments[s];
    const auto &src = new_day.segments[s];
    for (int q = 0; q < kIntervals; ++q) {
      auto i = static_cast<std::size_t>(q);
      dst.flow[i] = (1 - alpha) * dst.flow[i] + alpha * src.flow[i];
      dst.speed_kmh[i] =
          (1 - alpha) * dst.speed_kmh[i] + alpha * src.speed_kmh[i];
      dst.intensity[i] = dst.flow[i] / std::max(dst.speed_kmh[i], 1e-9);
    }
    model.coeffs[s] = fit_prediction(dst.speed_kmh);
  }
  ++model.days_integrated;
  return support::Status::ok();
}

}  // namespace everest::usecases::traffic
