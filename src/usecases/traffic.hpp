// everest/usecases/traffic.hpp
//
// The traffic-modeling use case (paper §II-D): synthetic road network and
// floating-car-data (FCD) generator, Hidden-Markov-Model map matching of
// sparse and noisy GPS points onto the network (full offline Viterbi plus
// the ConDRust-decomposed streaming sub-kernels of Fig. 4), and a Gaussian
// Mixture model for traffic prediction with incomplete data.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/dfg_executor.hpp"
#include "support/expected.hpp"
#include "support/rng.hpp"

namespace everest::usecases::traffic {

/// One directed road segment on a grid network, in km coordinates.
struct Segment {
  int id = -1;
  double x1 = 0, y1 = 0, x2 = 0, y2 = 0;
  double speed_limit_kmh = 50.0;

  [[nodiscard]] double length_km() const;
  /// Euclidean distance from a point to this segment.
  [[nodiscard]] double distance_km(double px, double py) const;
};

/// A grid road network of (n+1)^2 intersections with all grid edges.
struct RoadNetwork {
  std::vector<Segment> segments;
  int grid_n = 0;
  double cell_km = 1.0;
};

RoadNetwork make_grid_network(int n, double cell_km, std::uint64_t seed);

/// An FCD sample: position (km) and timestamp (s).
struct GpsPoint {
  double x = 0, y = 0, t = 0;
};

/// A generated vehicle trace with ground-truth segments.
struct FcdTrace {
  std::vector<GpsPoint> points;
  std::vector<int> true_segments;
};

/// Random walk along the network with GPS noise of `noise_km` std dev.
FcdTrace make_trace(const RoadNetwork &net, int num_points, double noise_km,
                    std::uint64_t seed);

/// HMM map-matching configuration (Newson-Krumme style).
struct MapMatchConfig {
  double sigma_gps_km = 0.05;   // emission: GPS noise scale
  double beta_transition = 2.0; // transition: tolerance to detours
  int max_candidates = 6;       // candidate segments per point
};

/// Full offline Viterbi map matching; returns one segment id per point.
support::Expected<std::vector<int>> map_match(const RoadNetwork &net,
                                              const std::vector<GpsPoint> &points,
                                              const MapMatchConfig &config = {});

/// Fraction of points matched to their true segment.
double matching_accuracy(const std::vector<int> &matched,
                         const std::vector<int> &truth);

/// Registers the Fig. 4 sub-kernels on a dfg NodeRegistry so the coordination
/// program can run them:
///   candidates(point)            -> [seg, dist]*max_candidates (pad -1)
///   emission_score(cands)        -> [seg, logp]*max_candidates
///   greedy_pick(scored)          -> [best_seg]
///   viterbi_step (fold, scored)  -> online DP state [seg, logp]*k
///   decode(state)                -> [best_seg_of_state]
/// Streams encode GpsPoints as records {x, y, t}.
void register_mapmatch_operators(runtime::NodeRegistry &registry,
                                 const RoadNetwork &net,
                                 const MapMatchConfig &config = {});

/// The Fig. 4 coordination program matching this registry.
std::string mapmatch_condrust_source();

/// Converts a trace to the dfg input stream encoding.
runtime::Stream trace_to_stream(const FcdTrace &trace);

// ------------------------------------------------------------- GMM (1-d EM)

/// Gaussian mixture over scalar observations (speeds with missing data).
struct Gmm {
  std::vector<double> weight;
  std::vector<double> mean;
  std::vector<double> variance;

  [[nodiscard]] double pdf(double x) const;
  [[nodiscard]] double log_likelihood(const std::vector<double> &xs) const;
  [[nodiscard]] double mixture_mean() const;
};

/// Fits a k-component GMM with EM (deterministic init from quantiles).
support::Expected<Gmm> fit_gmm(const std::vector<double> &xs, int k,
                               int iterations = 60);

/// Generates per-15-minute segment speeds for a weekday: free-flow at night,
/// two rush-hour dips, with missing observations (NaN) at `missing_fraction`.
std::vector<double> make_speed_observations(double speed_limit_kmh,
                                            std::size_t days,
                                            double missing_fraction,
                                            std::uint64_t seed);

/// Predicts expected speed from a GMM fit of incomplete observations
/// (ignoring NaNs), the paper's "alternative traffic prediction with
/// incomplete data".
support::Expected<double> predict_speed_gmm(const std::vector<double> &obs,
                                            int components = 3);

}  // namespace everest::usecases::traffic
