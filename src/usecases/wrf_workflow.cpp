#include "usecases/wrf_workflow.hpp"

namespace everest::usecases::wrf {

using runtime::ResourceManager;
using runtime::TaskId;
using runtime::TaskSpec;
using support::Error;
using support::Expected;

namespace {

Expected<ResourceManager> build(const WorkflowConfig &config, bool use_fpga) {
  runtime::ClusterSpec cluster;
  for (int n = 0; n < config.nodes; ++n) {
    cluster.nodes.push_back({"node" + std::to_string(n), 8,
                             n < config.fpga_nodes, 1.0});
  }
  ResourceManager rm(cluster);

  std::vector<TaskId> member_finals;
  for (int m = 0; m < config.ensemble_members; ++m) {
    std::string prefix = "m" + std::to_string(m) + "_";

    TaskSpec assimilate{prefix + "wrfda", {}, config.assimilation_ms};
    assimilate.output_bytes = config.state_bytes;
    auto assim = rm.submit(assimilate);
    if (!assim) return assim.error();
    TaskId prev = assim->id;

    for (int t = 0; t < config.timesteps; ++t) {
      std::string step = prefix + "t" + std::to_string(t) + "_";
      TaskSpec dynamics{step + "dyn", {prev}, config.dynamics_ms};
      dynamics.output_bytes = config.state_bytes;
      auto dyn = rm.submit(dynamics);
      if (!dyn) return dyn.error();

      TaskSpec radiation{step + "rrtmg", {dyn->id}, config.radiation_ms};
      radiation.output_bytes = config.state_bytes;
      if (use_fpga)
        radiation.fpga_ms = config.radiation_ms / config.radiation_speedup;
      auto rad = rm.submit(radiation);
      if (!rad) return rad.error();
      prev = rad->id;
    }
    member_finals.push_back(prev);
  }

  TaskSpec aggregate{"ensemble_mean", member_finals, 25.0};
  aggregate.output_bytes = config.state_bytes;
  if (auto agg = rm.submit(aggregate); !agg) return agg.error();
  return rm;
}

}  // namespace

Expected<WorkflowReport> run_ensemble(const WorkflowConfig &config) {
  if (config.ensemble_members < 1 || config.timesteps < 1)
    return Error::make("wrf workflow: members and timesteps must be >= 1");
  if (config.fpga_nodes > config.nodes)
    return Error::make("wrf workflow: fpga_nodes exceeds nodes");
  if (config.radiation_speedup <= 0.0)
    return Error::make("wrf workflow: radiation_speedup must be positive");

  auto accelerated = build(config, /*use_fpga=*/true);
  if (!accelerated) return accelerated.error();
  auto baseline = build(config, /*use_fpga=*/false);
  if (!baseline) return baseline.error();

  auto accel_run = accelerated->run();
  if (!accel_run) return accel_run.error();
  auto base_run = baseline->run();
  if (!base_run) return base_run.error();

  WorkflowReport report;
  report.makespan_ms = accel_run->makespan_ms;
  report.cpu_only_makespan_ms = base_run->makespan_ms;
  report.speedup = base_run->makespan_ms / accel_run->makespan_ms;
  report.avg_core_utilization = accel_run->avg_core_utilization;
  for (const auto &[id, outcome] : accel_run->tasks)
    report.radiation_tasks_on_fpga += outcome.used_fpga;
  return report;
}

}  // namespace everest::usecases::wrf
