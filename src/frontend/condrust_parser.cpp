#include "frontend/condrust_parser.hpp"

#include <map>
#include <vector>

#include "ir/builder.hpp"
#include "support/strings.hpp"

namespace everest::frontend {

namespace {

using ir::Attribute;
using ir::Operation;
using ir::Type;
using ir::Value;
using support::Error;
using support::Expected;

Type stream_type(const std::string &elem = "f64") {
  return Type::custom("dfg", "stream", {elem});
}

/// Extracts "name(arg1, arg2)" -> {name, {arg1, arg2}}.
struct Call {
  std::string callee;
  std::vector<std::string> args;
};

Expected<Call> parse_call(std::string_view text) {
  auto lp = text.find('(');
  auto rp = text.rfind(')');
  if (lp == std::string_view::npos || rp == std::string_view::npos || rp < lp)
    return Error::invalid_argument("condrust: expected a call expression in '" +
                       std::string(text) + "'");
  Call call;
  call.callee = std::string(support::trim(text.substr(0, lp)));
  if (!support::is_identifier(call.callee))
    return Error::invalid_argument("condrust: bad callee name '" + call.callee + "'");
  auto body = text.substr(lp + 1, rp - lp - 1);
  for (auto &tok : support::split(body, ',')) {
    auto t = support::trim(tok);
    if (!t.empty()) call.args.emplace_back(t);
  }
  return call;
}

}  // namespace

Expected<std::shared_ptr<ir::Module>> parse_condrust(std::string_view text) {
  auto module = std::make_shared<ir::Module>();
  std::map<std::string, Value *> symbols;

  std::string fn_name = "graph";
  std::string pending_placement;
  ir::Block *body = nullptr;
  std::unique_ptr<ir::OpBuilder> b;
  bool saw_return = false;

  for (const auto &raw : support::split(text, '\n')) {
    auto line = support::trim(raw);
    if (line.empty() || support::starts_with(line, "//")) continue;

    if (support::starts_with(line, "#[")) {
      auto close = line.find(']');
      if (close == std::string_view::npos)
        return Error::invalid_argument("condrust: unterminated attribute");
      pending_placement = std::string(line.substr(2, close - 2));
      if (pending_placement != "cpu" && pending_placement != "fpga")
        return Error::unsupported("condrust: unknown placement attribute '" +
                           pending_placement + "'");
      continue;
    }

    if (support::starts_with(line, "fn ")) {
      auto lp = line.find('(');
      auto rp = line.find(')');
      if (lp == std::string_view::npos || rp == std::string_view::npos)
        return Error::invalid_argument("condrust: malformed fn signature");
      fn_name = std::string(support::trim(line.substr(3, lp - 3)));
      Operation *graph =
          Operation::create(module->arena(), ir::Symbol("dfg.graph"), {}, {},
                            {{"sym_name", Attribute(fn_name)}}, 1);
      body = &graph->region(0).add_block();
      module->body().attach(graph);
      b = std::make_unique<ir::OpBuilder>(body);

      // Parameters: "name: Stream<T>" separated by commas.
      for (auto &param : support::split(line.substr(lp + 1, rp - lp - 1), ',')) {
        auto p = support::trim(param);
        if (p.empty()) continue;
        auto colon = p.find(':');
        std::string pname(
            support::trim(colon == std::string_view::npos ? p
                                                          : p.substr(0, colon)));
        symbols[pname] = b->create_value("dfg.input", {}, stream_type(),
                                         {{"name", Attribute(pname)}});
      }
      continue;
    }

    if (!b) return Error::invalid_argument("condrust: statement before fn signature");

    if (line == "}") continue;

    if (support::starts_with(line, "return ")) {
      std::string name(support::trim(line.substr(7)));
      if (!name.empty() && name.back() == ';') name.pop_back();
      name = std::string(support::trim(name));
      auto it = symbols.find(name);
      if (it == symbols.end())
        return Error::invalid_argument("condrust: return of undefined value '" + name + "'");
      b->create("dfg.output", {it->second}, {}, {{"name", Attribute(name)}});
      saw_return = true;
      continue;
    }

    if (support::starts_with(line, "let ")) {
      auto eq = line.find('=');
      if (eq == std::string_view::npos)
        return Error::invalid_argument("condrust: let without '='");
      std::string lhs(support::trim(line.substr(4, eq - 4)));
      // Strip "mut " and type ascription.
      if (support::starts_with(lhs, "mut ")) lhs = lhs.substr(4);
      auto colon = lhs.find(':');
      if (colon != std::string::npos)
        lhs = std::string(support::trim(lhs.substr(0, colon)));
      std::string rhs(support::trim(line.substr(eq + 1)));
      if (!rhs.empty() && rhs.back() == ';') rhs.pop_back();
      rhs = std::string(support::trim(rhs));

      bool is_fold = support::starts_with(rhs, "fold ");
      if (is_fold) rhs = std::string(support::trim(rhs.substr(5)));

      auto call = parse_call(rhs);
      if (!call) return call.error();

      std::vector<Value *> operands;
      for (const auto &arg : call->args) {
        auto it = symbols.find(arg);
        if (it == symbols.end())
          return Error::invalid_argument("condrust: use of undefined value '" + arg + "'");
        operands.push_back(it->second);
      }

      ir::AttrDict attrs{{"callee", Attribute(call->callee)}};
      if (!pending_placement.empty()) {
        attrs.set("placement", Attribute(pending_placement));
        pending_placement.clear();
      }
      Value *result =
          b->create_value(is_fold ? "dfg.fold" : "dfg.node", operands,
                          stream_type(), std::move(attrs));
      if (symbols.count(lhs))
        return Error::invalid_argument("condrust: rebinding of '" + lhs +
                           "' (ownership violation)");
      symbols[lhs] = result;
      continue;
    }

    return Error::invalid_argument("condrust: cannot parse line: " + std::string(line));
  }

  if (!b) return Error::invalid_argument("condrust: no fn found");
  if (!saw_return) return Error::invalid_argument("condrust: fn has no return");
  return module;
}

}  // namespace everest::frontend
