// everest/frontend/condrust_parser.hpp
//
// Frontend for the ConDRust coordination language (paper §V-A.2, Fig. 4;
// ref [27]): an imperative Rust subset whose safe-ownership structure makes
// the extracted dataflow graph deterministic. This parser accepts the
// coordination-level subset — function signature over streams, straight-line
// `let` bindings calling named operators, ordered folds, and a return — and
// emits a dfg.graph.
//
//   #[fpga]                         -- placement attribute for the next let
//   fn map_match(points: Stream<Point>) -> Stream<Seg> {
//       let cands  = candidates(points);
//       let scored = emission_score(cands, points);
//       let path   = fold viterbi_step(scored);   -- ordered stateful fold
//       return path;
//   }
//
// Every `let` becomes a dfg.node (or dfg.fold); data dependencies come from
// argument names. Determinism: folds are ordered, maps are order-preserving.
#pragma once

#include <memory>
#include <string_view>

#include "ir/ir.hpp"
#include "support/expected.hpp"

namespace everest::frontend {

/// Parses a ConDRust coordination function into a module with one dfg.graph.
support::Expected<std::shared_ptr<ir::Module>> parse_condrust(
    std::string_view text);

}  // namespace everest::frontend
