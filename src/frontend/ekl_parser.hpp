// everest/frontend/ekl_parser.hpp
//
// Text frontend for the EVEREST Kernel Language (paper §V-A.1, Fig. 3).
//
// Grammar (statements separated by newlines; '#' comments):
//
//   kernel    <name>
//   index     i, j, ...                     -- iteration indices
//   input     t[i, j]                       -- input tensor with named dims
//   <name> = <expr>                         -- assignment
//   output    <name>                        -- marks a defined name as output
//
//   expr   := term (('+'|'-') term)*
//   term   := factor (('*'|'/') factor)*
//   factor := 'sum' '(' idx {',' idx} ')' term         -- reduction (binds
//                                                         the product chain)
//           | 'select' '(' expr cmp expr ',' expr ',' expr ')'
//           | '[' expr {',' expr} ']'                  -- in-place construction
//           | ident '[' expr {',' expr} ']'            -- (re-)association /
//                                                         subscripted subscripts
//           | ident | number | '(' expr ')'
//   cmp    := '<=' | '<' | '>=' | '>' | '==' | '!='
//
// Subscripting binds index expressions positionally to the leading dims of a
// tensor; unsubscripted trailing dims keep their index names (this is what
// lets Fig. 3 write i_flav[x] for the 2-d tensor i_flav). A bare identifier
// in subscript position that names a declared iteration index is the identity
// over that index.
#pragma once

#include <memory>
#include <string_view>

#include "ir/ir.hpp"
#include "support/expected.hpp"

namespace everest::frontend {

/// Parses an EKL program into a module containing one `ekl.kernel`.
support::Expected<std::shared_ptr<ir::Module>> parse_ekl(std::string_view text);

/// Counts the non-comment, non-blank source lines of an EKL program (used by
/// the Fig. 3 code-size comparison).
std::size_t count_ekl_lines(std::string_view text);

}  // namespace everest::frontend
