// everest/frontend/cfdlang_parser.hpp
//
// Frontend for the legacy CFDlang tensor DSL (paper §V-A, ref [22]).
//
// Grammar (line oriented; '#' comments):
//   program <name>
//   input  <id> : [d0, d1, ...]
//   output <id> = <expr>
//   <id> = <expr>
//   expr := outer(e, e) | contract(e, i, j {, i, j}) | add(e, e)
//         | transpose(e, p0, p1, ...) | <id>
//
// `contract(e, i, j)` sums over the diagonal of dims i and j (0-based);
// `outer` is the tensor product. This matches CFDlang's product/contraction
// core; the richer surface syntax of the original is normalized by its own
// frontend before reaching this level.
#pragma once

#include <memory>
#include <string_view>

#include "ir/ir.hpp"
#include "support/expected.hpp"

namespace everest::frontend {

/// Parses a CFDlang program into a module with one `cfdlang.program`.
support::Expected<std::shared_ptr<ir::Module>> parse_cfdlang(
    std::string_view text);

}  // namespace everest::frontend
