// everest/frontend/onnx_import.hpp
//
// Importer for ONNX-style ML models (paper §V-A: "As input, the SDK supports
// standard ONNX ML models"). Models arrive as JSON (a textual isomorph of the
// ONNX protobuf graph: inputs, initializers, nodes, outputs) and are loaded
// into a graph structure consumed by the jabbah-level optimizations and by
// the reference inference executor below.
//
// Supported operators (the set the traffic use case's speed-prediction CNN
// needs): Conv1D, Relu, Sigmoid, MaxPool1D, Flatten, Gemm, Add.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "numerics/tensor.hpp"
#include "support/expected.hpp"

namespace everest::frontend {

struct OnnxValueInfo {
  std::string name;
  numerics::Shape shape;
};

struct OnnxNode {
  std::string op;
  std::string name;
  std::vector<std::string> inputs;
  std::string output;
  std::map<std::string, double> attrs;
};

struct OnnxModel {
  std::string name;
  std::vector<OnnxValueInfo> inputs;
  std::map<std::string, numerics::Tensor> initializers;  // weights
  std::vector<OnnxNode> nodes;
  std::vector<std::string> outputs;

  /// Total parameter count across initializers.
  [[nodiscard]] std::size_t parameter_count() const;
};

/// Parses the JSON model format.
support::Expected<OnnxModel> import_onnx_json(std::string_view json_text);

/// Runs reference inference; returns tensors for every declared output.
support::Expected<std::map<std::string, numerics::Tensor>> run_onnx(
    const OnnxModel &model,
    const std::map<std::string, numerics::Tensor> &inputs);

}  // namespace everest::frontend
