#include "frontend/onnx_import.hpp"

#include <algorithm>
#include <cmath>

#include "support/json.hpp"

namespace everest::frontend {

namespace {

using numerics::Shape;
using numerics::Tensor;
using support::Error;
using support::Expected;
using support::Json;

Expected<Shape> parse_shape(const Json &j) {
  if (!j.is_array()) return Error::invalid_argument("onnx: shape must be an array");
  Shape s;
  for (std::size_t i = 0; i < j.size(); ++i) s.push_back(j[i].as_int());
  return s;
}

Expected<Tensor> parse_tensor(const Json &j) {
  auto shape = parse_shape(j["shape"]);
  if (!shape) return shape.error();
  const Json &data = j["data"];
  if (!data.is_array()) return Error::invalid_argument("onnx: tensor data must be array");
  std::vector<double> values;
  values.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    values.push_back(data[i].as_number());
  if (static_cast<std::int64_t>(values.size()) != numerics::num_elements(*shape))
    return Error::invalid_argument("onnx: tensor data size does not match shape");
  return Tensor(std::move(*shape), std::move(values));
}

}  // namespace

std::size_t OnnxModel::parameter_count() const {
  std::size_t n = 0;
  for (const auto &[_, t] : initializers)
    n += static_cast<std::size_t>(t.size());
  return n;
}

Expected<OnnxModel> import_onnx_json(std::string_view json_text) {
  auto parsed = Json::parse(json_text);
  if (!parsed) return parsed.error();
  const Json &j = *parsed;

  OnnxModel m;
  m.name = j["name"].is_string() ? j["name"].as_string() : "model";

  const Json &inputs = j["inputs"];
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    auto shape = parse_shape(inputs[i]["shape"]);
    if (!shape) return shape.error();
    m.inputs.push_back({inputs[i]["name"].as_string(), std::move(*shape)});
  }

  const Json &inits = j["initializers"];
  if (inits.is_array()) {
    for (std::size_t i = 0; i < inits.size(); ++i) {
      auto t = parse_tensor(inits[i]);
      if (!t) return t.error();
      m.initializers.emplace(inits[i]["name"].as_string(), std::move(*t));
    }
  }

  const Json &nodes = j["nodes"];
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    OnnxNode n;
    n.op = nodes[i]["op"].as_string();
    n.name = nodes[i]["name"].is_string() ? nodes[i]["name"].as_string()
                                          : n.op + std::to_string(i);
    const Json &ins = nodes[i]["inputs"];
    for (std::size_t k = 0; k < ins.size(); ++k)
      n.inputs.push_back(ins[k].as_string());
    n.output = nodes[i]["output"].as_string();
    const Json &attrs = nodes[i]["attrs"];
    if (attrs.is_object()) {
      for (const auto &[key, value] : attrs.fields())
        n.attrs[key] = value.as_number();
    }
    if (n.op.empty() || n.output.empty())
      return Error::invalid_argument("onnx: node " + std::to_string(i) +
                         " missing op/output");
    m.nodes.push_back(std::move(n));
  }

  const Json &outs = j["outputs"];
  for (std::size_t i = 0; i < outs.size(); ++i)
    m.outputs.push_back(outs[i].as_string());
  if (m.outputs.empty()) return Error::invalid_argument("onnx: model has no outputs");
  return m;
}

namespace {

/// Conv1D: x [C_in, L], w [C_out, C_in, K], optional bias [C_out];
/// 'same' zero padding, stride 1. Returns [C_out, L].
Tensor conv1d(const Tensor &x, const Tensor &w, const Tensor *bias) {
  std::int64_t cin = x.dim(0), len = x.dim(1);
  std::int64_t cout = w.dim(0), k = w.dim(2);
  std::int64_t pad = k / 2;
  Tensor y(Shape{cout, len});
  for (std::int64_t oc = 0; oc < cout; ++oc) {
    double b = bias ? bias->flat(oc) : 0.0;
    for (std::int64_t i = 0; i < len; ++i) {
      double acc = b;
      for (std::int64_t ic = 0; ic < cin; ++ic) {
        for (std::int64_t t = 0; t < k; ++t) {
          std::int64_t src = i + t - pad;
          if (src < 0 || src >= len) continue;
          acc += x(ic, src) * w(oc, ic, t);
        }
      }
      y(oc, i) = acc;
    }
  }
  return y;
}

Tensor maxpool1d(const Tensor &x, std::int64_t window) {
  std::int64_t c = x.dim(0), len = x.dim(1);
  std::int64_t out_len = len / window;
  Tensor y(Shape{c, out_len});
  for (std::int64_t ch = 0; ch < c; ++ch) {
    for (std::int64_t i = 0; i < out_len; ++i) {
      double m = x(ch, i * window);
      for (std::int64_t t = 1; t < window; ++t)
        m = std::max(m, x(ch, i * window + t));
      y(ch, i) = m;
    }
  }
  return y;
}

}  // namespace

Expected<std::map<std::string, Tensor>> run_onnx(
    const OnnxModel &model, const std::map<std::string, Tensor> &inputs) {
  std::map<std::string, Tensor> env = model.initializers;
  for (const auto &in : model.inputs) {
    auto it = inputs.find(in.name);
    if (it == inputs.end())
      return Error::invalid_argument("onnx run: missing input '" + in.name + "'");
    if (it->second.shape() != in.shape)
      return Error::invalid_argument("onnx run: input '" + in.name + "' shape mismatch");
    env.emplace(in.name, it->second);
  }

  auto get = [&](const std::string &name) -> Expected<const Tensor *> {
    auto it = env.find(name);
    if (it == env.end())
      return Error::invalid_argument("onnx run: undefined tensor '" + name + "'");
    return &it->second;
  };

  for (const auto &node : model.nodes) {
    auto arg = [&](std::size_t i) { return get(node.inputs.at(i)); };
    Tensor result;

    if (node.op == "Conv1D") {
      auto x = arg(0), w = arg(1);
      if (!x) return x.error();
      if (!w) return w.error();
      const Tensor *bias = nullptr;
      if (node.inputs.size() > 2) {
        auto b = arg(2);
        if (!b) return b.error();
        bias = *b;
      }
      result = conv1d(**x, **w, bias);
    } else if (node.op == "Relu") {
      auto x = arg(0);
      if (!x) return x.error();
      result = **x;
      for (auto &v : result.data()) v = std::max(v, 0.0);
    } else if (node.op == "Sigmoid") {
      auto x = arg(0);
      if (!x) return x.error();
      result = **x;
      for (auto &v : result.data()) v = 1.0 / (1.0 + std::exp(-v));
    } else if (node.op == "MaxPool1D") {
      auto x = arg(0);
      if (!x) return x.error();
      auto window = static_cast<std::int64_t>(
          node.attrs.count("window") ? node.attrs.at("window") : 2);
      result = maxpool1d(**x, window);
    } else if (node.op == "Flatten") {
      auto x = arg(0);
      if (!x) return x.error();
      result = (*x)->reshaped({(*x)->size()});
    } else if (node.op == "Gemm") {
      // y = W x + b with W [out, in], x [in], b [out].
      auto w = arg(1), x = arg(0);
      if (!x) return x.error();
      if (!w) return w.error();
      std::int64_t out_dim = (*w)->dim(0), in_dim = (*w)->dim(1);
      if ((*x)->size() != in_dim)
        return Error::invalid_argument("onnx run: Gemm dimension mismatch in " + node.name);
      result = Tensor(Shape{out_dim});
      for (std::int64_t o = 0; o < out_dim; ++o) {
        double acc = 0.0;
        for (std::int64_t i = 0; i < in_dim; ++i)
          acc += (**w)(o, i) * (*x)->flat(i);
        result(o) = acc;
      }
      if (node.inputs.size() > 2) {
        auto b = arg(2);
        if (!b) return b.error();
        result += **b;
      }
    } else if (node.op == "Add") {
      auto a = arg(0), b2 = arg(1);
      if (!a) return a.error();
      if (!b2) return b2.error();
      result = **a;
      result += **b2;
    } else {
      return Error::unsupported("onnx run: unsupported op '" + node.op + "'");
    }

    env.insert_or_assign(node.output, std::move(result));
  }

  std::map<std::string, Tensor> outputs;
  for (const auto &name : model.outputs) {
    auto t = get(name);
    if (!t) return t.error();
    outputs.emplace(name, **t);
  }
  return outputs;
}

}  // namespace everest::frontend
