#include "frontend/cfdlang_parser.hpp"

#include <cctype>
#include <cstdlib>
#include <map>

#include "ir/builder.hpp"
#include "support/strings.hpp"

namespace everest::frontend {

namespace {

using ir::Attribute;
using ir::Operation;
using ir::Type;
using ir::Value;
using support::Error;
using support::Expected;

/// Computes the result shape of cfdlang ops from operand shapes.
std::vector<std::int64_t> dims_of(const Value *v) {
  return v->type().is_tensor() ? v->type().dims()
                               : std::vector<std::int64_t>{};
}

Type tensor_type(std::vector<std::int64_t> dims) {
  if (dims.empty()) return Type::floating(64);
  return Type::tensor(std::move(dims), Type::floating(64));
}

class CfdParser {
public:
  explicit CfdParser(std::string_view text) : text_(text) {}

  Expected<std::shared_ptr<ir::Module>> run() {
    auto module = std::make_shared<ir::Module>();
    std::string name = "cfd";
    auto lines = support::split(text_, '\n');

    // First pass finds the program name.
    for (const auto &raw : lines) {
      auto line = support::trim(raw);
      if (support::starts_with(line, "program")) {
        name = std::string(support::trim(line.substr(7)));
        break;
      }
    }

    Operation *program =
        Operation::create(module->arena(), ir::Symbol("cfdlang.program"), {},
                          {}, {{"sym_name", Attribute(name)}}, 1);
    ir::Block &body = program->region(0).add_block();
    module->body().attach(program);
    builder_ = std::make_unique<ir::OpBuilder>(&body);

    for (const auto &raw : lines) {
      auto line = support::trim(raw);
      if (line.empty() || line[0] == '#' || support::starts_with(line, "program"))
        continue;
      if (auto s = parse_line(line); !s) return s.error();
    }
    if (!saw_output_) return Error::invalid_argument("cfdlang: program has no output");
    return module;
  }

private:
  Expected<bool> parse_line(std::string_view line) {
    if (support::starts_with(line, "input ")) {
      auto colon = line.find(':');
      if (colon == std::string_view::npos)
        return Error::invalid_argument("cfdlang: input needs ': [dims]'");
      std::string id(support::trim(line.substr(6, colon - 6)));
      auto lb = line.find('[', colon);
      auto rb = line.find(']', colon);
      if (lb == std::string_view::npos || rb == std::string_view::npos)
        return Error::invalid_argument("cfdlang: malformed shape for input " + id);
      std::vector<std::int64_t> dims;
      for (auto &tok : support::split(line.substr(lb + 1, rb - lb - 1), ',')) {
        auto t = support::trim(tok);
        if (t.empty()) continue;
        dims.push_back(std::strtoll(std::string(t).c_str(), nullptr, 10));
      }
      symbols_[id] = builder_->create_value("cfdlang.input", {},
                                            tensor_type(std::move(dims)),
                                            {{"name", Attribute(id)}});
      return true;
    }

    bool is_output = support::starts_with(line, "output ");
    if (is_output) line = support::trim(line.substr(7));

    auto eq = line.find('=');
    if (eq == std::string_view::npos)
      return Error::invalid_argument("cfdlang: expected assignment: " + std::string(line));
    std::string id(support::trim(line.substr(0, eq)));
    pos_text_ = std::string(support::trim(line.substr(eq + 1)));
    pos_ = 0;
    auto value = parse_expr();
    if (!value) return value.error();
    symbols_[id] = *value;
    if (is_output) {
      builder_->create("cfdlang.output", {*value}, {},
                       {{"name", Attribute(id)}});
      saw_output_ = true;
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < pos_text_.size() &&
           std::isspace(static_cast<unsigned char>(pos_text_[pos_])))
      ++pos_;
  }

  std::string read_ident() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < pos_text_.size() &&
           (std::isalnum(static_cast<unsigned char>(pos_text_[pos_])) ||
            pos_text_[pos_] == '_'))
      ++pos_;
    return pos_text_.substr(start, pos_ - start);
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < pos_text_.size() && pos_text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Expected<std::int64_t> read_int() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < pos_text_.size() &&
           std::isdigit(static_cast<unsigned char>(pos_text_[pos_])))
      ++pos_;
    if (start == pos_) return Error::invalid_argument("cfdlang: expected integer");
    return static_cast<std::int64_t>(
        std::strtoll(pos_text_.substr(start, pos_ - start).c_str(), nullptr, 10));
  }

  Expected<Value *> parse_expr() {
    std::string head = read_ident();
    if (head.empty()) return Error::invalid_argument("cfdlang: expected expression");

    if (head == "outer" || head == "add") {
      if (!consume('(')) return Error::invalid_argument("cfdlang: expected '('");
      auto a = parse_expr();
      if (!a) return a;
      if (!consume(',')) return Error::invalid_argument("cfdlang: expected ','");
      auto b = parse_expr();
      if (!b) return b;
      if (!consume(')')) return Error::invalid_argument("cfdlang: expected ')'");
      if (head == "add") {
        if ((*a)->type() != (*b)->type())
          return Error::invalid_argument("cfdlang: add requires matching shapes");
        return builder_->create_value("cfdlang.add", {*a, *b}, (*a)->type());
      }
      auto da = dims_of(*a);
      auto db = dims_of(*b);
      da.insert(da.end(), db.begin(), db.end());
      return builder_->create_value("cfdlang.outer", {*a, *b},
                                    tensor_type(std::move(da)));
    }

    if (head == "contract") {
      if (!consume('(')) return Error::invalid_argument("cfdlang: expected '('");
      auto e = parse_expr();
      if (!e) return e;
      std::vector<std::int64_t> pairs;
      while (consume(',')) {
        auto i = read_int();
        if (!i) return i.error();
        pairs.push_back(*i);
      }
      if (!consume(')')) return Error::invalid_argument("cfdlang: expected ')'");
      if (pairs.size() % 2 != 0 || pairs.empty())
        return Error::invalid_argument("cfdlang: contract needs dim pairs");
      auto dims = dims_of(*e);
      std::vector<bool> drop(dims.size(), false);
      for (std::size_t k = 0; k < pairs.size(); k += 2) {
        auto i = static_cast<std::size_t>(pairs[k]);
        auto j = static_cast<std::size_t>(pairs[k + 1]);
        if (i >= dims.size() || j >= dims.size() || dims[i] != dims[j])
          return Error::invalid_argument("cfdlang: invalid contraction dims");
        drop[i] = drop[j] = true;
      }
      std::vector<std::int64_t> out;
      for (std::size_t d = 0; d < dims.size(); ++d) {
        if (!drop[d]) out.push_back(dims[d]);
      }
      return builder_->create_value("cfdlang.contract", {*e},
                                    tensor_type(std::move(out)),
                                    {{"pairs", Attribute::int_array(pairs)}});
    }

    if (head == "transpose") {
      if (!consume('(')) return Error::invalid_argument("cfdlang: expected '('");
      auto e = parse_expr();
      if (!e) return e;
      std::vector<std::int64_t> perm;
      while (consume(',')) {
        auto i = read_int();
        if (!i) return i.error();
        perm.push_back(*i);
      }
      if (!consume(')')) return Error::invalid_argument("cfdlang: expected ')'");
      auto dims = dims_of(*e);
      if (perm.size() != dims.size())
        return Error::invalid_argument("cfdlang: transpose perm rank mismatch");
      std::vector<std::int64_t> out(dims.size());
      for (std::size_t d = 0; d < perm.size(); ++d)
        out[d] = dims[static_cast<std::size_t>(perm[d])];
      return builder_->create_value("cfdlang.transpose", {*e},
                                    tensor_type(std::move(out)),
                                    {{"perm", Attribute::int_array(perm)}});
    }

    auto it = symbols_.find(head);
    if (it == symbols_.end())
      return Error::invalid_argument("cfdlang: undefined name '" + head + "'");
    return it->second;
  }

  std::string_view text_;
  std::unique_ptr<ir::OpBuilder> builder_;
  std::map<std::string, Value *> symbols_;
  std::string pos_text_;
  std::size_t pos_ = 0;
  bool saw_output_ = false;
};

}  // namespace

Expected<std::shared_ptr<ir::Module>> parse_cfdlang(std::string_view text) {
  return CfdParser(text).run();
}

}  // namespace everest::frontend
