#include "frontend/ekl_parser.hpp"

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "dialects/ekl.hpp"
#include "ir/builder.hpp"
#include "support/strings.hpp"

namespace everest::frontend {

namespace {

using support::Error;
using support::Expected;

struct Token {
  enum Kind { Ident, Number, Punct, End } kind;
  std::string text;
  std::size_t line;
};

Expected<std::vector<Token>> tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t line = 1;
  std::size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_'))
        ++i;
      out.push_back({Token::Ident, std::string(text.substr(start, i - start)),
                     line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t start = i;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              text[i] == '.' || text[i] == 'e' || text[i] == 'E' ||
              ((text[i] == '+' || text[i] == '-') &&
               (text[i - 1] == 'e' || text[i - 1] == 'E'))))
        ++i;
      out.push_back({Token::Number, std::string(text.substr(start, i - start)),
                     line});
      continue;
    }
    // Two-character operators.
    static const char *two_chars[] = {"<=", ">=", "==", "!="};
    bool matched = false;
    for (const char *op : two_chars) {
      if (text.substr(i, 2) == op) {
        out.push_back({Token::Punct, op, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string singles = "+-*/()[],=<>";
    if (singles.find(c) != std::string::npos) {
      out.push_back({Token::Punct, std::string(1, c), line});
      ++i;
      continue;
    }
    return Error::invalid_argument("ekl: unexpected character '" + std::string(1, c) +
                       "' at line " + std::to_string(line));
  }
  out.push_back({Token::End, "", line});
  return out;
}

class EklParser {
public:
  explicit EklParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  Expected<std::shared_ptr<ir::Module>> run() {
    auto module = std::make_shared<ir::Module>();
    std::string kernel_name = "kernel";
    if (peek().kind == Token::Ident && peek().text == "kernel") {
      next();
      if (peek().kind != Token::Ident) return fail("expected kernel name");
      kernel_name = next().text;
    }
    ir::Operation &kernel =
        dialects::ekl::make_kernel(module->body(), kernel_name);
    builder_ = std::make_unique<ir::OpBuilder>(&kernel.region(0).front());

    while (peek().kind != Token::End) {
      if (auto s = parse_statement(); !s) return s.error();
    }
    if (outputs_ == 0)
      return Error::invalid_argument("ekl: program declares no outputs");
    return module;
  }

private:
  const Token &peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  Token next() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool consume_punct(const std::string &p) {
    if (peek().kind == Token::Punct && peek().text == p) {
      next();
      return true;
    }
    return false;
  }
  Error fail(const std::string &msg) {
    return Error::invalid_argument("ekl: " + msg + " at line " +
                       std::to_string(peek().line) + " (near '" +
                       peek().text + "')");
  }

  Expected<bool> parse_statement() {
    if (peek().kind != Token::Ident) return fail("expected a statement");
    const std::string &head = peek().text;

    if (head == "index") {
      next();
      while (true) {
        if (peek().kind != Token::Ident) return fail("expected index name");
        indices_.insert(next().text);
        if (!consume_punct(",")) break;
      }
      return true;
    }

    if (head == "input") {
      next();
      if (peek().kind != Token::Ident) return fail("expected input name");
      std::string name = next().text;
      std::vector<std::string> dims;
      if (consume_punct("[")) {
        while (true) {
          if (peek().kind != Token::Ident)
            return fail("expected index name in input dims");
          std::string dim = next().text;
          indices_.insert(dim);
          dims.push_back(dim);
          if (!consume_punct(",")) break;
        }
        if (!consume_punct("]")) return fail("expected ']' after input dims");
      }
      if (symbols_.count(name))
        return Error::invalid_argument("ekl: duplicate definition of '" + name + "'");
      symbols_[name] = dialects::ekl::make_input(*builder_, name, dims);
      return true;
    }

    if (head == "output") {
      next();
      if (peek().kind != Token::Ident) return fail("expected output name");
      std::string name = next().text;
      auto it = symbols_.find(name);
      if (it == symbols_.end())
        return Error::invalid_argument("ekl: output of undefined name '" + name + "'");
      dialects::ekl::make_output(*builder_, name, it->second);
      ++outputs_;
      return true;
    }

    // Assignment: name = expr
    std::string name = next().text;
    if (!consume_punct("=")) return fail("expected '=' in assignment");
    if (indices_.count(name))
      return Error::invalid_argument("ekl: cannot assign to iteration index '" + name + "'");
    auto value = parse_expr();
    if (!value) return value.error();
    if (symbols_.count(name))
      return Error::invalid_argument("ekl: duplicate definition of '" + name + "'");
    symbols_[name] = *value;
    return true;
  }

  Expected<ir::Value *> parse_expr() {
    auto lhs = parse_term();
    if (!lhs) return lhs;
    while (peek().kind == Token::Punct &&
           (peek().text == "+" || peek().text == "-")) {
      std::string op = next().text == "+" ? "add" : "sub";
      auto rhs = parse_term();
      if (!rhs) return rhs;
      lhs = dialects::ekl::make_binary(*builder_, op, *lhs, *rhs);
    }
    return lhs;
  }

  Expected<ir::Value *> parse_term() {
    auto lhs = parse_factor();
    if (!lhs) return lhs;
    while (peek().kind == Token::Punct &&
           (peek().text == "*" || peek().text == "/")) {
      std::string op = next().text == "*" ? "mul" : "div";
      auto rhs = parse_factor();
      if (!rhs) return rhs;
      lhs = dialects::ekl::make_binary(*builder_, op, *lhs, *rhs);
    }
    return lhs;
  }

  Expected<ir::Value *> parse_factor() {
    if (peek().kind == Token::Number) {
      return dialects::ekl::make_literal(*builder_,
                                         std::strtod(next().text.c_str(), nullptr));
    }

    if (consume_punct("(")) {
      auto inner = parse_expr();
      if (!inner) return inner;
      if (!consume_punct(")")) return fail("expected ')'");
      return inner;
    }

    if (consume_punct("[")) {  // in-place construction
      std::vector<ir::Value *> parts;
      while (true) {
        auto part = parse_expr();
        if (!part) return part;
        parts.push_back(*part);
        if (!consume_punct(",")) break;
      }
      if (!consume_punct("]")) return fail("expected ']' after stack");
      std::string new_index = "_s" + std::to_string(stack_counter_++);
      indices_.insert(new_index);
      return dialects::ekl::make_stack(*builder_, parts, new_index);
    }

    if (peek().kind != Token::Ident) return fail("expected expression");

    if (peek().text == "sum") {
      next();
      if (!consume_punct("(")) return fail("expected '(' after sum");
      std::vector<std::string> reduce;
      while (true) {
        if (peek().kind != Token::Ident) return fail("expected index in sum");
        reduce.push_back(next().text);
        if (!consume_punct(",")) break;
      }
      if (!consume_punct(")")) return fail("expected ')' after sum indices");
      // sum binds the whole following term (product chain), matching the
      // paper's  tau = sum(dT) sum(dp) ... r * alpha * k  reading.
      auto body = parse_term();
      if (!body) return body;
      return dialects::ekl::make_sum(*builder_, *body, reduce);
    }

    if (peek().text == "select") {
      next();
      if (!consume_punct("(")) return fail("expected '(' after select");
      auto lhs = parse_expr();
      if (!lhs) return lhs;
      if (peek().kind != Token::Punct) return fail("expected comparison");
      std::string cmp = next().text;
      static const std::map<std::string, std::string> predicates = {
          {"<=", "le"}, {"<", "lt"}, {">=", "ge"},
          {">", "gt"},  {"==", "eq"}, {"!=", "ne"}};
      auto pit = predicates.find(cmp);
      if (pit == predicates.end())
        return fail("unknown comparison '" + cmp + "'");
      auto rhs = parse_expr();
      if (!rhs) return rhs;
      ir::Value *cond =
          dialects::ekl::make_compare(*builder_, pit->second, *lhs, *rhs);
      if (!consume_punct(",")) return fail("expected ',' after condition");
      auto then_v = parse_expr();
      if (!then_v) return then_v;
      if (!consume_punct(",")) return fail("expected ',' in select");
      auto else_v = parse_expr();
      if (!else_v) return else_v;
      if (!consume_punct(")")) return fail("expected ')' after select");
      return dialects::ekl::make_select(*builder_, cond, *then_v, *else_v);
    }

    // Identifier: index reference, symbol reference, optionally subscripted.
    std::string name = next().text;
    ir::Value *base = nullptr;
    if (indices_.count(name)) {
      base = dialects::ekl::make_index(*builder_, name);
    } else {
      auto it = symbols_.find(name);
      if (it == symbols_.end())
        return Error::invalid_argument("ekl: use of undefined name '" + name +
                           "' at line " + std::to_string(peek().line));
      base = it->second;
    }

    if (consume_punct("[")) {
      std::vector<ir::Value *> subs;
      while (true) {
        auto sub = parse_expr();
        if (!sub) return sub;
        subs.push_back(*sub);
        if (!consume_punct(",")) break;
      }
      if (!consume_punct("]")) return fail("expected ']' after subscripts");
      auto rank = dialects::ekl::result_indices(*base).size();
      if (subs.size() > rank)
        return Error::invalid_argument("ekl: '" + name + "' subscripted with " +
                           std::to_string(subs.size()) + " exprs but has rank " +
                           std::to_string(rank));
      return dialects::ekl::make_gather(*builder_, base, subs);
    }
    return base;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::unique_ptr<ir::OpBuilder> builder_;
  std::map<std::string, ir::Value *> symbols_;
  std::set<std::string> indices_;
  int stack_counter_ = 0;
  int outputs_ = 0;
};

}  // namespace

Expected<std::shared_ptr<ir::Module>> parse_ekl(std::string_view text) {
  auto tokens = tokenize(text);
  if (!tokens) return tokens.error();
  return EklParser(std::move(*tokens)).run();
}

std::size_t count_ekl_lines(std::string_view text) {
  std::size_t n = 0;
  for (const auto &line : support::split(text, '\n')) {
    auto t = support::trim(line);
    if (!t.empty() && t[0] != '#') ++n;
  }
  return n;
}

}  // namespace everest::frontend
