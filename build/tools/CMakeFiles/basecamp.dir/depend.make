# Empty dependencies file for basecamp.
# This may be replaced when dependencies are built.
