file(REMOVE_RECURSE
  "CMakeFiles/basecamp.dir/basecamp_cli.cpp.o"
  "CMakeFiles/basecamp.dir/basecamp_cli.cpp.o.d"
  "basecamp"
  "basecamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basecamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
