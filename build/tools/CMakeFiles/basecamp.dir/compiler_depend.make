# Empty compiler generated dependencies file for basecamp.
# This may be replaced when dependencies are built.
