# Empty dependencies file for bench_e10_energy_prediction.
# This may be replaced when dependencies are built.
