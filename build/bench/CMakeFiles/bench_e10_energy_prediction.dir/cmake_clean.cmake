file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_energy_prediction.dir/bench_e10_energy_prediction.cpp.o"
  "CMakeFiles/bench_e10_energy_prediction.dir/bench_e10_energy_prediction.cpp.o.d"
  "bench_e10_energy_prediction"
  "bench_e10_energy_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_energy_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
