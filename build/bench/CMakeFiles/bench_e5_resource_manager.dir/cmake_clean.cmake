file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_resource_manager.dir/bench_e5_resource_manager.cpp.o"
  "CMakeFiles/bench_e5_resource_manager.dir/bench_e5_resource_manager.cpp.o.d"
  "bench_e5_resource_manager"
  "bench_e5_resource_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_resource_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
