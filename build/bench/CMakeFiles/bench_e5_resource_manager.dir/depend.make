# Empty dependencies file for bench_e5_resource_manager.
# This may be replaced when dependencies are built.
