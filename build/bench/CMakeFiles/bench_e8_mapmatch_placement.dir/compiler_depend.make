# Empty compiler generated dependencies file for bench_e8_mapmatch_placement.
# This may be replaced when dependencies are built.
