file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_mapmatch_placement.dir/bench_e8_mapmatch_placement.cpp.o"
  "CMakeFiles/bench_e8_mapmatch_placement.dir/bench_e8_mapmatch_placement.cpp.o.d"
  "bench_e8_mapmatch_placement"
  "bench_e8_mapmatch_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_mapmatch_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
