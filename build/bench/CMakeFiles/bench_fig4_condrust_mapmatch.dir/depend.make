# Empty dependencies file for bench_fig4_condrust_mapmatch.
# This may be replaced when dependencies are built.
