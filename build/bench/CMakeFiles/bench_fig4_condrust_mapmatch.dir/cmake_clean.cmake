file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_condrust_mapmatch.dir/bench_fig4_condrust_mapmatch.cpp.o"
  "CMakeFiles/bench_fig4_condrust_mapmatch.dir/bench_fig4_condrust_mapmatch.cpp.o.d"
  "bench_fig4_condrust_mapmatch"
  "bench_fig4_condrust_mapmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_condrust_mapmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
