
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_ekl_rrtmg.cpp" "bench/CMakeFiles/bench_fig3_ekl_rrtmg.dir/bench_fig3_ekl_rrtmg.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_ekl_rrtmg.dir/bench_fig3_ekl_rrtmg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/usecases/CMakeFiles/everest_usecases.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/everest_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/everest_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/dialects/CMakeFiles/everest_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/everest_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/everest_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
