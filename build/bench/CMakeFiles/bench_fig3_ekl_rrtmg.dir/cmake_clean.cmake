file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ekl_rrtmg.dir/bench_fig3_ekl_rrtmg.cpp.o"
  "CMakeFiles/bench_fig3_ekl_rrtmg.dir/bench_fig3_ekl_rrtmg.cpp.o.d"
  "bench_fig3_ekl_rrtmg"
  "bench_fig3_ekl_rrtmg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ekl_rrtmg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
