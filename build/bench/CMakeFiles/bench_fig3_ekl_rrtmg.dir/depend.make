# Empty dependencies file for bench_fig3_ekl_rrtmg.
# This may be replaced when dependencies are built.
