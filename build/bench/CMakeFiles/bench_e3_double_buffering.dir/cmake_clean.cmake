file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_double_buffering.dir/bench_e3_double_buffering.cpp.o"
  "CMakeFiles/bench_e3_double_buffering.dir/bench_e3_double_buffering.cpp.o.d"
  "bench_e3_double_buffering"
  "bench_e3_double_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_double_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
