# Empty dependencies file for bench_e3_double_buffering.
# This may be replaced when dependencies are built.
