# Empty dependencies file for bench_e4_custom_formats.
# This may be replaced when dependencies are built.
