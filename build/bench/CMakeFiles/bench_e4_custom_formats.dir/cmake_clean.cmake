file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_custom_formats.dir/bench_e4_custom_formats.cpp.o"
  "CMakeFiles/bench_e4_custom_formats.dir/bench_e4_custom_formats.cpp.o.d"
  "bench_e4_custom_formats"
  "bench_e4_custom_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_custom_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
