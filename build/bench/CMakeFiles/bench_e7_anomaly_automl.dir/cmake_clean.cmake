file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_anomaly_automl.dir/bench_e7_anomaly_automl.cpp.o"
  "CMakeFiles/bench_e7_anomaly_automl.dir/bench_e7_anomaly_automl.cpp.o.d"
  "bench_e7_anomaly_automl"
  "bench_e7_anomaly_automl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_anomaly_automl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
