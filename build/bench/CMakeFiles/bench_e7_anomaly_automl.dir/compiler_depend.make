# Empty compiler generated dependencies file for bench_e7_anomaly_automl.
# This may be replaced when dependencies are built.
