# Empty compiler generated dependencies file for bench_e11_airquality_ensemble.
# This may be replaced when dependencies are built.
