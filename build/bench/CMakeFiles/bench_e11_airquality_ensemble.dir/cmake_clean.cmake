file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_airquality_ensemble.dir/bench_e11_airquality_ensemble.cpp.o"
  "CMakeFiles/bench_e11_airquality_ensemble.dir/bench_e11_airquality_ensemble.cpp.o.d"
  "bench_e11_airquality_ensemble"
  "bench_e11_airquality_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_airquality_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
