file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_dosa_distributed.dir/bench_e13_dosa_distributed.cpp.o"
  "CMakeFiles/bench_e13_dosa_distributed.dir/bench_e13_dosa_distributed.cpp.o.d"
  "bench_e13_dosa_distributed"
  "bench_e13_dosa_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_dosa_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
