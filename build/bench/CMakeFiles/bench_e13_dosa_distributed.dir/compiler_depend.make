# Empty compiler generated dependencies file for bench_e13_dosa_distributed.
# This may be replaced when dependencies are built.
