# Empty dependencies file for bench_e9_ptdr_alveo.
# This may be replaced when dependencies are built.
