file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_ptdr_alveo.dir/bench_e9_ptdr_alveo.cpp.o"
  "CMakeFiles/bench_e9_ptdr_alveo.dir/bench_e9_ptdr_alveo.cpp.o.d"
  "bench_e9_ptdr_alveo"
  "bench_e9_ptdr_alveo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_ptdr_alveo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
