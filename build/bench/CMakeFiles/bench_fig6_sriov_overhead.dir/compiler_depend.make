# Empty compiler generated dependencies file for bench_fig6_sriov_overhead.
# This may be replaced when dependencies are built.
