# Empty dependencies file for bench_fig5_dialect_lowerings.
# This may be replaced when dependencies are built.
