file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_dialect_lowerings.dir/bench_fig5_dialect_lowerings.cpp.o"
  "CMakeFiles/bench_fig5_dialect_lowerings.dir/bench_fig5_dialect_lowerings.cpp.o.d"
  "bench_fig5_dialect_lowerings"
  "bench_fig5_dialect_lowerings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_dialect_lowerings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
