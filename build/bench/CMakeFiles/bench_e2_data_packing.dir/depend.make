# Empty dependencies file for bench_e2_data_packing.
# This may be replaced when dependencies are built.
