file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_data_packing.dir/bench_e2_data_packing.cpp.o"
  "CMakeFiles/bench_e2_data_packing.dir/bench_e2_data_packing.cpp.o.d"
  "bench_e2_data_packing"
  "bench_e2_data_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_data_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
