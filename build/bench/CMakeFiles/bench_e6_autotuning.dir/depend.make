# Empty dependencies file for bench_e6_autotuning.
# This may be replaced when dependencies are built.
