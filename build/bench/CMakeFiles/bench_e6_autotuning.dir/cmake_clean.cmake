file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_autotuning.dir/bench_e6_autotuning.cpp.o"
  "CMakeFiles/bench_e6_autotuning.dir/bench_e6_autotuning.cpp.o.d"
  "bench_e6_autotuning"
  "bench_e6_autotuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_autotuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
