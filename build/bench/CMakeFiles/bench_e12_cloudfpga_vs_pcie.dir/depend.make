# Empty dependencies file for bench_e12_cloudfpga_vs_pcie.
# This may be replaced when dependencies are built.
