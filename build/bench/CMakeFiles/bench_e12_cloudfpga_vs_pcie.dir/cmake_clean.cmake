file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_cloudfpga_vs_pcie.dir/bench_e12_cloudfpga_vs_pcie.cpp.o"
  "CMakeFiles/bench_e12_cloudfpga_vs_pcie.dir/bench_e12_cloudfpga_vs_pcie.cpp.o.d"
  "bench_e12_cloudfpga_vs_pcie"
  "bench_e12_cloudfpga_vs_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_cloudfpga_vs_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
