file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_olympus_lanes.dir/bench_e1_olympus_lanes.cpp.o"
  "CMakeFiles/bench_e1_olympus_lanes.dir/bench_e1_olympus_lanes.cpp.o.d"
  "bench_e1_olympus_lanes"
  "bench_e1_olympus_lanes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_olympus_lanes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
