# Empty compiler generated dependencies file for bench_e1_olympus_lanes.
# This may be replaced when dependencies are built.
