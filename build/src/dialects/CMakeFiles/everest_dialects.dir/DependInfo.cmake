
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dialects/core.cpp" "src/dialects/CMakeFiles/everest_dialects.dir/core.cpp.o" "gcc" "src/dialects/CMakeFiles/everest_dialects.dir/core.cpp.o.d"
  "/root/repo/src/dialects/dfg.cpp" "src/dialects/CMakeFiles/everest_dialects.dir/dfg.cpp.o" "gcc" "src/dialects/CMakeFiles/everest_dialects.dir/dfg.cpp.o.d"
  "/root/repo/src/dialects/ekl.cpp" "src/dialects/CMakeFiles/everest_dialects.dir/ekl.cpp.o" "gcc" "src/dialects/CMakeFiles/everest_dialects.dir/ekl.cpp.o.d"
  "/root/repo/src/dialects/system.cpp" "src/dialects/CMakeFiles/everest_dialects.dir/system.cpp.o" "gcc" "src/dialects/CMakeFiles/everest_dialects.dir/system.cpp.o.d"
  "/root/repo/src/dialects/tensor_irs.cpp" "src/dialects/CMakeFiles/everest_dialects.dir/tensor_irs.cpp.o" "gcc" "src/dialects/CMakeFiles/everest_dialects.dir/tensor_irs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
