# Empty dependencies file for everest_dialects.
# This may be replaced when dependencies are built.
