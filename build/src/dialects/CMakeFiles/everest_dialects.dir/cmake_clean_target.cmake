file(REMOVE_RECURSE
  "libeverest_dialects.a"
)
