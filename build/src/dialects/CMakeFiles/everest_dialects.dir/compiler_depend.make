# Empty compiler generated dependencies file for everest_dialects.
# This may be replaced when dependencies are built.
