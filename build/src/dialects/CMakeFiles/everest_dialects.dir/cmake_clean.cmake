file(REMOVE_RECURSE
  "CMakeFiles/everest_dialects.dir/core.cpp.o"
  "CMakeFiles/everest_dialects.dir/core.cpp.o.d"
  "CMakeFiles/everest_dialects.dir/dfg.cpp.o"
  "CMakeFiles/everest_dialects.dir/dfg.cpp.o.d"
  "CMakeFiles/everest_dialects.dir/ekl.cpp.o"
  "CMakeFiles/everest_dialects.dir/ekl.cpp.o.d"
  "CMakeFiles/everest_dialects.dir/system.cpp.o"
  "CMakeFiles/everest_dialects.dir/system.cpp.o.d"
  "CMakeFiles/everest_dialects.dir/tensor_irs.cpp.o"
  "CMakeFiles/everest_dialects.dir/tensor_irs.cpp.o.d"
  "libeverest_dialects.a"
  "libeverest_dialects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_dialects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
