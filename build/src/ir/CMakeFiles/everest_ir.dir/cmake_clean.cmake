file(REMOVE_RECURSE
  "CMakeFiles/everest_ir.dir/attributes.cpp.o"
  "CMakeFiles/everest_ir.dir/attributes.cpp.o.d"
  "CMakeFiles/everest_ir.dir/dialect.cpp.o"
  "CMakeFiles/everest_ir.dir/dialect.cpp.o.d"
  "CMakeFiles/everest_ir.dir/ir.cpp.o"
  "CMakeFiles/everest_ir.dir/ir.cpp.o.d"
  "CMakeFiles/everest_ir.dir/parser.cpp.o"
  "CMakeFiles/everest_ir.dir/parser.cpp.o.d"
  "CMakeFiles/everest_ir.dir/pass.cpp.o"
  "CMakeFiles/everest_ir.dir/pass.cpp.o.d"
  "CMakeFiles/everest_ir.dir/printer.cpp.o"
  "CMakeFiles/everest_ir.dir/printer.cpp.o.d"
  "CMakeFiles/everest_ir.dir/rewrite.cpp.o"
  "CMakeFiles/everest_ir.dir/rewrite.cpp.o.d"
  "CMakeFiles/everest_ir.dir/types.cpp.o"
  "CMakeFiles/everest_ir.dir/types.cpp.o.d"
  "libeverest_ir.a"
  "libeverest_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
