# Empty dependencies file for everest_ir.
# This may be replaced when dependencies are built.
