
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/attributes.cpp" "src/ir/CMakeFiles/everest_ir.dir/attributes.cpp.o" "gcc" "src/ir/CMakeFiles/everest_ir.dir/attributes.cpp.o.d"
  "/root/repo/src/ir/dialect.cpp" "src/ir/CMakeFiles/everest_ir.dir/dialect.cpp.o" "gcc" "src/ir/CMakeFiles/everest_ir.dir/dialect.cpp.o.d"
  "/root/repo/src/ir/ir.cpp" "src/ir/CMakeFiles/everest_ir.dir/ir.cpp.o" "gcc" "src/ir/CMakeFiles/everest_ir.dir/ir.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/ir/CMakeFiles/everest_ir.dir/parser.cpp.o" "gcc" "src/ir/CMakeFiles/everest_ir.dir/parser.cpp.o.d"
  "/root/repo/src/ir/pass.cpp" "src/ir/CMakeFiles/everest_ir.dir/pass.cpp.o" "gcc" "src/ir/CMakeFiles/everest_ir.dir/pass.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/everest_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/everest_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/rewrite.cpp" "src/ir/CMakeFiles/everest_ir.dir/rewrite.cpp.o" "gcc" "src/ir/CMakeFiles/everest_ir.dir/rewrite.cpp.o.d"
  "/root/repo/src/ir/types.cpp" "src/ir/CMakeFiles/everest_ir.dir/types.cpp.o" "gcc" "src/ir/CMakeFiles/everest_ir.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
