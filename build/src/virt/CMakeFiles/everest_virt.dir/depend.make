# Empty dependencies file for everest_virt.
# This may be replaced when dependencies are built.
