file(REMOVE_RECURSE
  "CMakeFiles/everest_virt.dir/virt.cpp.o"
  "CMakeFiles/everest_virt.dir/virt.cpp.o.d"
  "libeverest_virt.a"
  "libeverest_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
