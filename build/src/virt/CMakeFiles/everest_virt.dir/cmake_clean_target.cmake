file(REMOVE_RECURSE
  "libeverest_virt.a"
)
