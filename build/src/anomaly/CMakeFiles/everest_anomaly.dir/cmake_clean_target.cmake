file(REMOVE_RECURSE
  "libeverest_anomaly.a"
)
