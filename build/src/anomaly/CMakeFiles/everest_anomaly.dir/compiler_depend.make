# Empty compiler generated dependencies file for everest_anomaly.
# This may be replaced when dependencies are built.
