
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anomaly/detectors.cpp" "src/anomaly/CMakeFiles/everest_anomaly.dir/detectors.cpp.o" "gcc" "src/anomaly/CMakeFiles/everest_anomaly.dir/detectors.cpp.o.d"
  "/root/repo/src/anomaly/service.cpp" "src/anomaly/CMakeFiles/everest_anomaly.dir/service.cpp.o" "gcc" "src/anomaly/CMakeFiles/everest_anomaly.dir/service.cpp.o.d"
  "/root/repo/src/anomaly/tpe.cpp" "src/anomaly/CMakeFiles/everest_anomaly.dir/tpe.cpp.o" "gcc" "src/anomaly/CMakeFiles/everest_anomaly.dir/tpe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numerics/CMakeFiles/everest_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
