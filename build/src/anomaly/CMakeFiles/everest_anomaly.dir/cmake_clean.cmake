file(REMOVE_RECURSE
  "CMakeFiles/everest_anomaly.dir/detectors.cpp.o"
  "CMakeFiles/everest_anomaly.dir/detectors.cpp.o.d"
  "CMakeFiles/everest_anomaly.dir/service.cpp.o"
  "CMakeFiles/everest_anomaly.dir/service.cpp.o.d"
  "CMakeFiles/everest_anomaly.dir/tpe.cpp.o"
  "CMakeFiles/everest_anomaly.dir/tpe.cpp.o.d"
  "libeverest_anomaly.a"
  "libeverest_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
