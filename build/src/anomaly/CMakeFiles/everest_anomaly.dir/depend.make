# Empty dependencies file for everest_anomaly.
# This may be replaced when dependencies are built.
