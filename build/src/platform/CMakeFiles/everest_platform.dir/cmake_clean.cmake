file(REMOVE_RECURSE
  "CMakeFiles/everest_platform.dir/device.cpp.o"
  "CMakeFiles/everest_platform.dir/device.cpp.o.d"
  "CMakeFiles/everest_platform.dir/memory.cpp.o"
  "CMakeFiles/everest_platform.dir/memory.cpp.o.d"
  "CMakeFiles/everest_platform.dir/network.cpp.o"
  "CMakeFiles/everest_platform.dir/network.cpp.o.d"
  "CMakeFiles/everest_platform.dir/xrt.cpp.o"
  "CMakeFiles/everest_platform.dir/xrt.cpp.o.d"
  "libeverest_platform.a"
  "libeverest_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
