
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/device.cpp" "src/platform/CMakeFiles/everest_platform.dir/device.cpp.o" "gcc" "src/platform/CMakeFiles/everest_platform.dir/device.cpp.o.d"
  "/root/repo/src/platform/memory.cpp" "src/platform/CMakeFiles/everest_platform.dir/memory.cpp.o" "gcc" "src/platform/CMakeFiles/everest_platform.dir/memory.cpp.o.d"
  "/root/repo/src/platform/network.cpp" "src/platform/CMakeFiles/everest_platform.dir/network.cpp.o" "gcc" "src/platform/CMakeFiles/everest_platform.dir/network.cpp.o.d"
  "/root/repo/src/platform/xrt.cpp" "src/platform/CMakeFiles/everest_platform.dir/xrt.cpp.o" "gcc" "src/platform/CMakeFiles/everest_platform.dir/xrt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hls/CMakeFiles/everest_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
