# Empty dependencies file for everest_platform.
# This may be replaced when dependencies are built.
