file(REMOVE_RECURSE
  "libeverest_platform.a"
)
