file(REMOVE_RECURSE
  "libeverest_sdk.a"
)
