file(REMOVE_RECURSE
  "CMakeFiles/everest_sdk.dir/basecamp.cpp.o"
  "CMakeFiles/everest_sdk.dir/basecamp.cpp.o.d"
  "libeverest_sdk.a"
  "libeverest_sdk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_sdk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
