# Empty compiler generated dependencies file for everest_sdk.
# This may be replaced when dependencies are built.
