# Empty dependencies file for everest_olympus.
# This may be replaced when dependencies are built.
