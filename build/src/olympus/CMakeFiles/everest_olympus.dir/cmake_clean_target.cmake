file(REMOVE_RECURSE
  "libeverest_olympus.a"
)
