file(REMOVE_RECURSE
  "CMakeFiles/everest_olympus.dir/dosa.cpp.o"
  "CMakeFiles/everest_olympus.dir/dosa.cpp.o.d"
  "CMakeFiles/everest_olympus.dir/olympus.cpp.o"
  "CMakeFiles/everest_olympus.dir/olympus.cpp.o.d"
  "libeverest_olympus.a"
  "libeverest_olympus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_olympus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
