# CMake generated Testfile for 
# Source directory: /root/repo/src/olympus
# Build directory: /root/repo/build/src/olympus
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
