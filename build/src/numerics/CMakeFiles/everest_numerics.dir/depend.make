# Empty dependencies file for everest_numerics.
# This may be replaced when dependencies are built.
