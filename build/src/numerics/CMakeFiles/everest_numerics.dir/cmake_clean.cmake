file(REMOVE_RECURSE
  "CMakeFiles/everest_numerics.dir/formats.cpp.o"
  "CMakeFiles/everest_numerics.dir/formats.cpp.o.d"
  "CMakeFiles/everest_numerics.dir/linalg.cpp.o"
  "CMakeFiles/everest_numerics.dir/linalg.cpp.o.d"
  "CMakeFiles/everest_numerics.dir/tensor.cpp.o"
  "CMakeFiles/everest_numerics.dir/tensor.cpp.o.d"
  "libeverest_numerics.a"
  "libeverest_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
