
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/formats.cpp" "src/numerics/CMakeFiles/everest_numerics.dir/formats.cpp.o" "gcc" "src/numerics/CMakeFiles/everest_numerics.dir/formats.cpp.o.d"
  "/root/repo/src/numerics/linalg.cpp" "src/numerics/CMakeFiles/everest_numerics.dir/linalg.cpp.o" "gcc" "src/numerics/CMakeFiles/everest_numerics.dir/linalg.cpp.o.d"
  "/root/repo/src/numerics/tensor.cpp" "src/numerics/CMakeFiles/everest_numerics.dir/tensor.cpp.o" "gcc" "src/numerics/CMakeFiles/everest_numerics.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
