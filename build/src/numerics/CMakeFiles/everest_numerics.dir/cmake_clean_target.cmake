file(REMOVE_RECURSE
  "libeverest_numerics.a"
)
