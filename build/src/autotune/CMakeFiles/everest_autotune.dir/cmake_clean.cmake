file(REMOVE_RECURSE
  "CMakeFiles/everest_autotune.dir/autotuner.cpp.o"
  "CMakeFiles/everest_autotune.dir/autotuner.cpp.o.d"
  "libeverest_autotune.a"
  "libeverest_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
