file(REMOVE_RECURSE
  "libeverest_autotune.a"
)
