# Empty compiler generated dependencies file for everest_autotune.
# This may be replaced when dependencies are built.
