# Empty compiler generated dependencies file for everest_support.
# This may be replaced when dependencies are built.
