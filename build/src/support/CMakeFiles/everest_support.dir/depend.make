# Empty dependencies file for everest_support.
# This may be replaced when dependencies are built.
