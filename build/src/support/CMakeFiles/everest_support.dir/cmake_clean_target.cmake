file(REMOVE_RECURSE
  "libeverest_support.a"
)
