file(REMOVE_RECURSE
  "CMakeFiles/everest_support.dir/json.cpp.o"
  "CMakeFiles/everest_support.dir/json.cpp.o.d"
  "CMakeFiles/everest_support.dir/stats.cpp.o"
  "CMakeFiles/everest_support.dir/stats.cpp.o.d"
  "CMakeFiles/everest_support.dir/strings.cpp.o"
  "CMakeFiles/everest_support.dir/strings.cpp.o.d"
  "CMakeFiles/everest_support.dir/table.cpp.o"
  "CMakeFiles/everest_support.dir/table.cpp.o.d"
  "libeverest_support.a"
  "libeverest_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
