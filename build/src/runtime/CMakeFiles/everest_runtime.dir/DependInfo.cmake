
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/dfg_executor.cpp" "src/runtime/CMakeFiles/everest_runtime.dir/dfg_executor.cpp.o" "gcc" "src/runtime/CMakeFiles/everest_runtime.dir/dfg_executor.cpp.o.d"
  "/root/repo/src/runtime/resource_manager.cpp" "src/runtime/CMakeFiles/everest_runtime.dir/resource_manager.cpp.o" "gcc" "src/runtime/CMakeFiles/everest_runtime.dir/resource_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
