file(REMOVE_RECURSE
  "libeverest_runtime.a"
)
