file(REMOVE_RECURSE
  "CMakeFiles/everest_runtime.dir/dfg_executor.cpp.o"
  "CMakeFiles/everest_runtime.dir/dfg_executor.cpp.o.d"
  "CMakeFiles/everest_runtime.dir/resource_manager.cpp.o"
  "CMakeFiles/everest_runtime.dir/resource_manager.cpp.o.d"
  "libeverest_runtime.a"
  "libeverest_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
