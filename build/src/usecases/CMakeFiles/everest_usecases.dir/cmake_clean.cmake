file(REMOVE_RECURSE
  "CMakeFiles/everest_usecases.dir/airquality.cpp.o"
  "CMakeFiles/everest_usecases.dir/airquality.cpp.o.d"
  "CMakeFiles/everest_usecases.dir/energy.cpp.o"
  "CMakeFiles/everest_usecases.dir/energy.cpp.o.d"
  "CMakeFiles/everest_usecases.dir/ptdr.cpp.o"
  "CMakeFiles/everest_usecases.dir/ptdr.cpp.o.d"
  "CMakeFiles/everest_usecases.dir/rrtmg.cpp.o"
  "CMakeFiles/everest_usecases.dir/rrtmg.cpp.o.d"
  "CMakeFiles/everest_usecases.dir/speednet.cpp.o"
  "CMakeFiles/everest_usecases.dir/speednet.cpp.o.d"
  "CMakeFiles/everest_usecases.dir/traffic.cpp.o"
  "CMakeFiles/everest_usecases.dir/traffic.cpp.o.d"
  "CMakeFiles/everest_usecases.dir/traffic_model.cpp.o"
  "CMakeFiles/everest_usecases.dir/traffic_model.cpp.o.d"
  "CMakeFiles/everest_usecases.dir/wrf_workflow.cpp.o"
  "CMakeFiles/everest_usecases.dir/wrf_workflow.cpp.o.d"
  "libeverest_usecases.a"
  "libeverest_usecases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_usecases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
