file(REMOVE_RECURSE
  "libeverest_usecases.a"
)
