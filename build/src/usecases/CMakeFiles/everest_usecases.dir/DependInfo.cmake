
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/usecases/airquality.cpp" "src/usecases/CMakeFiles/everest_usecases.dir/airquality.cpp.o" "gcc" "src/usecases/CMakeFiles/everest_usecases.dir/airquality.cpp.o.d"
  "/root/repo/src/usecases/energy.cpp" "src/usecases/CMakeFiles/everest_usecases.dir/energy.cpp.o" "gcc" "src/usecases/CMakeFiles/everest_usecases.dir/energy.cpp.o.d"
  "/root/repo/src/usecases/ptdr.cpp" "src/usecases/CMakeFiles/everest_usecases.dir/ptdr.cpp.o" "gcc" "src/usecases/CMakeFiles/everest_usecases.dir/ptdr.cpp.o.d"
  "/root/repo/src/usecases/rrtmg.cpp" "src/usecases/CMakeFiles/everest_usecases.dir/rrtmg.cpp.o" "gcc" "src/usecases/CMakeFiles/everest_usecases.dir/rrtmg.cpp.o.d"
  "/root/repo/src/usecases/speednet.cpp" "src/usecases/CMakeFiles/everest_usecases.dir/speednet.cpp.o" "gcc" "src/usecases/CMakeFiles/everest_usecases.dir/speednet.cpp.o.d"
  "/root/repo/src/usecases/traffic.cpp" "src/usecases/CMakeFiles/everest_usecases.dir/traffic.cpp.o" "gcc" "src/usecases/CMakeFiles/everest_usecases.dir/traffic.cpp.o.d"
  "/root/repo/src/usecases/traffic_model.cpp" "src/usecases/CMakeFiles/everest_usecases.dir/traffic_model.cpp.o" "gcc" "src/usecases/CMakeFiles/everest_usecases.dir/traffic_model.cpp.o.d"
  "/root/repo/src/usecases/wrf_workflow.cpp" "src/usecases/CMakeFiles/everest_usecases.dir/wrf_workflow.cpp.o" "gcc" "src/usecases/CMakeFiles/everest_usecases.dir/wrf_workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transforms/CMakeFiles/everest_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/everest_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/everest_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/everest_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/dialects/CMakeFiles/everest_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
