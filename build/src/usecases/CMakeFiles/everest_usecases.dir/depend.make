# Empty dependencies file for everest_usecases.
# This may be replaced when dependencies are built.
