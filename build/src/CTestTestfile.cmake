# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("numerics")
subdirs("ir")
subdirs("dialects")
subdirs("frontend")
subdirs("transforms")
subdirs("hls")
subdirs("platform")
subdirs("olympus")
subdirs("runtime")
subdirs("virt")
subdirs("autotune")
subdirs("anomaly")
subdirs("usecases")
subdirs("sdk")
