# Empty compiler generated dependencies file for everest_transforms.
# This may be replaced when dependencies are built.
