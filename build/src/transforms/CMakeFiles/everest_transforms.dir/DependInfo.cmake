
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transforms/base2_legalize.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/base2_legalize.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/base2_legalize.cpp.o.d"
  "/root/repo/src/transforms/canonicalize.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/canonicalize.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/canonicalize.cpp.o.d"
  "/root/repo/src/transforms/cfdlang_to_teil.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/cfdlang_to_teil.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/cfdlang_to_teil.cpp.o.d"
  "/root/repo/src/transforms/dfg_partition.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/dfg_partition.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/dfg_partition.cpp.o.d"
  "/root/repo/src/transforms/ekl_eval.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/ekl_eval.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/ekl_eval.cpp.o.d"
  "/root/repo/src/transforms/ekl_to_teil.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/ekl_to_teil.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/ekl_to_teil.cpp.o.d"
  "/root/repo/src/transforms/esn_extract.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/esn_extract.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/esn_extract.cpp.o.d"
  "/root/repo/src/transforms/loop_eval.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/loop_eval.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/loop_eval.cpp.o.d"
  "/root/repo/src/transforms/teil_eval.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/teil_eval.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/teil_eval.cpp.o.d"
  "/root/repo/src/transforms/teil_to_loops.cpp" "src/transforms/CMakeFiles/everest_transforms.dir/teil_to_loops.cpp.o" "gcc" "src/transforms/CMakeFiles/everest_transforms.dir/teil_to_loops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dialects/CMakeFiles/everest_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/numerics/CMakeFiles/everest_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
