file(REMOVE_RECURSE
  "libeverest_transforms.a"
)
