file(REMOVE_RECURSE
  "CMakeFiles/everest_transforms.dir/base2_legalize.cpp.o"
  "CMakeFiles/everest_transforms.dir/base2_legalize.cpp.o.d"
  "CMakeFiles/everest_transforms.dir/canonicalize.cpp.o"
  "CMakeFiles/everest_transforms.dir/canonicalize.cpp.o.d"
  "CMakeFiles/everest_transforms.dir/cfdlang_to_teil.cpp.o"
  "CMakeFiles/everest_transforms.dir/cfdlang_to_teil.cpp.o.d"
  "CMakeFiles/everest_transforms.dir/dfg_partition.cpp.o"
  "CMakeFiles/everest_transforms.dir/dfg_partition.cpp.o.d"
  "CMakeFiles/everest_transforms.dir/ekl_eval.cpp.o"
  "CMakeFiles/everest_transforms.dir/ekl_eval.cpp.o.d"
  "CMakeFiles/everest_transforms.dir/ekl_to_teil.cpp.o"
  "CMakeFiles/everest_transforms.dir/ekl_to_teil.cpp.o.d"
  "CMakeFiles/everest_transforms.dir/esn_extract.cpp.o"
  "CMakeFiles/everest_transforms.dir/esn_extract.cpp.o.d"
  "CMakeFiles/everest_transforms.dir/loop_eval.cpp.o"
  "CMakeFiles/everest_transforms.dir/loop_eval.cpp.o.d"
  "CMakeFiles/everest_transforms.dir/teil_eval.cpp.o"
  "CMakeFiles/everest_transforms.dir/teil_eval.cpp.o.d"
  "CMakeFiles/everest_transforms.dir/teil_to_loops.cpp.o"
  "CMakeFiles/everest_transforms.dir/teil_to_loops.cpp.o.d"
  "libeverest_transforms.a"
  "libeverest_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
