file(REMOVE_RECURSE
  "libeverest_hls.a"
)
