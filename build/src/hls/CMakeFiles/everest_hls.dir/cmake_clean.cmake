file(REMOVE_RECURSE
  "CMakeFiles/everest_hls.dir/resources.cpp.o"
  "CMakeFiles/everest_hls.dir/resources.cpp.o.d"
  "CMakeFiles/everest_hls.dir/scheduler.cpp.o"
  "CMakeFiles/everest_hls.dir/scheduler.cpp.o.d"
  "libeverest_hls.a"
  "libeverest_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
