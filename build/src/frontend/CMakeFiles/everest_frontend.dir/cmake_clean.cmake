file(REMOVE_RECURSE
  "CMakeFiles/everest_frontend.dir/cfdlang_parser.cpp.o"
  "CMakeFiles/everest_frontend.dir/cfdlang_parser.cpp.o.d"
  "CMakeFiles/everest_frontend.dir/condrust_parser.cpp.o"
  "CMakeFiles/everest_frontend.dir/condrust_parser.cpp.o.d"
  "CMakeFiles/everest_frontend.dir/ekl_parser.cpp.o"
  "CMakeFiles/everest_frontend.dir/ekl_parser.cpp.o.d"
  "CMakeFiles/everest_frontend.dir/onnx_import.cpp.o"
  "CMakeFiles/everest_frontend.dir/onnx_import.cpp.o.d"
  "libeverest_frontend.a"
  "libeverest_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/everest_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
