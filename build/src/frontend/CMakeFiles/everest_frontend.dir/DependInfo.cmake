
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/cfdlang_parser.cpp" "src/frontend/CMakeFiles/everest_frontend.dir/cfdlang_parser.cpp.o" "gcc" "src/frontend/CMakeFiles/everest_frontend.dir/cfdlang_parser.cpp.o.d"
  "/root/repo/src/frontend/condrust_parser.cpp" "src/frontend/CMakeFiles/everest_frontend.dir/condrust_parser.cpp.o" "gcc" "src/frontend/CMakeFiles/everest_frontend.dir/condrust_parser.cpp.o.d"
  "/root/repo/src/frontend/ekl_parser.cpp" "src/frontend/CMakeFiles/everest_frontend.dir/ekl_parser.cpp.o" "gcc" "src/frontend/CMakeFiles/everest_frontend.dir/ekl_parser.cpp.o.d"
  "/root/repo/src/frontend/onnx_import.cpp" "src/frontend/CMakeFiles/everest_frontend.dir/onnx_import.cpp.o" "gcc" "src/frontend/CMakeFiles/everest_frontend.dir/onnx_import.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dialects/CMakeFiles/everest_dialects.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/everest_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/everest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
