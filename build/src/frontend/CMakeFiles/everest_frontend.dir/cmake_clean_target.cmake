file(REMOVE_RECURSE
  "libeverest_frontend.a"
)
