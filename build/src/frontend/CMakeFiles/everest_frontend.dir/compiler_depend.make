# Empty compiler generated dependencies file for everest_frontend.
# This may be replaced when dependencies are built.
