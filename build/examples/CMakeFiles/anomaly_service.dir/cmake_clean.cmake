file(REMOVE_RECURSE
  "CMakeFiles/anomaly_service.dir/anomaly_service.cpp.o"
  "CMakeFiles/anomaly_service.dir/anomaly_service.cpp.o.d"
  "anomaly_service"
  "anomaly_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anomaly_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
