# Empty compiler generated dependencies file for anomaly_service.
# This may be replaced when dependencies are built.
