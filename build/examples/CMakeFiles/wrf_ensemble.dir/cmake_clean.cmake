file(REMOVE_RECURSE
  "CMakeFiles/wrf_ensemble.dir/wrf_ensemble.cpp.o"
  "CMakeFiles/wrf_ensemble.dir/wrf_ensemble.cpp.o.d"
  "wrf_ensemble"
  "wrf_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrf_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
