# Empty dependencies file for wrf_ensemble.
# This may be replaced when dependencies are built.
