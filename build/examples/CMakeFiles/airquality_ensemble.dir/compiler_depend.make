# Empty compiler generated dependencies file for airquality_ensemble.
# This may be replaced when dependencies are built.
