file(REMOVE_RECURSE
  "CMakeFiles/airquality_ensemble.dir/airquality_ensemble.cpp.o"
  "CMakeFiles/airquality_ensemble.dir/airquality_ensemble.cpp.o.d"
  "airquality_ensemble"
  "airquality_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airquality_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
