file(REMOVE_RECURSE
  "CMakeFiles/traffic_mapmatch.dir/traffic_mapmatch.cpp.o"
  "CMakeFiles/traffic_mapmatch.dir/traffic_mapmatch.cpp.o.d"
  "traffic_mapmatch"
  "traffic_mapmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_mapmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
