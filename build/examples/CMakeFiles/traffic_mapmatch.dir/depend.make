# Empty dependencies file for traffic_mapmatch.
# This may be replaced when dependencies are built.
